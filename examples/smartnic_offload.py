#!/usr/bin/env python3
"""SmartNIC offload example: a firewall in user logic with a host-
resident rule table fetched through the driver-bypass interface.

This is the paper's motivating use case (Section III-A): "the FPGA can
act as a SmartNIC onto which application-level tasks such as [30]
[a multi-rule firewall] can be offloaded. To enable application
offloading to be done independently of the VirtIO drivers, we have
implemented an additional interface on the VirtIO controller that
allows the user logic to request data transfers to/from host memory
bypassing the VirtIO driver."

The firewall user logic:

* loads its rule table (blocked UDP ports) from host memory over the
  bypass port -- no virtqueue, no driver involvement;
* echoes packets to allowed ports like the latency responder;
* answers packets to blocked ports with a short "BLOCKED" notice and
  counts them, spilling the counter back to host memory through the
  bypass port so host software can read it without touching the NIC
  driver.

Run:
    python examples/smartnic_offload.py
"""

from typing import Any, Generator, Optional

from repro.core import FPGA_IP, TEST_DST_PORT, build_virtio_testbed
from repro.fpga.user_logic import EchoUserLogic, streaming_cycles
from repro.host.netstack import (
    ETH_P_IP,
    EthernetFrame,
    IP_HEADER_SIZE,
    IPPROTO_UDP,
    Ipv4Header,
    UdpHeader,
    udp_datagram,
)
from repro.virtio.controller.bypass import HostBypassPort

#: Host memory locations the host "control plane" shares with the NIC.
RULE_TABLE_ADDR = 0x0800_0000
DROP_COUNTER_ADDR = 0x0900_0000


class FirewallUserLogic(EchoUserLogic):
    """Echo responder with a port-blocklist loaded over the bypass port."""

    def __init__(self, sim, name: str = "firewall") -> None:
        super().__init__(sim, name=name)
        self.bypass: Optional[HostBypassPort] = None
        self.blocked_ports: set[int] = set()
        self.passed = 0
        self.dropped = 0

    def load_rules(self) -> Generator[Any, Any, None]:
        """Fetch the rule table: u16 count, then count u16 ports."""
        assert self.bypass is not None, "bypass port not attached"
        header = yield self.bypass.read(RULE_TABLE_ADDR, 2)
        count = int.from_bytes(header, "little")
        if count:
            raw = yield self.bypass.read(RULE_TABLE_ADDR + 2, 2 * count)
            self.blocked_ports = {
                int.from_bytes(raw[i : i + 2], "little") for i in range(0, 2 * count, 2)
            }
        self.trace("rules-loaded", count=count)

    def spill_counters(self) -> Generator[Any, Any, None]:
        """Write drop statistics to host memory (bypass write)."""
        assert self.bypass is not None
        payload = self.dropped.to_bytes(8, "little") + self.passed.to_bytes(8, "little")
        yield self.bypass.write(DROP_COUNTER_ADDR, payload)

    def handle_frame(self, frame: bytes) -> Generator[Any, Any, Optional[bytes]]:
        # Classification pass over the headers.
        yield self.cycles(streaming_cycles(min(len(frame), 64)))
        eth = EthernetFrame.decode(frame)
        if eth.ethertype != ETH_P_IP:
            return None
        ip_header = Ipv4Header.decode(eth.payload)
        if ip_header.protocol != IPPROTO_UDP:
            return None
        udp = UdpHeader.decode(eth.payload[IP_HEADER_SIZE:])
        if udp.dst_port in self.blocked_ports:
            self.dropped += 1
            self.trace("frame-blocked", port=udp.dst_port)
            # Reply with a short notice so the measurement app is not
            # left blocking (a real deployment would drop silently).
            reply_payload = b"BLOCKED"
            reply_datagram = udp_datagram(
                ip_header.dst, ip_header.src, udp.dst_port, udp.src_port, reply_payload
            )
            reply_ip = Ipv4Header(
                src=ip_header.dst, dst=ip_header.src, protocol=IPPROTO_UDP,
                total_length=IP_HEADER_SIZE + len(reply_datagram),
            )
            reply = EthernetFrame(
                dst=eth.src, src=eth.dst, ethertype=ETH_P_IP,
                payload=reply_ip.encode() + reply_datagram,
            )
            return reply.encode(pad=False)
        self.passed += 1
        result = yield from super().handle_frame(frame)
        return result


def main() -> None:
    print("Booting the SmartNIC testbed with firewall user logic...")
    firewall = None

    # Build with custom user logic: the builder wires it behind the
    # virtio-net personality's TX/RX queue interfaces.
    from repro.sim.kernel import Simulator  # noqa: F401  (doc pointer)

    def build():
        nonlocal firewall
        import repro.core.testbed as testbed_mod

        sim = Simulator(seed=7)
        firewall = FirewallUserLogic(sim)
        return testbed_mod.build_virtio_testbed(seed=7, user_logic=firewall)

    testbed = build()
    firewall.bypass = HostBypassPort(testbed.sim, testbed.device.dma_port)

    # Host control plane publishes the rule table in its own memory.
    blocked = [9999, 8888]
    table = len(blocked).to_bytes(2, "little") + b"".join(
        p.to_bytes(2, "little") for p in blocked
    )
    testbed.kernel.memory.write(RULE_TABLE_ADDR, table)
    load = testbed.sim.spawn(firewall.load_rules())
    testbed.sim.run_until_triggered(load)
    print(f"  rules loaded over bypass DMA: blocked ports {sorted(firewall.blocked_ports)}")

    # Traffic: mixed allowed/blocked destinations.
    socket = testbed.socket
    results = []

    def traffic():
        for port in (TEST_DST_PORT, 9999, TEST_DST_PORT, 8888, 4444, 9999):
            yield from socket.sendto(b"payload-" + str(port).encode(), FPGA_IP, port)
            data, _ = yield from socket.recvfrom()
            results.append((port, data))

    process = testbed.sim.spawn(traffic())
    testbed.sim.run_until_triggered(process)

    print("\nTraffic results:")
    for port, data in results:
        verdict = "BLOCKED" if data == b"BLOCKED" else "echoed"
        print(f"  dst port {port:>5}: {verdict} ({len(data)}B)")

    # Spill counters to host memory through the bypass interface.
    spill = testbed.sim.spawn(firewall.spill_counters())
    testbed.sim.run_until_triggered(spill)
    raw = testbed.kernel.memory.read(DROP_COUNTER_ADDR, 16)
    dropped = int.from_bytes(raw[:8], "little")
    passed = int.from_bytes(raw[8:], "little")
    print(f"\nCounters read back from host memory (bypass write): "
          f"passed={passed} dropped={dropped}")
    print(f"Bypass port statistics: {firewall.bypass.stats}")
    assert dropped == 3 and passed == 3


if __name__ == "__main__":
    main()
