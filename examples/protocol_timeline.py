#!/usr/bin/env python3
"""Narrated protocol timelines: *why* the two drivers differ.

Section IV-A of the paper explains the latency results by walking
through what each driver does per transfer. This example regenerates
that narration from an actual traced simulation of one round trip per
driver, with timestamps — the doorbell vs. register-programming
difference, the descriptor fetches, the interrupt counts.

Run:
    python examples/protocol_timeline.py
"""

from repro.core.timeline import capture_virtio_timeline, capture_xdma_timeline


def main() -> None:
    print("Capturing one traced VirtIO echo round trip (64 B payload)...\n")
    virtio = capture_virtio_timeline(seed=100, payload_size=64)
    print(virtio.render())

    print("\nCapturing one traced XDMA write+read round trip (matched bytes)...\n")
    xdma = capture_xdma_timeline(seed=100, payload_size=64)
    print(xdma.render())

    print("\nProtocol economics (from the traces):")
    print(f"  VirtIO doorbells: {virtio.count('kick')}, "
          f"MSI-X interrupts: {virtio.count('queue-irq')}, "
          f"suppressed completions: {virtio.count('irq-suppressed')}")
    print(f"  XDMA engine runs: {xdma.count('sgdma-start')}, "
          f"channel interrupts: {xdma.count('channel-irq')}")
    print("\n(Re-run with include_tlps=True in code to see every PCIe TLP.)")


if __name__ == "__main__":
    main()
