#!/usr/bin/env python3
"""Quickstart: boot the paper's VirtIO-NIC testbed and measure a few
round trips.

Builds the full simulated machine (host kernel + network stack +
virtio-net driver + FPGA VirtIO controller on the XDMA IP), sends UDP
packets to the FPGA exactly as the paper's test application does
(Section III-B1), and prints per-packet latency with the
hardware/software split from the FPGA's performance counters.

Run:
    python examples/quickstart.py
"""

from repro.core import (
    FPGA_IP,
    TEST_DST_PORT,
    build_virtio_testbed,
    run_latency_sweep,
)
from repro.sim.time import to_us


def main() -> None:
    print("Booting the VirtIO network-device testbed (enumeration + driver probe)...")
    testbed = build_virtio_testbed(seed=2024)
    print(f"  negotiated features: {sorted(testbed.device.accepted_features)}")
    print(f"  FPGA NIC MAC: {testbed.driver.netdev.mac.hex(':')}")
    print()

    # A handful of individual echo round trips, instrumented by hand.
    print("Ten UDP echo round trips (64-byte payload):")
    socket = testbed.socket
    for sequence in range(10):
        payload = bytes([sequence]) * 64

        def app():
            t0 = testbed.kernel.gettime_ns()
            yield from socket.sendto(payload, FPGA_IP, TEST_DST_PORT)
            data, _ = yield from socket.recvfrom()
            t1 = testbed.kernel.gettime_ns()
            assert data == payload, "echo mismatch"
            return (t1 - t0) / 1000.0

        process = testbed.sim.spawn(app())
        rtt_us = testbed.sim.run_until_triggered(process)
        hw_us = to_us(
            testbed.perf.last("virtio_h2c") + testbed.perf.last("virtio_c2h")
        )
        print(f"  packet {sequence}: rtt {rtt_us:6.1f} us  (hardware {hw_us:5.1f} us)")

    # A small sweep using the experiment machinery.
    print("\nSweep (500 packets per size):")
    sweep = run_latency_sweep(testbed, payload_sizes=[64, 256, 1024], packets=500)
    print(sweep.summary_table())
    print("\nDevice statistics:", testbed.device.stats)


if __name__ == "__main__":
    main()
