#!/usr/bin/env python3
"""Multiple VirtIO device types on the same controller.

The paper's Section III-A: "The fundamentals of the VirtIO interface on
the FPGA do not change based on the type of device implemented. Only
the minimum number of queues and the device-specific configuration
structure change across device types."

This example boots the *same* VirtIO controller with three different
personalities -- network, console, block -- each driven by its standard
in-kernel front-end, and exercises each device's native semantics:

* net: UDP echo through the host socket API,
* console: character echo through read/write,
* block: sector writes/reads against the FPGA-DRAM ramdisk.

Run:
    python examples/device_types.py
"""

from repro.core import FPGA_IP, TEST_DST_PORT, build_virtio_testbed
from repro.core.testbed import build_block_testbed, build_console_testbed
from repro.sim.time import to_us


def demo_network() -> None:
    print("== virtio-net: the FPGA as a NIC ==")
    testbed = build_virtio_testbed(seed=1)
    socket = testbed.socket

    def app():
        t0 = testbed.kernel.gettime_ns()
        yield from socket.sendto(b"network device demo", FPGA_IP, TEST_DST_PORT)
        data, source = yield from socket.recvfrom()
        t1 = testbed.kernel.gettime_ns()
        return data, source, (t1 - t0) / 1000

    process = testbed.sim.spawn(app())
    data, source, rtt = testbed.sim.run_until_triggered(process)
    print(f"  UDP echo from {source[0]:#010x}:{source[1]}: {data!r} ({rtt:.1f} us)\n")


def demo_console() -> None:
    print("== virtio-console: the device type of the prior work [14] ==")
    testbed = build_console_testbed(seed=2)
    print(f"  geometry from device config: {testbed.driver.cols}x{testbed.driver.rows}")

    def app():
        lines = []
        for message in (b"hello, hvc0\n", b"second line\n"):
            yield from testbed.driver.write(message)
            lines.append((yield from testbed.driver.read()))
        return lines

    process = testbed.sim.spawn(app())
    for line in testbed.sim.run_until_triggered(process):
        print(f"  echoed: {line!r}")

    # Device-originated output (e.g. a hardware log line).
    testbed.device.personality.send_to_host(b"[fpga] link up\n")

    def reader():
        data = yield from testbed.driver.read()
        return data

    process = testbed.sim.spawn(reader())
    print(f"  device pushed: {testbed.sim.run_until_triggered(process)!r}\n")


def demo_block() -> None:
    print("== virtio-blk: a storage accelerator personality ==")
    testbed = build_block_testbed(seed=3, capacity_sectors=4096)
    driver = testbed.driver
    print(f"  capacity: {driver.capacity_sectors} sectors of {driver.blk_size} B")

    def app():
        t0 = testbed.sim.now
        payload = bytes(range(256)) * 8  # 4 sectors
        yield from driver.write_sectors(0, payload)
        t_write = testbed.sim.now
        data = yield from driver.read_sectors(0, 4)
        t_read = testbed.sim.now
        yield from driver.flush()
        assert data == payload, "ramdisk round trip mismatch"
        return to_us(t_write - t0), to_us(t_read - t_write)

    process = testbed.sim.spawn(app())
    write_us, read_us = testbed.sim.run_until_triggered(process)
    print(f"  4-sector write: {write_us:.1f} us, read-back: {read_us:.1f} us")
    personality = testbed.device.personality
    print(f"  media ops: reads={personality.reads} writes={personality.writes} "
          f"flushes={personality.flushes}\n")


def main() -> None:
    demo_network()
    demo_console()
    demo_block()
    print("All three device types ran on the same controller; only the")
    print("personality (device config + queue roles) differed.")


if __name__ == "__main__":
    main()
