#!/usr/bin/env python3
"""Driver comparison: a compact rendition of the paper's evaluation.

Runs both testbeds over a payload sweep and prints Table I-style tail
latencies, the Fig. 4/5 breakdowns, and the Section V claim checks.
This is the CLI's ``all`` artifact in example form, at a packet count
small enough to finish in under a minute.

Run:
    python examples/driver_comparison.py [packets]
"""

import sys

from repro.core.experiments import (
    render_claims,
    run_comparison,
    verify_paper_claims,
)
from repro.core.results import render_breakdown


def main() -> None:
    packets = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    payloads = (64, 256, 1024)
    print(f"Running both testbeds: {packets} packets x {len(payloads)} sizes each...\n")

    comparison = run_comparison(payload_sizes=payloads, packets=packets, seed=0)

    print("Table I (reproduced): tail latencies")
    print(comparison.table1())
    print()
    print(render_breakdown(comparison.virtio, "Figure 4 (reproduced): VirtIO breakdown"))
    print()
    print(render_breakdown(comparison.xdma, "Figure 5 (reproduced): XDMA breakdown"))
    print()
    checks = verify_paper_claims(comparison)
    print(render_claims(checks))
    failed = [c for c in checks if not c.holds]
    print()
    if failed:
        print(f"{len(failed)} claim(s) FAILED -- increase packets for stable tails.")
        sys.exit(1)
    print("All Section V claims hold on the simulation substrate.")


if __name__ == "__main__":
    main()
