"""Setup shim.

All metadata lives in pyproject.toml.  This file exists so that editable
installs work in offline environments whose setuptools lacks the
``wheel`` package required by the PEP-517 editable path
(``pip install -e . --no-use-pep517`` falls back to legacy develop mode).
"""

from setuptools import setup

setup()
