#!/usr/bin/env python
"""CI cache smoke: prove a warm rerun is almost all hits and much faster.

Runs the fleetsweep and guestsweep workloads twice in one process
against a fresh cache directory -- a cold populate pass and a warm
pass -- and asserts:

* the two passes' artifacts are byte-identical (minus ``cache_stats``);
* the warm pass hits on at least ``MIN_HIT_RATE`` of its cells;
* the warm wall clock beats the cold one by at least ``MIN_SPEEDUP``.

Writes the warm pass's ``cache_stats`` plus the measured walls to
``cache_smoke.json`` (uploaded as a CI artifact) and exits non-zero on
any violation.  Run from the repo root:

    PYTHONPATH=src python scripts/cache_smoke.py
"""

from __future__ import annotations

import io
import json
import sys
import tempfile
import time
from contextlib import redirect_stdout

from repro.cli import main
from repro.exec import cache as result_cache

MIN_HIT_RATE = 0.90
MIN_SPEEDUP = 3.0

#: The two sweep workloads named in the acceptance criteria; small but
#: real (every cell kind in each boots, runs, and caches).
COMMANDS = [
    ["fleetsweep", "--json", "--pods", "2", "--tenants", "4",
     "--packets", "40", "--seed", "7", "-j", "2"],
    ["guestsweep", "--json", "--packets", "40", "--payloads", "64", "1024",
     "--seed", "7", "-j", "2"],
]


def run_pass(cache_dir: str) -> tuple[float, list[str], dict]:
    """One pass over all COMMANDS; returns (wall_s, outputs, stats).

    Each CLI invocation installs a fresh cache instance, so the
    counters are summed across the pass's commands here.
    """
    outputs = []
    totals = {"hits": 0, "misses": 0, "stores": 0, "boot_reuses": 0}
    started = time.perf_counter()
    for argv in COMMANDS:
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            main(argv + ["--cache", "--cache-dir", cache_dir])
        payload = json.loads(buffer.getvalue())
        stats = payload.pop("cache_stats")
        for counter in totals:
            totals[counter] += stats[counter]
        outputs.append(json.dumps(payload, sort_keys=True))
    return time.perf_counter() - started, outputs, totals


def main_smoke() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-cache-smoke-") as cache_dir:
        cold_wall, cold_out, cold_stats = run_pass(cache_dir)
        warm_wall, warm_out, warm_stats = run_pass(cache_dir)
    result_cache.configure(enabled=False)

    warm_hits = warm_stats["hits"]
    warm_cells = warm_hits + warm_stats["misses"]
    hit_rate = warm_hits / warm_cells if warm_cells else 0.0
    speedup = cold_wall / warm_wall if warm_wall > 0 else float("inf")

    report = {
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "speedup": speedup,
        "warm_cells": warm_cells,
        "warm_hits": warm_hits,
        "warm_hit_rate": hit_rate,
        "cold_stats": cold_stats,
        "warm_stats": warm_stats,
    }
    with open("cache_smoke.json", "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    failures = []
    if cold_out != warm_out:
        failures.append("warm artifacts differ from cold artifacts")
    if hit_rate < MIN_HIT_RATE:
        failures.append(
            f"warm hit rate {hit_rate:.0%} below the {MIN_HIT_RATE:.0%} floor "
            f"({warm_hits}/{warm_cells} cells)"
        )
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"warm speedup {speedup:.1f}x below the {MIN_SPEEDUP:.1f}x floor "
            f"(cold {cold_wall:.2f}s, warm {warm_wall:.2f}s)"
        )

    print(
        f"cache smoke: cold {cold_wall:.2f}s -> warm {warm_wall:.2f}s "
        f"({speedup:.1f}x), {warm_hits}/{warm_cells} hits ({hit_rate:.0%})"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main_smoke())
