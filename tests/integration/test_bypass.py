"""Tests for the driver-bypass host DMA interface (Section III-A)."""

import pytest

from repro.core.testbed import build_virtio_testbed
from repro.virtio.controller.bypass import HostBypassPort
from repro.virtio.controller.dma_port import STAGING_SLOT_SIZE


@pytest.fixture
def testbed():
    return build_virtio_testbed(seed=31)


@pytest.fixture
def bypass(testbed):
    return HostBypassPort(testbed.sim, testbed.device.dma_port)


class TestBypassPort:
    def test_read_host_memory(self, testbed, bypass, run):
        testbed.kernel.memory.write(0x0200_0000, b"host-resident rule table")

        def logic():
            data = yield bypass.read(0x0200_0000, 24)
            return data

        assert run(testbed.sim, logic()) == b"host-resident rule table"

    def test_write_host_memory(self, testbed, bypass, run):
        def logic():
            yield bypass.write(0x0300_0000, b"flow state spill")

        run(testbed.sim, logic())
        assert testbed.kernel.memory.read(0x0300_0000, 16) == b"flow state spill"

    def test_large_transfer_chunked(self, testbed, bypass, run):
        data = bytes(i & 0xFF for i in range(3 * STAGING_SLOT_SIZE + 17))
        testbed.kernel.memory.write(0x0400_0000, data)

        def logic():
            out = yield from bypass.read_large(0x0400_0000, len(data))
            return out

        assert run(testbed.sim, logic()) == data
        assert bypass.reads == 4

    def test_write_large(self, testbed, bypass, run):
        data = bytes(i & 0xFF for i in range(2 * STAGING_SLOT_SIZE))

        def logic():
            yield from bypass.write_large(0x0500_0000, data)

        run(testbed.sim, logic())
        assert testbed.kernel.memory.read(0x0500_0000, len(data)) == data

    def test_independent_of_virtqueue_traffic(self, testbed, bypass):
        """Bypass transfers proceed while the echo data path runs --
        offloading 'independently of the VirtIO drivers'."""
        from repro.core.calibration import FPGA_IP, TEST_DST_PORT

        testbed.kernel.memory.write(0x0600_0000, b"A" * 64)
        results = {}

        def logic():
            data = yield bypass.read(0x0600_0000, 64)
            results["bypass"] = data

        def app():
            yield from testbed.socket.sendto(b"ping" * 16, FPGA_IP, TEST_DST_PORT)
            data, _ = yield from testbed.socket.recvfrom()
            results["echo"] = data

        testbed.sim.spawn(logic())
        process = testbed.sim.spawn(app())
        testbed.sim.run_until_triggered(process)
        testbed.sim.run()
        assert results["bypass"] == b"A" * 64
        assert results["echo"] == b"ping" * 16

    def test_stats(self, testbed, bypass, run):
        def logic():
            yield bypass.write(0x0700_0000, b"x" * 10)
            yield bypass.read(0x0700_0000, 10)

        run(testbed.sim, logic())
        assert bypass.stats == {
            "reads": 1, "writes": 1, "bytes_read": 10, "bytes_written": 10,
        }

    def test_oversized_single_op_rejected(self, testbed, bypass):
        with pytest.raises(ValueError):
            bypass.read(0, STAGING_SLOT_SIZE + 1)
