"""Multi-device coexistence, device reset/re-probe, and virtio-rng."""

import pytest

from repro.drivers.virtio_rng import VirtioRngDriver
from repro.drivers.xdma import XdmaCharDriver
from repro.drivers.virtio_net import DRIVER_SUPPORTED, VirtioNetDriver
from repro.fpga.user_logic import EchoUserLogic
from repro.fpga.xdma.core import XDMA_DEVICE_ID, XILINX_VENDOR_ID, XdmaCore
from repro.host.chardev import sys_read, sys_write
from repro.host.kernel import HostKernel
from repro.host.netstack.ip import Route
from repro.host.netstack.sockets import UdpSocket
from repro.host.netstack.stack import NetworkStack
from repro.mem.fpga_mem import Bram
from repro.pcie.enumeration import enumerate_all
from repro.pcie.root_complex import RootComplex
from repro.sim.kernel import Simulator
from repro.virtio.constants import VIRTIO_PCI_VENDOR_ID
from repro.virtio.controller.device import VirtioFpgaDevice
from repro.virtio.controller.net import VirtioNetPersonality
from repro.virtio.controller.rng import VirtioRngPersonality

HOST_IP = 0x0A00_0001
FPGA_IP = 0x0A00_0002
FPGA_MAC = b"\x52\x54\x00\xfa\xce\x01"


class TestMultiDevice:
    """One root complex hosting a VirtIO NIC *and* an XDMA card."""

    @pytest.fixture(scope="class")
    def machine(self):
        sim = Simulator(seed=81)
        rc = RootComplex(sim)
        kernel = HostKernel(sim, rc)
        stack = NetworkStack(kernel)

        _, virtio_link = rc.create_port()
        virtio_device = VirtioFpgaDevice(
            sim, virtio_link, VirtioNetPersonality(EchoUserLogic(sim), mac=FPGA_MAC)
        )
        _, xdma_link = rc.create_port()
        xdma_core = XdmaCore(sim, xdma_link)
        xdma_core.attach_axi(0, Bram(64 << 10))

        boot = sim.spawn(enumerate_all(rc))
        functions = sim.run_until_triggered(boot)
        assert len(functions) == 2
        by_vendor = {f.vendor_id: f for f in functions}

        net_driver = VirtioNetDriver(kernel, stack, by_vendor[VIRTIO_PCI_VENDOR_ID])
        probe = sim.spawn(net_driver.probe(HOST_IP))
        sim.run_until_triggered(probe)
        xdma_driver = XdmaCharDriver(kernel, by_vendor[XILINX_VENDOR_ID])
        probe = sim.spawn(xdma_driver.probe())
        sim.run_until_triggered(probe)
        sim.run()

        stack.routes.add(Route(network=FPGA_IP & 0xFFFFFF00, prefix_len=24,
                               device="virtio0"))
        stack.arp.add_static(FPGA_IP, FPGA_MAC)
        socket = UdpSocket(kernel, stack)
        socket.bind(47000)
        return dict(sim=sim, kernel=kernel, socket=socket,
                    xdma_driver=xdma_driver, virtio_device=virtio_device)

    def test_both_devices_enumerated_distinct_windows(self, machine):
        virtio_bars = machine["virtio_device"].xdma.endpoint.config
        assert virtio_bars.vendor_id == VIRTIO_PCI_VENDOR_ID

    def test_concurrent_traffic_on_both_devices(self, machine):
        sim = machine["sim"]
        results = {}

        def net_app():
            yield from machine["socket"].sendto(b"net traffic", FPGA_IP, 7)
            data, _ = yield from machine["socket"].recvfrom()
            results["net"] = data

        def xdma_app():
            yield from sys_write(machine["kernel"], machine["xdma_driver"], b"x" * 128)
            results["xdma"] = yield from sys_read(
                machine["kernel"], machine["xdma_driver"], 128
            )

        p1 = sim.spawn(net_app())
        p2 = sim.spawn(xdma_app())
        sim.run_until_triggered(p1)
        sim.run_until_triggered(p2)
        assert results["net"] == b"net traffic"
        assert len(results["xdma"]) == 128

    def test_interrupt_vectors_do_not_collide(self, machine):
        """Both devices use vectors 0..N on their own MSI-X tables; the
        host dispatches by data payload, so drivers must have claimed
        distinct vector numbers."""
        # The virtio driver took vectors 0..2 (config + 2 queues), the
        # XDMA driver tried 0..2 as well -- which would collide.  The
        # fixture passing at all proves dispatch still worked; verify
        # the registration model explicitly:
        irqc = machine["kernel"].irqc
        assert irqc.spurious == 0


class TestDeviceReset:
    def test_reset_and_reprobe(self):
        """Write status 0 mid-life, then run the full init handshake
        again: the device must come back clean (kernel module reload)."""
        from repro.core.testbed import build_virtio_testbed
        from repro.core.calibration import FPGA_IP as TB_FPGA_IP, TEST_DST_PORT

        testbed = build_virtio_testbed(seed=82)

        def first_echo():
            yield from testbed.socket.sendto(b"before reset", TB_FPGA_IP, TEST_DST_PORT)
            data, _ = yield from testbed.socket.recvfrom()
            return data

        process = testbed.sim.spawn(first_echo())
        assert testbed.sim.run_until_triggered(process) == b"before reset"

        # Reset through the transport (unbind).
        transport = testbed.driver.transport

        def reset():
            yield from transport.common_write("device_status", 0)

        process = testbed.sim.spawn(reset())
        testbed.sim.run_until_triggered(process)
        testbed.sim.run()
        assert testbed.device.device_status == 0
        assert testbed.device.engines == {}
        assert not testbed.device.config_block.queue(0).enabled

        # Re-run the handshake with fresh rings (rebind).
        transport.virtqueues.clear()
        transport.notify_addrs.clear()
        transport.queue_vectors_assigned.clear()
        testbed.kernel.irqc.unregister(1)
        testbed.kernel.irqc.unregister(2)
        testbed.kernel.irqc.unregister(3)

        def reinit():
            yield from transport.initialize(DRIVER_SUPPORTED)

        process = testbed.sim.spawn(reinit())
        testbed.sim.run_until_triggered(process)
        testbed.sim.run()
        assert testbed.device.driver_ok
        assert set(testbed.device.engines) == {0, 1}


class TestVirtioRng:
    @pytest.fixture(scope="class")
    def rng_system(self):
        sim = Simulator(seed=83)
        rc = RootComplex(sim)
        kernel = HostKernel(sim, rc)
        _, link = rc.create_port()
        device = VirtioFpgaDevice(sim, link, VirtioRngPersonality(), name="virtio-rng")
        boot = sim.spawn(enumerate_all(rc))
        function = sim.run_until_triggered(boot)[0]
        driver = VirtioRngDriver(kernel, function)
        probe = sim.spawn(driver.probe())
        sim.run_until_triggered(probe)
        sim.run()
        return dict(sim=sim, device=device, driver=driver)

    def test_pci_identity(self, rng_system):
        config = rng_system["device"].xdma.endpoint.config
        assert config.device_id == 0x1040 + 4

    def test_entropy_read(self, rng_system):
        def app():
            data = yield from rng_system["driver"].read_entropy(64)
            return data

        process = rng_system["sim"].spawn(app())
        data = rng_system["sim"].run_until_triggered(process)
        assert len(data) == 64
        assert data != bytes(64)  # actually filled

    def test_entropy_deterministic_per_seed(self, rng_system):
        def app():
            first = yield from rng_system["driver"].read_entropy(32)
            second = yield from rng_system["driver"].read_entropy(32)
            return first, second

        process = rng_system["sim"].spawn(app())
        first, second = rng_system["sim"].run_until_triggered(process)
        assert first != second  # stream advances

    def test_harvest_time_scales(self, rng_system):
        sim = rng_system["sim"]

        def timed(length):
            def app():
                t0 = sim.now
                yield from rng_system["driver"].read_entropy(length)
                return sim.now - t0

            process = sim.spawn(app())
            return sim.run_until_triggered(process)

        small = timed(16)
        large = timed(1024)
        assert large > small * 3
