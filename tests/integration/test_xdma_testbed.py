"""End-to-end tests on the booted XDMA example-design testbed."""

import pytest

from repro.core.calibration import PAPER_PROFILE
from repro.core.testbed import build_xdma_testbed
from repro.host.chardev import sys_poll, sys_read, sys_write


@pytest.fixture(scope="module")
def testbed():
    return build_xdma_testbed(seed=13)


def write_read(testbed, data: bytes):
    kernel, driver = testbed.kernel, testbed.driver

    def app():
        written = yield from sys_write(kernel, driver, data)
        out = yield from sys_read(kernel, driver, len(data))
        return written, out

    process = testbed.sim.spawn(app())
    return testbed.sim.run_until_triggered(process)


class TestProbe:
    def test_msix_programmed(self, testbed):
        table = testbed.xdma.endpoint.msix.table
        assert table.enabled

    def test_channel_irqs_enabled(self, testbed):
        assert testbed.xdma.channel_int_enable & 0x3 == 0x3


class TestDataPath:
    def test_write_then_read_roundtrip(self, testbed):
        data = bytes(range(256)) * 2
        written, out = write_read(testbed, data)
        assert written == len(data)
        assert out == data

    def test_data_lands_in_bram(self, testbed):
        write_read(testbed, b"BRAM content")
        assert testbed.xdma.axi_read(0, 12) == b"BRAM content"

    def test_two_interrupts_per_round_trip(self, testbed):
        """One channel interrupt per direction (H2C + C2H)."""
        before = testbed.driver.interrupts
        write_read(testbed, b"x" * 64)
        assert testbed.driver.interrupts == before + 2

    def test_engine_counters_recorded(self, testbed):
        perf = testbed.perf
        perf.clear()
        write_read(testbed, b"x" * 128)
        assert perf.count("h2c0_dma") == 1
        assert perf.count("c2h0_dma") == 1

    def test_descriptor_fetched_from_host_per_transfer(self, testbed):
        """The SGDMA engine fetches each descriptor over PCIe -- the
        per-transfer exchange VirtIO avoids (Section IV-A)."""
        h2c_before = testbed.xdma.h2c[0].descriptors_executed
        write_read(testbed, b"x" * 64)
        assert testbed.xdma.h2c[0].descriptors_executed == h2c_before + 1

    def test_sequential_transfers(self, testbed):
        for i in range(10):
            payload = bytes([i]) * 100
            _, out = write_read(testbed, payload)
            assert out == payload


class TestC2hInterruptAblation:
    def test_poll_waits_for_user_irq(self):
        profile = PAPER_PROFILE.with_xdma_c2h_interrupt()
        testbed = build_xdma_testbed(seed=5, profile=profile)
        kernel, driver = testbed.kernel, testbed.driver

        def app():
            yield from sys_write(kernel, driver, b"x" * 64)
            yield from sys_poll(kernel, driver)
            data = yield from sys_read(kernel, driver, 64)
            return data

        process = testbed.sim.spawn(app())
        data = testbed.sim.run_until_triggered(process)
        assert len(data) == 64
        # write interrupt + user "data ready" interrupt + read interrupt
        assert driver.interrupts == 3

    def test_ablation_is_slower_than_paper_setup(self):
        def measure(profile, use_poll):
            testbed = build_xdma_testbed(seed=5, profile=profile)
            kernel, driver = testbed.kernel, testbed.driver

            def app():
                t0 = testbed.sim.now
                yield from sys_write(kernel, driver, b"x" * 64)
                if use_poll:
                    yield from sys_poll(kernel, driver)
                yield from sys_read(kernel, driver, 64)
                return testbed.sim.now - t0

            process = testbed.sim.spawn(app())
            return testbed.sim.run_until_triggered(process)

        favourable = measure(PAPER_PROFILE, use_poll=False)
        realistic = measure(PAPER_PROFILE.with_xdma_c2h_interrupt(), use_poll=True)
        assert realistic > favourable
