"""Tests for the spec-feature extensions: indirect descriptors, the
virtio-net control queue, the throughput experiment, and timelines."""

import dataclasses

import pytest

from repro.core.calibration import FPGA_IP, PAPER_PROFILE, TEST_DST_PORT
from repro.core.testbed import (
    build_block_testbed,
    build_virtio_testbed,
    build_xdma_testbed,
)
from repro.core.throughput import run_virtio_pipelined, run_xdma_pipelined
from repro.core.timeline import capture_virtio_timeline, capture_xdma_timeline
from repro.virtio.constants import VIRTIO_F_RING_INDIRECT_DESC, VIRTIO_NET_F_CTRL_VQ


class TestIndirectDescriptors:
    @pytest.fixture(scope="class")
    def block(self):
        return build_block_testbed(seed=61)

    def test_negotiated(self, block):
        assert block.driver.use_indirect
        assert block.driver.transport.accepted_features.has(VIRTIO_F_RING_INDIRECT_DESC)

    def test_roundtrip_through_indirect_table(self, block):
        payload = bytes(range(256)) * 2

        def app():
            yield from block.driver.write_sectors(3, payload)
            data = yield from block.driver.read_sectors(3, 1)
            return data

        process = block.sim.spawn(app())
        assert block.sim.run_until_triggered(process) == payload[:512]

    def test_single_ring_descriptor_per_request(self, block):
        """An indirect request consumes exactly one ring slot."""
        vq = block.driver.transport.queue(0)
        free_before = vq.num_free

        def app():
            yield from block.driver.flush()

        process = block.sim.spawn(app())
        block.sim.run_until_triggered(process)
        block.sim.run()
        assert vq.num_free == free_before  # freed on completion

    def test_fewer_descriptor_reads_than_direct(self):
        """The device fetches one table instead of walking N descriptors."""
        counts = {}
        for label, supported in (("indirect", True), ("direct", False)):
            testbed = build_block_testbed(seed=62)
            if not supported:
                # Force the driver down the direct path.
                testbed.driver.use_indirect = False
            reads_before = testbed.device.dma_port.reads_issued

            def app(tb=testbed):
                yield from tb.driver.read_sectors(0, 1)

            process = testbed.sim.spawn(app())
            testbed.sim.run_until_triggered(process)
            testbed.sim.run()
            counts[label] = testbed.device.dma_port.reads_issued - reads_before
        # direct: avail + entry + 3 descriptors (+ flags...); indirect:
        # avail + entry + 1 descriptor + 1 table.
        assert counts["indirect"] < counts["direct"]


class TestControlQueue:
    @pytest.fixture(scope="class")
    def testbed(self):
        profile = dataclasses.replace(PAPER_PROFILE, offer_ctrl_vq=True)
        return build_virtio_testbed(seed=63, profile=profile)

    def test_negotiated(self, testbed):
        assert testbed.driver.has_ctrl_vq
        assert testbed.driver.transport.accepted_features.has(VIRTIO_NET_F_CTRL_VQ)
        assert len(testbed.driver.transport.virtqueues) == 3

    def test_promiscuous_command(self, testbed):
        def app():
            ack = yield from testbed.driver.set_promiscuous(True)
            return ack

        process = testbed.sim.spawn(app())
        assert testbed.sim.run_until_triggered(process) == 0  # VIRTIO_NET_OK
        assert testbed.device.personality.promiscuous

    def test_unknown_command_rejected(self, testbed):
        def app():
            ack = yield from testbed.driver.send_ctrl_command(9, 9, b"\x00")
            return ack

        process = testbed.sim.spawn(app())
        assert testbed.sim.run_until_triggered(process) == 1  # VIRTIO_NET_ERR

    def test_data_path_unaffected(self, testbed):
        def app():
            yield from testbed.socket.sendto(b"with ctrl vq", FPGA_IP, TEST_DST_PORT)
            data, _ = yield from testbed.socket.recvfrom()
            return data

        process = testbed.sim.spawn(app())
        assert testbed.sim.run_until_triggered(process) == b"with ctrl vq"


class TestThroughput:
    def test_virtio_scales_with_window(self):
        results = {}
        for window in (1, 4):
            testbed = build_virtio_testbed(seed=64)
            results[window] = run_virtio_pipelined(testbed, window=window, packets=80)
        assert results[4].packets_per_second > results[1].packets_per_second

    def test_xdma_two_irqs_per_packet(self):
        testbed = build_xdma_testbed(seed=64)
        result = run_xdma_pipelined(testbed, window=2, packets=40)
        assert result.irqs_per_packet == pytest.approx(2.0, abs=0.1)

    def test_invalid_window_rejected(self):
        testbed = build_virtio_testbed(seed=64)
        with pytest.raises(ValueError):
            run_virtio_pipelined(testbed, window=0, packets=10)
        with pytest.raises(ValueError):
            run_virtio_pipelined(testbed, window=20, packets=10)


class TestTimeline:
    def test_virtio_timeline_narrates_the_protocol(self):
        timeline = capture_virtio_timeline(seed=65)
        assert timeline.count("kick") >= 1  # the single doorbell
        assert timeline.count("queue-irq") == 1  # one RX interrupt
        assert timeline.count("echo") == 1
        text = timeline.render()
        assert "doorbell" in text
        assert "us total" in text

    def test_xdma_timeline_shows_two_engine_runs(self):
        timeline = capture_xdma_timeline(seed=65)
        assert timeline.count("sgdma-start") == 2  # H2C + C2H
        assert timeline.count("channel-irq") == 2
        text = timeline.render()
        assert "SGDMA" in text

    def test_timeline_totals_plausible(self):
        timeline = capture_virtio_timeline(seed=66)
        assert 15 < timeline.total_us < 120

    def test_tlp_detail_view(self):
        timeline = capture_virtio_timeline(seed=67)
        brief = timeline.render(include_tlps=False)
        full = timeline.render(include_tlps=True)
        assert len(full.splitlines()) > len(brief.splitlines())
