"""End-to-end tests for the console and block device types.

Section III-A: "the modifications required to the FPGA design to
support different device types are minimal" -- these tests bind the
*same* controller to different personalities and exercise each device's
semantics through its standard front-end driver.
"""

import pytest

from repro.core.testbed import build_block_testbed, build_console_testbed
from repro.sim.process import ProcessError
from repro.virtio.constants import VIRTIO_BLK_SECTOR_SIZE


@pytest.fixture(scope="module")
def console():
    return build_console_testbed(seed=21)


@pytest.fixture(scope="module")
def block():
    return build_block_testbed(seed=22)


class TestConsole:
    def test_probe_reads_geometry(self, console):
        assert console.driver.cols == 80
        assert console.driver.rows == 25

    def test_echo_roundtrip(self, console):
        def app():
            yield from console.driver.write(b"hello fpga console\n")
            data = yield from console.driver.read()
            return data

        process = console.sim.spawn(app())
        assert console.sim.run_until_triggered(process) == b"hello fpga console\n"

    def test_multiple_writes_echo_in_order(self, console):
        def app():
            out = []
            for i in range(5):
                message = f"line {i}\n".encode()
                yield from console.driver.write(message)
                out.append((yield from console.driver.read()))
            return out

        process = console.sim.spawn(app())
        result = console.sim.run_until_triggered(process)
        assert result == [f"line {i}\n".encode() for i in range(5)]

    def test_device_initiated_output(self, console):
        console.device.personality.send_to_host(b"boot banner")

        def app():
            data = yield from console.driver.read()
            return data

        process = console.sim.spawn(app())
        assert console.sim.run_until_triggered(process) == b"boot banner"


class TestBlock:
    def test_probe_reads_capacity(self, block):
        assert block.driver.capacity_sectors == 8192
        assert block.driver.blk_size == 512

    def test_write_read_roundtrip(self, block):
        payload = bytes(range(256)) * 4  # 2 sectors

        def app():
            yield from block.driver.write_sectors(10, payload)
            data = yield from block.driver.read_sectors(10, 2)
            return data

        process = block.sim.spawn(app())
        assert block.sim.run_until_triggered(process) == payload

    def test_unwritten_sectors_read_zero(self, block):
        def app():
            data = yield from block.driver.read_sectors(100, 1)
            return data

        process = block.sim.spawn(app())
        assert block.sim.run_until_triggered(process) == bytes(VIRTIO_BLK_SECTOR_SIZE)

    def test_flush(self, block):
        def app():
            yield from block.driver.flush()

        process = block.sim.spawn(app())
        block.sim.run_until_triggered(process)
        assert block.device.personality.flushes >= 1

    def test_out_of_range_read_fails(self, block):
        def app():
            yield from block.driver.read_sectors(9000, 1)

        process = block.sim.spawn(app())
        with pytest.raises(ProcessError, match="status"):
            block.sim.run_until_triggered(process)

    def test_partial_sector_write_rejected(self, block):
        def app():
            yield from block.driver.write_sectors(0, b"partial")

        process = block.sim.spawn(app())
        with pytest.raises(ProcessError):
            block.sim.run_until_triggered(process)

    def test_data_stored_in_fpga_dram(self, block):
        payload = b"\xaa" * VIRTIO_BLK_SECTOR_SIZE

        def app():
            yield from block.driver.write_sectors(5, payload)

        process = block.sim.spawn(app())
        block.sim.run_until_triggered(process)
        media = block.device.personality.media
        assert media.read(5 * VIRTIO_BLK_SECTOR_SIZE, 16) == b"\xaa" * 16
