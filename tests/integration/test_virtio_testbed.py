"""End-to-end tests on the booted VirtIO network testbed.

These exercise the full path the paper measures: socket -> UDP/IP ->
virtio-net driver -> virtqueue -> doorbell -> FPGA controller -> XDMA
bypass DMA -> user-logic echo -> RX delivery -> MSI-X -> NAPI ->
socket.
"""

import pytest

from repro.core.calibration import FPGA_IP, TEST_DST_PORT
from repro.core.testbed import build_virtio_testbed
from repro.virtio.constants import (
    VIRTIO_F_VERSION_1,
    VIRTIO_NET_F_GUEST_CSUM,
    VIRTIO_NET_F_MAC,
)


@pytest.fixture(scope="module")
def testbed():
    return build_virtio_testbed(seed=11)


def echo_once(testbed, payload: bytes):
    socket = testbed.socket

    def app():
        yield from socket.sendto(payload, FPGA_IP, TEST_DST_PORT)
        data, source = yield from socket.recvfrom()
        return data, source

    process = testbed.sim.spawn(app())
    return testbed.sim.run_until_triggered(process)


class TestBoot:
    def test_device_reached_driver_ok(self, testbed):
        assert testbed.device.driver_ok

    def test_features_negotiated(self, testbed):
        accepted = testbed.device.accepted_features
        assert accepted.has(VIRTIO_F_VERSION_1)
        assert accepted.has(VIRTIO_NET_F_MAC)
        assert accepted.has(VIRTIO_NET_F_GUEST_CSUM)

    def test_netdev_mac_read_from_device_config(self, testbed):
        assert testbed.driver.netdev.mac == testbed.device.personality.mac

    def test_both_queues_have_engines(self, testbed):
        assert set(testbed.device.engines) == {0, 1}

    def test_rx_buffers_posted(self, testbed):
        assert len(testbed.driver._rx_buffers) == 64


class TestEchoDatapath:
    def test_payload_echoed_intact(self, testbed):
        payload = bytes(range(200)) + b"tail"
        data, source = echo_once(testbed, payload)
        assert data == payload
        assert source == (FPGA_IP, TEST_DST_PORT)

    def test_various_sizes(self, testbed):
        for size in (1, 17, 64, 512, 1400):
            data, _ = echo_once(testbed, bytes(size))
            assert len(data) == size

    def test_one_doorbell_per_transmit(self, testbed):
        """Section IV-A: 'only a notification using a single I/O write
        is needed at runtime'."""
        before = testbed.driver.tx_kicks
        echo_once(testbed, b"x" * 64)
        assert testbed.driver.tx_kicks == before + 1

    def test_one_rx_interrupt_per_round_trip(self, testbed):
        before = testbed.driver.rx_irqs
        echo_once(testbed, b"x" * 64)
        assert testbed.driver.rx_irqs == before + 1

    def test_tx_interrupts_suppressed(self, testbed):
        """The transmitq completes without interrupting the host."""
        tx_engine = testbed.device.engines[1]
        echo_once(testbed, b"x" * 64)
        assert tx_engine.interrupts_raised == 0
        assert tx_engine.interrupts_suppressed > 0

    def test_back_to_back_packets(self, testbed):
        for i in range(20):
            data, _ = echo_once(testbed, bytes([i]) * 32)
            assert data == bytes([i]) * 32

    def test_perf_counters_cover_each_packet(self, testbed):
        perf = testbed.perf
        perf.clear()
        for _ in range(5):
            echo_once(testbed, b"y" * 64)
        assert perf.count("virtio_h2c") == 5
        assert perf.count("virtio_c2h") == 5
        assert perf.count("virtio_resp") == 5

    def test_hardware_time_nonzero_and_bounded(self, testbed):
        perf = testbed.perf
        perf.clear()
        echo_once(testbed, b"z" * 256)
        from repro.sim.time import us

        hw = perf.last("virtio_h2c") + perf.last("virtio_c2h")
        assert us(2) < hw < us(100)

    def test_rx_buffers_recycled(self, testbed):
        for _ in range(10):
            echo_once(testbed, b"r" * 64)
        assert len(testbed.driver._rx_buffers) == 64


class TestDeterminism:
    def test_same_seed_same_latency(self):
        values = []
        for _ in range(2):
            tb = build_virtio_testbed(seed=99)
            t0 = tb.sim.now
            echo_once(tb, b"deterministic")
            values.append(tb.sim.now - t0)
        assert values[0] == values[1]

    def test_different_seed_different_latency(self):
        values = []
        for seed in (1, 2):
            tb = build_virtio_testbed(seed=seed)
            t0 = tb.sim.now
            echo_once(tb, b"stochastic")
            values.append(tb.sim.now - t0)
        assert values[0] != values[1]
