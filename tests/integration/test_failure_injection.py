"""Failure-injection tests: the models must fail loudly and correctly
when protocol invariants are violated."""

import pytest

from repro.core.calibration import FPGA_IP, TEST_DST_PORT
from repro.core.testbed import build_virtio_testbed, build_xdma_testbed
from repro.fpga.xdma import XdmaDescriptor, regs
from repro.mem.dma import DmaAllocator
from repro.sim.process import ProcessError


class TestCorruptedDescriptors:
    def test_bad_sgdma_descriptor_magic_fails_loudly(self):
        """The engine must reject a descriptor with a corrupted magic
        (PG195 engines halt with a descriptor error)."""
        testbed = build_xdma_testbed(seed=71)
        alloc = DmaAllocator(testbed.kernel.memory, base=0x3000_0000)
        desc_buf = alloc.alloc(32)
        desc_buf.write(b"\x00" * 32)  # all-zero: bad magic, zero length
        bar1 = testbed.function.bars[1].address
        rc = testbed.kernel.rc
        rc.mmio_write(
            bar1 + regs.H2C_SGDMA_BASE + regs.SGDMA_DESC_LO,
            (desc_buf.addr & 0xFFFFFFFF).to_bytes(4, "little"),
        )
        rc.mmio_write(
            bar1 + regs.H2C_CHANNEL_BASE + regs.CHAN_CONTROL,
            regs.CTRL_RUN.to_bytes(4, "little"),
        )
        with pytest.raises(ProcessError, match="magic"):
            testbed.sim.run()

    def test_corrupted_ring_descriptor_fails_loudly(self):
        """A descriptor-table entry pointing device-writable before
        readable violates the spec ordering the engine checks."""
        testbed = build_virtio_testbed(seed=72)
        vq = testbed.driver.transport.queue(1)  # transmitq
        # Hand-craft an out-of-order chain: writable then readable.
        head = vq.add_buffer([(0x1000, 8)], [(0x2000, 8)])
        # Swap the flags so the writable segment comes first.
        first = vq.read_descriptor(head)
        second_index = first.next_index
        from repro.virtio.virtqueue import VIRTQ_DESC_F_NEXT, VIRTQ_DESC_F_WRITE, VirtqDescriptor

        vq._write_descriptor(
            head,
            VirtqDescriptor(addr=0x1000, length=8,
                            flags=VIRTQ_DESC_F_NEXT | VIRTQ_DESC_F_WRITE,
                            next_index=second_index),
        )
        vq._write_descriptor(
            second_index, VirtqDescriptor(addr=0x2000, length=8, flags=0)
        )
        vq.publish()

        def kick():
            yield from testbed.driver.transport.notify(1)

        testbed.sim.spawn(kick())
        with pytest.raises(ProcessError, match="readable descriptor after writable"):
            testbed.sim.run()


class TestResourceExhaustion:
    def test_rx_queue_overrun_recovers(self):
        """A burst larger than the posted RX pool must not lose the
        testbed: the device waits for buffers, the driver reposts."""
        testbed = build_virtio_testbed(seed=73)
        socket = testbed.socket
        count = 80  # > RX_POOL_SIZE (64)
        received = []

        def sender():
            for i in range(count):
                yield from socket.sendto(bytes([i & 0xFF]) * 16, FPGA_IP, TEST_DST_PORT)

        def receiver():
            for _ in range(count):
                data, _ = yield from socket.recvfrom()
                received.append(data)

        testbed.sim.spawn(sender())
        process = testbed.sim.spawn(receiver())
        testbed.sim.run_until_triggered(process)
        assert len(received) == count

    def test_socket_backlog_drops_but_keeps_running(self):
        testbed = build_virtio_testbed(seed=74)
        testbed.socket.rx_queue_limit = 4
        socket = testbed.socket
        count = 12

        def sender():
            for i in range(count):
                yield from socket.sendto(bytes([i]) * 16, FPGA_IP, TEST_DST_PORT)

        process = testbed.sim.spawn(sender())
        testbed.sim.run_until_triggered(process)
        testbed.sim.run()
        # No receiver: the backlog caps at the limit and the rest drop.
        assert socket.rx_pending == 4
        assert socket.rx_dropped == count - 4

        # The socket still works afterwards.
        def drain_and_roundtrip():
            for _ in range(4):
                yield from socket.recvfrom()
            yield from socket.sendto(b"alive", FPGA_IP, TEST_DST_PORT)
            data, _ = yield from socket.recvfrom()
            return data

        process = testbed.sim.spawn(drain_and_roundtrip())
        assert testbed.sim.run_until_triggered(process) == b"alive"


class TestMisbehavingHost:
    def test_notify_before_driver_ok_is_ignored(self):
        """Doorbells to queues without engines (pre-DRIVER_OK) must be
        dropped, not crash the device."""
        from repro.fpga.user_logic import EchoUserLogic
        from repro.pcie.root_complex import RootComplex
        from repro.sim.kernel import Simulator
        from repro.virtio.controller.device import VirtioFpgaDevice
        from repro.virtio.controller.net import VirtioNetPersonality

        sim = Simulator(seed=75)
        rc = RootComplex(sim)
        rc.set_msi_handler(lambda a, d: None)
        _, link = rc.create_port()
        device = VirtioFpgaDevice(sim, link, VirtioNetPersonality(EchoUserLogic(sim)))
        device.on_notify(0)
        device.on_notify(1)
        sim.run()
        assert device.engines == {}

    def test_write_to_undefined_bar_region_dropped(self):
        """Posted writes to unmapped addresses inside the MMIO window
        are silently dropped (master-abort semantics), not fatal."""
        testbed = build_xdma_testbed(seed=76)
        bar0 = testbed.function.bars[0].address
        # BAR0 is 1 MiB; write near its end (mapped but unused) is fine,
        # and a write beyond all BARs into the routed window errors at
        # the router level only if the range is truly unmapped.
        testbed.kernel.rc.mmio_write(bar0 + 0x1000, b"\x00" * 4)
        testbed.sim.run()
