"""Tests for link timing and FIFO ordering."""

import pytest

from repro.pcie.link import PAPER_LINK, LinkConfig, PcieLink
from repro.pcie.tlp import memory_write
from repro.sim.time import ns


class TestLinkConfig:
    def test_gen2_x2_bandwidth(self):
        """Gen2 x2: 5 GT/s * 2 lanes * 0.8 (8b/10b) / 8 = 1 GB/s before
        DLLP overhead."""
        config = LinkConfig(generation=2, lanes=2, dllp_efficiency=1.0)
        assert config.bytes_per_second == pytest.approx(1e9)

    def test_gen1_half_of_gen2(self):
        gen1 = LinkConfig(generation=1, lanes=2)
        gen2 = LinkConfig(generation=2, lanes=2)
        assert gen2.bytes_per_second == pytest.approx(2 * gen1.bytes_per_second)

    def test_gen3_uses_128b130b(self):
        config = LinkConfig(generation=3, lanes=1, dllp_efficiency=1.0)
        assert config.bytes_per_second == pytest.approx(8e9 * 128 / 130 / 8)

    def test_serialization_time_proportional(self):
        config = LinkConfig(generation=2, lanes=2)
        assert config.serialization_time(2000) == pytest.approx(
            2 * config.serialization_time(1000), abs=1
        )

    def test_paper_link_is_gen2_x2(self):
        assert PAPER_LINK.generation == 2
        assert PAPER_LINK.lanes == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkConfig(generation=7)
        with pytest.raises(ValueError):
            LinkConfig(lanes=3)
        with pytest.raises(ValueError):
            LinkConfig(max_payload=100)
        with pytest.raises(ValueError):
            LinkConfig(dllp_efficiency=0)
        with pytest.raises(ValueError):
            LinkConfig(propagation_ns=-1)


class TestLinkTransmission:
    def make(self, sim):
        config = LinkConfig(generation=2, lanes=2, propagation_ns=100)
        link = PcieLink(sim, config)
        self.arrived = []
        link.attach_endpoint_rx(lambda tlp: self.arrived.append((sim.now, tlp)))
        link.attach_root_rx(lambda tlp: None)
        return link, config

    def test_delivery_after_serialization_plus_propagation(self, sim):
        link, config = self.make(sim)
        tlp = memory_write(0x0, b"x" * 100)
        link.send_downstream(tlp)
        sim.run()
        expected = config.serialization_time(tlp.wire_bytes) + ns(100)
        assert self.arrived[0][0] == expected

    def test_fifo_ordering_preserved(self, sim):
        link, _ = self.make(sim)
        first = memory_write(0x0, b"a" * 512)
        second = memory_write(0x1000, b"b" * 4)
        link.send_downstream(first)
        link.send_downstream(second)
        sim.run()
        assert [t.addr for _, t in self.arrived] == [0x0, 0x1000]

    def test_second_tlp_waits_for_first_serialization(self, sim):
        link, config = self.make(sim)
        first = memory_write(0x0, b"a" * 1000)
        second = memory_write(0x1000, b"b")
        link.send_downstream(first)
        link.send_downstream(second)
        sim.run()
        gap = self.arrived[1][0] - self.arrived[0][0]
        assert gap == config.serialization_time(second.wire_bytes)

    def test_delivery_event_fires(self, sim):
        link, _ = self.make(sim)
        done = link.send_downstream(memory_write(0, b"x"))
        assert not done.triggered
        sim.run()
        assert done.triggered

    def test_directions_independent(self, sim):
        config = LinkConfig(propagation_ns=50)
        link = PcieLink(sim, config)
        down, up = [], []
        link.attach_endpoint_rx(lambda t: down.append(sim.now))
        link.attach_root_rx(lambda t: up.append(sim.now))
        link.send_downstream(memory_write(0, b"x" * 1024))
        link.send_upstream(memory_write(0, b"y"))
        sim.run()
        # The small upstream TLP is not delayed by the big downstream one.
        assert up[0] < down[0]

    def test_unattached_direction_rejected(self, sim):
        link = PcieLink(sim, LinkConfig())
        with pytest.raises(RuntimeError):
            link.send_downstream(memory_write(0, b"x"))

    def test_statistics(self, sim):
        link, _ = self.make(sim)
        link.send_downstream(memory_write(0, b"x" * 10))
        sim.run()
        assert link.downstream.tlps_sent == 1
        assert link.downstream.bytes_sent > 10
