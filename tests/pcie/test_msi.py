"""Tests for MSI-X table, PBA, capability glue."""

import pytest

from repro.pcie.config_space import ConfigSpace
from repro.pcie.msi import (
    MSI_ADDRESS_BASE,
    MSIX_ENTRY_SIZE,
    MsixCapability,
    MsixTable,
    is_msi_address,
)


def program_entry(table: MsixTable, vector: int, addr: int, data: int, masked: bool = False):
    base = vector * MSIX_ENTRY_SIZE
    table.write(base, addr.to_bytes(8, "little"))
    table.write(base + 8, data.to_bytes(4, "little"))
    table.write(base + 12, (1 if masked else 0).to_bytes(4, "little"))


class TestMsixTable:
    def test_entries_power_up_masked(self):
        table = MsixTable(4)
        _, _, masked = table.entry(0)
        assert masked

    def test_compose_when_enabled(self):
        table = MsixTable(4)
        table.enabled = True
        program_entry(table, 1, MSI_ADDRESS_BASE, 0x33)
        message = table.compose(1)
        assert message is not None
        assert message.address == MSI_ADDRESS_BASE
        assert message.data == 0x33
        assert message.vector == 1

    def test_disabled_sets_pending(self):
        table = MsixTable(4)
        program_entry(table, 0, MSI_ADDRESS_BASE, 1)
        assert table.compose(0) is None
        assert table.pending(0)

    def test_masked_entry_sets_pending(self):
        table = MsixTable(4)
        table.enabled = True
        program_entry(table, 2, MSI_ADDRESS_BASE, 1, masked=True)
        assert table.compose(2) is None
        assert table.pending(2)

    def test_take_pending_clears(self):
        table = MsixTable(4)
        program_entry(table, 0, MSI_ADDRESS_BASE, 1)
        table.compose(0)
        assert table.take_pending(0)
        assert not table.pending(0)
        assert not table.take_pending(0)

    def test_pba_read_only(self):
        table = MsixTable(4)
        program_entry(table, 0, MSI_ADDRESS_BASE, 1)
        table.compose(0)  # sets pending bit
        table.write(table.pba_offset, b"\x00")
        assert table.pending(0)  # write was dropped

    def test_vector_bounds(self):
        with pytest.raises(IndexError):
            MsixTable(4).entry(4)
        with pytest.raises(ValueError):
            MsixTable(0)


class TestMsixCapability:
    def test_capability_installed(self):
        config = ConfigSpace(vendor_id=1, device_id=2)
        table = MsixTable(8)
        cap = MsixCapability(config, table, table_bar=2)
        assert config.find_capabilities(0x11) == [cap.cap_offset]

    def test_enable_via_config_write(self):
        config = ConfigSpace(vendor_id=1, device_id=2)
        table = MsixTable(8)
        cap = MsixCapability(config, table, table_bar=2)
        lo, _ = cap.control_range()
        config.write(lo, (0x8000).to_bytes(2, "little"))
        cap.sync_from_config()
        assert table.enabled

    def test_refire_pending_on_enable(self):
        config = ConfigSpace(vendor_id=1, device_id=2)
        table = MsixTable(8)
        cap = MsixCapability(config, table, table_bar=2)
        fired = []
        cap.on_refire(fired.append)
        program_entry(table, 3, MSI_ADDRESS_BASE, 3)
        table.compose(3)  # pending while disabled
        lo, _ = cap.control_range()
        config.write(lo, (0x8000).to_bytes(2, "little"))
        cap.sync_from_config()
        assert fired == [3]


class TestMsiAddressWindow:
    def test_msi_window_detection(self):
        assert is_msi_address(0xFEE0_0000)
        assert is_msi_address(0xFEE1_2340)
        assert not is_msi_address(0xE000_0000)
