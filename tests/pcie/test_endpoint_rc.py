"""Integration tests for endpoint + root complex + enumeration."""

import pytest

from repro.mem.region import RamRegion
from repro.pcie.config_space import ConfigSpace
from repro.pcie.device import PcieEndpoint
from repro.pcie.enumeration import enumerate_all
from repro.pcie.link import LinkConfig
from repro.pcie.msi import MSI_ADDRESS_BASE, MSIX_ENTRY_SIZE
from repro.pcie.root_complex import MMIO_WINDOW_BASE, RootComplex
from repro.sim.kernel import Simulator


@pytest.fixture
def system(sim):
    """RC + one endpoint with BAR0 RAM and MSI-X, enumerated."""
    rc = RootComplex(sim)
    msis = []
    rc.set_msi_handler(lambda addr, data: msis.append((addr, data)))
    port, link = rc.create_port(LinkConfig())
    config = ConfigSpace(vendor_id=0x10EE, device_id=0x7024)
    endpoint = PcieEndpoint(sim, link, config, name="ep")
    endpoint.attach_bar(0, RamRegion(0x10000, name="bar0"))
    endpoint.enable_msix(4, bar_index=1)
    boot = sim.spawn(enumerate_all(rc))
    functions = sim.run_until_triggered(boot)
    return dict(
        sim=sim, rc=rc, port=port, endpoint=endpoint, function=functions[0], msis=msis
    )


class TestEnumeration:
    def test_ids_discovered(self, system):
        function = system["function"]
        assert function.vendor_id == 0x10EE
        assert function.device_id == 0x7024

    def test_bars_assigned_in_window(self, system):
        for bar in system["function"].bars.values():
            assert bar.address >= MMIO_WINDOW_BASE
            assert bar.address % bar.size == 0  # natural alignment

    def test_bar_sizes(self, system):
        assert system["function"].bars[0].size == 0x10000

    def test_decode_enabled(self, system):
        assert system["endpoint"].config.memory_enabled
        assert system["endpoint"].config.bus_master_enabled

    def test_capabilities_walked(self, system):
        caps = [c.cap_id for c in system["function"].capabilities]
        assert 0x11 in caps  # MSI-X

    def test_empty_port_skipped(self, sim):
        rc = RootComplex(sim)
        rc.create_port()
        boot = sim.spawn(enumerate_all(rc))
        assert sim.run_until_triggered(boot) == []


class TestMmio:
    def test_write_read_roundtrip(self, system, run):
        sim, rc = system["sim"], system["rc"]
        base = system["function"].bars[0].address

        def body():
            rc.mmio_write(base + 0x40, b"payload!")
            data = yield rc.mmio_read(base + 0x40, 8)
            return data

        assert run(sim, body()) == b"payload!"

    def test_read_takes_round_trip_time(self, system, run):
        sim, rc = system["sim"], system["rc"]
        base = system["function"].bars[0].address
        t0 = sim.now

        def body():
            yield rc.mmio_read(base, 4)
            return sim.now - t0

        elapsed = run(sim, body())
        config = LinkConfig()
        assert elapsed >= 2 * config.propagation_time

    def test_unmapped_mmio_raises(self, system):
        with pytest.raises(RuntimeError, match="window"):
            system["rc"].mmio_write(0x5000_0000, b"x")


class TestDeviceDma:
    def test_dma_read_from_host(self, system, run):
        sim, rc, endpoint = system["sim"], system["rc"], system["endpoint"]
        rc.host_memory.write(0x9000, bytes(range(100)))

        def body():
            data = yield endpoint.dma_read(0x9000, 100)
            return data

        assert run(sim, body()) == bytes(range(100))

    def test_dma_write_to_host(self, system, run):
        sim, rc, endpoint = system["sim"], system["rc"], system["endpoint"]

        def body():
            yield endpoint.dma_write(0xA000, b"Z" * 300)

        run(sim, body())
        assert rc.host_memory.read(0xA000, 300) == b"Z" * 300

    def test_large_dma_read_segmented(self, system, run):
        sim, rc, endpoint = system["sim"], system["rc"], system["endpoint"]
        data = bytes(i & 0xFF for i in range(2048))
        rc.host_memory.write(0x4000, data)

        def body():
            out = yield endpoint.dma_read(0x4000, 2048)
            return out

        assert run(sim, body()) == data
        assert endpoint.stats["dma_read_tlps"] == 4  # 2048 / MRRS 512

    def test_dma_ordering_write_before_msix(self, system, run):
        """An MSI-X raised after a DMA write must arrive after the data
        (producer-consumer ordering)."""
        sim, rc, endpoint = system["sim"], system["rc"], system["endpoint"]
        table_base = system["function"].bars[1].address
        seen_at_irq = {}

        def setup():
            rc.mmio_write(table_base, MSI_ADDRESS_BASE.to_bytes(8, "little"))
            rc.mmio_write(table_base + 8, (0).to_bytes(4, "little"))
            rc.mmio_write(table_base + 12, (0).to_bytes(4, "little"))
            cap_offset = next(
                c.offset for c in system["function"].capabilities if c.cap_id == 0x11
            )
            yield system["port"].cfg_write(cap_offset + 2, (0x8000).to_bytes(2, "little"))

        run(sim, setup())
        system["msis"].clear()

        def on_msi(addr, data):
            seen_at_irq["data"] = rc.host_memory.read(0xB000, 4)

        rc.set_msi_handler(on_msi)

        def body():
            endpoint.dma_write(0xB000, b"DATA")
            endpoint.raise_msix(0)
            yield 0

        run(sim, body())
        sim.run()
        assert seen_at_irq["data"] == b"DATA"


class TestConfigOps:
    def test_sub_dword_config_write(self, system, run):
        sim, port = system["sim"], system["port"]

        def body():
            yield port.cfg_write(0x3C, b"\x42")  # interrupt line, 1 byte
            data = yield port.cfg_read(0x3C, 1)
            return data

        assert run(sim, body()) == b"\x42"

    def test_disabled_memory_returns_error(self, sim, run):
        rc = RootComplex(sim)
        rc.set_msi_handler(lambda a, d: None)
        port, link = rc.create_port()
        config = ConfigSpace(vendor_id=1, device_id=2)
        endpoint = PcieEndpoint(sim, link, config)
        endpoint.attach_bar(0, RamRegion(0x1000))
        # No enumeration: memory decode disabled; read via port directly.
        from repro.pcie.tlp import CompletionStatus

        def body():
            result = yield port.mmio_read(MMIO_WINDOW_BASE, 4)
            return result

        assert run(sim, body()) == CompletionStatus.UNSUPPORTED_REQUEST
