"""Tests for TLP construction, segmentation, completion splitting."""

import pytest

from repro.pcie.tlp import (
    DLL_OVERHEAD_BYTES,
    HEADER_3DW_BYTES,
    HEADER_4DW_BYTES,
    CompletionStatus,
    Tlp,
    TlpKind,
    completion_error,
    completion_with_data,
    memory_read,
    memory_write,
    segment_read,
    segment_write,
    split_completion,
)


class TestTlpBasics:
    def test_write_wire_bytes(self):
        tlp = memory_write(0x1000, b"x" * 64)
        assert tlp.wire_bytes == DLL_OVERHEAD_BYTES + HEADER_3DW_BYTES + 64

    def test_read_has_no_payload(self):
        tlp = memory_read(0x1000, 128)
        assert tlp.payload_bytes == 0
        assert tlp.wire_bytes == DLL_OVERHEAD_BYTES + HEADER_3DW_BYTES

    def test_64bit_address_uses_4dw_header(self):
        low = memory_write(0xFFFF_0000, b"x")
        high = memory_write(0x1_0000_0000, b"x")
        assert low.header_bytes == HEADER_3DW_BYTES
        assert high.header_bytes == HEADER_4DW_BYTES

    def test_write_is_posted(self):
        assert memory_write(0, b"x").is_posted
        assert not memory_read(0, 4).is_posted

    def test_data_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Tlp(kind=TlpKind.MEM_WRITE, addr=0, length=4, data=b"xx")

    def test_read_with_data_rejected(self):
        with pytest.raises(ValueError):
            Tlp(kind=TlpKind.MEM_READ, addr=0, length=4, data=b"1234")

    def test_zero_length_read_rejected(self):
        with pytest.raises(ValueError):
            memory_read(0, 0)

    def test_tags_differ(self):
        assert memory_read(0, 4).tag != memory_read(0, 4).tag


class TestSegmentation:
    def test_write_split_at_max_payload(self):
        tlps = segment_write(0x1000, b"x" * 600, max_payload=256)
        assert [t.length for t in tlps] == [256, 256, 88]
        assert [t.addr for t in tlps] == [0x1000, 0x1100, 0x1200]

    def test_write_split_at_4k_boundary(self):
        tlps = segment_write(0xFC0, b"x" * 128, max_payload=256)
        assert [t.length for t in tlps] == [64, 64]
        assert tlps[1].addr == 0x1000

    def test_read_split_at_max_read_request(self):
        tlps = segment_read(0, 1024, max_read_request=512)
        assert [t.length for t in tlps] == [512, 512]

    def test_read_split_at_4k_boundary(self):
        tlps = segment_read(0xF00, 512, max_read_request=512)
        assert [t.length for t in tlps] == [256, 256]

    def test_payload_reassembles(self):
        data = bytes(range(256)) * 3
        tlps = segment_write(0, data, max_payload=128)
        assert b"".join(t.data for t in tlps) == data

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            segment_write(0, b"x", max_payload=0)
        with pytest.raises(ValueError):
            segment_read(0, 4, max_read_request=0)


class TestCompletionSplitting:
    def test_single_completion_when_small(self):
        req = memory_read(0x40, 32)
        cpls = list(split_completion(req, bytes(32), rcb=64))
        assert len(cpls) == 1
        assert cpls[0].byte_count == 32

    def test_split_at_rcb(self):
        req = memory_read(0x20, 128)  # 0x20 -> 32 bytes to the boundary
        cpls = list(split_completion(req, bytes(128), rcb=64))
        assert [c.length for c in cpls] == [32, 64, 32]

    def test_byte_count_counts_down(self):
        req = memory_read(0, 192)
        cpls = list(split_completion(req, bytes(192), rcb=64))
        assert [c.byte_count for c in cpls] == [192, 128, 64]

    def test_data_reassembles(self):
        data = bytes(range(200))
        req = memory_read(8, 200)
        cpls = list(split_completion(req, data, rcb=64))
        assert b"".join(c.data for c in cpls) == data

    def test_tag_preserved(self):
        req = memory_read(0, 64)
        for cpl in split_completion(req, bytes(64)):
            assert cpl.tag == req.tag

    def test_length_mismatch_rejected(self):
        req = memory_read(0, 64)
        with pytest.raises(ValueError):
            list(split_completion(req, bytes(32)))

    def test_bad_rcb_rejected(self):
        req = memory_read(0, 64)
        with pytest.raises(ValueError):
            list(split_completion(req, bytes(64), rcb=48))


class TestCompletions:
    def test_completion_with_data(self):
        req = memory_read(0x100, 8)
        cpl = completion_with_data(req, b"12345678")
        assert cpl.kind == TlpKind.COMPLETION_DATA
        assert cpl.tag == req.tag

    def test_completion_error(self):
        req = memory_read(0x100, 8)
        cpl = completion_error(req, CompletionStatus.UNSUPPORTED_REQUEST)
        assert cpl.kind == TlpKind.COMPLETION
        assert cpl.completion_status == CompletionStatus.UNSUPPORTED_REQUEST
