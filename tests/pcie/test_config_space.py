"""Tests for configuration space, BAR sizing, capability chains."""

import pytest

from repro.pcie.config_space import (
    BAR0_OFFSET,
    CAP_ID_MSIX,
    CAP_ID_VENDOR_SPECIFIC,
    COMMAND_BUS_MASTER,
    COMMAND_MEMORY_SPACE,
    COMMAND_OFFSET,
    BarDefinition,
    ConfigSpace,
)


def make_config():
    return ConfigSpace(vendor_id=0x1AF4, device_id=0x1041, class_code=0x020000)


class TestIdentity:
    def test_vendor_device_ids(self):
        config = make_config()
        assert config.vendor_id == 0x1AF4
        assert config.device_id == 0x1041

    def test_ids_read_through_raw_interface(self):
        config = make_config()
        assert int.from_bytes(config.read(0, 2), "little") == 0x1AF4

    def test_identity_is_read_only(self):
        config = make_config()
        config.write(0, b"\xff\xff")
        assert config.vendor_id == 0x1AF4

    def test_class_code(self):
        config = make_config()
        # class code at 0x09..0x0B little-endian: prog-if, subclass, class
        assert config.read(0x0B, 1) == b"\x02"


class TestCommand:
    def test_memory_and_bus_master_enable(self):
        config = make_config()
        assert not config.memory_enabled
        config.write(COMMAND_OFFSET, (COMMAND_MEMORY_SPACE | COMMAND_BUS_MASTER).to_bytes(2, "little"))
        assert config.memory_enabled
        assert config.bus_master_enabled


class TestBars:
    def test_sizing_protocol(self):
        config = make_config()
        config.define_bar(BarDefinition(index=0, size=0x10000))
        config.write(BAR0_OFFSET, b"\xff\xff\xff\xff")
        sized = int.from_bytes(config.read(BAR0_OFFSET, 4), "little")
        size = (~(sized & 0xFFFF_FFF0) + 1) & 0xFFFF_FFFF
        assert size == 0x10000

    def test_address_programming(self):
        config = make_config()
        config.define_bar(BarDefinition(index=0, size=0x1000))
        config.write(BAR0_OFFSET, (0xE000_0000).to_bytes(4, "little"))
        assert config.bar_address(0) == 0xE000_0000
        readback = int.from_bytes(config.read(BAR0_OFFSET, 4), "little")
        assert readback & 0xFFFF_FFF0 == 0xE000_0000

    def test_sizing_then_address_restores_read(self):
        config = make_config()
        config.define_bar(BarDefinition(index=0, size=0x1000))
        config.write(BAR0_OFFSET, b"\xff\xff\xff\xff")
        config.write(BAR0_OFFSET, (0xD000_0000).to_bytes(4, "little"))
        readback = int.from_bytes(config.read(BAR0_OFFSET, 4), "little")
        assert readback & 0xFFFF_FFF0 == 0xD000_0000

    def test_64bit_bar(self):
        config = make_config()
        config.define_bar(BarDefinition(index=0, size=0x1000, is_64bit=True))
        config.write(BAR0_OFFSET, (0x8000_0000).to_bytes(4, "little"))
        config.write(BAR0_OFFSET + 4, (0x2).to_bytes(4, "little"))
        assert config.bar_address(0) == 0x2_8000_0000

    def test_undefined_bar_reads_zero(self):
        config = make_config()
        assert config.read(BAR0_OFFSET + 8, 4) == bytes(4)

    def test_bad_definitions_rejected(self):
        with pytest.raises(ValueError):
            BarDefinition(index=0, size=100)  # not a power of two
        with pytest.raises(ValueError):
            BarDefinition(index=6, size=4096)
        with pytest.raises(ValueError):
            BarDefinition(index=5, size=4096, is_64bit=True)
        config = make_config()
        config.define_bar(BarDefinition(index=0, size=4096))
        with pytest.raises(ValueError):
            config.define_bar(BarDefinition(index=0, size=4096))


class TestCapabilities:
    def test_chain_walk(self):
        config = make_config()
        off1 = config.add_capability(CAP_ID_MSIX, bytes(10))
        off2 = config.add_capability(CAP_ID_VENDOR_SPECIFIC, bytes(14))
        walked = config.walk_capabilities()
        assert walked == [(CAP_ID_MSIX, off1), (CAP_ID_VENDOR_SPECIFIC, off2)]

    def test_status_bit_set(self):
        config = make_config()
        assert config.walk_capabilities() == []
        config.add_capability(CAP_ID_MSIX, bytes(10))
        assert len(config.walk_capabilities()) == 1

    def test_find_multiple_of_same_id(self):
        config = make_config()
        offsets = [config.add_capability(CAP_ID_VENDOR_SPECIFIC, bytes(14)) for _ in range(4)]
        assert config.find_capabilities(CAP_ID_VENDOR_SPECIFIC) == offsets

    def test_offsets_dword_aligned(self):
        config = make_config()
        for _ in range(3):
            offset = config.add_capability(CAP_ID_VENDOR_SPECIFIC, bytes(13))
            assert offset % 4 == 0

    def test_overflow_rejected(self):
        config = make_config()
        with pytest.raises(ValueError):
            for _ in range(40):
                config.add_capability(CAP_ID_VENDOR_SPECIFIC, bytes(14))
