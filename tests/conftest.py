"""Shared fixtures.

Booting a testbed (enumeration + driver probe) costs a few tens of
milliseconds of wall time; integration tests that only *read* testbed
state share module-scoped instances, while tests that mutate state
build their own.
"""

from __future__ import annotations

import pytest

from repro.sim.kernel import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=12345)


def run_process(simulator: Simulator, generator, name: str = "test"):
    """Spawn *generator* and run the simulation until it finishes;
    returns the process result."""
    process = simulator.spawn(generator, name=name)
    return simulator.run_until_triggered(process)


@pytest.fixture
def run():
    """The ``run_process`` helper as a fixture."""
    return run_process
