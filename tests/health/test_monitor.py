"""Unit tests for the exactly-once conservation ledger."""

from repro.health.monitor import ConservationMonitor


def _finalize(monitor):
    report = monitor.finalize()
    return report


class TestHealthyLedgers:
    def test_all_delivered(self):
        m = ConservationMonitor("virtio", "open")
        for seq in range(5):
            m.admit(seq)
        for seq in range(5):
            m.deliver(seq)
        report = _finalize(m)
        assert report.conserved and report.verdict == "PASS"
        assert (report.offered, report.admitted, report.delivered,
                report.dropped) == (5, 5, 5, 0)

    def test_pre_admission_drop_is_offered_and_dropped(self):
        # A rate-limited or admission-rejected packet never enters the
        # system but still counts against offered load, with a reason.
        m = ConservationMonitor()
        m.drop(0, "rate_limited")
        m.drop(1, "admission_limit")
        report = _finalize(m)
        assert report.conserved
        assert report.offered == 2 and report.admitted == 0
        assert report.drop_reasons == {"rate_limited": 1, "admission_limit": 1}

    def test_admitted_then_dropped(self):
        m = ConservationMonitor()
        m.admit(0)
        m.drop(0, "retries_exhausted")
        report = _finalize(m)
        assert report.conserved
        assert report.offered == report.delivered + report.dropped == 1

    def test_in_flight_reconciled_against_hop_counters(self):
        # An echo tail-dropped at the socket backlog leaves its packet
        # in flight; the hop counter is the recorded reason.
        m = ConservationMonitor()
        m.admit(0)
        m.admit(1)
        m.deliver(1)
        m.note_hop_drops("socket_rx", 1)
        report = _finalize(m)
        assert report.conserved
        assert report.drop_reasons == {"hop:in_flight_lost": 1}
        assert report.hop_drops == {"socket_rx": 1}
        assert report.offered == report.delivered + report.dropped == 2

    def test_zero_count_hop_note_ignored(self):
        m = ConservationMonitor()
        m.note_hop_drops("socket_rx", 0)
        assert _finalize(m).hop_drops == {}


class TestViolations:
    def test_double_admit(self):
        m = ConservationMonitor()
        m.admit(0)
        m.admit(0)
        assert not _finalize(m).conserved

    def test_ghost_completion(self):
        m = ConservationMonitor()
        m.deliver(7)
        report = _finalize(m)
        assert any("ghost" in v for v in report.violations)

    def test_duplicate_delivery(self):
        m = ConservationMonitor()
        m.admit(0)
        m.deliver(0)
        m.deliver(0)
        report = _finalize(m)
        assert any("twice" in v for v in report.violations)

    def test_drop_after_delivery(self):
        m = ConservationMonitor()
        m.admit(0)
        m.deliver(0)
        m.drop(0, "late")
        assert not _finalize(m).conserved

    def test_silent_loss_without_hop_evidence(self):
        m = ConservationMonitor()
        m.admit(0)
        report = _finalize(m)
        assert report.verdict == "FAIL"
        assert any("lost without a recorded reason" in v
                   for v in report.violations)

    def test_leftovers_beyond_hop_budget(self):
        # Two packets vanish but only one hop drop was counted: one is
        # reconciled, the other is a silent loss.
        m = ConservationMonitor()
        m.admit(0)
        m.admit(1)
        m.note_hop_drops("socket_rx", 1)
        report = _finalize(m)
        assert not report.conserved
        assert report.drop_reasons.get("hop:in_flight_lost") == 1


class TestReportShape:
    def test_as_dict_round_trips_counts(self):
        m = ConservationMonitor("xdma", "open")
        m.admit(0)
        m.deliver(0)
        m.drop(1, "queue_full")
        d = _finalize(m).as_dict()
        assert d["driver"] == "xdma" and d["mode"] == "open"
        assert d["offered"] == d["delivered"] + d["dropped"] == 2
        assert d["verdict"] == "PASS" and d["violations"] == []

    def test_render_mentions_identity_and_reasons(self):
        m = ConservationMonitor("virtio", "open")
        m.drop(0, "queue_full")
        text = _finalize(m).render()
        assert "virtio/open" in text and "queue_full=1" in text
