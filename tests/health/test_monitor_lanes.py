"""Per-lane sub-ledgers on the conservation monitor."""

from __future__ import annotations

from repro.health.monitor import ConservationMonitor


class TestUnlanedRuns:
    def test_no_lanes_key_in_dict(self):
        monitor = ConservationMonitor(driver="virtio", mode="seq")
        monitor.admit(0)
        monitor.deliver(0)
        report = monitor.finalize()
        assert report.conserved
        assert report.lanes == {}
        assert "lanes" not in report.as_dict()


class TestLaneAttribution:
    def test_counters_track_transitions(self):
        monitor = ConservationMonitor(driver="virtio", mode="seq")
        monitor.admit(0, lane="dev0/vf0/q0")
        monitor.admit(1, lane="dev0/vf0/q0")
        monitor.admit(2, lane="dev0/vf1/q1")
        monitor.deliver(0)
        monitor.drop(1, "txq_full")  # lane remembered from admit
        monitor.deliver(2)
        report = monitor.finalize()
        assert report.conserved
        assert report.lanes["dev0/vf0/q0"] == {
            "offered": 2, "admitted": 2, "delivered": 1, "dropped": 1,
        }
        assert report.lanes["dev0/vf1/q1"] == {
            "offered": 1, "admitted": 1, "delivered": 1, "dropped": 0,
        }

    def test_lane_sums_match_totals(self):
        monitor = ConservationMonitor()
        for seq in range(6):
            monitor.admit(seq, lane=f"q{seq % 2}")
        for seq in range(4):
            monitor.deliver(seq)
        monitor.drop(4, "retries_exhausted")
        monitor.drop(5, "retries_exhausted")
        report = monitor.finalize()
        for key, total in (("offered", report.offered),
                           ("delivered", report.delivered),
                           ("dropped", report.dropped)):
            assert sum(c[key] for c in report.lanes.values()) == total

    def test_pre_admission_drop_counts_lane_offered(self):
        monitor = ConservationMonitor()
        monitor.drop(0, "admission_limit", lane="dev0/vf0/q1")
        report = monitor.finalize()
        assert report.conserved
        assert report.lanes["dev0/vf0/q1"] == {
            "offered": 1, "admitted": 0, "delivered": 0, "dropped": 1,
        }

    def test_in_flight_loss_attributed_to_lane(self):
        monitor = ConservationMonitor()
        monitor.admit(0, lane="dev1/vf0/q0")
        monitor.note_hop_drops("socket_rx", 1)  # the hop owns the loss
        report = monitor.finalize()
        assert report.conserved
        assert report.drop_reasons == {"hop:in_flight_lost": 1}
        assert report.lanes["dev1/vf0/q0"]["dropped"] == 1

    def test_lanes_sorted_in_dict(self):
        monitor = ConservationMonitor()
        monitor.admit(0, lane="q1")
        monitor.admit(1, lane="q0")
        monitor.deliver(0)
        monitor.deliver(1)
        out = monitor.finalize().as_dict()
        assert list(out["lanes"]) == ["q0", "q1"]
