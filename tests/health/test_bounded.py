"""Unit tests for the bounded-queue primitive and per-hop bound wiring."""

import pytest

from repro.core.testbed import build_virtio_testbed, build_xdma_testbed
from repro.drivers.virtio_net import TRANSMITQ
from repro.health.bounded import (
    POLICIES,
    POLICY_BLOCK,
    POLICY_DROP,
    POLICY_REJECT,
    BoundedQueue,
    QueueFullError,
    apply_overload_bounds,
)
from repro.workload.admission import OverloadConfig


class TestBoundedQueue:
    def test_fifo_within_capacity(self):
        q = BoundedQueue(capacity=3, name="t")
        for item in "abc":
            assert q.try_push(item)
        assert len(q) == 3 and bool(q)
        assert not q.has_room()
        assert [q.popleft() for _ in range(3)] == ["a", "b", "c"]
        assert not q and q.has_room()
        assert q.dropped_total == 0

    def test_drop_policy_counts_under_reason(self):
        q = BoundedQueue(capacity=1, name="t", policy=POLICY_DROP,
                         drop_reason="overflow")
        assert q.try_push(1)
        assert not q.try_push(2)
        assert not q.try_push(3, reason="custom")
        assert q.drops == {"overflow": 1, "custom": 1}
        assert q.dropped_total == 2
        assert len(q) == 1  # the resident item survived; newest was dropped

    def test_reject_policy_raises_and_counts(self):
        q = BoundedQueue(capacity=1, name="busy", policy=POLICY_REJECT,
                         drop_reason="eagain")
        q.try_push(1)
        with pytest.raises(QueueFullError) as err:
            q.try_push(2)
        assert err.value.queue_name == "busy"
        assert err.value.reason == "eagain"
        assert q.drops == {"eagain": 1}

    def test_block_policy_returns_false_without_counting(self):
        # Blocking belongs to the caller (it owns the simulator events),
        # so a full push under block is a refusal but not yet a drop.
        q = BoundedQueue(capacity=1, policy=POLICY_BLOCK)
        q.try_push(1)
        assert not q.try_push(2)
        assert q.dropped_total == 0

    def test_unbounded_queue_never_refuses(self):
        q = BoundedQueue(capacity=None)
        for i in range(10_000):
            assert q.try_push(i)
        assert q.has_room() and q.dropped_total == 0

    def test_count_drop_outside_push(self):
        q = BoundedQueue(capacity=4, drop_reason="default")
        q.count_drop()
        q.count_drop("other", n=3)
        assert q.drops == {"default": 1, "other": 3}

    @pytest.mark.parametrize("capacity", [0, -1])
    def test_nonpositive_capacity_rejected(self, capacity):
        with pytest.raises(ValueError):
            BoundedQueue(capacity=capacity)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            BoundedQueue(capacity=1, policy="linger")
        assert set(POLICIES) == {POLICY_DROP, POLICY_BLOCK, POLICY_REJECT}


class TestApplyOverloadBounds:
    def test_virtio_bounds_installed(self):
        testbed = build_virtio_testbed(seed=1)
        config = OverloadConfig(socket_rx_limit=32, tx_depth_limit=16)
        apply_overload_bounds(testbed, config)
        assert testbed.socket.rx_queue_limit == 32
        assert testbed.driver.transport.queue(TRANSMITQ).depth_limit == 16
        assert testbed.driver.netdev.can_xmit == testbed.driver.tx_has_room

    def test_xdma_pending_window_installed(self):
        testbed = build_xdma_testbed(seed=1)
        apply_overload_bounds(testbed, OverloadConfig(xdma_max_pending=4))
        assert testbed.driver.max_pending == 4

    def test_none_bounds_leave_limits_untouched(self):
        testbed = build_virtio_testbed(seed=1)
        before = testbed.socket.rx_queue_limit
        apply_overload_bounds(testbed, OverloadConfig())
        assert testbed.socket.rx_queue_limit == before
        assert testbed.driver.transport.queue(TRANSMITQ).depth_limit is None
        xdma = build_xdma_testbed(seed=1)
        apply_overload_bounds(xdma, OverloadConfig())
        assert xdma.driver.max_pending is None

    def test_unknown_testbed_type_rejected(self):
        with pytest.raises(TypeError):
            apply_overload_bounds(object(), OverloadConfig())
