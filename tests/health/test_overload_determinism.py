"""Determinism guards for the overload experiments.

Two properties keep E-O1/E-S1 trustworthy:

* the overload sweep and soak merge bit-identically for any worker
  count (the cell engine's order-deterministic merge);
* a monitored overload cell with *no* overload config is bit-identical
  to the plain open-loop cell of the same seed -- the conservation
  monitor is pure bookkeeping, and an absent config arms nothing (the
  same discipline as the fault subsystem's rate-0 parity).
"""

import json

import numpy as np

from repro.exec.cells import open_sweep_cells, overload_cells
from repro.exec.runner import execute_cell
from repro.health.experiments import run_overload_soak, run_overload_sweep

PACKETS = 60
SEED = 5
RATE = 30_000.0


class TestZeroOverloadParity:
    """An overload cell with overload=None must not perturb a single
    timestamp relative to the plain openload cell it shadows."""

    def _pair(self, driver):
        plain_cell = open_sweep_cells(driver, [RATE], (64,), PACKETS, seed=SEED)[0]
        over_cell = overload_cells(driver, [RATE], (64,), PACKETS, seed=SEED,
                                   overload=None)[0]
        assert plain_cell.seed == over_cell.seed  # deliberate identity reuse
        plain = execute_cell(plain_cell).value
        metrics, health = execute_cell(over_cell).value
        return plain, metrics, health

    def test_virtio_bit_identical(self):
        plain, metrics, health = self._pair("virtio")
        assert np.array_equal(plain.latency_ps, metrics.latency_ps)
        assert plain.as_dict() == metrics.as_dict()
        assert health.conserved

    def test_xdma_bit_identical(self):
        plain, metrics, health = self._pair("xdma")
        assert np.array_equal(plain.latency_ps, metrics.latency_ps)
        assert plain.as_dict() == metrics.as_dict()
        assert health.conserved


class TestSweepJobsParity:
    def test_sweep_byte_identical_across_jobs(self):
        """E-O1 output is byte-identical for jobs=1 and jobs=4."""
        kwargs = dict(packets=PACKETS, seed=3, multipliers=(0.5, 4.0))
        serial, _ = run_overload_sweep(jobs=1, **kwargs)
        parallel, _ = run_overload_sweep(jobs=4, **kwargs)
        assert set(serial) == set(parallel) == {"virtio", "xdma"}
        for driver in serial:
            a = json.dumps(serial[driver].as_dict(), sort_keys=True)
            b = json.dumps(parallel[driver].as_dict(), sort_keys=True)
            assert a == b

    def test_soak_byte_identical_across_jobs(self):
        """E-S1 output is byte-identical for jobs=1 and jobs=2."""
        kwargs = dict(packets=50, seed=3, fault_rate=0.02)
        serial, _ = run_overload_soak(jobs=1, **kwargs)
        parallel, _ = run_overload_soak(jobs=2, **kwargs)
        for driver in ("virtio", "xdma"):
            a = json.dumps(serial[driver].as_dict(), sort_keys=True)
            b = json.dumps(parallel[driver].as_dict(), sort_keys=True)
            assert a == b
