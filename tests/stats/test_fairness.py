"""Jain's fairness index: conventions, bounds, invariances."""

from __future__ import annotations

import pytest

from repro.stats.fairness import jain_index


class TestConventions:
    def test_empty_is_perfectly_fair(self):
        assert jain_index([]) == 1.0

    def test_single_tenant_is_trivially_fair(self):
        assert jain_index([42.0]) == 1.0

    def test_single_starved_tenant_is_fair_by_convention(self):
        assert jain_index([0.0]) == 1.0

    def test_all_zero_is_fair_by_convention(self):
        assert jain_index([0.0, 0.0, 0.0]) == 1.0


class TestValues:
    def test_equal_shares_hit_one(self):
        assert jain_index([3.5] * 8) == pytest.approx(1.0)

    def test_one_tenant_takes_everything(self):
        # J = 1/n when a single tenant monopolizes the allocation.
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_known_midpoint(self):
        # (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
        assert jain_index([1.0, 2.0, 3.0]) == pytest.approx(36.0 / 42.0)


class TestInvariances:
    def test_scale_free(self):
        values = [1.0, 2.0, 5.0, 9.0]
        scaled = [v * 1000.0 for v in values]
        assert jain_index(scaled) == pytest.approx(jain_index(values))

    def test_order_free(self):
        values = [4.0, 1.0, 7.0, 2.0]
        assert jain_index(sorted(values)) == pytest.approx(jain_index(values))

    def test_bounds(self):
        for values in ([1.0, 1.0, 1.0], [9.0, 1.0], [5.0, 0.0, 0.0, 1.0]):
            index = jain_index(values)
            assert 1.0 / len(values) <= index <= 1.0 + 1e-12
