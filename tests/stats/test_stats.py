"""Tests for the statistics helpers."""

import numpy as np
import pytest

from repro.stats import (
    Histogram,
    LatencySummary,
    TABLE1_PERCENTILES,
    percentile_us,
    percentiles_us,
    tail_ratio,
)
from repro.sim.time import us


class TestPercentiles:
    def test_median_of_known_data(self):
        samples = np.array([us(10)] * 50 + [us(20)] * 50)
        assert percentile_us(samples, 50) == pytest.approx(15.0)

    def test_table1_points(self):
        samples = np.arange(1, 1001) * us(1)
        tails = percentiles_us(samples)
        assert set(tails) == set(TABLE1_PERCENTILES)
        assert tails[95.0] == pytest.approx(950.05, rel=1e-3)

    def test_tail_ratio(self):
        samples = np.array([us(10)] * 99 + [us(100)])
        assert tail_ratio(samples, 99) > 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile_us(np.array([], dtype=np.int64), 50)

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            percentile_us(np.array([1]), 101)
        with pytest.raises(ValueError):
            percentile_us(np.array([1]), -0.1)
        with pytest.raises(ValueError):
            percentile_us(np.array([1]), 100.5)

    def test_percentile_bounds_accepted(self):
        samples = np.array([us(v) for v in (10, 20, 30)])
        assert percentile_us(samples, 0) == pytest.approx(10.0)
        assert percentile_us(samples, 100) == pytest.approx(30.0)

    def test_percentiles_us_matches_repeated_calls(self):
        rng = np.random.default_rng(3)
        samples = (rng.lognormal(3.5, 0.4, 2000) * 1e6).astype(np.int64)
        batch = percentiles_us(samples, points=(50.0, 95.0, 99.0, 99.9))
        for q, value in batch.items():
            assert value == pytest.approx(percentile_us(samples, q))

    def test_tail_ratio_zero_median_rejected(self):
        samples = np.array([0] * 99 + [us(100)])
        with pytest.raises(ValueError):
            tail_ratio(samples)

    def test_multidimensional_rejected(self):
        with pytest.raises(ValueError):
            percentile_us(np.ones((2, 2), dtype=np.int64), 50)


class TestLatencySummary:
    def test_fields(self):
        samples = np.array([us(v) for v in (10, 20, 30, 40, 50)])
        summary = LatencySummary.from_ps(samples)
        assert summary.count == 5
        assert summary.mean_us == pytest.approx(30.0)
        assert summary.min_us == pytest.approx(10.0)
        assert summary.max_us == pytest.approx(50.0)
        assert summary.median_us == pytest.approx(30.0)

    def test_std_is_sample_std(self):
        samples = np.array([us(10), us(20)])
        summary = LatencySummary.from_ps(samples)
        assert summary.std_us == pytest.approx(np.std([10, 20], ddof=1))

    def test_single_sample_std_zero(self):
        assert LatencySummary.from_ps(np.array([us(5)])).std_us == 0.0

    def test_as_dict(self):
        d = LatencySummary.from_ps(np.array([us(1), us(2)])).as_dict()
        assert d["count"] == 2


class TestHistogram:
    def test_counts_sum_to_samples(self):
        rng = np.random.default_rng(0)
        samples = (rng.normal(30, 3, 1000) * 1e6).astype(np.int64)
        hist = Histogram.from_ps(samples, bins=20)
        # p99.5 clipping may drop a few samples.
        assert hist.total >= 990

    def test_density_normalized(self):
        samples = np.array([us(10)] * 100)
        hist = Histogram.from_ps(samples, bins=5, range_us=(0, 20))
        assert hist.density().sum() == pytest.approx(1.0)

    def test_render_contains_bars(self):
        samples = np.array([us(10)] * 10 + [us(11)] * 5)
        out = Histogram.from_ps(samples, bins=4, range_us=(9, 12)).render(width=10)
        assert "#" in out

    def test_explicit_range(self):
        samples = np.array([us(v) for v in (1, 2, 3)])
        hist = Histogram.from_ps(samples, bins=3, range_us=(0.5, 3.5))
        assert list(hist.counts) == [1, 1, 1]
