"""Unit tests for the VMM interposer (repro.guest.vmm)."""

import numpy as np
import pytest

from repro.core.latency import run_virtio_payload, run_xdma_payload
from repro.guest import GUEST_MODES, Vmm
from repro.topology.builder import build_from_spec
from repro.topology.spec import GuestSpec, TopologySpec


def _build(driver: str, mode: str, transport: str = "pci", seed: int = 7):
    guest = None if mode == "none" else GuestSpec(mode=mode, transport=transport)
    spec = (
        TopologySpec.single_virtio(guest)
        if driver == "virtio"
        else TopologySpec.single_xdma(guest)
    )
    return build_from_spec(spec, seed=seed)


def _mean_rtt(driver: str, mode: str, transport: str = "pci", packets: int = 60):
    testbed = _build(driver, mode, transport)
    run = run_virtio_payload if driver == "virtio" else run_xdma_payload
    result = run(testbed, 64, packets)
    return float(np.mean(result.rtt_ps)), testbed


class TestVmmConstruction:
    def test_modes_tuple(self):
        assert GUEST_MODES == ("bare", "trapped", "vhost")

    def test_bare_is_not_a_vmm_mode(self):
        testbed = _build("virtio", "trapped")
        with pytest.raises(ValueError):
            Vmm(testbed.kernel, "bare")

    def test_unknown_mode_rejected(self):
        testbed = _build("virtio", "trapped")
        with pytest.raises(ValueError):
            Vmm(testbed.kernel, "paravirt")

    def test_double_attach_rejected(self):
        testbed = _build("virtio", "trapped")
        with pytest.raises(RuntimeError):
            Vmm(testbed.kernel, "trapped").attach()

    def test_bare_spec_attaches_no_vmm(self):
        testbed = _build("virtio", "bare")
        assert testbed.vmm is None
        assert testbed.kernel.vmm is None


class TestTrapAccounting:
    def test_trapped_counts_every_access(self):
        testbed = _build("virtio", "trapped")
        boot_exits = testbed.vmm.vmexits
        assert boot_exits > 0  # the probe's register programming trapped
        run_virtio_payload(testbed, 64, 5)
        assert testbed.vmm.vmexits > boot_exits
        assert testbed.vmm.irq_injects >= 5  # one RX interrupt per packet
        assert testbed.vmm.vhost_doorbells == 0
        assert testbed.vmm.trap_ps > 0

    def test_vhost_fast_path_bypasses_full_traps(self):
        testbed = _build("virtio", "vhost")
        before = testbed.vmm.vmexits
        run_virtio_payload(testbed, 64, 5)
        # Data-path doorbells took the ioeventfd shortcut, not vmexits.
        assert testbed.vmm.vhost_doorbells >= 5
        assert testbed.vmm.vhost_irq_injects >= 5
        assert testbed.vmm.vmexits == before  # no data-path full exits
        assert testbed.vmm.irq_injects == 0

    def test_stats_dict(self):
        testbed = _build("xdma", "vhost")
        stats = testbed.vmm.stats
        for key in (
            "mode", "vmexits", "irq_injects", "vhost_doorbells",
            "vhost_irq_injects", "fast_reads", "trap_us",
        ):
            assert key in stats
        assert stats["mode"] == "vhost"


class TestModeOrdering:
    """Acceptance: trapped > vhost > bare mean RTT, both drivers."""

    @pytest.mark.parametrize("driver", ["virtio", "xdma"])
    def test_rtt_ordering(self, driver):
        bare, _ = _mean_rtt(driver, "bare")
        vhost, _ = _mean_rtt(driver, "vhost")
        trapped, _ = _mean_rtt(driver, "trapped")
        assert trapped > vhost > bare

    def test_mmio_ordering(self):
        bare, _ = _mean_rtt("virtio", "bare", transport="mmio")
        vhost, _ = _mean_rtt("virtio", "vhost", transport="mmio")
        trapped, _ = _mean_rtt("virtio", "trapped", transport="mmio")
        assert trapped > vhost > bare


class TestBareByteIdentity:
    """A GuestSpec(mode='bare') machine is the legacy machine."""

    @pytest.mark.parametrize("driver", ["virtio", "xdma"])
    def test_bare_equals_no_guest(self, driver):
        with_spec = _build(driver, "bare")
        without = _build(driver, "none")
        run = run_virtio_payload if driver == "virtio" else run_xdma_payload
        a = run(with_spec, 64, 10)
        b = run(without, 64, 10)
        assert (a.rtt_ps == b.rtt_ps).all()
        assert (a.hw_ps == b.hw_ps).all()
