"""Tests for the E-V1 guest-mode sweep (repro.guest.experiments)."""

import json

import pytest

from repro.exec.cells import derive_cell_seed, guest_cells, latency_cells
from repro.exec.runner import run_cells
from repro.guest.experiments import run_guest_sweep
from repro.topology.spec import (
    DeviceSpec,
    FunctionSpec,
    GuestSpec,
    TopologyError,
    TopologySpec,
)

FAST = dict(payload_sizes=(64,), packets=10, seed=7)


class TestGuestSpecValidation:
    def test_defaults_are_bare_pci(self):
        guest = GuestSpec()
        assert guest.mode == "bare"
        assert guest.transport == "pci"

    def test_unknown_mode_rejected(self):
        with pytest.raises(TopologyError, match="guest mode"):
            GuestSpec(mode="emulated")

    def test_unknown_transport_rejected(self):
        with pytest.raises(TopologyError, match="transport"):
            GuestSpec(transport="ccw")

    def test_mmio_requires_virtio(self):
        with pytest.raises(TopologyError, match="virtio-mmio"):
            TopologySpec.single_xdma(GuestSpec(transport="mmio"))

    def test_guest_needs_single_legacy_machine(self):
        with pytest.raises(TopologyError, match="single-endpoint"):
            TopologySpec(
                devices=(
                    DeviceSpec(functions=(FunctionSpec(queue_pairs=2),)),
                ),
                guest=GuestSpec(),
            )

    def test_guest_rejects_console(self):
        with pytest.raises(TopologyError, match="two drivers"):
            TopologySpec(
                devices=(DeviceSpec(kind="virtio-console"),),
                guest=GuestSpec(),
            )


class TestGuestCells:
    def test_construction_order_is_driver_mode_payload(self):
        cells = guest_cells((64, 1024), packets=5, seed=0, modes=("bare", "vhost"))
        labels = [c.label for c in cells]
        assert labels == [
            "virtio/bare/64B", "virtio/bare/1024B",
            "virtio/vhost/64B", "virtio/vhost/1024B",
            "xdma/bare/64B", "xdma/bare/1024B",
            "xdma/vhost/64B", "xdma/vhost/1024B",
        ]

    def test_seed_identity_matches_latency_cells(self):
        # The bare column must boot the same machine as the paper's
        # latency cells: same (kind "latency", driver, payload) stream.
        guest = guest_cells((64,), packets=5, seed=3, modes=("bare",))
        plain = latency_cells((64,), packets=5, seed=3)
        assert guest[0].seed == plain[0].seed
        assert guest[0].seed == derive_cell_seed(3, "latency", "virtio", 64)

    def test_mode_does_not_change_seed(self):
        by_mode = {
            cell.guest_mode: cell.seed
            for cell in guest_cells((64,), packets=5, seed=3, drivers=("virtio",))
        }
        assert len(set(by_mode.values())) == 1


class TestRunGuestSweep:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown guest mode"):
            run_guest_sweep(**FAST, modes=("paravirt",))

    def test_mmio_drops_xdma(self):
        report, _ = run_guest_sweep(**FAST, modes=("bare",), transport="mmio")
        assert report.drivers == ("virtio",)

    def test_mmio_without_virtio_rejected(self):
        with pytest.raises(ValueError, match="virtio driver"):
            run_guest_sweep(**FAST, transport="mmio", drivers=("xdma",))

    def test_jobs_parity(self):
        serial, _ = run_guest_sweep(**FAST, jobs=1)
        parallel, _ = run_guest_sweep(**FAST, jobs=2)
        assert json.dumps(serial.as_dict()) == json.dumps(parallel.as_dict())

    def test_bare_column_matches_plain_latency_cells(self):
        # Acceptance: mode=bare rows are byte-identical to the pre-PR
        # artifacts (same cells, same machines, same numbers).
        report, _ = run_guest_sweep(**FAST, modes=("bare",))
        plain = {
            (o.cell.driver, o.cell.payload): o.value
            for o in run_cells(latency_cells((64,), packets=10, seed=7), jobs=1)
        }
        for driver in ("virtio", "xdma"):
            guest_result = report.column(driver, "bare").sweep[64]
            plain_result = plain[(driver, 64)]
            assert (guest_result.rtt_ps == plain_result.rtt_ps).all()
            assert (guest_result.hw_ps == plain_result.hw_ps).all()

    def test_trap_column(self):
        report, _ = run_guest_sweep(**FAST, modes=("bare", "trapped"))
        bare = report.column("virtio", "bare")
        trapped = report.column("virtio", "trapped")
        assert bare.sweep[64].trap_ps is None
        assert bare.breakdown_rows()[0]["trap_mean_us"] == 0.0
        assert (trapped.sweep[64].trap_ps > 0).all()
        assert trapped.breakdown_rows()[0]["trap_mean_us"] > 0.0
        assert trapped.vmm_stats[64]["vmexits"] > 0
        assert bare.vmm_stats == {}

    def test_as_dict_shape(self):
        report, _ = run_guest_sweep(**FAST, modes=("vhost",), drivers=("virtio",))
        doc = report.as_dict()
        assert doc["experiment"] == "E-V1"
        row = doc["results"]["virtio"]["vhost"]["64"]
        assert {"rtt_mean_us", "p99_us", "hw_mean_us", "trap_mean_us", "vmm"} <= set(row)
        assert row["vmm"]["vhost_doorbells"] >= 10

    def test_render_has_one_block_per_column(self):
        report, _ = run_guest_sweep(**FAST, modes=("bare", "vhost"))
        text = report.render()
        for block in ("virtio / bare", "virtio / vhost",
                      "xdma / bare", "xdma / vhost"):
            assert f"-- {block} --" in text
