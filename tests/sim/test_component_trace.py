"""Tests for the component hierarchy and tracer."""

import pytest

from repro.sim.component import Component
from repro.sim.trace import Tracer


class TestComponent:
    def test_path_is_hierarchical(self, sim):
        root = Component(sim, "fpga")
        child = Component(sim, "xdma", parent=root)
        leaf = Component(sim, "h2c0", parent=child)
        assert leaf.path == "fpga.xdma.h2c0"

    def test_children_registered(self, sim):
        root = Component(sim, "root")
        child = Component(sim, "child", parent=root)
        assert child in root.children

    def test_find_descendant(self, sim):
        root = Component(sim, "root")
        child = Component(sim, "a", parent=root)
        Component(sim, "b", parent=child)
        assert root.find("a.b").path == "root.a.b"
        with pytest.raises(KeyError):
            root.find("a.missing")

    def test_tracer_inherited_from_parent(self, sim):
        tracer = Tracer(enabled=True)
        root = Component(sim, "root", tracer=tracer)
        child = Component(sim, "child", parent=root)
        assert child.tracer is tracer

    def test_rng_scoped_to_path(self, sim):
        a = Component(sim, "a")
        b = Component(sim, "b")
        assert a.rng().random() != b.rng().random()

    def test_empty_name_rejected(self, sim):
        with pytest.raises(ValueError):
            Component(sim, "")


class TestTracer:
    def test_disabled_tracer_drops(self, sim):
        tracer = Tracer(enabled=False)
        comp = Component(sim, "c", tracer=tracer)
        comp.trace("event", x=1)
        assert len(tracer) == 0

    def test_enabled_tracer_records(self, sim):
        tracer = Tracer(enabled=True)
        comp = Component(sim, "c", tracer=tracer)
        comp.trace("event", x=1)
        assert len(tracer) == 1
        record = tracer.records[0]
        assert record.source == "c"
        assert record.kind == "event"
        assert record.detail == {"x": 1}

    def test_query_by_source_prefix(self, sim):
        tracer = Tracer(enabled=True)
        root = Component(sim, "fpga", tracer=tracer)
        child = Component(sim, "xdma", parent=root)
        child.trace("a")
        root.trace("b")
        assert tracer.count(source="fpga.xdma") == 1
        assert tracer.count(source="fpga") == 2

    def test_query_by_kind(self, sim):
        tracer = Tracer(enabled=True)
        comp = Component(sim, "c", tracer=tracer)
        comp.trace("x")
        comp.trace("y")
        comp.trace("x")
        assert tracer.count(kind="x") == 2

    def test_capacity_cap(self, sim):
        tracer = Tracer(enabled=True, capacity=2)
        comp = Component(sim, "c", tracer=tracer)
        for _ in range(5):
            comp.trace("e")
        assert len(tracer) == 2

    def test_filters(self, sim):
        tracer = Tracer(enabled=True)
        tracer.add_filter(lambda r: r.kind != "noise")
        comp = Component(sim, "c", tracer=tracer)
        comp.trace("noise")
        comp.trace("signal")
        assert [r.kind for r in tracer] == ["signal"]

    def test_records_carry_time(self, sim):
        tracer = Tracer(enabled=True)
        comp = Component(sim, "c", tracer=tracer)
        sim.schedule(1000, comp.trace, "later")
        sim.run()
        assert tracer.records[0].time == 1000

    def test_clear(self, sim):
        tracer = Tracer(enabled=True)
        Component(sim, "c", tracer=tracer).trace("e")
        tracer.clear()
        assert len(tracer) == 0
