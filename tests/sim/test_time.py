"""Tests for the simulation time base."""

import pytest

from repro.sim.time import (
    FPGA_FABRIC_CLOCK,
    HOST_TIMER_RESOLUTION,
    HW_COUNTER_RESOLUTION,
    Frequency,
    ms,
    ns,
    ps,
    seconds,
    to_ms,
    to_ns,
    to_seconds,
    to_us,
    us,
)


class TestConversions:
    def test_nanoseconds_are_thousand_picoseconds(self):
        assert ns(1) == 1_000

    def test_microseconds(self):
        assert us(1) == 1_000_000

    def test_milliseconds(self):
        assert ms(2) == 2_000_000_000

    def test_seconds(self):
        assert seconds(1) == 10**12

    def test_fractional_values_round(self):
        assert ns(1.5) == 1_500
        assert ps(0.4) == 0
        assert ps(0.6) == 1

    def test_roundtrip_ns(self):
        assert to_ns(ns(123.0)) == pytest.approx(123.0)

    def test_roundtrip_us(self):
        assert to_us(us(7.25)) == pytest.approx(7.25)

    def test_roundtrip_ms_seconds(self):
        assert to_ms(ms(3)) == pytest.approx(3.0)
        assert to_seconds(seconds(2)) == pytest.approx(2.0)


class TestFrequency:
    def test_period_of_125mhz_is_8ns(self):
        assert Frequency.mhz(125).period_ps == ns(8)

    def test_cycles_to_time(self):
        assert Frequency.mhz(125).cycles_to_time(10) == ns(80)

    def test_time_to_cycles_floors(self):
        clock = Frequency.mhz(125)
        assert clock.time_to_cycles(ns(8)) == 1
        assert clock.time_to_cycles(ns(15)) == 1
        assert clock.time_to_cycles(ns(16)) == 2
        assert clock.time_to_cycles(ns(7)) == 0

    def test_ghz_constructor(self):
        assert Frequency.ghz(1).period_ps == 1_000

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            Frequency(0)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            Frequency.mhz(125).cycles_to_time(-1)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Frequency.mhz(125).time_to_cycles(-1)


class TestPaperConstants:
    def test_fabric_clock_is_125mhz(self):
        """Section III-B3: designs run at 125 MHz."""
        assert FPGA_FABRIC_CLOCK.hz == 125_000_000

    def test_hw_counter_resolution_is_8ns(self):
        """Section III-B3: hardware counters resolve 8 ns."""
        assert HW_COUNTER_RESOLUTION == ns(8)

    def test_host_timer_resolution_is_1ns(self):
        """Section III-B3: CLOCK_MONOTONIC resolves 1 ns."""
        assert HOST_TIMER_RESOLUTION == ns(1)
