"""Directed tests for the calendar-queue backend and kernel integration.

The property suite (``tests/property/test_scheduler_properties.py``)
establishes order-equivalence with the reference heap; these tests pin
the structural edge cases -- far-heap overflow and migration, the
behind-cursor rewind, empty-queue restarts -- and the kernel-level
behaviours that ride on them (``until`` clamping, ``schedule_many``,
backend selection, unified failure surfacing).
"""

import pytest

from repro.sim.calendar import CalendarQueue, HeapQueue, make_queue
from repro.sim.kernel import SCHEDULER_ENV, SimulationError, Simulator
from repro.sim.process import ProcessError
from repro.sim.time import ns


def _drain(queue):
    order = []
    while True:
        entry = queue.pop()
        if entry is None:
            return order
        order.append(entry[:2])


class TestCalendarEdges:
    def test_make_queue_backends(self):
        assert isinstance(make_queue("calendar"), CalendarQueue)
        assert isinstance(make_queue("heap"), HeapQueue)
        with pytest.raises(ValueError):
            make_queue("fibonacci")

    def test_far_future_overflows_and_migrates(self):
        q = CalendarQueue()
        window_span = q.stats()["nbuckets"] * q.stats()["bucket_width_ps"]
        near = (10, 0, None, ())
        far = (window_span * 3, 1, None, ())
        q.push(near)
        q.push(far)
        assert q.stats()["far_pending"] == 1
        assert _drain(q) == [(10, 0), (window_span * 3, 1)]
        assert q.stats()["migrated"] >= 1

    def test_empty_queue_restart_resets_cursor(self):
        q = CalendarQueue()
        q.push((1 << 40, 0, None, ()))
        assert q.pop()[:2] == (1 << 40, 0)
        assert q.pop() is None
        # A much earlier push after a full drain must not be treated as
        # behind the (stale) cursor.
        q.push((5, 1, None, ()))
        assert _drain(q) == [(5, 1)]

    def test_behind_cursor_push_rewinds(self):
        q = CalendarQueue()
        width = q.stats()["bucket_width_ps"]
        q.push((width * 10, 0, None, ()))
        q.push((width * 12, 1, None, ()))
        assert q.pop()[:2] == (width * 10, 0)
        # The cursor is now at day 10; push an earlier day.
        q.push((width * 2, 2, None, ()))
        assert _drain(q) == [(width * 2, 2), (width * 12, 1)]

    def test_len_tracks_pushes_and_pops(self):
        q = CalendarQueue()
        for i in range(7):
            q.push((i, i, None, ()))
        assert len(q) == 7
        q.pop()
        assert len(q) == 6
        q.pushback((0, 0, None, ()))
        assert len(q) == 7


class TestKernelIntegration:
    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "heap")
        assert Simulator()._q.name == "heap"
        monkeypatch.delenv(SCHEDULER_ENV)
        assert Simulator()._q.name == "calendar"
        with pytest.raises(SimulationError):
            Simulator(scheduler="fibonacci")

    def test_until_clamp_then_earlier_schedule(self):
        """After an ``until`` clamp advanced now past the pushed-back
        head, scheduling before that head must still run in time order
        (exercises the rewind path through the kernel)."""
        sim = Simulator()
        order = []
        sim.schedule(ns(100), order.append, "late")
        sim.run(until=ns(10))
        assert sim.now == ns(10)
        sim.schedule(ns(5), order.append, "early")
        sim.run()
        assert order == ["early", "late"]

    def test_schedule_many_equals_schedule_loop(self):
        a, b = Simulator(), Simulator()
        got_a, got_b = [], []
        for i in range(5):
            a.schedule(ns(10), got_a.append, i)
        b.schedule_many(ns(10), got_b.append, [(i,) for i in range(5)])
        assert a._seq == b._seq
        a.run()
        b.run()
        assert got_a == got_b == [0, 1, 2, 3, 4]

    def test_schedule_many_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_many(-1, print, [()])

    @pytest.mark.parametrize("backend", ["calendar", "heap"])
    def test_identical_simulation_across_backends(self, backend):
        """A small mixed workload (processes, timeouts, same-time ties)
        must produce the identical trace under either backend."""
        sim = Simulator(seed=7, scheduler=backend)
        trace = []

        def worker(tag, period):
            for _ in range(20):
                yield period
                trace.append((sim.now, tag))

        sim.spawn(worker("a", ns(3)))
        sim.spawn(worker("b", ns(3)))
        sim.spawn(worker("c", ns(7)))
        sim.run()
        assert len(trace) == 60
        if not hasattr(TestKernelIntegration, "_reference"):
            TestKernelIntegration._reference = trace
        else:
            assert trace == TestKernelIntegration._reference


class TestUnifiedFailureSurfacing:
    """``run`` and ``run_until_triggered`` must surface process
    failures at identical points: a pre-recorded failure raises before
    any event executes, a mid-run failure right after its event."""

    @staticmethod
    def _failing_sim():
        sim = Simulator()

        def bad():
            yield ns(1)
            raise ValueError("boom")

        sim.spawn(bad(), name="badproc")
        return sim

    def test_run_raises_promptly(self):
        sim = self._failing_sim()
        ran_after = []
        sim.schedule(ns(2), ran_after.append, True)
        with pytest.raises(ProcessError, match="badproc"):
            sim.run()
        assert not ran_after

    def test_run_until_triggered_raises_promptly(self):
        sim = self._failing_sim()
        ran_after = []
        sim.schedule(ns(2), ran_after.append, True)
        with pytest.raises(ProcessError, match="badproc"):
            sim.run_until_triggered(sim.event())
        assert not ran_after

    def test_pending_failure_raises_before_events_in_both_loops(self):
        for runner in ("run", "run_until_triggered"):
            sim = self._failing_sim()
            with pytest.raises(ProcessError):
                sim.run()
            # Failure consumed; record another and call the other loop.
            sim._process_failed(ProcessError("stale", RuntimeError("x")))
            ran = []
            sim.schedule(ns(5), ran.append, True)
            with pytest.raises(ProcessError, match="stale"):
                if runner == "run":
                    sim.run()
                else:
                    sim.run_until_triggered(sim.event())
            assert not ran

    def test_scheduler_stats_exposed(self):
        sim = Simulator()
        sim.schedule(ns(1), lambda: None)
        sim.run()
        stats = sim.scheduler_stats
        assert stats["scheduler"] == "calendar"
        assert stats["schedules"] == 1
        assert stats["executed"] == 1
        assert stats["peak_depth"] >= 1
