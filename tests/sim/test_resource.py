"""Tests for channels, resources and mutexes."""

import pytest

from repro.sim.resource import Channel, ChannelClosed, Mutex, Resource
from repro.sim.time import ns


class TestChannel:
    def test_put_then_get(self, sim, run):
        ch = Channel(sim, name="c")

        def body():
            yield ch.put("item")
            value = yield ch.get()
            return value

        assert run(sim, body()) == "item"

    def test_get_blocks_until_put(self, sim):
        ch = Channel(sim)
        got = []

        def consumer():
            value = yield ch.get()
            got.append((sim.now, value))

        def producer():
            yield ns(100)
            yield ch.put("late")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert got == [(ns(100), "late")]

    def test_fifo_order(self, sim):
        ch = Channel(sim)
        got = []

        def consumer():
            for _ in range(3):
                got.append((yield ch.get()))

        def producer():
            for i in range(3):
                yield ch.put(i)

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert got == [0, 1, 2]

    def test_capacity_blocks_putter(self, sim):
        ch = Channel(sim, capacity=1)
        times = []

        def producer():
            yield ch.put("a")
            times.append(sim.now)
            yield ch.put("b")  # blocks until consumer frees a slot
            times.append(sim.now)

        def consumer():
            yield ns(500)
            yield ch.get()

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert times[1] >= ns(500)

    def test_try_put_respects_capacity(self, sim):
        ch = Channel(sim, capacity=1)
        assert ch.try_put(1)
        assert not ch.try_put(2)

    def test_try_get(self, sim):
        ch = Channel(sim)
        ok, _ = ch.try_get()
        assert not ok
        ch.try_put("x")
        ok, value = ch.try_get()
        assert ok and value == "x"

    def test_closed_channel_rejects_put(self, sim):
        ch = Channel(sim)
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.put(1)

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Channel(sim, capacity=0)


class TestResource:
    def test_grants_up_to_slots(self, sim):
        res = Resource(sim, slots=2)
        grants = []

        def worker(i):
            yield res.acquire()
            grants.append((i, sim.now))
            yield ns(100)
            res.release()

        for i in range(3):
            sim.spawn(worker(i))
        sim.run()
        # Two immediate grants, third waits for a release.
        assert grants[0][1] == 0 and grants[1][1] == 0
        assert grants[2][1] == ns(100)

    def test_fifo_grant_order(self, sim):
        res = Mutex(sim)
        order = []

        def worker(i):
            yield res.acquire()
            order.append(i)
            yield ns(10)
            res.release()

        for i in range(4):
            sim.spawn(worker(i))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_release_idle_rejected(self, sim):
        with pytest.raises(RuntimeError):
            Resource(sim).release()

    def test_using_hold(self, sim, run):
        res = Resource(sim)

        def body():
            yield from res.using().hold(ns(50))
            return sim.now

        assert run(sim, body()) == ns(50)
        assert res.in_use == 0

    def test_invalid_slots(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, slots=0)
