"""Tests for events and composites."""

import pytest

from repro.sim.event import AllOf, AnyOf, Event, EventError


class TestEvent:
    def test_starts_pending(self):
        ev = Event()
        assert not ev.triggered
        assert ev.value is None

    def test_trigger_delivers_value(self):
        ev = Event()
        ev.trigger(42)
        assert ev.triggered
        assert ev.value == 42

    def test_double_trigger_rejected(self):
        ev = Event()
        ev.trigger()
        with pytest.raises(EventError):
            ev.trigger()

    def test_callback_on_trigger(self):
        ev = Event()
        seen = []
        ev.on_trigger(lambda e: seen.append(e.value))
        ev.trigger("x")
        assert seen == ["x"]

    def test_callback_after_trigger_runs_immediately(self):
        ev = Event()
        ev.trigger(7)
        seen = []
        ev.on_trigger(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_callbacks_run_in_registration_order(self):
        ev = Event()
        order = []
        ev.on_trigger(lambda e: order.append(1))
        ev.on_trigger(lambda e: order.append(2))
        ev.trigger()
        assert order == [1, 2]

    def test_remove_callback(self):
        ev = Event()
        seen = []
        cb = lambda e: seen.append(1)  # noqa: E731
        ev.on_trigger(cb)
        ev.remove_callback(cb)
        ev.trigger()
        assert seen == []

    def test_remove_absent_callback_is_noop(self):
        Event().remove_callback(lambda e: None)


class TestAnyOf:
    def test_fires_on_first_child(self):
        a, b = Event(), Event()
        any_ev = AnyOf([a, b])
        b.trigger("bee")
        assert any_ev.triggered
        assert any_ev.value == (1, "bee")

    def test_later_children_ignored(self):
        a, b = Event(), Event()
        any_ev = AnyOf([a, b])
        a.trigger("ay")
        b.trigger("bee")
        assert any_ev.value == (0, "ay")

    def test_pretriggered_child_fires_composite(self):
        a = Event()
        a.trigger(1)
        assert AnyOf([a, Event()]).triggered

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AnyOf([])


class TestAllOf:
    def test_waits_for_all(self):
        a, b = Event(), Event()
        all_ev = AllOf([a, b])
        a.trigger(1)
        assert not all_ev.triggered
        b.trigger(2)
        assert all_ev.triggered
        assert all_ev.value == [1, 2]

    def test_value_order_matches_construction(self):
        a, b = Event(), Event()
        all_ev = AllOf([a, b])
        b.trigger("second")
        a.trigger("first")
        assert all_ev.value == ["first", "second"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AllOf([])
