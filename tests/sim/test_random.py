"""Tests for latency distributions."""

import numpy as np
import pytest

from repro.sim.kernel import Simulator
from repro.sim.random import LatencyModel, fixed, jittered, quantize
from repro.sim.time import ns, us


@pytest.fixture
def rng():
    return Simulator(seed=77).rng("test")


class TestLatencyModel:
    def test_fixed_is_deterministic(self, rng):
        model = fixed(ns(100))
        assert model.deterministic
        assert all(model.sample(rng) == ns(100) for _ in range(10))

    def test_jitter_keeps_median_near_nominal(self, rng):
        model = jittered(us(10), sigma=0.1)
        samples = model.sample_many(rng, 20_000)
        median = np.median(samples)
        assert abs(median - us(10)) / us(10) < 0.02

    def test_tail_raises_high_percentiles(self, rng):
        base = jittered(us(10), sigma=0.05)
        tailed = jittered(us(10), sigma=0.05, tail_prob=0.05, tail_scale_ps=us(50))
        p999_base = np.percentile(base.sample_many(rng, 20_000), 99.9)
        p999_tail = np.percentile(tailed.sample_many(rng, 20_000), 99.9)
        assert p999_tail > p999_base * 2

    def test_sample_many_matches_distribution_of_sample(self, rng):
        model = jittered(us(5), sigma=0.2)
        many = model.sample_many(rng, 5_000)
        loop = np.array([model.sample(rng) for _ in range(5_000)])
        # Same distribution family: compare means within a few percent.
        assert abs(many.mean() - loop.mean()) / loop.mean() < 0.05

    def test_samples_never_negative(self, rng):
        model = jittered(ns(1), sigma=3.0)
        assert (model.sample_many(rng, 1_000) >= 0).all()

    def test_scaled(self):
        model = jittered(us(10), sigma=0.1, tail_prob=0.01, tail_scale_ps=us(20))
        scaled = model.scaled(2.0)
        assert scaled.nominal_ps == us(20)
        assert scaled.tail_scale_ps == us(40)
        assert scaled.jitter_sigma == model.jitter_sigma

    def test_without_noise(self):
        model = jittered(us(10), sigma=0.5, tail_prob=0.5, tail_scale_ps=us(99))
        clean = model.without_noise()
        assert clean.deterministic
        assert clean.nominal_ps == us(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(nominal_ps=-1)
        with pytest.raises(ValueError):
            LatencyModel(nominal_ps=1, jitter_sigma=-0.1)
        with pytest.raises(ValueError):
            LatencyModel(nominal_ps=1, tail_prob=1.5)
        with pytest.raises(ValueError):
            LatencyModel(nominal_ps=1, tail_alpha=0)

    def test_sample_many_negative_n(self, rng):
        with pytest.raises(ValueError):
            fixed(1).sample_many(rng, -1)


class TestQuantize:
    def test_floors_to_resolution(self):
        assert quantize(ns(15), ns(8)) == ns(8)
        assert quantize(ns(16), ns(8)) == ns(16)
        assert quantize(ns(7), ns(8)) == 0

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            quantize(100, 0)
