"""Tests for the event loop and process scheduling."""

import numpy as np
import pytest

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.process import ProcessError
from repro.sim.time import ns


class TestScheduling:
    def test_callbacks_run_in_time_order(self, sim):
        order = []
        sim.schedule(ns(30), order.append, 3)
        sim.schedule(ns(10), order.append, 1)
        sim.schedule(ns(20), order.append, 2)
        sim.run()
        assert order == [1, 2, 3]

    def test_same_time_runs_in_schedule_order(self, sim):
        order = []
        for i in range(5):
            sim.schedule(ns(10), order.append, i)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances(self, sim):
        stamps = []
        sim.schedule(ns(5), lambda: stamps.append(sim.now))
        sim.schedule(ns(9), lambda: stamps.append(sim.now))
        sim.run()
        assert stamps == [ns(5), ns(9)]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_absolute(self, sim):
        hit = []
        sim.schedule(ns(3), lambda: sim.schedule_at(ns(10), lambda: hit.append(sim.now)))
        sim.run()
        assert hit == [ns(10)]

    def test_run_until_stops_at_boundary(self, sim):
        hit = []
        sim.schedule(ns(5), hit.append, "early")
        sim.schedule(ns(50), hit.append, "late")
        sim.run(until=ns(10))
        assert hit == ["early"]
        assert sim.now == ns(10)
        sim.run()
        assert hit == ["early", "late"]

    def test_max_events_guard(self, sim):
        def rearm():
            sim.schedule(1, rearm)

        sim.schedule(0, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_max_events_stops_at_exactly_the_budget(self, sim):
        """Regression: the guard used to fire only after max_events + 1
        callbacks; it must stop at exactly max_events."""
        executed = []

        def rearm():
            executed.append(sim.now)
            sim.schedule(1, rearm)

        sim.schedule(0, rearm)
        with pytest.raises(SimulationError, match="max_events=5"):
            sim.run(max_events=5)
        assert len(executed) == 5
        assert sim.events_executed == 5

    def test_max_events_not_raised_when_queue_drains_at_budget(self, sim):
        hits = []
        for i in range(5):
            sim.schedule(ns(i), hits.append, i)
        sim.run(max_events=5)
        assert hits == [0, 1, 2, 3, 4]

    def test_schedule_at_past_reports_absolute_times(self, sim):
        sim.schedule(ns(10), lambda: None)
        sim.run()
        assert sim.now == ns(10)
        with pytest.raises(SimulationError) as excinfo:
            sim.schedule_at(ns(3), lambda: None)
        message = str(excinfo.value)
        assert f"requested t={ns(3)}ps" in message
        assert f"now t={ns(10)}ps" in message


class TestProcesses:
    def test_process_yields_delay(self, sim):
        marks = []

        def body():
            marks.append(sim.now)
            yield ns(100)
            marks.append(sim.now)

        sim.spawn(body())
        sim.run()
        assert marks == [0, ns(100)]

    def test_process_returns_value(self, sim, run):
        def body():
            yield ns(1)
            return "done"

        assert run(sim, body()) == "done"

    def test_process_waits_event(self, sim):
        result = []

        def waiter(ev):
            value = yield ev
            result.append(value)

        ev = sim.event()
        sim.spawn(waiter(ev))
        sim.schedule(ns(50), ev.trigger, "ping")
        sim.run()
        assert result == ["ping"]

    def test_join_returns_child_result(self, sim, run):
        def child():
            yield ns(10)
            return 99

        def parent():
            value = yield sim.spawn(child())
            return value

        assert run(sim, parent()) == 99

    def test_exception_propagates_with_name(self, sim):
        def bad():
            yield ns(1)
            raise ValueError("boom")

        sim.spawn(bad(), name="badproc")
        with pytest.raises(ProcessError, match="badproc"):
            sim.run()

    def test_bad_yield_type_fails(self, sim):
        def bad():
            yield "not a wait target"

        sim.spawn(bad())
        with pytest.raises(ProcessError):
            sim.run()

    def test_timeout_event(self, sim, run):
        def body():
            value = yield sim.timeout(ns(25), value="tick")
            return (sim.now, value)

        assert run(sim, body()) == (ns(25), "tick")

    def test_run_until_triggered_detects_deadlock(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_triggered(ev)


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = Simulator(seed=99).rng("x").random(5)
        b = Simulator(seed=99).rng("x").random(5)
        assert np.allclose(a, b)

    def test_different_streams_independent(self):
        sim = Simulator(seed=99)
        a = sim.rng("a").random(5)
        b = sim.rng("b").random(5)
        assert not np.allclose(a, b)

    def test_stream_unaffected_by_other_stream_usage(self):
        sim1 = Simulator(seed=5)
        sim1.rng("noise").random(1000)
        a = sim1.rng("target").random(3)
        sim2 = Simulator(seed=5)
        b = sim2.rng("target").random(3)
        assert np.allclose(a, b)

    def test_stream_is_cached(self):
        sim = Simulator(seed=1)
        assert sim.rng("s") is sim.rng("s")
