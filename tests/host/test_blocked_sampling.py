"""Blocked (vectorized) cost sampling must be draw-for-draw identical
to the legacy scalar path.

``HostKernel.cpu`` consumes pre-drawn NumPy blocks; NumPy generators
produce the same stream whether drawn one value at a time or in blocks,
so every mode ("fast", "mixed") must reproduce the scalar sequence
bit-exactly.  Models with per-segment tails interleave normals and
uniforms on one stream, which blocks cannot replay -- those must be
classified "scalar".
"""

from dataclasses import replace

import pytest

from repro.host.costs import default_cost_model
from repro.host.kernel import SCALAR_RNG_ENV, HostKernel
from repro.pcie.root_complex import RootComplex
from repro.sim.kernel import Simulator


def _kernel(seed, costs=None, scalar=False, monkeypatch=None):
    if scalar:
        monkeypatch.setenv(SCALAR_RNG_ENV, "1")
    else:
        monkeypatch.delenv(SCALAR_RNG_ENV, raising=False)
    sim = Simulator(seed=seed)
    return HostKernel(sim, RootComplex(sim), costs=costs)


#: A segment sequence with repeats and the zero-extra/with-extra split.
_CALLS = [
    ("syscall_entry", 0), ("udp_tx", 0), ("copy_touch", 4480),
    ("irq_entry", 0), ("udp_rx", 0), ("copy_touch", 0),
    ("syscall_exit", 120),
] * 300


class TestBlockedEqualsScalar:
    def test_fast_mode_classification(self, monkeypatch):
        kernel = _kernel(3, monkeypatch=monkeypatch)
        assert kernel._vector_mode == "fast"

    def test_fast_mode_sequence_identical(self, monkeypatch):
        blocked = _kernel(17, monkeypatch=monkeypatch)
        scalar = _kernel(17, scalar=True, monkeypatch=monkeypatch)
        assert scalar._vector_mode == "scalar"
        a = [blocked.cpu(seg, extra_ps=extra) for seg, extra in _CALLS]
        b = [scalar.cpu(seg, extra_ps=extra) for seg, extra in _CALLS]
        assert a == b

    def test_mixed_mode_sequence_identical(self, monkeypatch):
        model = default_cost_model()
        model.segments["udp_tx"] = replace(
            model.segments["udp_tx"], jitter_sigma=0.25
        )
        blocked = _kernel(29, costs=model, monkeypatch=monkeypatch)
        assert blocked._vector_mode == "mixed"
        scalar = _kernel(29, costs=model, scalar=True, monkeypatch=monkeypatch)
        a = [blocked.cpu(seg, extra_ps=extra) for seg, extra in _CALLS]
        b = [scalar.cpu(seg, extra_ps=extra) for seg, extra in _CALLS]
        assert a == b

    def test_tailed_model_falls_back_to_scalar(self, monkeypatch):
        model = default_cost_model()
        model.segments["udp_tx"] = replace(
            model.segments["udp_tx"], tail_prob=0.01
        )
        kernel = _kernel(5, costs=model, monkeypatch=monkeypatch)
        assert kernel._vector_mode == "scalar"

    def test_noiseless_model_stays_fast_and_deterministic(self, monkeypatch):
        model = default_cost_model().without_noise()
        kernel = _kernel(11, costs=model, monkeypatch=monkeypatch)
        assert kernel._vector_mode == "fast"
        values = {kernel.cpu("udp_tx") for _ in range(50)}
        assert values == {model.segments["udp_tx"].nominal_ps}

    def test_mid_run_model_swap_keeps_sequence(self, monkeypatch):
        """Swapping cost models mid-run (fault/ablation paths do this)
        must not desynchronize the block cursor from the scalar path."""
        blocked = _kernel(43, monkeypatch=monkeypatch)
        scalar = _kernel(43, scalar=True, monkeypatch=monkeypatch)
        a = [blocked.cpu("udp_tx") for _ in range(700)]
        b = [scalar.cpu("udp_tx") for _ in range(700)]
        swapped = default_cost_model(jitter_sigma=0.2)
        # The setter re-reads the env knob, so restore each kernel's own
        # setting before its swap (within one process the knob is fixed).
        monkeypatch.delenv(SCALAR_RNG_ENV, raising=False)
        blocked.costs = swapped
        assert blocked._vector_mode == "fast"
        monkeypatch.setenv(SCALAR_RNG_ENV, "1")
        scalar.costs = swapped
        a += [blocked.cpu("udp_tx") for _ in range(700)]
        b += [scalar.cpu("udp_tx") for _ in range(700)]
        assert a == b

    def test_unknown_segment_raises(self, monkeypatch):
        kernel = _kernel(1, monkeypatch=monkeypatch)
        with pytest.raises(KeyError):
            kernel.cpu("no_such_segment")
