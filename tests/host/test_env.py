"""Tests for the consolidated environment-knob reader (repro.env)."""

import os

import pytest

from repro import env


class TestPackets:
    def test_unset_returns_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_PACKETS", raising=False)
        assert env.packets(500) == 500
        assert env.packets() is None

    def test_set_overrides_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACKETS", "250")
        assert env.packets(500) == 250

    def test_non_integer_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACKETS", "many")
        with pytest.raises(env.EnvError, match="must be an integer, got 'many'"):
            env.packets(500)

    def test_non_positive_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACKETS", "0")
        with pytest.raises(env.EnvError, match="must be positive"):
            env.packets(500)


class TestScheduler:
    def test_default_is_calendar(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_SCHEDULER", raising=False)
        assert env.scheduler() == "calendar"

    @pytest.mark.parametrize("backend", ["calendar", "heap"])
    def test_valid_backends(self, monkeypatch, backend):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", backend)
        assert env.scheduler() == backend

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "fifo")
        with pytest.raises(env.EnvError, match="'calendar' or 'heap'.*'fifo'"):
            env.scheduler()


class TestFlags:
    @pytest.mark.parametrize("reader,name", [
        (env.scalar_rng, "REPRO_SIM_SCALAR_RNG"),
        (env.bufpool_debug, "REPRO_BUFPOOL_DEBUG"),
    ])
    def test_flag_values(self, monkeypatch, reader, name):
        monkeypatch.delenv(name, raising=False)
        assert reader() is False
        monkeypatch.setenv(name, "")
        assert reader() is False
        monkeypatch.setenv(name, "0")
        assert reader() is False
        monkeypatch.setenv(name, "1")
        assert reader() is True

    def test_flag_guessing_rejected(self, monkeypatch):
        # "true"/"yes"/"on" are errors, not synonyms: a knob that
        # silently ignores them reads as enabled when it is not.
        for value in ("true", "yes", "on", "2"):
            monkeypatch.setenv("REPRO_BUFPOOL_DEBUG", value)
            with pytest.raises(env.EnvError, match="REPRO_BUFPOOL_DEBUG"):
                env.bufpool_debug()


class TestGuestMode:
    def test_unset_means_all_modes(self, monkeypatch):
        monkeypatch.delenv("REPRO_GUEST_MODE", raising=False)
        assert env.guest_mode() is None

    @pytest.mark.parametrize("mode", ["bare", "trapped", "vhost"])
    def test_valid_modes(self, monkeypatch, mode):
        monkeypatch.setenv("REPRO_GUEST_MODE", mode)
        assert env.guest_mode() == mode

    def test_unknown_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUEST_MODE", "emulated")
        with pytest.raises(env.EnvError, match="'emulated'"):
            env.guest_mode()


class TestCacheKnobs:
    def test_result_cache_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert env.result_cache() is False
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert env.result_cache() is True
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert env.result_cache() is False
        monkeypatch.setenv("REPRO_CACHE", "yes")
        with pytest.raises(env.EnvError, match="REPRO_CACHE"):
            env.result_cache()

    def test_cache_dir_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert env.cache_dir() is None

    def test_cache_dir_passes_through_paths(self, monkeypatch, tmp_path):
        existing = tmp_path / "store"
        existing.mkdir()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(existing))
        assert env.cache_dir() == str(existing)
        # A not-yet-created directory is fine: the cache mkdirs it.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "later"))
        assert env.cache_dir() == str(tmp_path / "later")

    def test_cache_dir_rejects_non_directory(self, monkeypatch, tmp_path):
        occupied = tmp_path / "file"
        occupied.write_text("not a directory")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(occupied))
        with pytest.raises(env.EnvError, match="REPRO_CACHE_DIR"):
            env.cache_dir()

    def test_snapshot_boot_defaults_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_SNAPSHOT_BOOT", raising=False)
        assert env.snapshot_boot() is True
        monkeypatch.setenv("REPRO_SNAPSHOT_BOOT", "1")
        assert env.snapshot_boot() is True
        monkeypatch.setenv("REPRO_SNAPSHOT_BOOT", "0")
        assert env.snapshot_boot() is False
        monkeypatch.setenv("REPRO_SNAPSHOT_BOOT", "off")
        with pytest.raises(env.EnvError, match="REPRO_SNAPSHOT_BOOT"):
            env.snapshot_boot()


class TestCheckEnvironment:
    def test_clean_environment_passes(self, monkeypatch):
        for name in env.KNOWN_KNOBS:
            monkeypatch.delenv(name, raising=False)
        env.check_environment()

    def test_every_knob_is_swept(self, monkeypatch):
        # Each known knob, when corrupted, must surface through the
        # one-shot validator with its own name in the message.  For
        # most knobs any odd string is invalid; REPRO_CACHE_DIR takes
        # arbitrary paths, so its bad value is a path that exists and
        # is not a directory.
        invalid = {"REPRO_CACHE_DIR": os.devnull}
        for name in env.KNOWN_KNOBS:
            monkeypatch.delenv(name, raising=False)
        for name in env.KNOWN_KNOBS:
            monkeypatch.setenv(name, invalid.get(name, "surely-invalid"))
            with pytest.raises(env.EnvError, match=name):
                env.check_environment()
            monkeypatch.delenv(name)
