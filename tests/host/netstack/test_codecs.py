"""Tests for the Ethernet / ARP / IPv4 / UDP codecs and checksums."""

import pytest

from repro.host.netstack import (
    ARP_OP_REPLY,
    ARP_OP_REQUEST,
    ArpPacket,
    EthernetFrame,
    Ipv4Header,
    Route,
    RoutingTable,
    UdpHeader,
    arp_reply_frame,
    arp_request_frame,
    internet_checksum,
    ip_str,
    mac_str,
    parse_ip,
    parse_mac,
    udp_checksum,
    udp_checksum_valid,
    udp_datagram,
    verify_checksum,
)


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_verify_includes_checksum_field(self):
        data = bytes.fromhex("0001f203f4f5f6f7") + (0x220D).to_bytes(2, "big")
        assert verify_checksum(data)

    def test_odd_length_padded(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")

    def test_zero_data(self):
        assert internet_checksum(bytes(10)) == 0xFFFF


class TestEthernet:
    def test_roundtrip(self):
        frame = EthernetFrame(
            dst=b"\x01\x02\x03\x04\x05\x06",
            src=b"\x0a\x0b\x0c\x0d\x0e\x0f",
            ethertype=0x0800,
            payload=b"payload" * 10,
        )
        decoded = EthernetFrame.decode(frame.encode(pad=False))
        assert decoded == frame

    def test_minimum_padding(self):
        frame = EthernetFrame(dst=b"\x00" * 6, src=b"\x00" * 6, ethertype=0x0800,
                              payload=b"tiny")
        assert len(frame.encode()) == 60

    def test_mac_parse_format_roundtrip(self):
        mac = parse_mac("52:54:00:fa:ce:01")
        assert mac_str(mac) == "52:54:00:fa:ce:01"

    def test_bad_mac_rejected(self):
        with pytest.raises(ValueError):
            parse_mac("52:54:00")
        with pytest.raises(ValueError):
            EthernetFrame(dst=b"\x00" * 5, src=b"\x00" * 6, ethertype=0, payload=b"")

    def test_short_frame_rejected(self):
        with pytest.raises(ValueError):
            EthernetFrame.decode(b"short")


class TestIpv4:
    def test_roundtrip_with_valid_checksum(self):
        header = Ipv4Header(src=parse_ip("10.0.0.1"), dst=parse_ip("10.0.0.2"),
                            protocol=17, total_length=100, identification=42)
        raw = header.encode()
        decoded = Ipv4Header.decode(raw)
        assert decoded.src == header.src
        assert decoded.identification == 42
        assert decoded.header_valid(raw)

    def test_corrupted_checksum_detected(self):
        raw = bytearray(Ipv4Header(src=1, dst=2, protocol=17, total_length=40).encode())
        raw[15] ^= 0xFF
        assert not Ipv4Header.decode(bytes(raw)).header_valid(bytes(raw))

    def test_ip_string_roundtrip(self):
        assert ip_str(parse_ip("192.168.1.200")) == "192.168.1.200"

    def test_bad_ip_rejected(self):
        with pytest.raises(ValueError):
            parse_ip("1.2.3")
        with pytest.raises(ValueError):
            parse_ip("1.2.3.999")

    def test_non_ipv4_rejected(self):
        raw = bytearray(20)
        raw[0] = 0x60  # version 6
        with pytest.raises(ValueError):
            Ipv4Header.decode(bytes(raw))


class TestRouting:
    def make(self):
        table = RoutingTable()
        table.add(Route(network=parse_ip("10.0.0.0"), prefix_len=24, device="virtio0"))
        table.add(Route(network=0, prefix_len=0, device="eth0",
                        gateway=parse_ip("192.168.1.1")))
        return table

    def test_longest_prefix_wins(self):
        table = self.make()
        assert table.lookup(parse_ip("10.0.0.7")).device == "virtio0"
        assert table.lookup(parse_ip("8.8.8.8")).device == "eth0"

    def test_next_hop_direct_vs_gateway(self):
        table = self.make()
        _, neighbour = table.next_hop(parse_ip("10.0.0.7"))
        assert neighbour == parse_ip("10.0.0.7")
        _, neighbour = table.next_hop(parse_ip("8.8.8.8"))
        assert neighbour == parse_ip("192.168.1.1")

    def test_no_route(self):
        table = RoutingTable()
        assert table.lookup(parse_ip("1.1.1.1")) is None
        assert table.next_hop(parse_ip("1.1.1.1")) is None

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            Route(network=0, prefix_len=33, device="x")


class TestUdp:
    def test_datagram_checksum_valid(self):
        datagram = udp_datagram(1, 2, 100, 200, b"hello udp")
        assert udp_checksum_valid(1, 2, datagram)

    def test_corrupted_payload_detected(self):
        datagram = bytearray(udp_datagram(1, 2, 100, 200, b"hello udp"))
        datagram[-1] ^= 0x5A
        assert not udp_checksum_valid(1, 2, bytes(datagram))

    def test_zero_checksum_means_unchecked(self):
        datagram = udp_datagram(1, 2, 100, 200, b"x", compute_checksum=False)
        assert UdpHeader.decode(datagram).checksum == 0
        assert udp_checksum_valid(1, 2, datagram)

    def test_header_roundtrip(self):
        header = UdpHeader(src_port=5353, dst_port=53, length=30, checksum=0xBEEF)
        assert UdpHeader.decode(header.encode()) == header

    def test_checksum_never_zero_on_wire(self):
        # Craft payloads until one would naturally checksum to 0 is hard;
        # instead verify the substitution rule directly.
        assert udp_checksum(0, 0, UdpHeader(0, 0, 8).encode()) != 0

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            UdpHeader(src_port=70000, dst_port=0, length=8)


class TestArp:
    def test_packet_roundtrip(self):
        packet = ArpPacket(
            operation=ARP_OP_REQUEST,
            sender_mac=b"\x02" * 6,
            sender_ip=parse_ip("10.0.0.1"),
            target_mac=b"\x00" * 6,
            target_ip=parse_ip("10.0.0.2"),
        )
        assert ArpPacket.decode(packet.encode()) == packet

    def test_request_frame_is_broadcast(self):
        frame = arp_request_frame(b"\x02" * 6, 1, 2)
        assert frame.is_broadcast

    def test_reply_frame_is_unicast(self):
        frame = arp_reply_frame(b"\x02" * 6, 1, b"\x04" * 6, 2)
        assert frame.dst == b"\x04" * 6
        assert ArpPacket.decode(frame.payload).operation == ARP_OP_REPLY


class TestArpCache:
    def test_static_entries_persist(self):
        from repro.host.netstack import ArpCache

        cache = ArpCache()
        cache.add_static(1, b"\x0a" * 6)
        cache.learn(1, b"\x0b" * 6)  # must not downgrade static
        assert cache.lookup(1) == b"\x0a" * 6
        cache.flush_dynamic()
        assert cache.lookup(1) is not None

    def test_dynamic_learning_and_flush(self):
        from repro.host.netstack import ArpCache

        cache = ArpCache()
        cache.learn(2, b"\x0c" * 6)
        assert cache.lookup(2) == b"\x0c" * 6
        cache.flush_dynamic()
        assert cache.lookup(2) is None
