"""Tests for the NetDevice abstraction itself."""

import pytest

from repro.host.kernel import HostKernel
from repro.host.netstack.netdev import FEATURE_HW_CSUM, NetDevice
from repro.host.netstack.skb import Skb
from repro.pcie.root_complex import RootComplex


@pytest.fixture
def kernel(sim):
    return HostKernel(sim, RootComplex(sim))


class TestNetDevice:
    def test_bad_mac_rejected(self, kernel):
        with pytest.raises(ValueError):
            NetDevice(kernel, "eth0", b"\x00\x01")

    def test_features(self, kernel):
        device = NetDevice(kernel, "eth0", b"\x02" * 6, features={FEATURE_HW_CSUM})
        assert device.has_feature(FEATURE_HW_CSUM)
        assert not device.has_feature("tso")

    def test_xmit_without_hook_rejected(self, kernel, sim, run):
        device = NetDevice(kernel, "eth0", b"\x02" * 6)
        with pytest.raises(Exception):
            run(sim, device.start_xmit(Skb(data=b"frame")))

    def test_xmit_counts_and_tags(self, kernel, sim, run):
        device = NetDevice(kernel, "eth0", b"\x02" * 6)
        seen = []

        def xmit(skb):
            seen.append(skb)
            yield 0

        device.set_xmit(xmit)
        run(sim, device.start_xmit(Skb(data=b"frame")))
        assert device.tx_packets == 1
        assert seen[0].device == "eth0"

    def test_mtu_default(self, kernel):
        assert NetDevice(kernel, "eth0", b"\x02" * 6).mtu == 1500
