"""Tests for the stack's TX/RX paths, NAPI, and sockets, using a fake
NIC that captures transmitted frames and can inject received ones."""

import pytest

from repro.host.kernel import HostKernel
from repro.host.netstack import (
    CHECKSUM_PARTIAL,
    CHECKSUM_UNNECESSARY,
    ETH_HEADER_SIZE,
    ETH_P_IP,
    EthernetFrame,
    FEATURE_HW_CSUM,
    IP_HEADER_SIZE,
    Ipv4Header,
    IPPROTO_UDP,
    NapiContext,
    NetDevice,
    NetworkStack,
    Route,
    Skb,
    StackError,
    UdpHeader,
    UdpSocket,
    parse_ip,
    udp_checksum_valid,
    udp_datagram,
)
from repro.pcie.root_complex import RootComplex

HOST_IP = parse_ip("10.0.0.1")
PEER_IP = parse_ip("10.0.0.2")
HOST_MAC = b"\x02\x00\x00\x00\x00\x01"
PEER_MAC = b"\x52\x54\x00\x00\x00\x02"


@pytest.fixture
def net(sim):
    kernel = HostKernel(sim, RootComplex(sim))
    kernel.costs = kernel.costs.without_noise()
    stack = NetworkStack(kernel)
    sent = []

    def xmit(skb):
        sent.append(skb)
        yield 0

    device = NetDevice(kernel, "fake0", HOST_MAC)
    device.set_xmit(xmit)
    stack.register_device(device, HOST_IP)
    stack.routes.add(Route(network=PEER_IP & 0xFFFFFF00, prefix_len=24, device="fake0"))
    stack.arp.add_static(PEER_IP, PEER_MAC)
    return dict(sim=sim, kernel=kernel, stack=stack, device=device, sent=sent)


def make_reply(payload: bytes, dst_port: int) -> bytes:
    """A frame from the peer to the host socket."""
    datagram = udp_datagram(PEER_IP, HOST_IP, 7, dst_port, payload)
    ip = Ipv4Header(src=PEER_IP, dst=HOST_IP, protocol=IPPROTO_UDP,
                    total_length=IP_HEADER_SIZE + len(datagram))
    return EthernetFrame(dst=HOST_MAC, src=PEER_MAC, ethertype=ETH_P_IP,
                         payload=ip.encode() + datagram).encode()


class TestTransmitPath:
    def test_udp_output_builds_full_frame(self, net, run):
        run(net["sim"], net["stack"].udp_output(5000, PEER_IP, 7, b"hello"))
        assert len(net["sent"]) == 1
        frame = EthernetFrame.decode(net["sent"][0].data)
        assert frame.dst == PEER_MAC
        assert frame.src == HOST_MAC
        ip = Ipv4Header.decode(frame.payload)
        assert (ip.src, ip.dst) == (HOST_IP, PEER_IP)
        udp = UdpHeader.decode(frame.payload[IP_HEADER_SIZE:])
        assert (udp.src_port, udp.dst_port) == (5000, 7)

    def test_software_checksum_without_offload(self, net, run):
        run(net["sim"], net["stack"].udp_output(5000, PEER_IP, 7, b"data"))
        skb = net["sent"][0]
        assert skb.ip_summed != CHECKSUM_PARTIAL
        frame = EthernetFrame.decode(skb.data)
        ip = Ipv4Header.decode(frame.payload)
        datagram = frame.payload[IP_HEADER_SIZE : ip.total_length]
        assert UdpHeader.decode(datagram).checksum != 0
        assert udp_checksum_valid(HOST_IP, PEER_IP, datagram)

    def test_offload_leaves_checksum_to_device(self, net, run):
        net["device"].features.add(FEATURE_HW_CSUM)
        run(net["sim"], net["stack"].udp_output(5000, PEER_IP, 7, b"data"))
        skb = net["sent"][0]
        assert skb.ip_summed == CHECKSUM_PARTIAL
        assert skb.csum_start == ETH_HEADER_SIZE + IP_HEADER_SIZE
        assert skb.csum_offset == 6
        frame = EthernetFrame.decode(skb.data)
        udp = UdpHeader.decode(frame.payload[IP_HEADER_SIZE:])
        assert udp.checksum == 0

    def test_unroutable_destination_raises(self, net, run):
        from repro.sim.process import ProcessError

        with pytest.raises(ProcessError, match="no route"):
            run(net["sim"], net["stack"].udp_output(5000, parse_ip("1.2.3.4"), 7, b"x"))

    def test_missing_arp_entry_raises(self, net, run):
        net["stack"].routes.add(
            Route(network=parse_ip("10.0.1.0"), prefix_len=24, device="fake0")
        )
        from repro.sim.process import ProcessError

        with pytest.raises(ProcessError, match="ARP"):
            run(net["sim"], net["stack"].udp_output(5000, parse_ip("10.0.1.9"), 7, b"x"))


class TestReceivePath:
    def test_delivery_to_bound_socket(self, net, run):
        socket = UdpSocket(net["kernel"], net["stack"])
        socket.bind(6000)
        skb = Skb(data=make_reply(b"response", 6000))
        run(net["sim"], net["stack"].netif_receive(net["device"], skb))
        assert socket.rx_pending == 1

    def test_unbound_port_dropped(self, net, run):
        skb = Skb(data=make_reply(b"x", 7777))
        run(net["sim"], net["stack"].netif_receive(net["device"], skb))
        assert net["stack"].stats["rx_drop_no_socket"] == 1

    def test_bad_checksum_dropped(self, net, run):
        socket = UdpSocket(net["kernel"], net["stack"])
        socket.bind(6000)
        raw = bytearray(make_reply(b"corrupt me", 6000))
        raw[ETH_HEADER_SIZE + IP_HEADER_SIZE + 8] ^= 0xFF  # first payload byte
        run(net["sim"], net["stack"].netif_receive(net["device"], Skb(data=bytes(raw))))
        assert socket.rx_pending == 0
        assert net["stack"].stats["rx_drop_bad_csum"] == 1

    def test_device_validated_checksum_skips_verify(self, net, run):
        socket = UdpSocket(net["kernel"], net["stack"])
        socket.bind(6000)
        raw = bytearray(make_reply(b"corrupt me", 6000))
        raw[ETH_HEADER_SIZE + IP_HEADER_SIZE + 8] ^= 0xFF  # bad data, device says DATA_VALID
        skb = Skb(data=bytes(raw), ip_summed=CHECKSUM_UNNECESSARY)
        run(net["sim"], net["stack"].netif_receive(net["device"], skb))
        assert socket.rx_pending == 1

    def test_arp_request_answered(self, net, run):
        from repro.host.netstack import arp_request_frame

        frame = arp_request_frame(PEER_MAC, PEER_IP, HOST_IP)
        run(net["sim"], net["stack"].netif_receive(net["device"], Skb(data=frame.encode())))
        assert len(net["sent"]) == 1
        reply = EthernetFrame.decode(net["sent"][0].data)
        assert reply.dst == PEER_MAC


class TestSockets:
    def test_sendto_recvfrom_roundtrip(self, net, run):
        sim, kernel, stack = net["sim"], net["kernel"], net["stack"]
        socket = UdpSocket(kernel, stack)
        socket.bind(6000)

        def app():
            yield from socket.sendto(b"ping", PEER_IP, 7)
            data, source = yield from socket.recvfrom()
            return data, source

        process = sim.spawn(app())
        # Inject the reply once the request has gone out.
        def injector():
            while not net["sent"]:
                yield 1_000_000
            yield from stack.netif_receive(net["device"], Skb(data=make_reply(b"pong", 6000)))

        sim.spawn(injector())
        data, source = sim.run_until_triggered(process)
        assert data == b"pong"
        assert source == (PEER_IP, 7)

    def test_recvfrom_blocks_until_data(self, net, run):
        sim, kernel, stack = net["sim"], net["kernel"], net["stack"]
        socket = UdpSocket(kernel, stack)
        socket.bind(6000)
        done = []

        def app():
            data, _ = yield from socket.recvfrom()
            done.append((sim.now, data))

        sim.spawn(app())
        sim.run()
        assert not done  # still blocked
        proc = sim.spawn(stack.netif_receive(net["device"], Skb(data=make_reply(b"hi", 6000))))
        sim.run_until_triggered(proc)
        sim.run()
        assert done and done[0][1] == b"hi"

    def test_unbound_socket_rejected(self, net, run):
        socket = UdpSocket(net["kernel"], net["stack"])
        with pytest.raises(Exception):
            run(net["sim"], socket.sendto(b"x", PEER_IP, 7))

    def test_double_bind_rejected(self, net):
        s1 = UdpSocket(net["kernel"], net["stack"])
        s1.bind(6000)
        s2 = UdpSocket(net["kernel"], net["stack"])
        with pytest.raises(StackError):
            s2.bind(6000)

    def test_close_unbinds(self, net):
        s1 = UdpSocket(net["kernel"], net["stack"])
        s1.bind(6000)
        s1.close()
        s2 = UdpSocket(net["kernel"], net["stack"])
        s2.bind(6000)  # no conflict

    def test_queue_limit_drops(self, net, run):
        socket = UdpSocket(net["kernel"], net["stack"])
        socket.bind(6000)
        socket.rx_queue_limit = 2
        for _ in range(3):
            socket.deliver(b"x", (PEER_IP, 7))
        assert socket.rx_pending == 2
        assert socket.rx_dropped == 1


class TestNapi:
    def test_poll_until_drained_then_reenable(self, net, sim):
        kernel = net["kernel"]
        backlog = list(range(5))
        enables = []

        def poll(budget):
            count = 0
            while backlog and count < budget:
                backlog.pop()
                count += 1
                yield 1000
            return count

        napi = NapiContext(
            kernel, net["device"], poll,
            irq_enable=lambda: enables.append("on"),
            irq_disable=lambda: enables.append("off"),
            weight=2,
        )
        napi.schedule()
        napi.schedule()  # idempotent while scheduled
        sim.run()
        assert not backlog
        assert enables == ["off", "on"]
        assert napi.polls >= 3  # 5 items at weight 2

    def test_recheck_rearms(self, net, sim):
        kernel = net["kernel"]
        state = {"items": 1, "rechecks": 0}

        def poll(budget):
            n = state["items"]
            state["items"] = 0
            yield 100
            return n

        def recheck():
            # Pretend one more completion raced the re-enable, once.
            if state["rechecks"] == 0:
                state["rechecks"] += 1
                state["items"] = 1
                return True
            return False

        napi = NapiContext(kernel, net["device"], poll,
                           irq_enable=lambda: None, irq_disable=lambda: None,
                           recheck=recheck)
        napi.schedule()
        sim.run()
        assert napi.recheck_rearms == 1
        assert napi.polls == 2
