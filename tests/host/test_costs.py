"""Tests for the host cost model and interference fields."""

import numpy as np
import pytest

from repro.host.costs import CostModel, InterferenceModel, default_cost_model
from repro.sim.kernel import Simulator
from repro.sim.time import us


@pytest.fixture
def rng():
    return Simulator(seed=3).rng("t")


class TestInterferenceModel:
    def test_zero_rate_never_stalls(self, rng):
        model = InterferenceModel(rate_hz=0.0, micro_rate_hz=0.0)
        assert all(model.stall_during(us(100), rng) == 0 for _ in range(100))

    def test_hit_probability_scales_with_duration(self, rng):
        model = InterferenceModel(rate_hz=10_000.0, micro_rate_hz=0.0)
        short_hits = sum(model.stall_during(us(1), rng) > 0 for _ in range(4000))
        long_hits = sum(model.stall_during(us(100), rng) > 0 for _ in range(4000))
        assert long_hits > short_hits * 5

    def test_stalls_capped(self, rng):
        model = InterferenceModel(
            rate_hz=1e9, stall_scale=us(10), stall_alpha=1.1, stall_cap=us(50),
            micro_rate_hz=0.0,
        )
        stalls = [model.stall_during(us(10), rng) for _ in range(500)]
        assert max(stalls) <= us(50)

    def test_disabled(self):
        model = InterferenceModel().disabled()
        assert model.rate_hz == 0.0
        assert model.micro_rate_hz == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            InterferenceModel(rate_hz=-1)
        with pytest.raises(ValueError):
            InterferenceModel(stall_alpha=1.0)

    def test_micro_field_contributes(self, rng):
        base = InterferenceModel(rate_hz=0.0, micro_rate_hz=0.0)
        micro = InterferenceModel(rate_hz=0.0, micro_rate_hz=1e6)
        base_total = sum(base.stall_during(us(10), rng) for _ in range(500))
        micro_total = sum(micro.stall_during(us(10), rng) for _ in range(500))
        assert micro_total > base_total


class TestCostModel:
    def test_default_has_expected_segments(self):
        model = default_cost_model()
        for name in ("syscall_entry", "task_wakeup", "irq_entry", "virtio_add_buf",
                     "driver_descriptor_build", "udp_tx", "netif_receive"):
            assert model.has_segment(name)

    def test_unknown_segment_rejected(self):
        with pytest.raises(KeyError):
            default_cost_model().segment("nonexistent")

    def test_copy_cost_linear(self):
        model = default_cost_model()
        assert model.copy_cost(2000) == 2 * model.copy_cost(1000)

    def test_without_noise_is_deterministic(self, rng):
        model = default_cost_model().without_noise()
        seg = model.segment("task_wakeup")
        draws = {seg.sample(rng) for _ in range(20)}
        assert len(draws) == 1
        assert model.interference.rate_hz == 0.0

    def test_scaled(self):
        model = default_cost_model()
        double = model.scaled(2.0)
        assert double.segment("syscall_entry").nominal_ps == pytest.approx(
            2 * model.segment("syscall_entry").nominal_ps, abs=1
        )
        assert double.copy_ps_per_byte == 2 * model.copy_ps_per_byte

    def test_wakeup_dominates_fast_path_segments(self):
        """The scheduler wakeup is the single largest software segment,
        matching Linux profiles of blocking round trips."""
        model = default_cost_model()
        wakeup = model.segment("task_wakeup").nominal_ps
        for name in ("syscall_entry", "udp_tx", "netif_receive", "virtio_add_buf"):
            assert wakeup > model.segment(name).nominal_ps
