"""Tests for the host kernel hub and interrupt controller."""

import pytest

from repro.host.kernel import HostKernel
from repro.pcie.root_complex import RootComplex
from repro.sim.time import ns, us


@pytest.fixture
def kernel(sim):
    return HostKernel(sim, RootComplex(sim))


class TestCpuAccounting:
    def test_cpu_returns_positive_duration(self, kernel):
        assert kernel.cpu("syscall_entry") > 0

    def test_extra_ps_added(self, kernel):
        clean = kernel.costs.without_noise()
        kernel.costs = clean
        base = kernel.cpu("copy_touch")
        extended = kernel.cpu("copy_touch", extra_ps=us(5))
        assert extended == base + us(5)

    def test_copy_scales_with_length(self, kernel):
        kernel.costs = kernel.costs.without_noise()
        assert kernel.copy(4096) > kernel.copy(64)

    def test_unknown_segment_raises(self, kernel):
        with pytest.raises(KeyError):
            kernel.cpu("bogus_segment")


class TestMonotonicClock:
    def test_gettime_quantized_to_ns(self, kernel, sim):
        sim.schedule(1234567, lambda: None)  # 1234.567 ns
        sim.run()
        assert kernel.gettime_ns() == 1234

    def test_monotonic(self, kernel, sim):
        t0 = kernel.gettime_ns()
        sim.schedule(us(5), lambda: None)
        sim.run()
        assert kernel.gettime_ns() >= t0


class TestBlockOn(object):
    def test_wakeup_cost_charged(self, kernel, sim, run):
        kernel.costs = kernel.costs.without_noise()
        ev = sim.event()
        wake_cost = kernel.costs.segment("task_wakeup").nominal_ps

        def body():
            value = yield from kernel.block_on(ev)
            return (value, sim.now)

        process = sim.spawn(body())
        sim.schedule(us(10), ev.trigger, "data")
        sim.run()
        value, finished = process.result
        assert value == "data"
        assert finished == us(10) + wake_cost


class TestInterruptController:
    def test_msi_dispatches_handler(self, kernel, sim):
        runs = []

        def handler():
            yield ns(10)
            runs.append(sim.now)

        kernel.irqc.register(5, handler)
        kernel.irqc.deliver_msi(0xFEE00000, 5)
        sim.run()
        assert len(runs) == 1
        assert kernel.irqc.delivered == 1

    def test_spurious_vector_counted(self, kernel, sim):
        kernel.irqc.deliver_msi(0xFEE00000, 9)
        sim.run()
        assert kernel.irqc.spurious == 1

    def test_duplicate_registration_rejected(self, kernel):
        kernel.irqc.register(1, lambda: iter(()))
        with pytest.raises(ValueError):
            kernel.irqc.register(1, lambda: iter(()))

    def test_handlers_serialized_on_cpu(self, kernel, sim):
        kernel.costs = kernel.costs.without_noise()
        spans = []

        def handler():
            start = sim.now
            yield us(10)
            spans.append((start, sim.now))

        kernel.irqc.register(1, handler)
        kernel.irqc.deliver_msi(0xFEE00000, 1)
        kernel.irqc.deliver_msi(0xFEE00000, 1)
        sim.run()
        assert len(spans) == 2
        # Second handler's body starts after the first ends.
        assert spans[1][0] >= spans[0][1]

    def test_softirq_deferred(self, kernel, sim):
        kernel.costs = kernel.costs.without_noise()
        marks = []

        def body():
            yield 0
            marks.append(sim.now)

        kernel.irqc.raise_softirq(body())
        sim.run()
        cost = kernel.costs.segment("softirq_schedule").nominal_ps
        assert marks[0] >= cost

    def test_unregister(self, kernel, sim):
        kernel.irqc.register(1, lambda: iter(()))
        kernel.irqc.unregister(1)
        kernel.irqc.deliver_msi(0xFEE00000, 1)
        sim.run()
        assert kernel.irqc.spurious == 1
