"""Tests for the chardev syscall layer and timekeeping."""

import pytest

from repro.host.chardev import CharDevice, sys_poll, sys_read, sys_write
from repro.host.kernel import HostKernel
from repro.host.timekeeping import MonotonicClock
from repro.pcie.root_complex import RootComplex
from repro.sim.event import Event
from repro.sim.time import ns, us


class LoopbackDevice(CharDevice):
    """A chardev that stores writes and returns them on read."""

    def __init__(self) -> None:
        super().__init__("loop0")
        self.buffer = b""
        self._readable = Event(name="loop0.readable")

    def dev_write(self, data):
        self.buffer = data
        if not self._readable.triggered:
            self._readable.trigger(None)
        yield ns(10)
        return len(data)

    def dev_read(self, length):
        yield ns(10)
        return self.buffer[:length]

    def poll_readable(self):
        return self._readable


@pytest.fixture
def kernel(sim):
    kernel = HostKernel(sim, RootComplex(sim))
    kernel.costs = kernel.costs.without_noise()
    return kernel


class TestSyscalls:
    def test_write_read_roundtrip(self, kernel, sim, run):
        device = LoopbackDevice()

        def app():
            written = yield from sys_write(kernel, device, b"chardev data")
            data = yield from sys_read(kernel, device, written)
            return data

        assert run(sim, app()) == b"chardev data"

    def test_syscall_costs_charged(self, kernel, sim, run):
        device = LoopbackDevice()
        costs = kernel.costs
        expected_floor = (
            costs.segment("syscall_entry").nominal_ps
            + costs.segment("chardev_dispatch").nominal_ps
            + costs.segment("syscall_exit").nominal_ps
        )

        def app():
            t0 = sim.now
            yield from sys_write(kernel, device, b"x")
            return sim.now - t0

        assert run(sim, app()) >= expected_floor

    def test_poll_returns_immediately_when_readable(self, kernel, sim, run):
        device = LoopbackDevice()
        device._readable.trigger(None)

        def app():
            t0 = sim.now
            yield from sys_poll(kernel, device)
            return sim.now - t0

        elapsed = run(sim, app())
        # No task_wakeup charge on the fast path.
        assert elapsed < kernel.costs.segment("task_wakeup").nominal_ps

    def test_poll_blocks_until_readable(self, kernel, sim):
        device = LoopbackDevice()
        finished = []

        def app():
            yield from sys_poll(kernel, device)
            finished.append(sim.now)

        sim.spawn(app())
        sim.run()
        assert not finished
        sim.schedule(us(50), device._readable.trigger, None)
        sim.run()
        assert finished and finished[0] > us(50)

    def test_base_class_is_abstract(self, kernel, sim):
        device = CharDevice("abstract0")
        with pytest.raises(Exception):
            gen = device.dev_write(b"x")
            next(gen)


class TestMonotonicClock:
    def test_quantization(self, sim):
        clock = MonotonicClock(sim)
        sim.schedule(1999, lambda: None)  # 1.999 ns
        sim.run()
        assert clock.gettime_ns() == 1

    def test_custom_resolution(self, sim):
        clock = MonotonicClock(sim, resolution_ps=ns(8))
        sim.schedule(ns(15), lambda: None)
        sim.run()
        assert clock.gettime_ns() == 8

    def test_call_cost_positive(self, sim):
        assert MonotonicClock(sim).call_cost() > 0

    def test_invalid_resolution(self, sim):
        with pytest.raises(ValueError):
            MonotonicClock(sim, resolution_ps=0)
