"""Buffer-pool ownership safety and deterministic reuse.

The zero-copy data plane leans on :class:`repro.mem.bufpool.BufferPool`
for the staging copies that remain (DMA-read snapshots, descriptor
gathers).  These tests pin the ownership contract -- use-after-release,
mutation-after-handoff, double release, and the aliasing hazard all
raise in debug mode -- and the LIFO reuse discipline that keeps pooled
runs byte-identical across ``--jobs``.
"""

import pytest

from repro.mem.bufpool import BufferPool, BufferPoolError


def test_acquire_view_roundtrip():
    pool = BufferPool(segment_size=64, debug=True)
    ref = pool.acquire(16)
    ref.view()[:4] = b"abcd"
    assert bytes(ref)[:4] == b"abcd"
    assert len(ref) == 16
    ref.release()


def test_acquire_from_copies_payload():
    pool = BufferPool(segment_size=64, debug=True)
    ref = pool.acquire_from(b"hello")
    assert bytes(ref) == b"hello"
    assert bytes(ref.readonly()) == b"hello"
    ref.release()


def test_use_after_release_raises():
    pool = BufferPool(segment_size=64, debug=True)
    ref = pool.acquire(16)
    ref.release()
    with pytest.raises(BufferPoolError, match="use after release"):
        ref.view()
    with pytest.raises(BufferPoolError, match="use after release"):
        ref.readonly()
    with pytest.raises(BufferPoolError, match="use after release"):
        bytes(ref)


def test_double_release_raises():
    pool = BufferPool(segment_size=64, debug=True)
    ref = pool.acquire(16)
    ref.release()
    with pytest.raises(BufferPoolError, match="use after release"):
        ref.release()


def test_mutation_after_handoff_raises():
    pool = BufferPool(segment_size=64, debug=True)
    ref = pool.acquire(16)
    ref.view()[:2] = b"ok"
    consumer_view = ref.handoff()
    assert bytes(consumer_view[:2]) == b"ok"
    assert consumer_view.readonly
    with pytest.raises(BufferPoolError, match="mutation after handoff"):
        ref.view()
    # The consumer's read path stays valid until release.
    assert bytes(ref.readonly()[:2]) == b"ok"
    del consumer_view
    ref.release()


def test_aliasing_between_in_flight_refs_raises():
    """Recycling a segment while a view of its previous use is alive is
    the aliasing hazard: the old view would observe the new owner's
    payload.  The debug probe catches it at reacquire time."""
    pool = BufferPool(segment_size=64, debug=True)
    ref = pool.acquire(16)
    stale = ref.readonly()  # consumer holds a view...
    ref.release()  # ...while the producer releases (legal so far)
    with pytest.raises(BufferPoolError, match="aliasing hazard"):
        pool.acquire(16)  # ...but the segment cannot be recycled under it
    del stale
    # The poisoned segment was quarantined (dropped from the free list);
    # the pool recovers by allocating a fresh one.
    replacement = pool.acquire(16)
    assert replacement.segment_id == 1
    replacement.release()


def test_release_with_dead_view_is_clean():
    pool = BufferPool(segment_size=64, debug=True)
    ref = pool.acquire(16)
    view = ref.handoff()
    del view
    ref.release()
    reused = pool.acquire(16)
    assert reused.segment_id == ref.segment_id
    reused.release()


def test_zero_length_and_negative_length():
    pool = BufferPool(segment_size=64, debug=True)
    ref = pool.acquire(0)
    assert len(ref) == 0
    assert bytes(ref) == b""
    ref.release()
    with pytest.raises(ValueError):
        pool.acquire(-1)


def test_bucket_rounds_up_to_power_of_two():
    pool = BufferPool(segment_size=64, debug=True)
    small = pool.acquire(16)
    large = pool.acquire(100)  # > 64: next bucket (128)
    small.release()
    large.release()
    # A 70-byte request reuses the 128-byte segment, not the 64-byte one.
    reused = pool.acquire(70)
    assert reused.segment_id == large.segment_id
    reused.release()


def test_reuse_sequence_is_deterministic():
    """LIFO reuse keyed by program order: the ref->segment mapping of a
    fixed acquire/release sequence is identical on every run (and so in
    every ``--jobs`` worker)."""

    def sequence():
        pool = BufferPool(segment_size=64, debug=True)
        ids = []
        a = pool.acquire(10)
        b = pool.acquire(20)
        ids += [a.segment_id, b.segment_id]
        a.release()
        c = pool.acquire(30)  # LIFO: reuses a's segment
        ids.append(c.segment_id)
        b.release()
        c.release()
        d = pool.acquire(5)  # LIFO: reuses c's (== a's) segment
        ids.append(d.segment_id)
        d.release()
        return ids, pool.stats()

    first_ids, first_stats = sequence()
    second_ids, second_stats = sequence()
    assert first_ids == second_ids == [0, 1, 0, 0]
    assert first_stats == second_stats
    assert first_stats["allocated"] == 2
    assert first_stats["reuses"] == 2
    assert first_stats["outstanding"] == 0
    assert first_stats["high_water"] == 2


def test_non_debug_mode_skips_probe():
    """Without debug, the hot path pays no probe cost and trusts the
    call sites (the production configuration)."""
    pool = BufferPool(segment_size=64, debug=False)
    ref = pool.acquire(16)
    stale = ref.readonly()
    ref.release()
    reused = pool.acquire(16)  # no probe, no raise
    assert reused.segment_id == ref.segment_id
    del stale
    reused.release()


def test_env_var_enables_debug(monkeypatch):
    monkeypatch.setenv("REPRO_BUFPOOL_DEBUG", "1")
    pool = BufferPool(segment_size=64)
    assert pool.debug
    monkeypatch.setenv("REPRO_BUFPOOL_DEBUG", "0")
    assert not BufferPool(segment_size=64).debug
