"""Tests for memory regions and address-space routing."""

import pytest

from repro.mem.region import AddressSpace, MemoryAccessError, MmioRegion, RamRegion


class TestRamRegion:
    def test_roundtrip(self):
        ram = RamRegion(256)
        ram.write(10, b"abc")
        assert ram.read(10, 3) == b"abc"

    def test_reads_zero_initialized(self):
        assert RamRegion(16).read(0, 16) == bytes(16)

    def test_fill_value(self):
        assert RamRegion(4, fill=0xAB).read(0, 4) == b"\xab" * 4

    def test_bounds_checked(self):
        ram = RamRegion(16)
        with pytest.raises(MemoryAccessError):
            ram.read(10, 8)
        with pytest.raises(MemoryAccessError):
            ram.write(15, b"xx")

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            RamRegion(0)


class TestMmioRegion:
    def test_handlers_invoked(self):
        accesses = []

        def read_handler(offset, length):
            accesses.append(("r", offset, length))
            return bytes(length)

        def write_handler(offset, data):
            accesses.append(("w", offset, data))

        mmio = MmioRegion(64, read_handler, write_handler)
        mmio.read(4, 4)
        mmio.write(8, b"\x01\x02")
        assert accesses == [("r", 4, 4), ("w", 8, b"\x01\x02")]

    def test_short_read_from_handler_rejected(self):
        mmio = MmioRegion(64, lambda o, n: b"", lambda o, d: None)
        with pytest.raises(MemoryAccessError):
            mmio.read(0, 4)


class TestAddressSpace:
    def make(self):
        space = AddressSpace("test")
        self.low = RamRegion(0x100, name="low")
        self.high = RamRegion(0x100, name="high")
        space.map(0x1000, self.low)
        space.map(0x2000, self.high)
        return space

    def test_routes_to_correct_region(self):
        space = self.make()
        space.write(0x1010, b"lo")
        space.write(0x2020, b"hi")
        assert self.low.read(0x10, 2) == b"lo"
        assert self.high.read(0x20, 2) == b"hi"

    def test_resolve_returns_offset(self):
        space = self.make()
        region, offset = space.resolve(0x10FF)
        assert region is self.low and offset == 0xFF

    def test_unmapped_address_rejected(self):
        space = self.make()
        with pytest.raises(MemoryAccessError, match="unmapped"):
            space.read(0x3000, 1)
        with pytest.raises(MemoryAccessError):
            space.read(0x1100, 1)  # gap between regions

    def test_overlap_rejected(self):
        space = self.make()
        with pytest.raises(ValueError, match="overlaps"):
            space.map(0x10FF, RamRegion(0x10))

    def test_straddling_access_rejected(self):
        space = self.make()
        with pytest.raises(MemoryAccessError, match="straddles"):
            space.read(0x10F8, 16)

    def test_unmap(self):
        space = self.make()
        removed = space.unmap(0x1000)
        assert removed is self.low
        with pytest.raises(MemoryAccessError):
            space.read(0x1000, 1)
        with pytest.raises(KeyError):
            space.unmap(0x1000)

    def test_region_at(self):
        space = self.make()
        assert space.region_at(0x1000) is self.low
        assert space.region_at(0x5000) is None

    def test_mappings_sorted(self):
        space = AddressSpace()
        space.map(0x2000, RamRegion(16))
        space.map(0x1000, RamRegion(16))
        bases = [base for base, _ in space.mappings]
        assert bases == [0x1000, 0x2000]
