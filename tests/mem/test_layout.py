"""Tests for binary layout helpers."""

import pytest

from repro.mem.layout import (
    StructDef,
    align_up,
    hexdump,
    is_aligned,
    read_u8,
    read_u16,
    read_u16_be,
    read_u32,
    read_u32_be,
    read_u64,
    write_u8,
    write_u16,
    write_u16_be,
    write_u32,
    write_u64,
)


class TestScalars:
    def test_little_endian_roundtrip(self):
        buf = bytearray(16)
        write_u32(buf, 4, 0xDEADBEEF)
        assert read_u32(buf, 4) == 0xDEADBEEF
        assert read_u8(buf, 4) == 0xEF  # little-endian: low byte first

    def test_u64_roundtrip(self):
        buf = bytearray(8)
        write_u64(buf, 0, 0x0123456789ABCDEF)
        assert read_u64(buf, 0) == 0x0123456789ABCDEF

    def test_big_endian(self):
        buf = bytearray(4)
        write_u16_be(buf, 0, 0x0800)
        assert buf[0] == 0x08 and buf[1] == 0x00
        assert read_u16_be(buf, 0) == 0x0800
        assert read_u32_be(b"\x01\x02\x03\x04", 0) == 0x01020304

    def test_out_of_range_value_rejected(self):
        buf = bytearray(4)
        with pytest.raises(ValueError):
            write_u8(buf, 0, 256)
        with pytest.raises(ValueError):
            write_u16(buf, 0, -1)

    def test_out_of_bounds_rejected(self):
        buf = bytearray(4)
        with pytest.raises(IndexError):
            read_u32(buf, 2)
        with pytest.raises(IndexError):
            write_u32(buf, 2, 0)


class TestStructDef:
    def make(self):
        return StructDef(
            "example",
            [("a", 0, 4), ("b", 4, 2), ("c", 6, 2), ("d", 8, 8)],
        )

    def test_size_from_fields(self):
        assert self.make().size == 16

    def test_offsets(self):
        s = self.make()
        assert s.offset_of("d") == 8
        assert s.size_of("b") == 2

    def test_pack_unpack_roundtrip(self):
        s = self.make()
        values = {"a": 1, "b": 2, "c": 3, "d": 4}
        buf = s.pack(values)
        assert s.unpack(bytes(buf)) == values

    def test_read_write_with_base(self):
        s = self.make()
        buf = bytearray(32)
        s.write(buf, "b", 0xBEEF, base=16)
        assert s.read(buf, "b", base=16) == 0xBEEF
        assert s.read(buf, "b", base=0) == 0

    def test_field_at_exact_match(self):
        s = self.make()
        assert s.field_at(4, 2).name == "b"
        assert s.field_at(4, 4) is None
        assert s.field_at(5, 1) is None

    def test_field_containing(self):
        s = self.make()
        assert s.field_containing(10).name == "d"
        assert s.field_containing(100) is None

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            StructDef("bad", [("a", 0, 4), ("b", 2, 4)])

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            StructDef("bad", [("a", 0, 4), ("a", 4, 4)])

    def test_total_size_too_small_rejected(self):
        with pytest.raises(ValueError):
            StructDef("bad", [("a", 0, 8)], total_size=4)

    def test_iteration_in_offset_order(self):
        s = StructDef("s", [("late", 8, 4), ("early", 0, 4)])
        assert [f.name for f in s] == ["early", "late"]


class TestAlignment:
    def test_align_up(self):
        assert align_up(0, 8) == 0
        assert align_up(1, 8) == 8
        assert align_up(8, 8) == 8
        assert align_up(4097, 4096) == 8192

    def test_is_aligned(self):
        assert is_aligned(64, 64)
        assert not is_aligned(65, 64)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            align_up(1, 3)
        with pytest.raises(ValueError):
            is_aligned(1, 0)


class TestHexdump:
    def test_contains_hex_and_ascii(self):
        out = hexdump(b"Hello, world!!!!", base=0x1000)
        assert "00001000" in out
        assert "48 65 6c 6c" in out
        assert "|Hello, world!!!!|" in out
