"""Tests for sparse physical memory, DMA allocation, FPGA memories."""

import pytest

from repro.mem.dma import DmaAllocationError, DmaAllocator
from repro.mem.fpga_mem import Bram, FpgaDram
from repro.mem.physical import PAGE_SIZE, PhysicalMemory
from repro.sim.time import ns


class TestPhysicalMemory:
    def test_untouched_reads_zero(self):
        mem = PhysicalMemory()
        assert mem.read(0x1234_5678, 16) == bytes(16)

    def test_write_read_roundtrip(self):
        mem = PhysicalMemory()
        mem.write(0x1000, b"hello")
        assert mem.read(0x1000, 5) == b"hello"

    def test_cross_page_write(self):
        mem = PhysicalMemory()
        addr = PAGE_SIZE - 3
        mem.write(addr, b"ABCDEF")
        assert mem.read(addr, 6) == b"ABCDEF"
        assert mem.resident_pages == 2

    def test_sparse_population(self):
        mem = PhysicalMemory()
        mem.write(0, b"x")
        mem.write(100 * PAGE_SIZE, b"y")
        assert mem.resident_pages == 2

    def test_fill(self):
        mem = PhysicalMemory()
        mem.fill(0x100, 8, 0x5A)
        assert mem.read(0x100, 8) == b"\x5a" * 8
        with pytest.raises(ValueError):
            mem.fill(0, 4, 300)

    def test_bounds(self):
        mem = PhysicalMemory(size=1 << 20)
        with pytest.raises(Exception):
            mem.read((1 << 20) - 1, 2)


class TestDmaAllocator:
    def test_alignment_honoured(self):
        alloc = DmaAllocator(PhysicalMemory())
        buf = alloc.alloc(100, alignment=4096)
        assert buf.addr % 4096 == 0

    def test_allocations_disjoint(self):
        alloc = DmaAllocator(PhysicalMemory())
        a = alloc.alloc(64)
        b = alloc.alloc(64)
        assert a.addr + a.size <= b.addr

    def test_buffer_io(self):
        alloc = DmaAllocator(PhysicalMemory())
        buf = alloc.alloc(32)
        buf.write(b"data", offset=4)
        assert buf.read(4, 4) == b"data"
        buf.zero()
        assert buf.read(0, 32) == bytes(32)

    def test_buffer_bounds(self):
        buf = DmaAllocator(PhysicalMemory()).alloc(16)
        with pytest.raises(IndexError):
            buf.write(b"0123456789abcdefg")
        with pytest.raises(IndexError):
            buf.read(10, 10)

    def test_exhaustion(self):
        alloc = DmaAllocator(PhysicalMemory(), size=4096)
        alloc.alloc(4096)
        with pytest.raises(DmaAllocationError):
            alloc.alloc(1)

    def test_reset(self):
        alloc = DmaAllocator(PhysicalMemory(), size=4096)
        alloc.alloc(4096)
        alloc.reset()
        alloc.alloc(4096)  # works again

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            DmaAllocator(PhysicalMemory()).alloc(0)


class TestBram:
    def test_byte_serial_access_time(self):
        """The calibrated designs stream one byte per 8 ns cycle."""
        bram = Bram(1024, width_bytes=1)
        assert bram.access_time(64) == ns(8) * 65  # setup + 64 beats

    def test_wider_port(self):
        bram = Bram(1024, width_bytes=8)
        assert bram.access_time(64) == ns(8) * 9

    def test_zero_length(self):
        assert Bram(64).access_time(0) == ns(8)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Bram(64).access_time(-1)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            Bram(64, width_bytes=3)

    def test_is_ram(self):
        bram = Bram(64)
        bram.write(0, b"ab")
        assert bram.read(0, 2) == b"ab"


class TestFpgaDram:
    def test_activation_plus_stream(self):
        dram = FpgaDram(size=1 << 20, activate_ns=50, bandwidth_bytes_per_s=1e9)
        assert dram.access_time(1000) == ns(50) + ns(1000)

    def test_validation(self):
        with pytest.raises(ValueError):
            FpgaDram(activate_ns=-1)
        with pytest.raises(ValueError):
            FpgaDram(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            FpgaDram().access_time(-1)
