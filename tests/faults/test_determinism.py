"""Determinism guards for the fault subsystem.

Two properties keep fault experiments trustworthy:

* a zero-rate plan is *bit-identical* to no plan at all -- the fault
  machinery (dedicated RNG streams, AnyOf-based waits, watchdog) must
  not perturb a single model draw or timestamp;
* a fault sweep merges bit-identically for any worker count, and its
  rate-0 column equals the fault-free latency cell.
"""

import numpy as np

from repro.core.latency import run_latency_sweep
from repro.core.testbed import build_virtio_testbed, build_xdma_testbed
from repro.exec.runner import execute_fault_sweep, execute_sweep
from repro.faults.plan import driver_fault_plan

PACKETS = 40
PAYLOAD = 64


class TestZeroRateParity:
    """Attaching a rate-0 plan must leave every measured series
    bit-identical to a plain run of the same seed."""

    def _pair(self, build, driver):
        plain = build(seed=17)
        faulted = build(seed=17, fault_plan=driver_fault_plan(driver, 0.0))
        a = run_latency_sweep(plain, (PAYLOAD,), PACKETS)[PAYLOAD]
        b = run_latency_sweep(faulted, (PAYLOAD,), PACKETS)[PAYLOAD]
        return a, b, faulted

    def test_virtio_bit_identical(self):
        a, b, faulted = self._pair(build_virtio_testbed, "virtio")
        assert np.array_equal(a.rtt_ps, b.rtt_ps)
        assert np.array_equal(a.hw_ps, b.hw_ps)
        assert np.array_equal(a.resp_ps, b.resp_ps)
        assert faulted.injector.total_injected == 0

    def test_xdma_bit_identical(self):
        a, b, faulted = self._pair(build_xdma_testbed, "xdma")
        assert np.array_equal(a.rtt_ps, b.rtt_ps)
        assert np.array_equal(a.hw_ps, b.hw_ps)
        assert faulted.injector.total_injected == 0


class TestFaultRunReproducibility:
    def test_same_seed_same_faults_same_series(self):
        """Two identical fault-mode runs agree on every injection event
        and every measured round trip."""
        runs = []
        for _ in range(2):
            testbed = build_virtio_testbed(
                seed=29, fault_plan=driver_fault_plan("virtio", 0.05)
            )
            result = run_latency_sweep(testbed, (PAYLOAD,), PACKETS)[PAYLOAD]
            runs.append((result.rtt_ps, list(testbed.injector.events)))
        assert np.array_equal(runs[0][0], runs[1][0])
        assert runs[0][1] == runs[1][1]
        assert runs[0][1]  # at 5% over ~80 opportunities, faults did fire


class TestSweepMergeDeterminism:
    RATES = (0.0, 0.05)

    def test_jobs_parity(self):
        """faultsweep output is byte-identical for jobs=1 and jobs=4."""
        serial, _ = execute_fault_sweep(
            self.RATES, payload=PAYLOAD, packets=PACKETS, seed=3, jobs=1
        )
        parallel, _ = execute_fault_sweep(
            self.RATES, payload=PAYLOAD, packets=PACKETS, seed=3, jobs=4
        )
        for driver in ("virtio", "xdma"):
            assert [r for r, _, _ in serial[driver]] == list(self.RATES)
            for (ra, pa, rep_a), (rb, pb, rep_b) in zip(
                serial[driver], parallel[driver]
            ):
                assert ra == rb
                assert np.array_equal(pa.rtt_ps, pb.rtt_ps)
                assert rep_a == rep_b

    def test_rate_zero_column_matches_fault_free_cell(self):
        """The rate-0 row of a fault sweep is the fault-free latency
        cell, bit for bit (same derived seed, no injected behaviour)."""
        sweep, _ = execute_fault_sweep(
            (0.0,), payload=PAYLOAD, packets=PACKETS, seed=3, jobs=1
        )
        for driver in ("virtio", "xdma"):
            baseline, _ = execute_sweep(driver, (PAYLOAD,), PACKETS, seed=3, jobs=1)
            rate, payload_result, report = sweep[driver][0]
            assert rate == 0.0
            assert np.array_equal(
                payload_result.rtt_ps, baseline[PAYLOAD].rtt_ps
            )
            assert np.array_equal(payload_result.hw_ps, baseline[PAYLOAD].hw_ps)
            assert report["detected"] == 0 and report["injected"] == {}
