"""Unit tests for fault plans, triggers, and the injector core."""

import pickle

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    KIND_DESC_ERROR,
    KIND_LOST_NOTIFY,
    KIND_MALFORMED_CHAIN,
    KIND_TLP_DROP,
    SITE_PCIE_DOWN,
    SITE_VIRTIO_CTRL,
    SITE_XDMA_ENGINE,
    EveryNth,
    FaultPlan,
    FaultSpec,
    NthEvent,
    PoissonRate,
    TimeWindow,
    driver_fault_plan,
    reset_storm_plan,
)
from repro.sim.kernel import Simulator


def spec(site=SITE_XDMA_ENGINE, kind=KIND_DESC_ERROR, trigger=None, delay_ns=0.0):
    return FaultSpec(site, kind, trigger or NthEvent(1), delay_ns)


class TestPlan:
    def test_rejects_non_spec_entries(self):
        with pytest.raises(TypeError, match="FaultSpec"):
            FaultPlan(("not a spec",))

    def test_for_hook_filters_by_site_and_kind(self):
        a = spec(SITE_XDMA_ENGINE, KIND_DESC_ERROR)
        b = spec(SITE_VIRTIO_CTRL, KIND_LOST_NOTIFY)
        plan = FaultPlan((a, b))
        assert plan.for_hook(SITE_XDMA_ENGINE, KIND_DESC_ERROR) == (a,)
        assert plan.for_hook(SITE_VIRTIO_CTRL, KIND_LOST_NOTIFY) == (b,)
        assert plan.for_hook(SITE_PCIE_DOWN, KIND_TLP_DROP) == ()

    def test_sites_sorted_and_deduplicated(self):
        plan = FaultPlan(
            (spec(SITE_VIRTIO_CTRL), spec(SITE_XDMA_ENGINE), spec(SITE_VIRTIO_CTRL))
        )
        assert plan.sites == (SITE_VIRTIO_CTRL, SITE_XDMA_ENGINE)

    def test_plan_pickles_unchanged(self):
        """Plans ride inside Cells to pool workers, so they must pickle."""
        plan = driver_fault_plan("virtio", 0.02)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestCannedPlans:
    def test_driver_plan_virtio_targets_notifications(self):
        plan = driver_fault_plan("virtio", 0.1)
        (entry,) = plan.specs
        assert entry.site == SITE_VIRTIO_CTRL
        assert entry.kind == KIND_LOST_NOTIFY
        assert entry.trigger == PoissonRate(0.1)

    def test_driver_plan_xdma_targets_descriptors(self):
        plan = driver_fault_plan("xdma", 0.1)
        (entry,) = plan.specs
        assert entry.site == SITE_XDMA_ENGINE
        assert entry.kind == KIND_DESC_ERROR

    def test_driver_plan_validates_rate_and_driver(self):
        with pytest.raises(ValueError, match="rate"):
            driver_fault_plan("virtio", 1.5)
        with pytest.raises(ValueError, match="unknown driver"):
            driver_fault_plan("e1000", 0.1)

    def test_reset_storm_plan(self):
        plan = reset_storm_plan(20)
        (entry,) = plan.specs
        assert entry.kind == KIND_MALFORMED_CHAIN
        assert entry.trigger == EveryNth(20)
        with pytest.raises(ValueError, match="positive"):
            reset_storm_plan(0)


class TestTriggers:
    def fire_n(self, injector, n, site=SITE_XDMA_ENGINE, kind=KIND_DESC_ERROR):
        return [injector.fire(site, kind) is not None for _ in range(n)]

    def test_nth_event_fires_exactly_once(self):
        sim = Simulator(seed=1)
        injector = FaultInjector(FaultPlan((spec(trigger=NthEvent(3)),)), sim)
        assert self.fire_n(injector, 6) == [False, False, True, False, False, False]
        assert injector.total_injected == 1

    def test_every_nth_fires_at_multiples(self):
        sim = Simulator(seed=1)
        injector = FaultInjector(FaultPlan((spec(trigger=EveryNth(2)),)), sim)
        assert self.fire_n(injector, 6) == [False, True, False, True, False, True]

    def test_time_window_bounds_injection(self):
        sim = Simulator(seed=1)
        injector = FaultInjector(
            FaultPlan((spec(trigger=TimeWindow(start_ns=0.0, end_ns=1.0)),)), sim
        )
        # sim.now == 0 lies inside [0, 1] ns.
        assert injector.fire(SITE_XDMA_ENGINE, KIND_DESC_ERROR) is not None
        sim.schedule(10_000_000, lambda: None)  # advance past the window
        sim.run()
        assert injector.fire(SITE_XDMA_ENGINE, KIND_DESC_ERROR) is None

    def test_poisson_rate_extremes(self):
        sim = Simulator(seed=1)
        plan = FaultPlan(
            (
                spec(SITE_XDMA_ENGINE, KIND_DESC_ERROR, PoissonRate(1.0)),
                spec(SITE_VIRTIO_CTRL, KIND_LOST_NOTIFY, PoissonRate(0.0)),
            )
        )
        injector = FaultInjector(plan, sim)
        assert all(self.fire_n(injector, 5))
        assert not any(self.fire_n(injector, 5, SITE_VIRTIO_CTRL, KIND_LOST_NOTIFY))
        assert injector.opportunities[(SITE_VIRTIO_CTRL, KIND_LOST_NOTIFY)] == 5

    def test_poisson_rate_zero_still_draws_the_stream(self):
        """The uniform stream must advance identically at any rate, so
        raising the rate never re-aligns later draws."""
        consumed = []
        for rate in (0.0, 0.5):
            sim = Simulator(seed=7)
            injector = FaultInjector(
                FaultPlan((spec(trigger=PoissonRate(rate)),)), sim
            )
            self.fire_n(injector, 10)
            stream = sim.rng(f"faults.{SITE_XDMA_ENGINE}.{KIND_DESC_ERROR}")
            consumed.append(stream.random())
        assert consumed[0] == consumed[1]

    def test_unhooked_site_is_free(self):
        sim = Simulator(seed=1)
        injector = FaultInjector(FaultPlan(()), sim)
        assert injector.fire(SITE_PCIE_DOWN, KIND_TLP_DROP) is None
        assert injector.opportunities == {}


class TestInjectorAccounting:
    def test_delay_ps_prefers_spec_delay(self):
        sim = Simulator(seed=1)
        injector = FaultInjector(FaultPlan(()), sim)
        with_delay = spec(delay_ns=250.0)
        without = spec(delay_ns=0.0)
        assert injector.delay_ps(with_delay, default_ns=500.0) == 250_000
        assert injector.delay_ps(without, default_ns=500.0) == 500_000

    def test_by_hook_views_use_string_keys(self):
        sim = Simulator(seed=1)
        injector = FaultInjector(FaultPlan((spec(trigger=NthEvent(1)),)), sim)
        injector.fire(SITE_XDMA_ENGINE, KIND_DESC_ERROR)
        key = f"{SITE_XDMA_ENGINE}/{KIND_DESC_ERROR}"
        assert injector.injected_by_hook() == {key: 1}
        assert injector.opportunities_by_hook() == {key: 1}

    def test_events_record_time_and_hook(self):
        sim = Simulator(seed=1)
        injector = FaultInjector(FaultPlan((spec(trigger=NthEvent(1)),)), sim)
        injector.fire(SITE_XDMA_ENGINE, KIND_DESC_ERROR)
        assert injector.events == [(0, SITE_XDMA_ENGINE, KIND_DESC_ERROR)]
