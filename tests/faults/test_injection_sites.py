"""Integration tests: each injection site misbehaves as specified and
the driver stacks recover within their bounded-retry budgets.

Every test runs real traffic on a booted testbed with a one-shot
(``NthEvent``) plan, so the fault lands deterministically and the
assertion can be exact.
"""

import pytest

from repro.core.calibration import FPGA_IP, PAPER_PROFILE, TEST_DST_PORT
from repro.core.testbed import build_virtio_testbed, build_xdma_testbed
from repro.faults.plan import (
    KIND_DESC_ERROR,
    KIND_DUP_MSI,
    KIND_ENGINE_STALL,
    KIND_LOST_IRQ,
    KIND_LOST_MSI,
    KIND_LOST_NOTIFY,
    KIND_MALFORMED_CHAIN,
    KIND_SPURIOUS_USR_IRQ,
    KIND_TLP_CORRUPT,
    KIND_TLP_DELAY,
    KIND_TLP_DROP,
    KIND_USED_DELAY,
    SITE_HOST_IRQ,
    SITE_PCIE_UP,
    SITE_VIRTIO_CTRL,
    SITE_XDMA_ENGINE,
    FaultPlan,
    FaultSpec,
    NthEvent,
    PoissonRate,
)
from repro.host.chardev import sys_read, sys_write


def one_shot(site, kind, n=1, delay_ns=0.0) -> FaultPlan:
    return FaultPlan((FaultSpec(site, kind, NthEvent(n), delay_ns),))


def xdma_round_trip(testbed, size=256):
    """One write+read ping-pong on the XDMA chardev."""
    kernel, driver = testbed.kernel, testbed.driver
    payload = bytes(i & 0xFF for i in range(size))

    def app():
        written = yield from sys_write(kernel, driver, payload)
        data = yield from sys_read(kernel, driver, size)
        return written, data

    process = testbed.sim.spawn(app())
    written, data = testbed.sim.run_until_triggered(process)
    return payload, written, data


def virtio_echo(testbed, payload):
    socket = testbed.socket

    def app():
        yield from socket.sendto(payload, FPGA_IP, TEST_DST_PORT)
        data, _ = yield from socket.recvfrom()
        return data

    process = testbed.sim.spawn(app())
    return testbed.sim.run_until_triggered(process)


class TestXdmaEngineFaults:
    def test_descriptor_error_recovered_by_retry(self):
        """A corrupted SGDMA descriptor halts the engine without an
        interrupt; the chardev request timeout must retry and succeed
        within the bounded budget."""
        testbed = build_xdma_testbed(
            seed=21, fault_plan=one_shot(SITE_XDMA_ENGINE, KIND_DESC_ERROR)
        )
        payload, written, data = xdma_round_trip(testbed)
        assert written == len(payload) and data == payload
        driver = testbed.driver
        assert driver.fault_timeouts >= 1
        assert driver.fault_retries >= 1
        assert driver.requests_failed == 0
        assert driver.recovery_latencies_ps
        assert testbed.injector.total_injected == 1

    def test_short_engine_stall_absorbed(self):
        """A stall shorter than the request timeout just delays the
        transfer; no recovery machinery should trigger."""
        testbed = build_xdma_testbed(
            seed=22,
            fault_plan=one_shot(
                SITE_XDMA_ENGINE, KIND_ENGINE_STALL, delay_ns=100_000.0
            ),
        )
        payload, written, data = xdma_round_trip(testbed)
        assert written == len(payload) and data == payload
        assert testbed.driver.fault_timeouts == 0

    def test_long_engine_stall_recovered(self):
        """A stall longer than the request timeout: the driver times
        out, and the stalled run's late completion unblocks the retry."""
        testbed = build_xdma_testbed(
            seed=23,
            fault_plan=one_shot(
                SITE_XDMA_ENGINE, KIND_ENGINE_STALL, delay_ns=5_000_000.0
            ),
        )
        payload, written, data = xdma_round_trip(testbed)
        assert written == len(payload) and data == payload
        assert testbed.driver.fault_timeouts >= 1
        assert testbed.driver.requests_failed == 0

    def test_lost_channel_irq_recovered_by_status_poll(self):
        """A swallowed channel interrupt: the timeout path reads the
        status register, sees DESC_COMPLETED, and completes without a
        full re-submit."""
        testbed = build_xdma_testbed(
            seed=24, fault_plan=one_shot(SITE_XDMA_ENGINE, KIND_LOST_IRQ)
        )
        payload, written, data = xdma_round_trip(testbed)
        assert written == len(payload) and data == payload
        assert testbed.xdma.irqs_lost == 1
        assert testbed.driver.lost_irq_recoveries == 1
        assert testbed.driver.requests_failed == 0

    def test_spurious_user_irq_harmless(self):
        """A duplicated usr_irq (C2H-notification design) must not
        corrupt the poll/read flow."""
        testbed = build_xdma_testbed(
            seed=25,
            profile=PAPER_PROFILE.with_xdma_c2h_interrupt(),
            fault_plan=one_shot(SITE_XDMA_ENGINE, KIND_SPURIOUS_USR_IRQ),
        )
        from repro.host.chardev import sys_poll

        kernel, driver = testbed.kernel, testbed.driver
        payload = bytes(range(64))

        def app():
            yield from sys_write(kernel, driver, payload)
            yield from sys_poll(kernel, driver)
            data = yield from sys_read(kernel, driver, len(payload))
            return data

        process = testbed.sim.spawn(app())
        data = testbed.sim.run_until_triggered(process)
        assert data == payload
        assert testbed.xdma.spurious_user_irqs == 1


class TestPcieLinkFaults:
    def test_upstream_tlp_drop_recovered(self):
        """Dropping the first upstream posted write (the H2C completion
        MSI) forces the request-timeout path; the transfer must still
        complete."""
        testbed = build_xdma_testbed(
            seed=31, fault_plan=one_shot(SITE_PCIE_UP, KIND_TLP_DROP)
        )
        payload, written, data = xdma_round_trip(testbed)
        assert written == len(payload) and data == payload
        assert testbed.xdma.endpoint.link.upstream.tlps_dropped == 1
        assert testbed.driver.fault_timeouts >= 1
        assert testbed.driver.requests_failed == 0

    def test_upstream_tlp_delay_absorbed(self):
        testbed = build_xdma_testbed(
            seed=32,
            fault_plan=one_shot(SITE_PCIE_UP, KIND_TLP_DELAY, delay_ns=200_000.0),
        )
        payload, written, data = xdma_round_trip(testbed)
        assert written == len(payload) and data == payload
        assert testbed.xdma.endpoint.link.upstream.tlps_delayed == 1

    def test_upstream_tlp_corrupt_counted_and_bounded(self):
        """Payload corruption flips one byte but preserves the TLP
        length invariant; the datapath keeps moving the same byte
        counts."""
        testbed = build_virtio_testbed(
            seed=33, fault_plan=one_shot(SITE_PCIE_UP, KIND_TLP_CORRUPT)
        )
        payload = b"\x5a" * 96
        data = virtio_echo(testbed, payload)
        link = testbed.device.xdma.endpoint.link
        assert link.upstream.tlps_corrupted == 1
        assert len(data) == len(payload)


class TestHostIrqFaults:
    def test_lost_msi_recovered(self):
        """An MSI lost between root complex and interrupt controller is
        indistinguishable from a lost device IRQ: the XDMA timeout path
        must recover."""
        testbed = build_xdma_testbed(
            seed=41, fault_plan=one_shot(SITE_HOST_IRQ, KIND_LOST_MSI)
        )
        payload, written, data = xdma_round_trip(testbed)
        assert written == len(payload) and data == payload
        assert testbed.kernel.irqc.msis_lost == 1
        assert testbed.driver.requests_failed == 0

    def test_duplicated_msi_harmless(self):
        """A doubled MSI triggers one extra NAPI poll that finds
        nothing; the echo must arrive intact exactly once."""
        testbed = build_virtio_testbed(
            seed=42, fault_plan=one_shot(SITE_HOST_IRQ, KIND_DUP_MSI)
        )
        payload = bytes(range(128))
        data = virtio_echo(testbed, payload)
        assert data == payload
        assert testbed.kernel.irqc.msis_duplicated == 1


class TestVirtioControllerFaults:
    def test_lost_notification_rekicked_by_watchdog(self):
        """A swallowed doorbell: the TX watchdog detects the stalled
        queue and re-kicks it without a device reset."""
        testbed = build_virtio_testbed(
            seed=51, fault_plan=one_shot(SITE_VIRTIO_CTRL, KIND_LOST_NOTIFY)
        )
        payload = bytes(range(64))
        data = virtio_echo(testbed, payload)
        assert data == payload
        driver = testbed.driver
        assert driver.watchdog_rekicks >= 1
        assert driver.device_resets == 0

    def test_used_ring_write_delay_absorbed(self):
        testbed = build_virtio_testbed(
            seed=52,
            fault_plan=one_shot(SITE_VIRTIO_CTRL, KIND_USED_DELAY, delay_ns=50_000.0),
        )
        payload = bytes(range(64))
        data = virtio_echo(testbed, payload)
        assert data == payload
        assert testbed.injector.total_injected == 1

    def test_malformed_chain_forces_reset_and_recovers(self):
        """A self-referential descriptor chain latches NEEDS_RESET; the
        driver must reset, renegotiate, replay, and deliver the echo."""
        testbed = build_virtio_testbed(
            seed=53, fault_plan=one_shot(SITE_VIRTIO_CTRL, KIND_MALFORMED_CHAIN)
        )
        payload = bytes(range(64))
        data = virtio_echo(testbed, payload)
        assert data == payload
        driver = testbed.driver
        assert driver.needs_reset_seen == 1
        assert driver.device_resets == 1
        assert driver.recovery_latencies_ps


class TestSustainedFaultTraffic:
    """The acceptance scenarios: sustained traffic under each driver's
    canonical fault completes without hangs or abandoned requests."""

    @pytest.mark.parametrize("driver", ["virtio", "xdma"])
    def test_sustained_traffic_recovers(self, driver):
        from repro.core.latency import run_virtio_payload, run_xdma_payload
        from repro.faults.plan import driver_fault_plan

        build = build_virtio_testbed if driver == "virtio" else build_xdma_testbed
        testbed = build(seed=61, fault_plan=driver_fault_plan(driver, 0.05))
        runner = run_virtio_payload if driver == "virtio" else run_xdma_payload
        result = runner(testbed, 64, 60)
        assert result.packets == 60
        assert testbed.injector.total_injected >= 1
        assert getattr(testbed.driver, "requests_failed", 0) == 0
