"""Unit-level tests of the XDMA character-device driver behaviour."""

import pytest

from repro.core.testbed import build_xdma_testbed
from repro.host.chardev import sys_read, sys_write
from repro.sim.process import ProcessError
from repro.sim.trace import Tracer


class TestDriverMmioSequence:
    def test_write_issues_three_mmio_writes_to_engine(self):
        """Per transfer: descriptor lo, descriptor hi, control(run) --
        the multi-write programming VirtIO replaces with one doorbell."""
        tracer = Tracer(enabled=True)
        testbed = build_xdma_testbed(seed=3, tracer=tracer)
        tracer.clear()

        def app():
            yield from sys_write(testbed.kernel, testbed.driver, b"x" * 64)

        process = testbed.sim.spawn(app())
        testbed.sim.run_until_triggered(process)
        testbed.sim.run()
        # MWr TLPs toward the device during one H2C transfer: 3 to
        # program/start + 1 to clear the run bit.
        writes = [
            r for r in tracer.query(kind="tlp-tx")
            if r.detail.get("tlp") == "MWr" and r.source.endswith("down")
        ]
        assert len(writes) == 4

    def test_isr_performs_status_reads(self):
        """The interrupt handler's two non-posted register reads."""
        tracer = Tracer(enabled=True)
        testbed = build_xdma_testbed(seed=3, tracer=tracer)
        tracer.clear()

        def app():
            yield from sys_write(testbed.kernel, testbed.driver, b"x" * 64)

        process = testbed.sim.spawn(app())
        testbed.sim.run_until_triggered(process)
        testbed.sim.run()
        reads = [
            r for r in tracer.query(kind="tlp-tx")
            if r.detail.get("tlp") == "MRd" and r.source.endswith("down")
        ]
        assert len(reads) == 2  # status + completed count


class TestDriverValidation:
    def test_oversized_write_rejected(self):
        testbed = build_xdma_testbed(seed=3)

        def app():
            yield from sys_write(testbed.kernel, testbed.driver, bytes((1 << 20) + 1))

        process = testbed.sim.spawn(app())
        with pytest.raises(ProcessError):
            testbed.sim.run_until_triggered(process)

    def test_zero_read_rejected(self):
        testbed = build_xdma_testbed(seed=3)

        def app():
            yield from sys_read(testbed.kernel, testbed.driver, 0)

        process = testbed.sim.spawn(app())
        with pytest.raises(ProcessError):
            testbed.sim.run_until_triggered(process)


class TestInterleaving:
    def test_concurrent_h2c_and_c2h(self):
        """The two channels are independent engines; a writer and a
        reader can be in flight simultaneously."""
        testbed = build_xdma_testbed(seed=4)
        testbed.xdma.axi_write(0, b"R" * 64)
        results = {}

        def writer():
            yield from sys_write(testbed.kernel, testbed.driver, b"W" * 64)
            results["write"] = testbed.sim.now

        def reader():
            data = yield from sys_read(testbed.kernel, testbed.driver, 64)
            results["read_data"] = data
            results["read"] = testbed.sim.now

        testbed.sim.spawn(reader())
        testbed.sim.spawn(writer())
        testbed.sim.run()
        assert "write" in results and "read" in results
        assert len(results["read_data"]) == 64
