"""Tests for the virtio-pci transport driver against the FPGA device."""

import pytest

from repro.fpga.user_logic import EchoUserLogic
from repro.host.kernel import HostKernel
from repro.pcie.enumeration import enumerate_all
from repro.pcie.root_complex import RootComplex
from repro.sim.process import ProcessError
from repro.drivers.virtio_pci import VirtioPciTransport, VirtioProbeError
from repro.virtio.constants import (
    STATUS_DRIVER_OK,
    VIRTIO_F_VERSION_1,
    VIRTIO_NET_F_CSUM,
    VIRTIO_NET_F_GUEST_TSO4,
    VIRTIO_NET_F_MAC,
)
from repro.virtio.controller.device import VirtioFpgaDevice
from repro.virtio.controller.net import VirtioNetPersonality
from repro.virtio.features import FeatureSet


@pytest.fixture
def system(sim):
    rc = RootComplex(sim)
    kernel = HostKernel(sim, rc)
    _, link = rc.create_port()
    device = VirtioFpgaDevice(sim, link, VirtioNetPersonality(EchoUserLogic(sim)))
    boot = sim.spawn(enumerate_all(rc))
    function = sim.run_until_triggered(boot)[0]
    return dict(sim=sim, kernel=kernel, device=device, function=function)


DRIVER_FEATURES = FeatureSet.of(VIRTIO_F_VERSION_1, VIRTIO_NET_F_MAC, VIRTIO_NET_F_CSUM)


class TestDiscovery:
    def test_locates_all_structures(self, system, run):
        transport = VirtioPciTransport(system["kernel"], system["function"])
        run(system["sim"], transport.discover())
        assert len(transport.windows) == 4
        assert transport.msix_table_addr != 0

    def test_rejects_non_virtio_vendor(self, sim, run):
        rc = RootComplex(sim)
        kernel = HostKernel(sim, rc)
        _, link = rc.create_port()
        from repro.fpga.xdma.core import XdmaCore
        from repro.mem.fpga_mem import Bram

        core = XdmaCore(sim, link)
        core.attach_axi(0, Bram(4096))
        boot = sim.spawn(enumerate_all(rc))
        function = sim.run_until_triggered(boot)[0]
        transport = VirtioPciTransport(kernel, function)
        with pytest.raises(ProcessError, match="not a VirtIO device"):
            run(sim, transport.discover())


class TestInitialization:
    def init(self, system):
        transport = VirtioPciTransport(system["kernel"], system["function"])

        def body():
            yield from transport.discover()
            yield from transport.initialize(DRIVER_FEATURES)

        process = system["sim"].spawn(body())
        system["sim"].run_until_triggered(process)
        system["sim"].run()
        return transport

    def test_device_reaches_driver_ok(self, system):
        self.init(system)
        assert system["device"].device_status & STATUS_DRIVER_OK

    def test_features_intersected(self, system):
        transport = self.init(system)
        assert transport.accepted_features.has(VIRTIO_F_VERSION_1)
        assert transport.accepted_features.has(VIRTIO_NET_F_MAC)
        # Not driver-supported, so not accepted even though offered:
        assert not transport.accepted_features.has(VIRTIO_NET_F_GUEST_TSO4)

    def test_queues_created_and_enabled(self, system):
        transport = self.init(system)
        assert len(transport.virtqueues) == 2
        for queue in system["device"].config_block.queues:
            assert queue.enabled
            assert queue.desc_addr != 0
            assert queue.driver_addr != 0
            assert queue.device_addr != 0

    def test_ring_addresses_match_device_registers(self, system):
        transport = self.init(system)
        for vq, queue in zip(transport.virtqueues, system["device"].config_block.queues):
            assert vq.addresses.desc_table == queue.desc_addr
            assert vq.addresses.avail_ring == queue.driver_addr
            assert vq.addresses.used_ring == queue.device_addr

    def test_queue_vectors_distinct(self, system):
        transport = self.init(system)
        vectors = [transport.queue_vector(i) for i in range(2)]
        assert len(set(vectors)) == 2
        assert 0 not in vectors  # vector 0 reserved for config

    def test_notify_addresses_distinct(self, system):
        transport = self.init(system)
        assert len(set(transport.notify_addrs)) == 2

    def test_msix_enabled_on_device(self, system):
        self.init(system)
        assert system["device"].xdma.endpoint.msix.table.enabled

    def test_device_config_read(self, system, run):
        transport = self.init(system)
        mac = run(system["sim"], transport.device_config_read(0, 6))
        assert mac == system["device"].personality.mac

    def test_notify_reaches_engine(self, system, run):
        transport = self.init(system)
        engine = system["device"].engines[1]
        kicks_before = engine.chains_processed

        def body():
            yield from transport.notify(1)

        run(system["sim"], body())
        system["sim"].run()
        # No chains were posted, so none processed -- but the doorbell
        # must have reached the device (service loop ran and found the
        # ring empty).
        assert engine.chains_processed == kicks_before
        assert engine.last_avail_idx == 0
