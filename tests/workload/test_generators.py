"""Generator behaviour: determinism, calibration against the paper's
ping-pong loop, and open-loop accounting invariants."""

import numpy as np
import pytest

from repro.core.latency import run_latency_sweep
from repro.core.testbed import build_virtio_testbed, build_xdma_testbed
from repro.workload import (
    ClosedLoopGenerator,
    FixedSize,
    OpenLoopGenerator,
    PoissonArrivals,
    WorkloadError,
)


class TestClosedLoopCalibration:
    """ISSUE acceptance: closed-loop N=1 reproduces the ping-pong sweep."""

    def test_virtio_n1_matches_ping_pong_mean(self):
        sweep = run_latency_sweep(build_virtio_testbed(seed=0), [64], packets=150)
        metrics = build_virtio_testbed(seed=0).run_workload(
            ClosedLoopGenerator(outstanding=1, sizes=FixedSize(64), packets=150)
        )
        pingpong = float(sweep[64].rtt_ps.mean())
        closed = float(metrics.latency_ps.mean())
        assert closed == pytest.approx(pingpong, rel=0.05)

    def test_xdma_n1_matches_ping_pong_mean(self):
        sweep = run_latency_sweep(build_xdma_testbed(seed=0), [64], packets=150)
        metrics = build_xdma_testbed(seed=0).run_workload(
            ClosedLoopGenerator(outstanding=1, sizes=FixedSize(64), packets=150)
        )
        pingpong = float(sweep[64].rtt_ps.mean())
        closed = float(metrics.latency_ps.mean())
        assert closed == pytest.approx(pingpong, rel=0.05)

    def test_virtio_throughput_scales_with_outstanding(self):
        one = build_virtio_testbed(seed=1).run_workload(
            ClosedLoopGenerator(outstanding=1, sizes=FixedSize(64), packets=120)
        )
        four = build_virtio_testbed(seed=1).run_workload(
            ClosedLoopGenerator(outstanding=4, sizes=FixedSize(64), packets=120)
        )
        assert four.achieved_pps > one.achieved_pps * 1.4


class TestDeterminism:
    def _run_open(self, seed: int):
        testbed = build_virtio_testbed(seed=seed)
        generator = OpenLoopGenerator(
            PoissonArrivals(rate_pps=50_000), FixedSize(64), packets=100
        )
        return testbed.run_workload(generator)

    def test_same_seed_identical_samples(self):
        first, second = self._run_open(5), self._run_open(5)
        assert np.array_equal(first.latency_ps, second.latency_ps)
        assert np.array_equal(first.occupancy_t_ps, second.occupancy_t_ps)
        assert np.array_equal(first.occupancy_n, second.occupancy_n)
        assert first.sent == second.sent
        assert first.dropped == second.dropped
        assert first.backpressured == second.backpressured

    def test_different_seed_differs(self):
        assert not np.array_equal(
            self._run_open(5).latency_ps, self._run_open(6).latency_ps
        )

    def test_closed_loop_same_seed_identical(self):
        def run():
            return build_xdma_testbed(seed=2).run_workload(
                ClosedLoopGenerator(outstanding=2, sizes=FixedSize(64), packets=60)
            )

        assert np.array_equal(run().latency_ps, run().latency_ps)


class TestOpenLoopAccounting:
    def test_counts_consistent_below_saturation(self):
        metrics = build_virtio_testbed(seed=0).run_workload(
            OpenLoopGenerator(PoissonArrivals(10_000), FixedSize(64), packets=80)
        )
        assert metrics.mode == "open"
        assert metrics.offered_pps == 10_000
        assert metrics.sent == metrics.completed == 80
        assert metrics.dropped == 0
        assert np.all(metrics.latency_ps > 0)
        assert metrics.achieved_pps == pytest.approx(10_000, rel=0.35)
        assert 0 < metrics.mean_in_flight < 2
        assert metrics.occupancy_n.min() >= 0

    def test_overload_drops_and_saturates(self):
        # Far past the knee: the TX ring fills, the qdisc analogue drops,
        # and achieved throughput decouples from offered load.
        offered = 500_000.0
        metrics = build_virtio_testbed(seed=0).run_workload(
            OpenLoopGenerator(PoissonArrivals(offered), FixedSize(64), packets=150)
        )
        assert metrics.dropped > 0
        assert metrics.sent + metrics.dropped == 150
        assert metrics.completed == metrics.sent
        assert metrics.achieved_pps < 0.5 * offered

    def test_xdma_open_loop_queues(self):
        metrics = build_xdma_testbed(seed=0).run_workload(
            OpenLoopGenerator(PoissonArrivals(60_000), FixedSize(64), packets=100)
        )
        assert metrics.completed == metrics.sent == 100
        # Offered rate beyond XDMA capacity: the software queue builds.
        assert metrics.peak_in_flight > 4

    def test_latency_includes_queue_wait(self):
        low = build_xdma_testbed(seed=0).run_workload(
            OpenLoopGenerator(PoissonArrivals(5_000), FixedSize(64), packets=80)
        )
        high = build_xdma_testbed(seed=0).run_workload(
            OpenLoopGenerator(PoissonArrivals(80_000), FixedSize(64), packets=80)
        )
        assert (
            high.latency_percentiles_us()[99.0]
            > 2 * low.latency_percentiles_us()[99.0]
        )


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(WorkloadError):
            OpenLoopGenerator(PoissonArrivals(1000), FixedSize(64), packets=0)
        with pytest.raises(WorkloadError):
            OpenLoopGenerator(
                PoissonArrivals(1000), FixedSize(64), packets=10, queue_limit=0
            )
        with pytest.raises(WorkloadError):
            ClosedLoopGenerator(outstanding=0, sizes=FixedSize(64), packets=10)
        with pytest.raises(WorkloadError):
            ClosedLoopGenerator(outstanding=8, sizes=FixedSize(64), packets=4)

    def test_unknown_testbed_rejected(self):
        with pytest.raises(TypeError):
            OpenLoopGenerator(PoissonArrivals(1000), FixedSize(64), packets=10).run(
                object()
            )
        with pytest.raises(TypeError):
            ClosedLoopGenerator(1, FixedSize(64), packets=10).run(object())
