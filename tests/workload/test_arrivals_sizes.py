"""Unit tests for the arrival processes and size distributions."""

import numpy as np
import pytest

from repro.sim.time import S
from repro.workload.arrivals import (
    DeterministicArrivals,
    MmppArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.workload.sizes import (
    EmpiricalMix,
    FixedSize,
    UniformSize,
    make_sizes,
)


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestArrivals:
    def test_deterministic_gaps_constant(self):
        gaps = DeterministicArrivals(rate_pps=10_000).intervals(rng(), 100)
        assert gaps.dtype == np.int64
        assert np.all(gaps == gaps[0])
        assert gaps[0] == S // 10_000

    def test_poisson_mean_matches_rate(self):
        process = PoissonArrivals(rate_pps=50_000)
        gaps = process.intervals(rng(), 20_000)
        assert gaps.mean() == pytest.approx(process.mean_interval_ps, rel=0.03)
        assert np.all(gaps >= 1)

    def test_mmpp_mean_matches_rate(self):
        process = MmppArrivals(rate_pps=50_000, on_fraction=0.25, cycle_s=1e-3)
        gaps = process.intervals(rng(), 20_000)
        assert gaps.mean() == pytest.approx(process.mean_interval_ps, rel=0.25)

    def test_mmpp_is_burstier_than_poisson(self):
        # Coefficient of variation: MMPP's on-off structure exceeds the
        # exponential's CV of 1.
        poisson = PoissonArrivals(50_000).intervals(rng(1), 10_000)
        mmpp = MmppArrivals(50_000).intervals(rng(1), 10_000)
        cv = lambda g: g.std() / g.mean()
        assert cv(mmpp) > cv(poisson)

    def test_same_seed_identical_streams(self):
        process = PoissonArrivals(rate_pps=30_000)
        assert np.array_equal(process.intervals(rng(7), 500), process.intervals(rng(7), 500))

    def test_arrival_times_cumulative(self):
        process = DeterministicArrivals(rate_pps=1_000_000)
        times = process.arrival_times(rng(), 10)
        assert np.all(np.diff(times) > 0)
        assert times[0] == process.intervals(rng(), 1)[0]

    def test_factory(self):
        assert isinstance(make_arrivals("deterministic", 1000), DeterministicArrivals)
        assert isinstance(make_arrivals("poisson", 1000), PoissonArrivals)
        assert isinstance(make_arrivals("bursty", 1000), MmppArrivals)
        with pytest.raises(ValueError):
            make_arrivals("uniform", 1000)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate_pps=0)
        with pytest.raises(ValueError):
            MmppArrivals(rate_pps=1000, on_fraction=1.5)
        with pytest.raises(ValueError):
            MmppArrivals(rate_pps=1000, cycle_s=0)
        with pytest.raises(ValueError):
            DeterministicArrivals(1000).intervals(rng(), -1)


class TestSizes:
    def test_fixed(self):
        dist = FixedSize(256)
        assert dist.sample(rng()) == 256
        assert np.all(dist.sample_many(rng(), 50) == 256)
        assert dist.mean_bytes == 256.0

    def test_uniform_in_range(self):
        dist = UniformSize(64, 128)
        samples = dist.sample_many(rng(), 1000)
        assert samples.min() >= 64 and samples.max() <= 128
        assert 64 <= dist.sample(rng()) <= 128

    def test_empirical_mix_draws_only_points(self):
        dist = EmpiricalMix((64, 1024), weights=(3.0, 1.0))
        samples = dist.sample_many(rng(), 2000)
        assert set(np.unique(samples)) == {64, 1024}
        # 3:1 weighting: small payloads dominate.
        assert (samples == 64).sum() > (samples == 1024).sum()
        assert dist.mean_bytes == pytest.approx(0.75 * 64 + 0.25 * 1024)

    def test_default_mix_is_paper_sweep(self):
        from repro.core.calibration import PAPER_PAYLOAD_SIZES

        samples = EmpiricalMix().sample_many(rng(), 500)
        assert set(np.unique(samples)) <= set(PAPER_PAYLOAD_SIZES)

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedSize(4)  # below the sequence-stamp minimum
        with pytest.raises(ValueError):
            FixedSize(100_000)
        with pytest.raises(ValueError):
            UniformSize(256, 64)
        with pytest.raises(ValueError):
            EmpiricalMix((64,), weights=(1.0, 2.0))
        with pytest.raises(ValueError):
            EmpiricalMix(())

    def test_make_sizes(self):
        assert isinstance(make_sizes([64]), FixedSize)
        assert isinstance(make_sizes([64, 256]), EmpiricalMix)
        with pytest.raises(ValueError):
            make_sizes([])
