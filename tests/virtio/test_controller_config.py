"""Tests for the FPGA-side VirtIO configuration structures.

These poke the controller's register file directly (as MMIO would),
without a host driver, to pin down the register semantics: feature
windows, queue selection, status FSM, notify doorbells, ISR
read-to-clear, device-config rendering.
"""

import pytest

from repro.fpga.user_logic import EchoUserLogic
from repro.pcie.link import LinkConfig, PcieLink
from repro.pcie.root_complex import RootComplex
from repro.virtio.constants import (
    STATUS_ACKNOWLEDGE,
    STATUS_DRIVER,
    STATUS_DRIVER_OK,
    STATUS_FEATURES_OK,
    VIRTIO_F_VERSION_1,
    VIRTIO_ISR_QUEUE,
    VIRTIO_MSI_NO_VECTOR,
    VIRTIO_NET_F_MAC,
    VIRTIO_PCI_VENDOR_ID,
    pci_device_id,
)
from repro.virtio.controller.device import VirtioFpgaDevice
from repro.virtio.controller.net import VirtioNetPersonality
from repro.virtio.pci_transport import COMMON_CFG


@pytest.fixture
def device(sim):
    rc = RootComplex(sim)
    rc.set_msi_handler(lambda a, d: None)
    _, link = rc.create_port(LinkConfig())
    personality = VirtioNetPersonality(EchoUserLogic(sim))
    return VirtioFpgaDevice(sim, link, personality)


def common_write(device, field, value):
    base = device.layout.common_offset
    size = COMMON_CFG.size_of(field)
    device.config_block.regs.mmio_write(
        base + COMMON_CFG.offset_of(field), value.to_bytes(size, "little")
    )


def common_read(device, field):
    base = device.layout.common_offset
    size = COMMON_CFG.size_of(field)
    raw = device.config_block.regs.mmio_read(base + COMMON_CFG.offset_of(field), size)
    return int.from_bytes(raw, "little")


class TestIdentity:
    def test_pci_ids_are_virtio(self, device):
        """Section II-C requirement (i)."""
        assert device.xdma.endpoint.config.vendor_id == VIRTIO_PCI_VENDOR_ID
        assert device.xdma.endpoint.config.device_id == pci_device_id(1)

    def test_capability_list_has_virtio_caps(self, device):
        """Section II-C requirement (iii)."""
        from repro.pcie.config_space import CAP_ID_VENDOR_SPECIFIC

        offsets = device.xdma.endpoint.config.find_capabilities(CAP_ID_VENDOR_SPECIFIC)
        assert len(offsets) == 4


class TestFeatureWindows:
    def test_device_features_windowed(self, device):
        common_write(device, "device_feature_select", 0)
        word0 = common_read(device, "device_feature")
        common_write(device, "device_feature_select", 1)
        word1 = common_read(device, "device_feature")
        assert word0 & (1 << VIRTIO_NET_F_MAC)
        assert word1 & 1  # VIRTIO_F_VERSION_1 is bit 32

    def test_driver_features_accumulate(self, device):
        common_write(device, "driver_feature_select", 0)
        common_write(device, "driver_feature", 1 << VIRTIO_NET_F_MAC)
        common_write(device, "driver_feature_select", 1)
        common_write(device, "driver_feature", 1)
        accepted = device.accepted_features
        assert accepted.has(VIRTIO_NET_F_MAC)
        assert accepted.has(VIRTIO_F_VERSION_1)


class TestQueueRegisters:
    def test_queue_select_switches_state(self, device):
        common_write(device, "queue_select", 0)
        common_write(device, "queue_desc", 0x1000)
        common_write(device, "queue_select", 1)
        common_write(device, "queue_desc", 0x2000)
        assert device.config_block.queue(0).desc_addr == 0x1000
        assert device.config_block.queue(1).desc_addr == 0x2000

    def test_queue_size_readback(self, device):
        common_write(device, "queue_select", 0)
        assert common_read(device, "queue_size") == device.queue_max_size

    def test_queue_size_shrink(self, device):
        common_write(device, "queue_select", 0)
        common_write(device, "queue_size", 64)
        assert device.config_block.queue(0).size == 64

    def test_invalid_queue_size_ignored(self, device):
        common_write(device, "queue_select", 0)
        common_write(device, "queue_size", 100)  # not a power of two
        assert device.config_block.queue(0).size == device.queue_max_size
        common_write(device, "queue_size", 1024)  # above max
        assert device.config_block.queue(0).size == device.queue_max_size

    def test_out_of_range_queue_reads_size_zero(self, device):
        common_write(device, "queue_select", 40)
        assert common_read(device, "queue_size") == 0

    def test_notify_off_equals_queue_index(self, device):
        for q in range(2):
            common_write(device, "queue_select", q)
            assert common_read(device, "queue_notify_off") == q

    def test_msix_vector_programming(self, device):
        common_write(device, "queue_select", 1)
        assert common_read(device, "queue_msix_vector") == VIRTIO_MSI_NO_VECTOR
        common_write(device, "queue_msix_vector", 2)
        assert device.config_block.queue(1).msix_vector == 2

    def test_num_queues(self, device):
        assert common_read(device, "num_queues") == 2

    def test_64bit_ring_addresses(self, device):
        common_write(device, "queue_select", 0)
        common_write(device, "queue_driver", 0x1_2345_6789)
        assert device.config_block.queue(0).driver_addr == 0x1_2345_6789
        assert common_read(device, "queue_driver") == 0x1_2345_6789


class TestStatusFsm:
    def test_handshake_progression(self, device):
        for status in (
            STATUS_ACKNOWLEDGE,
            STATUS_ACKNOWLEDGE | STATUS_DRIVER,
        ):
            common_write(device, "device_status", status)
            assert common_read(device, "device_status") == status

    def test_features_ok_accepted_when_valid(self, device):
        common_write(device, "driver_feature_select", 1)
        common_write(device, "driver_feature", 1)  # VERSION_1
        status = STATUS_ACKNOWLEDGE | STATUS_DRIVER | STATUS_FEATURES_OK
        common_write(device, "device_status", status)
        assert common_read(device, "device_status") & STATUS_FEATURES_OK

    def test_features_ok_rejected_without_version1(self, device):
        status = STATUS_ACKNOWLEDGE | STATUS_DRIVER | STATUS_FEATURES_OK
        common_write(device, "device_status", status)
        assert not common_read(device, "device_status") & STATUS_FEATURES_OK

    def test_features_ok_rejected_for_unoffered(self, device):
        common_write(device, "driver_feature_select", 0)
        common_write(device, "driver_feature", 1 << 7)  # GUEST_TSO4, unoffered
        common_write(device, "driver_feature_select", 1)
        common_write(device, "driver_feature", 1)
        status = STATUS_ACKNOWLEDGE | STATUS_DRIVER | STATUS_FEATURES_OK
        common_write(device, "device_status", status)
        assert not common_read(device, "device_status") & STATUS_FEATURES_OK

    def test_reset_clears_everything(self, device):
        common_write(device, "device_status", STATUS_ACKNOWLEDGE | STATUS_DRIVER)
        common_write(device, "queue_select", 0)
        common_write(device, "queue_desc", 0x1000)
        common_write(device, "queue_enable", 1)
        common_write(device, "device_status", 0)
        assert common_read(device, "device_status") == 0
        assert device.config_block.queue(0).desc_addr == 0
        assert not device.config_block.queue(0).enabled

    def test_driver_ok_starts_engines_for_enabled_queues(self, device, sim):
        common_write(device, "driver_feature_select", 1)
        common_write(device, "driver_feature", 1)
        for q in range(2):
            common_write(device, "queue_select", q)
            common_write(device, "queue_desc", 0x10000 + q * 0x10000)
            common_write(device, "queue_driver", 0x40000 + q * 0x10000)
            common_write(device, "queue_device", 0x80000 + q * 0x10000)
            common_write(device, "queue_enable", 1)
        common_write(
            device,
            "device_status",
            STATUS_ACKNOWLEDGE | STATUS_DRIVER | STATUS_FEATURES_OK | STATUS_DRIVER_OK,
        )
        assert set(device.engines) == {0, 1}

    def test_disabled_queue_gets_no_engine(self, device):
        common_write(device, "driver_feature_select", 1)
        common_write(device, "driver_feature", 1)
        common_write(device, "queue_select", 1)
        common_write(device, "queue_desc", 0x10000)
        common_write(device, "queue_driver", 0x40000)
        common_write(device, "queue_device", 0x80000)
        common_write(device, "queue_enable", 1)
        common_write(
            device,
            "device_status",
            STATUS_ACKNOWLEDGE | STATUS_DRIVER | STATUS_FEATURES_OK | STATUS_DRIVER_OK,
        )
        assert set(device.engines) == {1}


class TestIsrAndDeviceConfig:
    def test_isr_read_to_clear(self, device):
        device.config_block.set_isr(VIRTIO_ISR_QUEUE)
        isr_offset = device.layout.isr_offset
        first = device.config_block.regs.mmio_read(isr_offset, 1)[0]
        second = device.config_block.regs.mmio_read(isr_offset, 1)[0]
        assert first == VIRTIO_ISR_QUEUE
        assert second == 0

    def test_device_config_contains_mac(self, device):
        base = device.layout.device_offset
        mac = device.config_block.regs.mmio_read(base, 6)
        assert mac == device.personality.mac

    def test_device_config_contains_mtu(self, device):
        base = device.layout.device_offset
        mtu = int.from_bytes(device.config_block.regs.mmio_read(base + 10, 2), "little")
        assert mtu == 1500
