"""Tests for the controller's DMA port (staging, validation, stats)."""

import pytest

from repro.fpga.xdma.core import XdmaCore
from repro.mem.fpga_mem import Bram
from repro.pcie.enumeration import enumerate_all
from repro.pcie.root_complex import RootComplex
from repro.virtio.controller.dma_port import (
    NUM_STAGING_SLOTS,
    STAGING_SLOT_SIZE,
    ControllerDmaPort,
)


@pytest.fixture
def port(sim):
    rc = RootComplex(sim)
    rc.set_msi_handler(lambda a, d: None)
    _, link = rc.create_port()
    core = XdmaCore(sim, link)
    bram = Bram(64 << 10)
    core.attach_axi(0, bram)
    boot = sim.spawn(enumerate_all(rc))
    sim.run_until_triggered(boot)
    dma_port = ControllerDmaPort(sim, core, bram, staging_base=0x8000)
    return dict(sim=sim, rc=rc, port=dma_port)


class TestHostRead:
    def test_reads_host_bytes(self, port, run):
        port["rc"].host_memory.write(0x5000, b"staging test data")

        def body():
            data = yield port["port"].host_read(0x5000, 17)
            return data

        assert run(port["sim"], body()) == b"staging test data"

    def test_slot_rotation_preserves_pipelined_reads(self, port):
        """More outstanding reads than one slot: each completion must
        still see its own data."""
        sim = port["sim"]
        for i in range(NUM_STAGING_SLOTS + 3):
            port["rc"].host_memory.write(0x6000 + i * 64, bytes([i]) * 32)
        results = []
        for i in range(NUM_STAGING_SLOTS + 3):
            ev = port["port"].host_read(0x6000 + i * 64, 32)
            ev.on_trigger(lambda e, i=i: results.append((i, e.value)))
        sim.run()
        for i, data in results:
            assert data == bytes([i]) * 32

    def test_size_limits(self, port):
        with pytest.raises(ValueError):
            port["port"].host_read(0, 0)
        with pytest.raises(ValueError):
            port["port"].host_read(0, STAGING_SLOT_SIZE + 1)


class TestHostWrite:
    def test_writes_host_bytes(self, port, run):
        def body():
            yield port["port"].host_write(0x7000, b"written by fpga")

        run(port["sim"], body())
        assert port["rc"].host_memory.read(0x7000, 15) == b"written by fpga"

    def test_write_order_preserved(self, port, run):
        def body():
            port["port"].host_write(0x8000, b"first!")
            yield port["port"].host_write(0x8000, b"second")

        run(port["sim"], body())
        port["sim"].run()
        assert port["rc"].host_memory.read(0x8000, 6) == b"second"

    def test_size_limits(self, port):
        with pytest.raises(ValueError):
            port["port"].host_write(0, b"")


class TestAccounting:
    def test_stats(self, port, run):
        def body():
            yield port["port"].host_read(0x100, 8)
            yield port["port"].host_write(0x200, b"12345")

        run(port["sim"], body())
        stats = port["port"].stats
        assert stats["reads_issued"] == 1
        assert stats["writes_issued"] == 1
        assert stats["bytes_read"] == 8
        assert stats["bytes_written"] == 5

    def test_staging_area_bounds_checked(self, sim):
        rc = RootComplex(sim)
        rc.set_msi_handler(lambda a, d: None)
        _, link = rc.create_port()
        core = XdmaCore(sim, link)
        small = Bram(1024)
        core.attach_axi(0, small)
        with pytest.raises(ValueError, match="staging"):
            ControllerDmaPort(sim, core, small, staging_base=0)
