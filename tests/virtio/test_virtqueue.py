"""Tests for split-virtqueue layout and driver-side operations."""

import pytest

from repro.mem.dma import DmaAllocator
from repro.mem.physical import PhysicalMemory
from repro.virtio.virtqueue import (
    AVAIL_HEADER_SIZE,
    DESCRIPTOR_SIZE,
    USED_HEADER_SIZE,
    VIRTQ_AVAIL_F_NO_INTERRUPT,
    VIRTQ_DESC_F_NEXT,
    VIRTQ_DESC_F_WRITE,
    DriverVirtqueue,
    VirtqDescriptor,
    VirtqueueAddresses,
    VirtqueueError,
    ring_layout,
)


def make_vq(size=16):
    mem = PhysicalMemory()
    alloc = DmaAllocator(mem)
    _, _, _, total = ring_layout(size)
    buffer = alloc.alloc(total, alignment=4096)
    return DriverVirtqueue(0, size, buffer), mem


class TestDescriptorCodec:
    def test_roundtrip(self):
        desc = VirtqDescriptor(addr=0x1234_5678_9ABC, length=2048,
                               flags=VIRTQ_DESC_F_NEXT | VIRTQ_DESC_F_WRITE, next_index=7)
        assert VirtqDescriptor.decode(desc.encode()) == desc

    def test_flags(self):
        desc = VirtqDescriptor(addr=0, length=1, flags=VIRTQ_DESC_F_WRITE)
        assert desc.device_writable and not desc.has_next

    def test_wrong_size_rejected(self):
        with pytest.raises(VirtqueueError):
            VirtqDescriptor.decode(b"short")


class TestRingLayout:
    def test_used_ring_aligned(self):
        _, _, used_off, _ = ring_layout(256)
        assert used_off % 4096 == 0

    def test_area_sizes(self):
        desc_off, avail_off, used_off, total = ring_layout(8)
        assert avail_off - desc_off == 8 * DESCRIPTOR_SIZE
        assert used_off >= avail_off + AVAIL_HEADER_SIZE + 2 * 8
        assert total >= used_off + USED_HEADER_SIZE + 8 * 8


class TestVirtqueueAddresses:
    def test_address_arithmetic(self):
        addrs = VirtqueueAddresses(size=8, desc_table=0x1000, avail_ring=0x2000,
                                   used_ring=0x3000)
        assert addrs.desc_addr(3) == 0x1000 + 48
        assert addrs.desc_addr(9) == 0x1000 + 16  # wraps at size
        assert addrs.avail_idx_addr == 0x2002
        assert addrs.avail_entry_addr(2) == 0x2000 + 4 + 4
        assert addrs.used_idx_addr == 0x3002
        assert addrs.used_entry_addr(1) == 0x3000 + 4 + 8

    def test_non_power_of_two_rejected(self):
        with pytest.raises(VirtqueueError):
            VirtqueueAddresses(size=6, desc_table=0, avail_ring=0, used_ring=0)


class TestDriverVirtqueue:
    def test_add_buffer_writes_descriptors(self):
        vq, _ = make_vq()
        head = vq.add_buffer([(0x10000, 128)], [])
        desc = vq.read_descriptor(head)
        assert desc.addr == 0x10000
        assert desc.length == 128
        assert not desc.device_writable

    def test_chain_links_out_then_in(self):
        vq, _ = make_vq()
        head = vq.add_buffer([(0x1000, 16)], [(0x2000, 32), (0x3000, 64)])
        first = vq.read_descriptor(head)
        assert first.has_next and not first.device_writable
        second = vq.read_descriptor(first.next_index)
        assert second.has_next and second.device_writable
        third = vq.read_descriptor(second.next_index)
        assert not third.has_next and third.device_writable
        assert third.length == 64

    def test_publish_writes_avail_idx(self):
        vq, _ = make_vq()
        vq.add_buffer([(0x1000, 8)], [])
        assert vq.publish() == 1
        raw = vq.buffer.read(vq.addresses.avail_idx_addr - vq.buffer.addr, 2)
        assert int.from_bytes(raw, "little") == 1

    def test_descriptor_exhaustion(self):
        vq, _ = make_vq(size=4)
        for _ in range(4):
            vq.add_buffer([(0x1000, 8)], [])
        with pytest.raises(VirtqueueError, match="free"):
            vq.add_buffer([(0x1000, 8)], [])

    def test_used_consumption_frees_chain(self):
        vq, mem = make_vq(size=4)
        head = vq.add_buffer([(0x1000, 8), (0x2000, 8)], [])
        vq.publish()
        assert vq.num_free == 2
        # Device writes the used element + idx.
        elem = head.to_bytes(4, "little") + (0).to_bytes(4, "little")
        mem.write(vq.addresses.used_entry_addr(0), elem)
        mem.write(vq.addresses.used_idx_addr, (1).to_bytes(2, "little"))
        assert vq.has_used()
        used = vq.get_used()
        assert used.head == head
        assert vq.num_free == 4
        assert not vq.has_used()

    def test_get_used_empty_returns_none(self):
        vq, _ = make_vq()
        assert vq.get_used() is None

    def test_unknown_used_head_rejected(self):
        vq, mem = make_vq()
        mem.write(vq.addresses.used_entry_addr(0), (9).to_bytes(4, "little") + bytes(4))
        mem.write(vq.addresses.used_idx_addr, (1).to_bytes(2, "little"))
        with pytest.raises(VirtqueueError, match="unknown head"):
            vq.get_used()

    def test_interrupt_suppression_flag(self):
        vq, mem = make_vq()
        vq.set_avail_no_interrupt(True)
        flags = int.from_bytes(mem.read(vq.addresses.avail_flags_addr, 2), "little")
        assert flags == VIRTQ_AVAIL_F_NO_INTERRUPT
        vq.set_avail_no_interrupt(False)
        flags = int.from_bytes(mem.read(vq.addresses.avail_flags_addr, 2), "little")
        assert flags == 0

    def test_empty_chain_rejected(self):
        vq, _ = make_vq()
        with pytest.raises(VirtqueueError):
            vq.add_buffer([], [])

    def test_small_buffer_rejected(self):
        mem = PhysicalMemory()
        alloc = DmaAllocator(mem)
        with pytest.raises(VirtqueueError):
            DriverVirtqueue(0, 256, alloc.alloc(64))

    def test_avail_idx_wraps_16bit(self):
        vq, mem = make_vq(size=4)
        vq._avail_idx = 0xFFFF
        vq.add_buffer([(0x1000, 8)], [])
        assert vq.publish() == 0


class TestCorruptedChainWalk:
    """The used-side chain walk must reject device-corrupted chains
    instead of looping or double-freeing (the descriptor table is
    device-visible memory)."""

    def _complete(self, vq, mem, head):
        elem = head.to_bytes(4, "little") + (0).to_bytes(4, "little")
        mem.write(vq.addresses.used_entry_addr(0), elem)
        mem.write(vq.addresses.used_idx_addr, (1).to_bytes(2, "little"))

    def test_self_referential_chain_rejected(self):
        vq, mem = make_vq()
        head = vq.add_buffer([(0x1000, 8), (0x2000, 8)], [])
        vq.publish()
        vq._write_descriptor(
            head,
            VirtqDescriptor(addr=0x1000, length=8, flags=VIRTQ_DESC_F_NEXT,
                            next_index=head),
        )
        self._complete(vq, mem, head)
        with pytest.raises(VirtqueueError, match="loops back"):
            vq.get_used()

    def test_overlong_chain_rejected(self):
        vq, mem = make_vq()
        head = vq.add_buffer([(0x1000, 8), (0x2000, 8)], [])
        vq.publish()
        second = vq.read_descriptor(head).next_index
        # The last descriptor claims a continuation the driver never
        # recorded.
        vq._write_descriptor(
            second,
            VirtqDescriptor(addr=0x2000, length=8, flags=VIRTQ_DESC_F_NEXT,
                            next_index=(second + 1) % vq.size),
        )
        self._complete(vq, mem, head)
        with pytest.raises(VirtqueueError, match="longer than"):
            vq.get_used()

    def test_out_of_range_link_rejected(self):
        vq, mem = make_vq()
        head = vq.add_buffer([(0x1000, 8), (0x2000, 8)], [])
        vq.publish()
        vq._write_descriptor(
            head,
            VirtqDescriptor(addr=0x1000, length=8, flags=VIRTQ_DESC_F_NEXT,
                            next_index=99),
        )
        self._complete(vq, mem, head)
        with pytest.raises(VirtqueueError, match="out of range"):
            vq.get_used()
