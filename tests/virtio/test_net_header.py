"""Tests for the virtio_net_hdr codec."""

import pytest

from repro.virtio.net_header import (
    VIRTIO_NET_HDR_F_NEEDS_CSUM,
    VIRTIO_NET_HDR_SIZE,
    VirtioNetHeader,
    prepend_header,
    strip_header,
)


class TestVirtioNetHeader:
    def test_size(self):
        assert len(VirtioNetHeader().encode()) == VIRTIO_NET_HDR_SIZE == 12

    def test_roundtrip(self):
        hdr = VirtioNetHeader(
            flags=VIRTIO_NET_HDR_F_NEEDS_CSUM,
            gso_type=0,
            hdr_len=54,
            gso_size=1448,
            csum_start=34,
            csum_offset=6,
            num_buffers=1,
        )
        assert VirtioNetHeader.decode(hdr.encode()) == hdr

    def test_needs_csum(self):
        assert VirtioNetHeader(flags=VIRTIO_NET_HDR_F_NEEDS_CSUM).needs_csum
        assert not VirtioNetHeader().needs_csum

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError):
            VirtioNetHeader.decode(bytes(8))

    def test_prepend_strip_roundtrip(self):
        frame = b"ethernet frame bytes"
        buffer = prepend_header(frame)
        hdr, stripped = strip_header(buffer)
        assert stripped == frame
        assert hdr.num_buffers == 1
