"""Tests for feature negotiation."""

import pytest

from repro.virtio.constants import (
    VIRTIO_F_VERSION_1,
    VIRTIO_NET_F_CSUM,
    VIRTIO_NET_F_MAC,
    VIRTIO_NET_F_MTU,
)
from repro.virtio.features import (
    FeatureNegotiationError,
    FeatureSet,
    negotiate,
    validate_accepted,
)


class TestFeatureSet:
    def test_of_sets_bits(self):
        fs = FeatureSet.of(0, 5, 32)
        assert fs.has(0) and fs.has(5) and fs.has(32)
        assert not fs.has(1)

    def test_words_split_at_32(self):
        fs = FeatureSet.of(VIRTIO_F_VERSION_1, VIRTIO_NET_F_MAC)
        assert fs.word(0) == 1 << VIRTIO_NET_F_MAC
        assert fs.word(1) == 1  # bit 32 -> bit 0 of word 1

    def test_from_words_roundtrip(self):
        fs = FeatureSet.of(3, 17, 32, 38)
        rebuilt = FeatureSet.from_words([(0, fs.word(0)), (1, fs.word(1))])
        assert rebuilt == fs

    def test_intersect_union(self):
        a = FeatureSet.of(1, 2, 3)
        b = FeatureSet.of(2, 3, 4)
        assert a.intersect(b) == FeatureSet.of(2, 3)
        assert a.union(b) == FeatureSet.of(1, 2, 3, 4)

    def test_subset(self):
        assert FeatureSet.of(1).is_subset_of(FeatureSet.of(1, 2))
        assert not FeatureSet.of(3).is_subset_of(FeatureSet.of(1, 2))

    def test_with_without(self):
        fs = FeatureSet.of(1).with_bit(2).without_bit(1)
        assert fs == FeatureSet.of(2)

    def test_iteration(self):
        assert sorted(FeatureSet.of(5, 1, 33)) == [1, 5, 33]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FeatureSet.of(64)
        with pytest.raises(ValueError):
            FeatureSet(-1)


class TestNegotiation:
    def test_intersection(self):
        offered = FeatureSet.of(VIRTIO_F_VERSION_1, VIRTIO_NET_F_CSUM, VIRTIO_NET_F_MTU)
        supported = FeatureSet.of(VIRTIO_F_VERSION_1, VIRTIO_NET_F_MTU, VIRTIO_NET_F_MAC)
        accepted = negotiate(offered, supported)
        assert accepted == FeatureSet.of(VIRTIO_F_VERSION_1, VIRTIO_NET_F_MTU)

    def test_version1_required(self):
        with pytest.raises(FeatureNegotiationError):
            negotiate(FeatureSet.of(VIRTIO_NET_F_CSUM),
                      FeatureSet.of(VIRTIO_F_VERSION_1, VIRTIO_NET_F_CSUM))

    def test_device_validates_subset(self):
        offered = FeatureSet.of(VIRTIO_F_VERSION_1, VIRTIO_NET_F_CSUM)
        validate_accepted(offered, FeatureSet.of(VIRTIO_F_VERSION_1))
        with pytest.raises(FeatureNegotiationError, match="unoffered"):
            validate_accepted(offered, FeatureSet.of(VIRTIO_F_VERSION_1, VIRTIO_NET_F_MTU))

    def test_device_requires_version1(self):
        offered = FeatureSet.of(VIRTIO_F_VERSION_1, VIRTIO_NET_F_CSUM)
        with pytest.raises(FeatureNegotiationError, match="VERSION_1"):
            validate_accepted(offered, FeatureSet.of(VIRTIO_NET_F_CSUM))
