"""Edge-case tests for the device-side queue engine, driven through a
booted testbed so ring traffic travels the real DMA path."""

import pytest

from repro.core.calibration import FPGA_IP, PAPER_PROFILE, TEST_DST_PORT
from repro.core.testbed import build_virtio_testbed
from repro.virtio.controller.queue_engine import QueueRole
from repro.virtio.virtqueue import VirtqueueError


def echo(testbed, payload: bytes):
    def app():
        yield from testbed.socket.sendto(payload, FPGA_IP, TEST_DST_PORT)
        data, _ = yield from testbed.socket.recvfrom()
        return data

    process = testbed.sim.spawn(app())
    return testbed.sim.run_until_triggered(process)


class TestBatching:
    def test_burst_of_pending_chains_serviced_in_one_kick(self):
        """Multiple buffers published before the doorbell are all
        consumed by one service pass (the avail-index delta loop)."""
        testbed = build_virtio_testbed(seed=51)
        tx_engine = testbed.device.engines[1]
        socket = testbed.socket
        results = []

        def sender():
            for i in range(4):
                yield from socket.sendto(bytes([i]) * 32, FPGA_IP, TEST_DST_PORT)

        def receiver():
            for _ in range(4):
                data, _ = yield from socket.recvfrom()
                results.append(data[0])

        testbed.sim.spawn(sender())
        process = testbed.sim.spawn(receiver())
        testbed.sim.run_until_triggered(process)
        assert sorted(results) == [0, 1, 2, 3]
        assert tx_engine.chains_processed == 4

    def test_avail_index_wraparound(self):
        """More round trips than the ring size: the 16-bit indices wrap
        and the free-list accounting survives."""
        testbed = build_virtio_testbed(seed=52)
        size = testbed.driver.transport.queue(1).size
        rounds = size + 10
        for i in range(rounds):
            data = echo(testbed, bytes([i & 0xFF]) * 16)
            assert data == bytes([i & 0xFF]) * 16
        assert testbed.device.engines[1].chains_processed == rounds


class TestPrefetchModes:
    def test_prefetch_banks_chains(self):
        testbed = build_virtio_testbed(seed=53)
        rx_engine = testbed.device.engines[0]
        assert rx_engine.prefetch
        assert rx_engine.free_chain_count > 0  # banked at boot

    def test_on_demand_mode_keeps_no_bank(self):
        testbed = build_virtio_testbed(
            seed=53, profile=PAPER_PROFILE.without_prefetch()
        )
        rx_engine = testbed.device.engines[0]
        assert not rx_engine.prefetch
        assert rx_engine.free_chain_count == 0
        # The data path still works (fetch happens at delivery time).
        assert echo(testbed, b"on-demand") == b"on-demand"

    def test_on_demand_matches_prefetch_results(self):
        for profile in (PAPER_PROFILE, PAPER_PROFILE.without_prefetch()):
            testbed = build_virtio_testbed(seed=54, profile=profile)
            assert echo(testbed, b"same answer") == b"same answer"


class TestRoleEnforcement:
    def test_deliver_on_out_queue_rejected(self):
        testbed = build_virtio_testbed(seed=55)
        tx_engine = testbed.device.engines[1]
        assert tx_engine.role is QueueRole.OUT
        with pytest.raises(VirtqueueError):
            gen = tx_engine.deliver(b"wrong way")
            next(gen)


class TestInterruptSuppressionAccounting:
    def test_suppressed_completions_counted(self):
        testbed = build_virtio_testbed(seed=56)
        tx_engine = testbed.device.engines[1]
        for _ in range(3):
            echo(testbed, b"s" * 16)
        # TX interrupts are suppressed by the driver for every packet.
        assert tx_engine.interrupts_suppressed == 3
        assert tx_engine.interrupts_raised == 0

    def test_rx_interrupts_raised(self):
        testbed = build_virtio_testbed(seed=57)
        rx_engine = testbed.device.engines[0]
        for _ in range(3):
            echo(testbed, b"r" * 16)
        assert rx_engine.interrupts_raised == 3
