"""Tests for virtio-pci capability structures and layout discovery."""

import pytest

from repro.pcie.config_space import CAP_ID_VENDOR_SPECIFIC, ConfigSpace
from repro.virtio.constants import (
    VIRTIO_PCI_CAP_COMMON_CFG,
    VIRTIO_PCI_CAP_DEVICE_CFG,
    VIRTIO_PCI_CAP_ISR_CFG,
    VIRTIO_PCI_CAP_NOTIFY_CFG,
)
from repro.virtio.pci_transport import (
    COMMON_CFG,
    VirtioPciLayout,
    discover_layout,
    parse_virtio_cap,
    virtio_cap_body,
)


class TestCommonCfgLayout:
    """Offsets must match VirtIO 1.2 section 4.1.4.3 exactly."""

    @pytest.mark.parametrize(
        "field,offset,size",
        [
            ("device_feature_select", 0x00, 4),
            ("device_feature", 0x04, 4),
            ("driver_feature_select", 0x08, 4),
            ("driver_feature", 0x0C, 4),
            ("msix_config", 0x10, 2),
            ("num_queues", 0x12, 2),
            ("device_status", 0x14, 1),
            ("config_generation", 0x15, 1),
            ("queue_select", 0x16, 2),
            ("queue_size", 0x18, 2),
            ("queue_msix_vector", 0x1A, 2),
            ("queue_enable", 0x1C, 2),
            ("queue_notify_off", 0x1E, 2),
            ("queue_desc", 0x20, 8),
            ("queue_driver", 0x28, 8),
            ("queue_device", 0x30, 8),
        ],
    )
    def test_field_placement(self, field, offset, size):
        assert COMMON_CFG.offset_of(field) == offset
        assert COMMON_CFG.size_of(field) == size

    def test_total_size(self):
        assert COMMON_CFG.size == 0x38


class TestCapabilityCodec:
    def test_roundtrip_through_config_space(self):
        config = ConfigSpace(vendor_id=0x1AF4, device_id=0x1041)
        body = virtio_cap_body(VIRTIO_PCI_CAP_COMMON_CFG, bar=3, offset=0x0, length=0x38)
        cap_offset = config.add_capability(CAP_ID_VENDOR_SPECIFIC, body)
        parsed = parse_virtio_cap(config, cap_offset)
        assert parsed.cfg_type == VIRTIO_PCI_CAP_COMMON_CFG
        assert parsed.bar == 3
        assert parsed.offset == 0
        assert parsed.length == 0x38

    def test_notify_carries_multiplier(self):
        config = ConfigSpace(vendor_id=0x1AF4, device_id=0x1041)
        body = virtio_cap_body(
            VIRTIO_PCI_CAP_NOTIFY_CFG, bar=3, offset=0x3000, length=8,
            notify_off_multiplier=4,
        )
        cap_offset = config.add_capability(CAP_ID_VENDOR_SPECIFIC, body)
        parsed = parse_virtio_cap(config, cap_offset)
        assert parsed.notify_off_multiplier == 4

    def test_notify_requires_multiplier(self):
        with pytest.raises(ValueError):
            virtio_cap_body(VIRTIO_PCI_CAP_NOTIFY_CFG, bar=0, offset=0, length=4)

    def test_non_notify_rejects_multiplier(self):
        with pytest.raises(ValueError):
            virtio_cap_body(VIRTIO_PCI_CAP_ISR_CFG, bar=0, offset=0, length=1,
                            notify_off_multiplier=4)

    def test_invalid_bar_rejected(self):
        with pytest.raises(ValueError):
            virtio_cap_body(VIRTIO_PCI_CAP_ISR_CFG, bar=6, offset=0, length=1)


class TestLayout:
    def test_install_and_discover_roundtrip(self):
        config = ConfigSpace(vendor_id=0x1AF4, device_id=0x1041)
        layout = VirtioPciLayout(bar=3, num_queues=2)
        layout.install_capabilities(config)
        found = discover_layout(config)
        assert set(found) == {
            VIRTIO_PCI_CAP_COMMON_CFG,
            VIRTIO_PCI_CAP_NOTIFY_CFG,
            VIRTIO_PCI_CAP_ISR_CFG,
            VIRTIO_PCI_CAP_DEVICE_CFG,
        }
        assert found[VIRTIO_PCI_CAP_COMMON_CFG].offset == layout.common_offset
        assert found[VIRTIO_PCI_CAP_NOTIFY_CFG].notify_off_multiplier == 4

    def test_notify_addresses_distinct_per_queue(self):
        layout = VirtioPciLayout(num_queues=3)
        addrs = {layout.notify_address_offset(q) for q in range(3)}
        assert len(addrs) == 3

    def test_bar_size_covers_structures(self):
        layout = VirtioPciLayout(num_queues=2)
        assert layout.bar_size >= layout.notify_offset + layout.notify_length

    def test_first_instance_wins(self):
        config = ConfigSpace(vendor_id=0x1AF4, device_id=0x1041)
        config.add_capability(
            CAP_ID_VENDOR_SPECIFIC,
            virtio_cap_body(VIRTIO_PCI_CAP_ISR_CFG, bar=1, offset=0x100, length=1),
        )
        config.add_capability(
            CAP_ID_VENDOR_SPECIFIC,
            virtio_cap_body(VIRTIO_PCI_CAP_ISR_CFG, bar=2, offset=0x200, length=1),
        )
        assert discover_layout(config)[VIRTIO_PCI_CAP_ISR_CFG].bar == 1
