"""Device reset and renegotiation (virtio spec 2.1.2 NEEDS_RESET).

Covers the full recovery arc: the device latches
``STATUS_DEVICE_NEEDS_RESET`` and raises a configuration-change
interrupt; the driver resets the device, re-runs the 3.1.1
initialization sequence, restores its queues, and traffic continues at
the paper-claim latency.
"""

import numpy as np
import pytest

from repro.core.calibration import FPGA_IP, TEST_DST_PORT
from repro.core.testbed import build_virtio_testbed
from repro.faults.plan import reset_storm_plan
from repro.virtio.constants import (
    STATUS_DEVICE_NEEDS_RESET,
    VIRTIO_F_VERSION_1,
    VIRTIO_NET_F_MAC,
)

RX_POOL_SIZE = 64


def timed_echo(testbed, payload):
    """One UDP echo; returns (data, rtt_ps)."""
    socket = testbed.socket

    def app():
        yield from socket.sendto(payload, FPGA_IP, TEST_DST_PORT)
        data, _ = yield from socket.recvfrom()
        return data

    start = testbed.sim.now
    process = testbed.sim.spawn(app())
    data = testbed.sim.run_until_triggered(process)
    return data, testbed.sim.now - start


class TestNeedsResetRecovery:
    @pytest.fixture()
    def recovered(self):
        """A testbed taken through traffic -> NEEDS_RESET -> recovery."""
        testbed = build_virtio_testbed(seed=83)
        before = [timed_echo(testbed, bytes([i]) * 64) for i in range(4)]
        testbed.device.mark_needs_reset("test-initiated")
        assert testbed.device.device_status & STATUS_DEVICE_NEEDS_RESET
        testbed.sim.run()  # deliver config IRQ, run the recovery to completion
        return testbed, before

    def test_driver_observes_needs_reset(self, recovered):
        testbed, _ = recovered
        assert testbed.driver.needs_reset_seen == 1
        assert testbed.driver.device_resets == 1

    def test_status_cleared_and_renegotiated(self, recovered):
        testbed, _ = recovered
        device = testbed.device
        assert not device.device_status & STATUS_DEVICE_NEEDS_RESET
        assert device.driver_ok
        accepted = device.accepted_features
        assert accepted.has(VIRTIO_F_VERSION_1)
        assert accepted.has(VIRTIO_NET_F_MAC)

    def test_queues_drained_and_rebuilt(self, recovered):
        testbed, _ = recovered
        driver = testbed.driver
        assert driver._pending_tx == {}
        assert driver._tx_outstanding == 0
        assert len(driver._rx_buffers) == RX_POOL_SIZE
        assert not driver._recovering

    def test_traffic_resumes_intact(self, recovered):
        testbed, _ = recovered
        for i in range(4):
            payload = bytes([0x80 + i]) * 64
            data, _ = timed_echo(testbed, payload)
            assert data == payload

    def test_latency_restored_to_paper_claim(self, recovered):
        """Post-recovery round trips must match the pre-reset latency
        -- the reset may not leave the stack degraded."""
        testbed, before = recovered
        before_rtt = min(rtt for _, rtt in before)
        after = [timed_echo(testbed, bytes(64))[1] for _ in range(4)]
        assert min(after) <= before_rtt * 1.2

    def test_recovery_latency_recorded(self, recovered):
        testbed, _ = recovered
        assert len(testbed.driver.recovery_latencies_ps) == 1
        assert testbed.driver.recovery_latencies_ps[0] > 0


class TestResetMidTraffic:
    def test_reset_storm_does_not_lose_packets(self):
        """Repeated malformed-chain resets *during* a measurement run:
        every echo still arrives (the run only completes if it does)
        and no request is abandoned."""
        from repro.core.latency import run_virtio_payload

        packets = 60
        testbed = build_virtio_testbed(seed=89, fault_plan=reset_storm_plan(15))
        result = run_virtio_payload(testbed, 64, packets)
        driver = testbed.driver
        assert result.packets == packets
        assert driver.device_resets >= 2
        assert driver.needs_reset_seen == driver.device_resets
        assert driver.requests_failed == 0
        # End-of-run steady state: nothing in flight beyond the final
        # chain parked completed-but-uncleaned in the used ring.
        assert len(driver._pending_tx) <= 1
        assert driver._tx_outstanding == len(driver._pending_tx)

    def test_reset_storm_median_latency_stays_calibrated(self):
        """Resets inflate the tail, not the body: the median round trip
        under a sparse reset storm stays close to fault-free."""
        from repro.core.latency import run_virtio_payload

        packets = 60
        clean = build_virtio_testbed(seed=91)
        clean_median = np.median(
            run_virtio_payload(clean, 64, packets).adjusted_rtt_ps
        )
        stormy = build_virtio_testbed(seed=91, fault_plan=reset_storm_plan(20))
        storm_median = np.median(
            run_virtio_payload(stormy, 64, packets).adjusted_rtt_ps
        )
        assert stormy.driver.device_resets >= 1
        assert storm_median <= clean_median * 1.3
