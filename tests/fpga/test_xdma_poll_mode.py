"""Tests for the XDMA engine's poll-mode writeback (the interrupt-free
completion path the real driver offers as an alternative)."""

import pytest

from repro.fpga.xdma import XdmaCore, XdmaDescriptor, regs
from repro.mem.dma import DmaAllocator
from repro.mem.fpga_mem import Bram
from repro.pcie.enumeration import enumerate_all
from repro.pcie.root_complex import RootComplex


@pytest.fixture
def system(sim):
    rc = RootComplex(sim)
    msis = []
    rc.set_msi_handler(lambda a, d: msis.append(d))
    _, link = rc.create_port()
    core = XdmaCore(sim, link)
    core.attach_axi(0, Bram(64 << 10))
    boot = sim.spawn(enumerate_all(rc))
    function = sim.run_until_triggered(boot)[0]
    return dict(sim=sim, rc=rc, core=core, bar1=function.bars[1].address,
                msis=msis, alloc=DmaAllocator(rc.host_memory))


class TestPollModeWriteback:
    def test_completed_count_written_to_host(self, system):
        sim, rc, alloc = system["sim"], system["rc"], system["alloc"]
        bar1 = system["bar1"]
        wb = alloc.alloc(8)
        desc_buf = alloc.alloc(32)
        src = alloc.alloc(64)
        desc_buf.write(XdmaDescriptor(src_addr=src.addr, dst_addr=0, length=64).encode())

        base = bar1 + regs.H2C_CHANNEL_BASE
        rc.mmio_write(base + regs.CHAN_POLL_MODE_WB_LO,
                      (wb.addr & 0xFFFFFFFF).to_bytes(4, "little"))
        rc.mmio_write(base + regs.CHAN_POLL_MODE_WB_HI,
                      (wb.addr >> 32).to_bytes(4, "little"))
        sgdma = bar1 + regs.H2C_SGDMA_BASE
        rc.mmio_write(sgdma + regs.SGDMA_DESC_LO,
                      (desc_buf.addr & 0xFFFFFFFF).to_bytes(4, "little"))
        rc.mmio_write(sgdma + regs.SGDMA_DESC_HI,
                      (desc_buf.addr >> 32).to_bytes(4, "little"))
        control = regs.CTRL_RUN | regs.CTRL_POLLMODE_WB_ENABLE
        rc.mmio_write(base + regs.CHAN_CONTROL, control.to_bytes(4, "little"))
        sim.run()
        # The driver can poll host memory instead of taking an IRQ.
        assert int.from_bytes(wb.read(0, 4), "little") == 1
        assert system["msis"] == []  # interrupt enables were not set

    def test_without_wb_enable_nothing_written(self, system):
        sim, rc, alloc = system["sim"], system["rc"], system["alloc"]
        bar1 = system["bar1"]
        wb = alloc.alloc(8)
        desc_buf = alloc.alloc(32)
        src = alloc.alloc(64)
        desc_buf.write(XdmaDescriptor(src_addr=src.addr, dst_addr=0, length=64).encode())
        base = bar1 + regs.H2C_CHANNEL_BASE
        rc.mmio_write(base + regs.CHAN_POLL_MODE_WB_LO,
                      (wb.addr & 0xFFFFFFFF).to_bytes(4, "little"))
        sgdma = bar1 + regs.H2C_SGDMA_BASE
        rc.mmio_write(sgdma + regs.SGDMA_DESC_LO,
                      (desc_buf.addr & 0xFFFFFFFF).to_bytes(4, "little"))
        rc.mmio_write(base + regs.CHAN_CONTROL, regs.CTRL_RUN.to_bytes(4, "little"))
        sim.run()
        assert wb.read(0, 4) == bytes(4)
