"""Tests for the XDMA IP model: descriptors, engines, core."""

import pytest

from repro.fpga.xdma import (
    DescriptorError,
    XdmaCore,
    XdmaDescriptor,
    regs,
)
from repro.mem.dma import DmaAllocator
from repro.mem.fpga_mem import Bram
from repro.pcie.enumeration import enumerate_all
from repro.pcie.msi import MSI_ADDRESS_BASE, MSIX_ENTRY_SIZE
from repro.pcie.root_complex import RootComplex


class TestDescriptor:
    def test_encode_decode_roundtrip(self):
        desc = XdmaDescriptor(
            src_addr=0x1234_5678_9ABC,
            dst_addr=0xDEF0_0000,
            length=4096,
            stop=False,
            eop=True,
            completed_irq=True,
            nxt_adj=3,
            next_addr=0x8888_0000,
        )
        assert XdmaDescriptor.decode(desc.encode()) == desc

    def test_magic_validated(self):
        raw = bytearray(XdmaDescriptor(src_addr=0, dst_addr=0, length=4).encode())
        raw[3] = 0x00  # corrupt the magic
        with pytest.raises(DescriptorError, match="magic"):
            XdmaDescriptor.decode(bytes(raw))

    def test_wrong_size_rejected(self):
        with pytest.raises(DescriptorError):
            XdmaDescriptor.decode(b"short")

    def test_invalid_fields_rejected(self):
        with pytest.raises(DescriptorError):
            XdmaDescriptor(src_addr=0, dst_addr=0, length=0)
        with pytest.raises(DescriptorError):
            XdmaDescriptor(src_addr=-1, dst_addr=0, length=4)
        with pytest.raises(DescriptorError):
            XdmaDescriptor(src_addr=0, dst_addr=0, length=4, nxt_adj=64)


@pytest.fixture
def xdma_system(sim):
    """Enumerated XDMA core with BRAM, MSI-X set up, IRQs enabled."""
    rc = RootComplex(sim)
    msis = []
    rc.set_msi_handler(lambda addr, data: msis.append(data))
    port, link = rc.create_port()
    core = XdmaCore(sim, link)
    core.attach_axi(0, Bram(256 << 10))
    boot = sim.spawn(enumerate_all(rc))
    function = sim.run_until_triggered(boot)[0]
    bar1 = function.bars[1].address
    bar2 = function.bars[2].address

    def setup():
        for vector in range(3):
            base = bar2 + vector * MSIX_ENTRY_SIZE
            rc.mmio_write(base, MSI_ADDRESS_BASE.to_bytes(8, "little"))
            rc.mmio_write(base + 8, vector.to_bytes(4, "little"))
            rc.mmio_write(base + 12, (0).to_bytes(4, "little"))
        cap = function.find_capability(0x11)
        yield port.cfg_write(cap.offset + 2, (0x8000).to_bytes(2, "little"))
        rc.mmio_write(
            bar1 + regs.IRQ_BLOCK_BASE + regs.IRQ_CHANNEL_INT_ENABLE,
            (0x3).to_bytes(4, "little"),
        )

    probe = sim.spawn(setup())
    sim.run_until_triggered(probe)
    return dict(sim=sim, rc=rc, core=core, bar1=bar1, msis=msis,
                alloc=DmaAllocator(rc.host_memory))


def start_sgdma(system, sgdma_base, chan_base, desc_addr):
    rc, bar1 = system["rc"], system["bar1"]
    rc.mmio_write(bar1 + sgdma_base + regs.SGDMA_DESC_LO,
                  (desc_addr & 0xFFFFFFFF).to_bytes(4, "little"))
    rc.mmio_write(bar1 + sgdma_base + regs.SGDMA_DESC_HI,
                  (desc_addr >> 32).to_bytes(4, "little"))
    control = regs.CTRL_RUN | regs.CTRL_IE_DESC_STOPPED
    rc.mmio_write(bar1 + chan_base + regs.CHAN_CONTROL, control.to_bytes(4, "little"))


class TestSgdmaMode:
    def test_h2c_moves_data_and_interrupts(self, xdma_system):
        system = xdma_system
        sim, core, alloc = system["sim"], system["core"], system["alloc"]
        desc_buf = alloc.alloc(32)
        src = alloc.alloc(512)
        src.write(bytes(range(256)) * 2)
        desc = XdmaDescriptor(src_addr=src.addr, dst_addr=0x100, length=512)
        desc_buf.write(desc.encode())
        start_sgdma(system, regs.H2C_SGDMA_BASE, regs.H2C_CHANNEL_BASE, desc_buf.addr)
        sim.run()
        assert core.axi_read(0x100, 512) == bytes(range(256)) * 2
        assert system["msis"] == [0]  # channel 0 -> vector 0
        assert core.h2c[0].completed_count == 1

    def test_c2h_moves_data_to_host(self, xdma_system):
        system = xdma_system
        sim, core, alloc, rc = system["sim"], system["core"], system["alloc"], system["rc"]
        core.axi_write(0x200, b"FPGA->host data.")
        dst = alloc.alloc(64)
        desc_buf = alloc.alloc(32)
        desc = XdmaDescriptor(src_addr=0x200, dst_addr=dst.addr, length=16)
        desc_buf.write(desc.encode())
        start_sgdma(system, regs.C2H_SGDMA_BASE, regs.C2H_CHANNEL_BASE, desc_buf.addr)
        sim.run()
        assert dst.read(0, 16) == b"FPGA->host data."
        assert system["msis"] == [1]  # C2H channel -> vector 1

    def test_descriptor_chain(self, xdma_system):
        system = xdma_system
        sim, core, alloc = system["sim"], system["core"], system["alloc"]
        descs = alloc.alloc(64)
        src = alloc.alloc(256)
        src.write(b"A" * 128 + b"B" * 128)
        second = XdmaDescriptor(src_addr=src.addr + 128, dst_addr=0x80, length=128)
        first = XdmaDescriptor(
            src_addr=src.addr, dst_addr=0x0, length=128, stop=False,
            next_addr=descs.addr + 32,
        )
        descs.write(first.encode() + second.encode())
        start_sgdma(system, regs.H2C_SGDMA_BASE, regs.H2C_CHANNEL_BASE, descs.addr)
        sim.run()
        assert core.axi_read(0, 128) == b"A" * 128
        assert core.axi_read(0x80, 128) == b"B" * 128
        assert core.h2c[0].completed_count == 2

    def test_perf_counter_records_run(self, xdma_system):
        system = xdma_system
        sim, core, alloc = system["sim"], system["core"], system["alloc"]
        desc_buf = alloc.alloc(32)
        src = alloc.alloc(64)
        desc_buf.write(XdmaDescriptor(src_addr=src.addr, dst_addr=0, length=64).encode())
        start_sgdma(system, regs.H2C_SGDMA_BASE, regs.H2C_CHANNEL_BASE, desc_buf.addr)
        sim.run()
        assert core.perf.count("h2c0_dma") == 1
        assert core.perf.last("h2c0_dma") > 0

    def test_masked_channel_raises_nothing(self, xdma_system):
        system = xdma_system
        sim, rc, core, alloc = system["sim"], system["rc"], system["core"], system["alloc"]
        rc.mmio_write(
            system["bar1"] + regs.IRQ_BLOCK_BASE + regs.IRQ_CHANNEL_INT_ENABLE,
            (0).to_bytes(4, "little"),
        )
        sim.run()
        desc_buf = alloc.alloc(32)
        src = alloc.alloc(64)
        desc_buf.write(XdmaDescriptor(src_addr=src.addr, dst_addr=0, length=64).encode())
        start_sgdma(system, regs.H2C_SGDMA_BASE, regs.H2C_CHANNEL_BASE, desc_buf.addr)
        sim.run()
        assert system["msis"] == []


class TestBypassMode:
    def test_bypass_h2c(self, xdma_system, run):
        system = xdma_system
        sim, core, alloc = system["sim"], system["core"], system["alloc"]
        src = alloc.alloc(128)
        src.write(b"bypass" * 20)

        def body():
            yield core.h2c[0].submit_bypass(
                XdmaDescriptor(src_addr=src.addr, dst_addr=0x300, length=120)
            )

        run(sim, body())
        assert core.axi_read(0x300, 120) == b"bypass" * 20

    def test_bypass_serializes_in_order(self, xdma_system, run):
        system = xdma_system
        sim, core, alloc = system["sim"], system["core"], system["alloc"]
        src = alloc.alloc(64)
        src.write(b"1" * 32 + b"2" * 32)
        order = []
        e1 = core.h2c[0].submit_bypass(
            XdmaDescriptor(src_addr=src.addr, dst_addr=0x0, length=32)
        )
        e2 = core.h2c[0].submit_bypass(
            XdmaDescriptor(src_addr=src.addr + 32, dst_addr=0x20, length=32)
        )
        e1.on_trigger(lambda e: order.append(1))
        e2.on_trigger(lambda e: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_user_irq(self, xdma_system):
        system = xdma_system
        sim, rc, core = system["sim"], system["rc"], system["core"]
        rc.mmio_write(
            system["bar1"] + regs.IRQ_BLOCK_BASE + regs.IRQ_USER_INT_ENABLE,
            (0x1).to_bytes(4, "little"),
        )
        rc.mmio_write(
            system["bar1"] + regs.IRQ_BLOCK_BASE + regs.IRQ_USER_VECTOR_BASE,
            (2).to_bytes(4, "little"),
        )
        sim.run()
        core.raise_user_irq(0)
        sim.run()
        assert system["msis"] == [2]

    def test_user_irq_masked(self, xdma_system):
        system = xdma_system
        system["sim"].run()
        system["core"].raise_user_irq(0)  # user ints not enabled
        system["sim"].run()
        assert system["msis"] == []

    def test_user_irq_bounds(self, xdma_system):
        with pytest.raises(IndexError):
            xdma_system["core"].raise_user_irq(99)


class TestRegisterMap:
    def test_identifier_registers(self, xdma_system, run):
        system = xdma_system
        sim, rc, bar1 = system["sim"], system["rc"], system["bar1"]

        def body():
            out = []
            for base in (regs.H2C_CHANNEL_BASE, regs.C2H_CHANNEL_BASE,
                         regs.IRQ_BLOCK_BASE, regs.CONFIG_BLOCK_BASE):
                raw = yield rc.mmio_read(bar1 + base, 4)
                out.append(int.from_bytes(raw, "little"))
            return out

        idents = run(sim, body())
        for ident in idents:
            assert ident & 0xFFF0_0000 == regs.IDENTIFIER_MAGIC

    def test_status_register_readable(self, xdma_system, run):
        system = xdma_system
        sim, rc, bar1 = system["sim"], system["rc"], system["bar1"]

        def body():
            raw = yield rc.mmio_read(bar1 + regs.H2C_CHANNEL_BASE + regs.CHAN_STATUS, 4)
            return int.from_bytes(raw, "little")

        assert run(sim, body()) & regs.STAT_DESC_STOPPED
