"""Tests for the user-logic blocks (echo responder, checksum engine)."""

import pytest

from repro.core.calibration import FPGA_IP, HOST_IP
from repro.fpga.user_logic import EchoUserLogic, SinkUserLogic, streaming_cycles
from repro.host.netstack import (
    ETH_HEADER_SIZE,
    ETH_P_IP,
    EthernetFrame,
    IP_HEADER_SIZE,
    Ipv4Header,
    IPPROTO_UDP,
    UdpHeader,
    udp_checksum_valid,
    udp_datagram,
)


def make_udp_frame(payload: bytes, checksum: bool = True) -> bytes:
    datagram = udp_datagram(HOST_IP, FPGA_IP, 5555, 7, payload, compute_checksum=checksum)
    ip = Ipv4Header(
        src=HOST_IP, dst=FPGA_IP, protocol=IPPROTO_UDP,
        total_length=IP_HEADER_SIZE + len(datagram),
    )
    frame = EthernetFrame(
        dst=b"\x52\x54\x00\x00\x00\x02",
        src=b"\x02\x00\x00\x00\x00\x01",
        ethertype=ETH_P_IP,
        payload=ip.encode() + datagram,
    )
    return frame.encode(pad=False)


class TestEchoUserLogic:
    def run_echo(self, sim, frame):
        logic = EchoUserLogic(sim)
        proc = sim.spawn(logic.handle_frame(frame))
        return logic, sim.run_until_triggered(proc)

    def test_response_same_size(self, sim):
        frame = make_udp_frame(b"x" * 100)
        _, reply = self.run_echo(sim, frame)
        assert len(reply) == len(frame)

    def test_addresses_swapped(self, sim):
        frame = make_udp_frame(b"ping")
        _, reply = self.run_echo(sim, frame)
        eth = EthernetFrame.decode(reply)
        original = EthernetFrame.decode(frame)
        assert eth.dst == original.src and eth.src == original.dst
        ip = Ipv4Header.decode(eth.payload)
        assert ip.src == FPGA_IP and ip.dst == HOST_IP

    def test_ports_swapped(self, sim):
        frame = make_udp_frame(b"ping")
        _, reply = self.run_echo(sim, frame)
        ip_payload = EthernetFrame.decode(reply).payload
        udp = UdpHeader.decode(ip_payload[IP_HEADER_SIZE:])
        assert (udp.src_port, udp.dst_port) == (7, 5555)

    def test_payload_preserved(self, sim):
        payload = bytes(range(64))
        frame = make_udp_frame(payload)
        _, reply = self.run_echo(sim, frame)
        ip_payload = EthernetFrame.decode(reply).payload
        assert ip_payload[IP_HEADER_SIZE + 8 : IP_HEADER_SIZE + 8 + 64] == payload

    def test_reply_checksums_valid(self, sim):
        frame = make_udp_frame(b"checksummed payload")
        _, reply = self.run_echo(sim, frame)
        eth = EthernetFrame.decode(reply)
        ip = Ipv4Header.decode(eth.payload)
        assert ip.header_valid(eth.payload)
        datagram = eth.payload[IP_HEADER_SIZE : ip.total_length]
        assert udp_checksum_valid(ip.src, ip.dst, datagram)

    def test_non_ip_ignored(self, sim):
        frame = EthernetFrame(
            dst=b"\xff" * 6, src=b"\x02" * 6, ethertype=0x0806, payload=bytes(46)
        ).encode()
        _, reply = self.run_echo(sim, frame)
        assert reply is None

    def test_consumes_fabric_time_proportional_to_size(self, sim):
        logic = EchoUserLogic(sim)
        t0 = sim.now
        proc = sim.spawn(logic.handle_frame(make_udp_frame(b"x" * 64)))
        sim.run_until_triggered(proc)
        small = sim.now - t0
        t1 = sim.now
        proc = sim.spawn(logic.handle_frame(make_udp_frame(b"x" * 1024)))
        sim.run_until_triggered(proc)
        large = sim.now - t1
        assert large > small * 3


class TestChecksumOffload:
    def test_fill_checksum_produces_valid_udp(self, sim):
        frame = make_udp_frame(b"offload me", checksum=False)
        logic = EchoUserLogic(sim)
        proc = sim.spawn(
            logic.fill_checksum(frame, ETH_HEADER_SIZE + IP_HEADER_SIZE, 6)
        )
        patched = sim.run_until_triggered(proc)
        eth = EthernetFrame.decode(patched)
        ip = Ipv4Header.decode(eth.payload)
        datagram = eth.payload[IP_HEADER_SIZE : ip.total_length]
        assert UdpHeader.decode(datagram).checksum != 0
        assert udp_checksum_valid(ip.src, ip.dst, datagram)


class TestSinkUserLogic:
    def test_no_response(self, sim):
        logic = SinkUserLogic(sim)
        proc = sim.spawn(logic.handle_frame(make_udp_frame(b"data")))
        assert sim.run_until_triggered(proc) is None
        assert logic.frames_received == 1


class TestStreamingCycles:
    def test_fixed_plus_per_byte(self):
        assert streaming_cycles(0) == 4
        assert streaming_cycles(10) == 14
