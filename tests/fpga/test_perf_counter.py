"""Tests for the hardware performance counters."""

import numpy as np
import pytest

from repro.fpga.perf_counter import CounterError, PerfCounterBank
from repro.sim.time import ns


class TestPerfCounterBank:
    def test_interval_quantized_to_8ns(self, sim):
        bank = PerfCounterBank(sim)
        bank.start("op")
        sim.schedule(ns(100), lambda: bank.stop("op"))
        sim.run()
        # 100 ns = 12.5 cycles -> 12 whole cycles = 96 ns.
        assert bank.last("op") == ns(96)

    def test_sub_cycle_interval_reads_zero(self, sim):
        bank = PerfCounterBank(sim)
        bank.start("op")
        sim.schedule(ns(7), lambda: bank.stop("op"))
        sim.run()
        assert bank.last("op") == 0

    def test_multiple_intervals_accumulate(self, sim):
        bank = PerfCounterBank(sim)

        def body():
            for _ in range(3):
                bank.start("op")
                yield ns(16)
                bank.stop("op")

        sim.spawn(body())
        sim.run()
        assert bank.count("op") == 3
        assert bank.total("op") == 3 * ns(16)

    def test_intervals_array(self, sim):
        bank = PerfCounterBank(sim)
        bank.start("x")
        bank.stop("x")
        arr = bank.intervals_array("x")
        assert arr.dtype == np.int64
        assert len(arr) == 1

    def test_double_start_rejected(self, sim):
        bank = PerfCounterBank(sim)
        bank.start("op")
        with pytest.raises(CounterError):
            bank.start("op")

    def test_stop_without_start_rejected(self, sim):
        with pytest.raises(CounterError):
            PerfCounterBank(sim).stop("op")

    def test_is_running(self, sim):
        bank = PerfCounterBank(sim)
        assert not bank.is_running("op")
        bank.start("op")
        assert bank.is_running("op")
        bank.stop("op")
        assert not bank.is_running("op")

    def test_last_of_empty_rejected(self, sim):
        with pytest.raises(CounterError):
            PerfCounterBank(sim).last("nope")

    def test_clear_keeps_open_intervals(self, sim):
        bank = PerfCounterBank(sim)
        bank.start("op")
        bank.clear()
        sim.schedule(ns(8), lambda: bank.stop("op"))
        sim.run()
        assert bank.count("op") == 1

    def test_counters_listing(self, sim):
        bank = PerfCounterBank(sim)
        for name in ("b", "a"):
            bank.start(name)
            bank.stop(name)
        assert bank.counters() == ["a", "b"]
