"""Tests for the register-file MMIO semantics."""

import pytest

from repro.fpga.registers import Register, RegisterFile


class TestRegister:
    def test_plain_storage(self):
        reg = Register("r", 0, reset=0x1234)
        assert reg.read() == 0x1234
        reg.write(0x5678)
        assert reg.read() == 0x5678

    def test_read_hook_overrides(self):
        reg = Register("r", 0, read_hook=lambda: 0xAA)
        reg.write(0x11)
        assert reg.read() == 0xAA

    def test_write_hook_sees_value(self):
        seen = []
        reg = Register("r", 0, write_hook=seen.append)
        reg.write(7)
        assert seen == [7]

    def test_read_only_drops_writes(self):
        reg = Register("r", 0, reset=5, read_only=True)
        reg.write(9)
        assert reg.read() == 5

    def test_unaligned_offset_rejected(self):
        with pytest.raises(ValueError):
            Register("r", 2)

    def test_value_masked_to_32bit(self):
        reg = Register("r", 0)
        reg.write(0x1_0000_0001)
        assert reg.read() == 1


class TestRegisterFile:
    def test_mmio_roundtrip(self):
        rf = RegisterFile(0x100)
        rf.reg("a", 0x10)
        rf.mmio_write(0x10, (0xCAFEBABE).to_bytes(4, "little"))
        assert rf.mmio_read(0x10, 4) == (0xCAFEBABE).to_bytes(4, "little")

    def test_sub_word_write_merges(self):
        rf = RegisterFile(0x100)
        rf.reg("a", 0x10, reset=0x11223344)
        rf.mmio_write(0x12, b"\xff")  # byte 2
        assert rf[0x10].read() == 0x11FF3344

    def test_sub_word_write_fires_hook_with_merged_word(self):
        seen = []
        rf = RegisterFile(0x100)
        rf.reg("a", 0x10, reset=0xAABBCCDD, write_hook=seen.append)
        rf.mmio_write(0x10, b"\x00\x11")  # bytes 0-1
        assert seen == [0xAABB1100]

    def test_sub_word_read(self):
        rf = RegisterFile(0x100)
        rf.reg("a", 0x0, reset=0x11223344)
        assert rf.mmio_read(1, 2) == b"\x33\x22"

    def test_read_spanning_register_and_scratch(self):
        rf = RegisterFile(0x100)
        rf.reg("a", 0x0, reset=0xDDCCBBAA)
        rf.scratch_write(4, b"\x01\x02\x03\x04")
        assert rf.mmio_read(0, 8) == b"\xaa\xbb\xcc\xdd\x01\x02\x03\x04"

    def test_scratch_defaults_to_ram_semantics(self):
        rf = RegisterFile(0x100)
        rf.mmio_write(0x80, b"hello")
        assert rf.mmio_read(0x80, 5) == b"hello"

    def test_by_name(self):
        rf = RegisterFile(0x100)
        reg = rf.reg("target", 0x20)
        assert rf.by_name("target") is reg
        with pytest.raises(KeyError):
            rf.by_name("missing")

    def test_duplicate_offset_rejected(self):
        rf = RegisterFile(0x100)
        rf.reg("a", 0x0)
        with pytest.raises(ValueError):
            rf.reg("b", 0x0)

    def test_register_outside_file_rejected(self):
        rf = RegisterFile(0x10)
        with pytest.raises(ValueError):
            rf.reg("a", 0x10)

    def test_as_region(self):
        rf = RegisterFile(0x100)
        rf.reg("a", 0x0, reset=42)
        region = rf.as_region()
        assert int.from_bytes(region.read(0, 4), "little") == 42
