"""Byte-identity of every CLI artifact through the topology builder.

The golden files under ``golden/`` were captured from the pre-topology
builders (the exact commands are recorded below).  The refactor routed
all four legacy testbed builders through
:func:`repro.topology.builder.build_from_spec`; these tests prove the
delegation is invisible: every artifact's JSON is byte-identical, at
``--jobs 1`` and ``--jobs 4``.

The job counts are explicit because the CLI's default (``--jobs``
unset) takes the pre-existing serial code path, which orders some
sub-runs differently from the cell engine; the goldens were captured
with explicit ``-j`` for exactly that reason.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main

GOLDEN = Path(__file__).parent / "golden"

#: golden file -> CLI argv *without* the -j value (appended per case).
COMMANDS = {
    "fig3.json": ["fig3", "--packets", "60", "--payloads", "64", "1024",
                  "--seed", "7", "--json"],
    "fig4.json": ["fig4", "--packets", "60", "--payloads", "64", "1024",
                  "--seed", "7", "--json"],
    "fig5.json": ["fig5", "--packets", "60", "--payloads", "64", "1024",
                  "--seed", "7", "--json"],
    "table1.json": ["table1", "--packets", "60", "--payloads", "64", "1024",
                    "--seed", "7", "--json"],
    "loadsweep_open.json": ["loadsweep", "--json", "--packets", "40",
                            "--rate", "20000", "60000", "--seed", "7"],
    "loadsweep_closed.json": ["loadsweep", "--json", "--packets", "40",
                              "--outstanding", "1", "2", "--seed", "7"],
    "faultsweep.json": ["faultsweep", "--json", "--packets", "40",
                        "--fault-rates", "0", "0.01", "--seed", "7"],
    "overload.json": ["overload", "--json", "--packets", "40",
                      "--multipliers", "0.5", "2", "--seed", "7"],
    "fleetsweep.json": ["fleetsweep", "--json", "--pods", "2", "--tenants",
                        "4", "--packets", "20", "--seed", "7"],
    # The guest layer's backstop: the E-V1 sweep (all three modes; the
    # bare column's numbers double as the legacy-latency-cell pin).
    "guestsweep.json": ["guestsweep", "--json", "--packets", "20",
                        "--payloads", "64", "--seed", "7"],
}


@pytest.mark.parametrize("golden_name", sorted(COMMANDS))
@pytest.mark.parametrize("jobs", [1, 4])
def test_artifact_matches_golden(golden_name, jobs, capsys):
    argv = COMMANDS[golden_name] + ["-j", str(jobs)]
    main(argv)  # overload may exit 1 on its verdict; bytes are what matter
    out = capsys.readouterr().out
    expected = (GOLDEN / golden_name).read_text()
    assert out == expected, (
        f"{golden_name} diverged from the pre-topology builder at -j{jobs}"
    )
