"""E-M1 fleet sweep: conservation, lane ledgers, jobs parity."""

from __future__ import annotations

import re

import pytest

from repro.exec.cells import Cell
from repro.topology.experiments import (
    FleetConfig,
    fleet_cells,
    run_fleet_pod,
    run_fleet_sweep,
    tenant_queue_pair,
)

LANE_PATTERN = re.compile(r"^dev\d+/vf\d+/q\d+$")


@pytest.fixture(scope="module")
def pod_report():
    config = FleetConfig(tenants=8)
    return run_fleet_pod(pod=0, seed=123, packets=12, config=config)


class TestPodConservation:
    def test_every_flow_conserves(self, pod_report):
        assert pod_report.conserved, pod_report.health.violations
        health = pod_report.health
        assert health.offered == health.delivered + health.dropped
        assert health.offered == 8 * 12

    def test_lane_keys_name_device_function_pair(self, pod_report):
        lanes = pod_report.health.lanes
        assert lanes  # every tenant tagged a lane
        for lane in lanes:
            assert LANE_PATTERN.match(lane), lane

    def test_lane_sums_match_totals(self, pod_report):
        health = pod_report.health
        for key, total in (("offered", health.offered),
                           ("delivered", health.delivered),
                           ("dropped", health.dropped)):
            assert sum(c[key] for c in health.lanes.values()) == total

    def test_acceptance_shape(self, pod_report):
        # E-M1 floor: >= 2 devices per pod, one of them SR-IOV with
        # >= 2 VFs, all functions multi-queue.
        assert pod_report.devices == 2
        assert pod_report.functions == 3  # 1 plain + 2 VFs
        assert pod_report.queue_pairs == 2  # per function
        assert pod_report.functions * pod_report.queue_pairs == 6
        assert pod_report.switch_stats["tlps_forwarded"] > 0
        assert len(pod_report.arbiter_stats) == 1
        assert all(v > 0 for v in pod_report.arbiter_stats[0].values())

    def test_tenants_spread_across_queue_pairs(self, pod_report):
        pairs = {stats.queue_pair for stats in pod_report.tenants}
        assert len(pairs) >= 2


class TestQueuePairMapping:
    def test_matches_rss_reduction(self):
        pair = tenant_queue_pair(0x0A000001, 0x0A000002, 49003, 4)
        assert 0 <= pair < 4

    def test_single_pair_degenerates_to_zero(self):
        assert tenant_queue_pair(0x0A000001, 0x0A000002, 49003, 1) == 0


class TestFleetCells:
    def test_cells_labelled_by_pod(self):
        cells = fleet_cells(pods=3, packets=5, seed=9, config=FleetConfig())
        assert [cell.label for cell in cells] == [
            "fleet/pod0", "fleet/pod1", "fleet/pod2",
        ]
        assert all(isinstance(cell, Cell) for cell in cells)
        assert len({cell.seed for cell in cells}) == 3


class TestSweep:
    def test_jobs_parity(self):
        kwargs = dict(pods=2, tenants=4, packets=8, seed=5, queue_pairs=2)
        serial, _ = run_fleet_sweep(jobs=1, **kwargs)
        threaded, _ = run_fleet_sweep(jobs=2, **kwargs)
        assert serial.as_dict() == threaded.as_dict()

    def test_sweep_verdict_and_flow_count(self):
        result, stats = run_fleet_sweep(pods=2, tenants=4, packets=8, seed=5)
        assert result.flows == 8
        assert result.verdict == "PASS"
        assert result.all_conserved
        assert 0.0 < result.fairness <= 1.0
        assert result.aggregate_goodput_pps > 0
        assert stats.cells == 2
