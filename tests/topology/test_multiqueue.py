"""Multi-queue virtio-net: negotiation, MSI vector routing, steering."""

from __future__ import annotations

import pytest

from repro.core.calibration import TEST_DST_PORT
from repro.host.netstack.rss import flow_hash
from repro.topology.builder import FleetTestbed, build_from_spec
from repro.topology.spec import DeviceSpec, FunctionSpec, TopologySpec
from repro.virtio.constants import VIRTIO_NET_F_MQ


def build_mq_testbed(queue_pairs=2, seed=11) -> FleetTestbed:
    spec = TopologySpec(
        devices=(DeviceSpec(functions=(FunctionSpec(queue_pairs=queue_pairs),)),)
    )
    testbed = build_from_spec(spec, seed=seed)
    assert isinstance(testbed, FleetTestbed)
    return testbed


def port_for_pair(host_ip: int, fpga_ip: int, want: int, pairs: int,
                  start: int = 49000) -> int:
    """Smallest source port whose flow RSS steers onto pair *want*."""
    port = start
    while flow_hash(host_ip, fpga_ip, port, TEST_DST_PORT) % pairs != want:
        port += 1
    return port


@pytest.fixture(scope="module")
def mq():
    testbed = build_mq_testbed()
    function = testbed.functions[0]

    # Drive one flow onto each pair (distinct source ports, chosen so
    # the hash lands where we want), ping-pong style.
    n = 5
    for pair in range(2):
        port = port_for_pair(function.host_ip, function.fpga_ip, pair, 2)
        socket = testbed.open_socket(port)

        def pingpong():
            for _ in range(n):
                yield from socket.sendto(b"\x07" * 64, function.fpga_ip,
                                         TEST_DST_PORT)
                data, _source = yield from socket.recvfrom()
                assert data == b"\x07" * 64
            socket.close()

        done = testbed.sim.spawn(pingpong(), name=f"mq-flow{pair}")
        testbed.sim.run_until_triggered(done)
    testbed.sim.run()
    return testbed


class TestNegotiation:
    def test_driver_enables_all_pairs(self, mq):
        function = mq.functions[0]
        assert function.driver.queue_pairs == 2
        assert function.device.personality.active_queue_pairs == 2

    def test_mq_feature_negotiated(self, mq):
        device = mq.functions[0].device
        assert device.accepted_features.has(VIRTIO_NET_F_MQ)

    def test_config_reports_max_pairs(self, mq):
        blob = mq.functions[0].device.personality.device_config_bytes()
        assert int.from_bytes(blob[8:10], "little") == 2

    def test_ctrl_queue_after_data_pairs(self, mq):
        function = mq.functions[0]
        assert function.driver.ctrl_queue_index() == 4
        assert function.device.personality.ctrl_queue_index == 4
        assert function.device.personality.num_queues == 5


class TestVectorRouting:
    def test_every_queue_gets_its_own_msi_vector(self, mq):
        transport = mq.functions[0].driver.transport
        vectors = [transport.queue_vector(index) for index in range(5)]
        assert len(set(vectors)) == 5  # rx0, tx0, rx1, tx1, ctrl

    def test_per_pair_napi_contexts(self, mq):
        driver = mq.functions[0].driver
        assert len(driver.napis) == 2
        assert driver.napis[0] is not driver.napis[1]


class TestSteering:
    def test_tx_steered_per_pair(self, mq):
        driver = mq.functions[0].driver
        assert driver.tx_steered == [5, 5]

    def test_rx_steered_matches_tx(self, mq):
        personality = mq.functions[0].device.personality
        # Echoes are steered by the device on the reply tuple; each
        # flow's replies all land on one pair, and both pairs were hit.
        assert sorted(personality.rx_steered) == [5, 5]
        assert personality.frames_from_host == 10
        assert personality.frames_to_host == 10


class TestSinglePairDegeneration:
    def test_single_pair_offers_no_mq(self):
        testbed = build_from_spec(TopologySpec.single_virtio(), seed=3)
        from repro.core.testbed import VirtioTestbed

        assert isinstance(testbed, VirtioTestbed)
        assert not testbed.device.accepted_features.has(VIRTIO_NET_F_MQ)
        assert testbed.driver.queue_pairs == 1
