"""TopologySpec validation and canonical shapes."""

from __future__ import annotations

import pytest

from repro.topology.spec import (
    ARBITER_WEIGHTED,
    DeviceSpec,
    FunctionSpec,
    TopologyError,
    TopologySpec,
)


class TestFunctionSpec:
    def test_defaults(self):
        spec = FunctionSpec()
        assert spec.queue_pairs == 1
        assert spec.weight == 1

    def test_rejects_zero_queue_pairs(self):
        with pytest.raises(TopologyError):
            FunctionSpec(queue_pairs=0)

    def test_rejects_zero_weight(self):
        with pytest.raises(TopologyError):
            FunctionSpec(weight=0)


class TestDeviceSpec:
    def test_default_is_single_function_virtio_net(self):
        spec = DeviceSpec()
        assert spec.kind == "virtio-net"
        assert len(spec.functions) == 1
        assert not spec.is_sriov

    def test_rejects_unknown_kind(self):
        with pytest.raises(TopologyError):
            DeviceSpec(kind="nvme")

    def test_rejects_empty_functions(self):
        with pytest.raises(TopologyError):
            DeviceSpec(functions=())

    def test_rejects_unknown_arbiter(self):
        with pytest.raises(TopologyError):
            DeviceSpec(arbiter="lottery")

    def test_sriov_only_for_virtio_net(self):
        with pytest.raises(TopologyError):
            DeviceSpec(kind="xdma", functions=(FunctionSpec(), FunctionSpec()))

    def test_two_functions_is_sriov(self):
        spec = DeviceSpec(functions=(FunctionSpec(), FunctionSpec()))
        assert spec.is_sriov


class TestTopologySpec:
    def test_rejects_empty_devices(self):
        with pytest.raises(TopologyError):
            TopologySpec(devices=())

    def test_uplink_requires_switch(self):
        from repro.pcie.link import LinkConfig

        with pytest.raises(TopologyError):
            TopologySpec(devices=(DeviceSpec(),), uplink=LinkConfig())

    def test_rejects_oversized_fleet(self):
        functions = tuple(FunctionSpec() for _ in range(201))
        with pytest.raises(TopologyError):
            TopologySpec(devices=(DeviceSpec(functions=functions),))

    def test_single_shapes_are_legacy(self):
        for spec in (
            TopologySpec.single_virtio(),
            TopologySpec.single_xdma(),
            TopologySpec.single_console(),
            TopologySpec.single_block(),
        ):
            assert spec.is_single_legacy
            assert spec.total_functions == 1
            assert not spec.switch

    def test_multi_queue_is_not_legacy(self):
        spec = TopologySpec(
            devices=(DeviceSpec(functions=(FunctionSpec(queue_pairs=2),)),)
        )
        assert not spec.is_single_legacy

    def test_totals(self):
        spec = TopologySpec(
            devices=(
                DeviceSpec(functions=(FunctionSpec(queue_pairs=2),)),
                DeviceSpec(
                    functions=(
                        FunctionSpec(queue_pairs=2),
                        FunctionSpec(queue_pairs=3),
                    )
                ),
            )
        )
        assert spec.total_functions == 3
        assert spec.total_queue_pairs == 7


class TestFleetPod:
    def test_default_shape(self):
        spec = TopologySpec.fleet_pod()
        assert spec.switch
        assert len(spec.devices) == 2  # 1 plain + 1 SR-IOV
        assert not spec.devices[0].is_sriov
        assert spec.devices[1].is_sriov
        assert spec.total_functions == 3
        assert spec.total_queue_pairs == 6

    def test_weighted_pod(self):
        spec = TopologySpec.fleet_pod(
            arbiter=ARBITER_WEIGHTED, vf_weights=(1, 3)
        )
        vf_device = spec.devices[1]
        assert vf_device.arbiter == ARBITER_WEIGHTED
        assert [f.weight for f in vf_device.functions] == [1, 3]

    def test_weights_length_mismatch(self):
        with pytest.raises(TopologyError):
            TopologySpec.fleet_pod(vfs_per_device=3, vf_weights=(1, 2))
