"""PCIe switch fan-out and SR-IOV DMA-bandwidth arbitration."""

from __future__ import annotations

import pytest

from repro.core.calibration import TEST_DST_PORT
from repro.sim.event import Event
from repro.sim.kernel import Simulator
from repro.topology.builder import build_from_spec
from repro.topology.spec import DeviceSpec, FunctionSpec, TopologySpec
from repro.virtio.controller.arbiter import DmaBandwidthArbiter


def echo_all(testbed, packets=4):
    """Ping-pong *packets* echoes through every function."""
    for i, function in enumerate(testbed.functions):
        socket = testbed.open_socket(49100 + i)

        def pingpong():
            for _ in range(packets):
                yield from socket.sendto(b"\x01" * 64, function.fpga_ip,
                                         TEST_DST_PORT)
                yield from socket.recvfrom()
            socket.close()

        done = testbed.sim.spawn(pingpong(), name=f"echo{i}")
        testbed.sim.run_until_triggered(done)
    testbed.sim.run()


class TestSwitch:
    def test_forwards_all_upstream_traffic(self):
        spec = TopologySpec(devices=(DeviceSpec(), DeviceSpec()), switch=True)
        testbed = build_from_spec(spec, seed=21)
        echo_all(testbed)
        switch = testbed.switch
        assert switch is not None
        assert switch.num_ports == 2
        stats = switch.stats
        assert stats["tlps_forwarded"] > 0
        assert stats["port0_tlps"] > 0
        assert stats["port1_tlps"] > 0
        assert stats["port0_tlps"] + stats["port1_tlps"] == stats["tlps_forwarded"]

    def test_equal_load_forwards_fairly(self):
        spec = TopologySpec(devices=(DeviceSpec(), DeviceSpec()), switch=True)
        testbed = build_from_spec(spec, seed=22)
        echo_all(testbed, packets=8)
        stats = testbed.switch.stats
        low, high = sorted([stats["port0_tlps"], stats["port1_tlps"]])
        assert high - low <= 0.1 * high  # near-equal shares


class TestArbiterUnit:
    """Direct unit tests: thunks return completion events we trigger by
    hand, so grant order is observable synchronously."""

    def make(self, policy, weights):
        sim = Simulator(seed=1)
        arbiter = DmaBandwidthArbiter(sim, policy=policy)
        ports = [arbiter.register(weight) for weight in weights]
        return arbiter, ports

    def submit_n(self, arbiter, port, order, dones, n):
        for _ in range(n):
            def start(port=port):
                done = Event(name=f"done{port}")
                order.append(port)
                dones.append(done)
                return done
            arbiter.submit(port, start)

    def test_rejects_unknown_policy(self):
        sim = Simulator(seed=1)
        with pytest.raises(ValueError):
            DmaBandwidthArbiter(sim, policy="lottery")

    def test_rejects_zero_weight(self):
        arbiter, _ = self.make("rr", [1])
        with pytest.raises(ValueError):
            arbiter.register(0)

    def test_round_robin_alternates(self):
        arbiter, (a, b) = self.make("rr", [1, 1])
        order, dones = [], []
        # The very first submit grants immediately; everything queued
        # after it contends, and releases alternate ports.
        self.submit_n(arbiter, a, order, dones, 3)
        self.submit_n(arbiter, b, order, dones, 3)
        while len(order) < 6:
            dones.pop(0).trigger(None)
        assert order == [a, b, a, b, a, b]
        assert arbiter.grants == [3, 3]

    def test_weighted_burst_follows_credit(self):
        arbiter, (a, b) = self.make("weighted", [3, 1])
        order, dones = [], []
        # Occupy the mover with a dummy transfer so the real work all
        # queues up before any pick happens.
        self.submit_n(arbiter, a, order, dones, 1)
        self.submit_n(arbiter, a, order, dones, 6)
        self.submit_n(arbiter, b, order, dones, 2)
        while len(order) < 9:
            dones.pop(0).trigger(None)
        assert arbiter.grants == [7, 2]
        contended = order[1:]
        # b was next in line after the dummy; a then bursts up to its
        # weight of 3 consecutive grants per visit.
        assert contended[0] == b
        runs = max(
            len(run)
            for run in "".join("a" if p == a else "b" for p in contended).split("b")
        )
        assert runs == 3

    def test_uncontended_grant_is_immediate(self):
        arbiter, (a,) = self.make("rr", [1])
        order, dones = [], []
        self.submit_n(arbiter, a, order, dones, 1)
        assert order == [a]  # started inside submit, no waiting


class TestArbiterIntegration:
    def test_sriov_functions_share_via_arbiter(self):
        spec = TopologySpec(
            devices=(
                DeviceSpec(functions=(FunctionSpec(), FunctionSpec())),
            ),
        )
        testbed = build_from_spec(spec, seed=23)
        assert len(testbed.arbiters) == 1
        echo_all(testbed)
        stats = testbed.arbiters[0].stats
        assert stats["vf0_grants"] > 0
        assert stats["vf1_grants"] > 0

    def test_plain_device_has_no_arbiter(self):
        spec = TopologySpec(devices=(DeviceSpec(), DeviceSpec()), switch=True)
        testbed = build_from_spec(spec, seed=24)
        assert testbed.arbiters == []
        for function in testbed.functions:
            assert function.device.dma_port.arbiter is None
