"""RSS flow hashing: determinism, parsing, steering."""

from __future__ import annotations

from repro.host.netstack.rss import (
    fnv1a,
    flow_hash,
    parse_udp_flow,
    steer,
)


def make_udp_frame(src_ip=0x0A000001, dst_ip=0x0A000002,
                   src_port=49000, dst_port=5201, ethertype=0x0800,
                   proto=17, payload=b"\x00" * 16) -> bytes:
    eth = b"\x52\x54\x00\xfa\xce\x01" + b"\x52\x54\x00\xfa\xce\x02"
    eth += ethertype.to_bytes(2, "big")
    total_len = 20 + 8 + len(payload)
    ip = bytes([0x45, 0]) + total_len.to_bytes(2, "big")
    ip += b"\x00\x00\x00\x00" + bytes([64, proto]) + b"\x00\x00"
    ip += src_ip.to_bytes(4, "big") + dst_ip.to_bytes(4, "big")
    udp = src_port.to_bytes(2, "big") + dst_port.to_bytes(2, "big")
    udp += (8 + len(payload)).to_bytes(2, "big") + b"\x00\x00"
    return eth + ip + udp + payload


class TestFnv1a:
    def test_known_vectors(self):
        # Reference values of 32-bit FNV-1a.
        assert fnv1a(b"") == 0x811C9DC5
        assert fnv1a(b"a") == 0xE40C292C
        assert fnv1a(b"foobar") == 0xBF9CF968

    def test_deterministic(self):
        assert fnv1a(b"abc") == fnv1a(b"abc")


class TestFlowHash:
    def test_deterministic_across_calls(self):
        args = (0x0A000001, 0x0A000002, 49000, 5201)
        assert flow_hash(*args) == flow_hash(*args)

    def test_distinct_ports_mix(self):
        base = (0x0A000001, 0x0A000002)
        hashes = {flow_hash(*base, port, 5201) for port in range(49000, 49064)}
        # 64 flows should not collapse onto a handful of hash values.
        assert len(hashes) == 64


class TestParse:
    def test_parses_udp_frame(self):
        frame = make_udp_frame()
        assert parse_udp_flow(frame) == (0x0A000001, 0x0A000002, 49000, 5201)

    def test_rejects_non_ipv4(self):
        assert parse_udp_flow(make_udp_frame(ethertype=0x0806)) is None

    def test_rejects_non_udp(self):
        assert parse_udp_flow(make_udp_frame(proto=6)) is None

    def test_rejects_truncated(self):
        assert parse_udp_flow(make_udp_frame()[:30]) is None


class TestSteer:
    def test_single_pair_always_zero(self):
        assert steer(make_udp_frame(), 1) == 0

    def test_non_udp_falls_back_to_zero(self):
        assert steer(make_udp_frame(proto=6), 4) == 0

    def test_deterministic(self):
        frame = make_udp_frame(src_port=49007)
        assert steer(frame, 4) == steer(frame, 4)

    def test_matches_flow_hash_reduction(self):
        frame = make_udp_frame(src_port=49031)
        expected = flow_hash(0x0A000001, 0x0A000002, 49031, 5201) % 4
        assert steer(frame, 4) == expected

    def test_spreads_flows_across_pairs(self):
        pairs = {
            steer(make_udp_frame(src_port=port), 4)
            for port in range(49000, 49064)
        }
        assert pairs == {0, 1, 2, 3}
