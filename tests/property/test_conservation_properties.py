"""Property-based conservation tests (hypothesis).

For *any* combination of admission window, per-hop queue bounds,
full-queue policy, and fault rate -- on either driver -- every offered
packet must end in exactly one terminal state: delivered, or dropped
with a recorded reason.  This is the invariant the whole overload
subsystem rests on; hypothesis searches the configuration space for a
combination that leaks a packet.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.testbed import build_virtio_testbed, build_xdma_testbed
from repro.health.bounded import POLICY_BLOCK, POLICY_DROP, apply_overload_bounds
from repro.health.monitor import ConservationMonitor
from repro.workload.admission import OverloadConfig
from repro.workload.arrivals import make_arrivals
from repro.workload.generator import OpenLoopGenerator
from repro.workload.sizes import FixedSize

PACKETS = 40

maybe_small = st.one_of(st.none(), st.integers(min_value=2, max_value=64))


@st.composite
def overload_configs(draw):
    return OverloadConfig(
        admission_limit=draw(maybe_small),
        queue_policy=draw(st.sampled_from([POLICY_DROP, POLICY_BLOCK])),
        retry_ratio=draw(st.sampled_from([0.0, 0.1])),
        breaker_threshold=draw(st.sampled_from([0, 8])),
        socket_rx_limit=draw(maybe_small),
        tx_depth_limit=draw(maybe_small),
        xdma_queue_limit=draw(st.integers(min_value=4, max_value=64)),
        xdma_max_pending=draw(st.one_of(st.none(),
                                        st.integers(min_value=1, max_value=8))),
    )


def _run(driver, seed, rate_pps, fault_rate, config):
    build = build_virtio_testbed if driver == "virtio" else build_xdma_testbed
    testbed = build(seed=seed)
    if fault_rate:
        from repro.faults.injector import attach_fault_plan
        from repro.faults.plan import driver_fault_plan

        attach_fault_plan(testbed, driver_fault_plan(driver, fault_rate))
    apply_overload_bounds(testbed, config)
    monitor = ConservationMonitor(driver, "open")
    generator = OpenLoopGenerator(
        arrivals=make_arrivals("poisson", rate_pps),
        sizes=FixedSize(64),
        packets=PACKETS,
        overload=config,
        monitor=monitor,
    )
    metrics = generator.run(testbed)
    return metrics, monitor.finalize()


class TestConservationHolds:
    @given(
        driver=st.sampled_from(["virtio", "xdma"]),
        seed=st.integers(min_value=0, max_value=2**16),
        rate_pps=st.sampled_from([8_000.0, 40_000.0, 150_000.0]),
        fault_rate=st.sampled_from([None, 0.02, 0.05]),
        config=overload_configs(),
    )
    @settings(max_examples=15, deadline=None)
    def test_every_packet_has_exactly_one_fate(
        self, driver, seed, rate_pps, fault_rate, config
    ):
        metrics, report = _run(driver, seed, rate_pps, fault_rate, config)
        assert report.conserved, report.violations
        assert report.offered == report.delivered + report.dropped
        assert report.admitted <= report.offered
        assert report.delivered == metrics.completed
        # Every drop carries a reason, and the reasons sum to the total.
        assert sum(report.drop_reasons.values()) == report.dropped
