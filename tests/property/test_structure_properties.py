"""Property-based tests on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.dma import DmaAllocator
from repro.mem.physical import PhysicalMemory
from repro.pcie.tlp import segment_read, segment_write, split_completion, memory_read
from repro.sim.kernel import Simulator
from repro.sim.random import LatencyModel
from repro.virtio.features import FeatureSet
from repro.virtio.virtqueue import DriverVirtqueue, ring_layout


class TestSegmentationProperties:
    @given(
        st.integers(min_value=0, max_value=1 << 40),
        st.binary(min_size=1, max_size=4096),
        st.sampled_from([128, 256, 512]),
    )
    @settings(max_examples=100)
    def test_write_segmentation_covers_exactly(self, addr, data, mps):
        tlps = segment_write(addr, data, mps)
        assert b"".join(t.data for t in tlps) == data
        # Contiguous, non-overlapping coverage:
        position = addr
        for tlp in tlps:
            assert tlp.addr == position
            assert tlp.length <= mps
            # No TLP crosses a 4 KiB boundary:
            assert (tlp.addr % 4096) + tlp.length <= 4096
            position += tlp.length

    @given(
        st.integers(min_value=0, max_value=1 << 40),
        st.integers(min_value=1, max_value=8192),
        st.sampled_from([128, 512]),
    )
    @settings(max_examples=100)
    def test_read_segmentation_covers_exactly(self, addr, length, mrrs):
        tlps = segment_read(addr, length, mrrs)
        assert sum(t.length for t in tlps) == length
        position = addr
        for tlp in tlps:
            assert tlp.addr == position
            assert (tlp.addr % 4096) + tlp.length <= 4096
            position += tlp.length

    @given(
        st.integers(min_value=0, max_value=4096),
        st.integers(min_value=1, max_value=1024),
    )
    @settings(max_examples=100)
    def test_completion_split_reassembles(self, addr, length):
        request = memory_read(addr, length)
        data = bytes(i & 0xFF for i in range(length))
        completions = list(split_completion(request, data))
        assert b"".join(c.data for c in completions) == data
        assert completions[0].byte_count == length
        assert completions[-1].byte_count == completions[-1].length


class TestFeatureSetProperties:
    bits = st.integers(min_value=0, max_value=(1 << 64) - 1)

    @given(bits)
    def test_word_decomposition_reassembles(self, value):
        fs = FeatureSet(value)
        rebuilt = FeatureSet.from_words([(0, fs.word(0)), (1, fs.word(1))])
        assert rebuilt == fs

    @given(bits, bits)
    def test_intersection_is_subset_of_both(self, a, b):
        fa, fb = FeatureSet(a), FeatureSet(b)
        inter = fa.intersect(fb)
        assert inter.is_subset_of(fa)
        assert inter.is_subset_of(fb)

    @given(bits)
    def test_iteration_matches_has(self, value):
        fs = FeatureSet(value)
        assert all(fs.has(bit) for bit in fs)
        assert sum(1 << bit for bit in fs) == value


class TestVirtqueueProperties:
    @given(st.sampled_from([4, 8, 16]), st.data())
    @settings(max_examples=50, deadline=None)
    def test_descriptor_accounting_balances(self, size, data):
        """add_buffer/get_used never leaks or double-frees descriptors."""
        mem = PhysicalMemory()
        alloc = DmaAllocator(mem)
        _, _, _, total = ring_layout(size)
        vq = DriverVirtqueue(0, size, alloc.alloc(total, 4096))
        used_idx = 0
        outstanding = []
        for _ in range(30):
            if outstanding and (vq.num_free == 0 or data.draw(st.booleans())):
                head = outstanding.pop(0)
                elem = head.to_bytes(4, "little") + bytes(4)
                mem.write(vq.addresses.used_entry_addr(used_idx), elem)
                used_idx = (used_idx + 1) & 0xFFFF
                mem.write(vq.addresses.used_idx_addr, used_idx.to_bytes(2, "little"))
                assert vq.get_used().head == head
            else:
                segments = data.draw(st.integers(1, min(3, vq.num_free)))
                head = vq.add_buffer([(0x1000 * (i + 1), 64) for i in range(segments)], [])
                vq.publish()
                outstanding.append(head)
        assert vq.num_free + sum(
            vq._chain_lengths[h] for h in outstanding
        ) == size


class TestLatencyModelProperties:
    @given(
        st.integers(min_value=0, max_value=10**9),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=0.5),
        st.integers(min_value=0, max_value=10**8),
    )
    @settings(max_examples=50)
    def test_samples_nonnegative_ints(self, nominal, sigma, tail_prob, tail_scale):
        rng = Simulator(seed=1).rng("p")
        model = LatencyModel(
            nominal_ps=nominal, jitter_sigma=sigma, tail_prob=tail_prob,
            tail_scale_ps=tail_scale,
        )
        for _ in range(5):
            value = model.sample(rng)
            assert isinstance(value, int)
            assert value >= 0

    @given(st.integers(min_value=1, max_value=10**9))
    def test_deterministic_model_exact(self, nominal):
        rng = Simulator(seed=1).rng("p")
        model = LatencyModel(nominal_ps=nominal)
        assert model.sample(rng) == nominal


class TestPhysicalMemoryProperties:
    @given(
        st.integers(min_value=0, max_value=(1 << 30)),
        st.binary(min_size=1, max_size=10000),
    )
    @settings(max_examples=50)
    def test_write_read_roundtrip_any_alignment(self, addr, data):
        mem = PhysicalMemory()
        mem.write(addr, data)
        assert mem.read(addr, len(data)) == data

    @given(st.integers(min_value=0, max_value=1 << 30), st.binary(min_size=1, max_size=64))
    @settings(max_examples=50)
    def test_disjoint_writes_do_not_interfere(self, addr, data):
        mem = PhysicalMemory()
        mem.write(addr, data)
        mem.write(addr + len(data), b"\xee" * 16)
        assert mem.read(addr, len(data)) == data


class TestIndirectDescriptorProperties:
    from hypothesis import strategies as _st

    segments = _st.lists(
        _st.tuples(
            _st.integers(min_value=0x1000, max_value=1 << 40),
            _st.integers(min_value=1, max_value=1 << 20),
        ),
        min_size=0,
        max_size=4,
    )

    @given(segments, segments)
    @settings(max_examples=50, deadline=None)
    def test_indirect_table_is_decodable_chain(self, out_segs, in_segs):
        """The table written by add_buffer_indirect is a valid sequential
        chain: readable segments first, then writable, NEXT flags linking
        all but the last entry."""
        from hypothesis import assume
        from repro.virtio.virtqueue import (
            VIRTQ_DESC_F_INDIRECT,
            VIRTQ_DESC_F_NEXT,
            VIRTQ_DESC_F_WRITE,
            VirtqDescriptor,
            ring_layout,
        )

        assume(out_segs or in_segs)
        mem = PhysicalMemory()
        alloc = DmaAllocator(mem)
        _, _, _, total = ring_layout(8)
        vq_buffer = alloc.alloc(total, 4096)
        from repro.virtio.virtqueue import DriverVirtqueue

        vq = DriverVirtqueue(0, 8, vq_buffer)
        table = alloc.alloc(16 * (len(out_segs) + len(in_segs)))
        head = vq.add_buffer_indirect(out_segs, in_segs, table)

        ring_desc = vq.read_descriptor(head)
        assert ring_desc.flags == VIRTQ_DESC_F_INDIRECT
        assert ring_desc.addr == table.addr
        count = ring_desc.length // 16
        assert count == len(out_segs) + len(in_segs)

        raw = table.read(0, ring_desc.length)
        for position in range(count):
            desc = VirtqDescriptor.decode(raw[position * 16 : position * 16 + 16])
            expected_write = position >= len(out_segs)
            assert bool(desc.flags & VIRTQ_DESC_F_WRITE) == expected_write
            assert bool(desc.flags & VIRTQ_DESC_F_NEXT) == (position < count - 1)
            if position < count - 1:
                assert desc.next_index == position + 1
