"""Property-based equivalence of the two event-queue backends.

The calendar queue must pop in exactly the same ``(time, seq)`` total
order as the reference binary heap for *any* interleaving of pushes,
batched pushes, and pops -- including same-timestamp bursts, which is
where a subtle tie-break bug would first show up.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.calendar import CalendarQueue, HeapQueue

#: Delays spanning sub-bucket, multi-bucket, and far-heap distances
#: (the calendar's default window is 64 buckets of 2**21 ps).
_DELAYS = st.integers(min_value=0, max_value=1 << 30)


def _entries(delays, start_seq=0, base=0):
    """Kernel-shaped 4-tuples at ``base + delay`` with ascending seq."""
    return [
        (base + delay, start_seq + i, None, ())
        for i, delay in enumerate(delays)
    ]


def _drain(queue):
    order = []
    while True:
        entry = queue.pop()
        if entry is None:
            return order
        order.append(entry[:2])


class TestCalendarMatchesHeap:
    @given(st.lists(_DELAYS, min_size=0, max_size=200))
    @settings(max_examples=200)
    def test_push_then_drain_same_order(self, delays):
        cal, heap = CalendarQueue(), HeapQueue()
        for entry in _entries(delays):
            cal.push(entry)
            heap.push(entry)
        assert _drain(cal) == _drain(heap)

    @given(st.lists(st.lists(_DELAYS, min_size=1, max_size=16),
                    min_size=1, max_size=16))
    @settings(max_examples=100)
    def test_push_many_batches_same_order(self, batches):
        cal, heap = CalendarQueue(), HeapQueue()
        seq = 0
        for batch in batches:
            # A schedule_many batch: one timestamp, ascending seq.
            when = batch[0]
            entries = [(when, seq + i, None, ()) for i in range(len(batch))]
            seq += len(batch)
            cal.push_many(entries)
            heap.push_many(entries)
        assert _drain(cal) == _drain(heap)

    @given(
        st.lists(_DELAYS, min_size=1, max_size=60),
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=40),
    )
    @settings(max_examples=100)
    def test_interleaved_push_pop_same_order(self, initial, pop_counts):
        """Pops interleaved with pushes anchored at the last popped time
        (how the kernel actually drives the queue: new events are never
        scheduled before 'now')."""
        cal, heap = CalendarQueue(), HeapQueue()
        seq = 0
        for delay in initial:
            entry = (delay, seq, None, ())
            seq += 1
            cal.push(entry)
            heap.push(entry)
        order = []
        now = 0
        for pops in pop_counts:
            for _ in range(pops):
                a, b = cal.pop(), heap.pop()
                assert (a is None) == (b is None)
                if a is None:
                    break
                assert a[:2] == b[:2]
                now = a[0]
                order.append(a[:2])
            entry = (now + (seq * 7919) % (1 << 24), seq, None, ())
            seq += 1
            cal.push(entry)
            heap.push(entry)
        assert _drain(cal) == _drain(heap)

    @given(st.lists(_DELAYS, min_size=2, max_size=50))
    @settings(max_examples=100)
    def test_same_timestamp_burst_pops_in_seq_order(self, delays):
        """All entries at one timestamp must come out in push order."""
        cal = CalendarQueue()
        when = 123_456_789
        for i, _ in enumerate(delays):
            cal.push((when, i, None, ()))
        popped = _drain(cal)
        assert popped == [(when, i) for i in range(len(delays))]

    @given(st.lists(_DELAYS, min_size=1, max_size=50),
           st.integers(min_value=0, max_value=49))
    @settings(max_examples=100)
    def test_pushback_restores_head(self, delays, pops_before):
        """pop + pushback is a peek: the next pop returns the same entry."""
        cal, heap = CalendarQueue(), HeapQueue()
        for entry in _entries(delays):
            cal.push(entry)
            heap.push(entry)
        for _ in range(min(pops_before, len(delays) - 1)):
            cal.pop()
            heap.pop()
        a, b = cal.pop(), heap.pop()
        assert a[:2] == b[:2]
        cal.pushback(a)
        heap.pushback(b)
        assert cal.pop()[:2] == a[:2]
        assert heap.pop()[:2] == b[:2]
