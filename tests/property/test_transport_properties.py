"""Property-based equivalence of the virtio-pci and virtio-mmio transports.

The two transports are different *register interfaces* over the same
virtqueue machinery: per-structure PCI capability windows with per-queue
MSI-X on one side, the 4.2 flat register block with one shared
interrupt line on the other.  For any workload and seed, both must
drive byte-for-byte the same descriptor and used-ring traffic -- the
same chains exposed, the same chains consumed, the same interrupts
raised by the device engines -- differing only in what the *accesses*
cost.  A divergence here would mean one of the register blocks mutates
queue state the other does not, which is exactly the bug class this
pins down.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency import run_virtio_payload
from repro.topology.builder import build_from_spec
from repro.topology.spec import GuestSpec, TopologySpec


def _ring_traffic(testbed):
    """Address-independent projection of all virtqueue traffic."""
    driver_view = [
        (
            vq.index,
            vq.size,
            vq._avail_idx,
            vq._last_used_idx,
            vq.in_flight,
        )
        for vq in testbed.driver.transport.virtqueues
    ]
    # Per-queue engine counters only: the dma_port's reads_issued /
    # bytes_read include avail-ring polling, whose batching depends on
    # *when* the doorbell lands -- a cost effect, not ring state.
    device_view = sorted(
        (key, value)
        for key, value in testbed.device.stats.items()
        if key.startswith("q")
    )
    return driver_view, device_view


def _run(transport: str, payload: int, packets: int, seed: int):
    guest = GuestSpec(mode="bare", transport=transport)
    testbed = build_from_spec(TopologySpec.single_virtio(guest), seed=seed)
    result = run_virtio_payload(testbed, payload, packets)
    return result, _ring_traffic(testbed)


class TestMmioMatchesPci:
    @given(
        payload=st.integers(min_value=16, max_value=1400),
        packets=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=12, deadline=None)
    def test_identical_ring_traffic(self, payload, packets, seed):
        pci_result, pci_traffic = _run("pci", payload, packets, seed)
        mmio_result, mmio_traffic = _run("mmio", payload, packets, seed)
        assert pci_traffic == mmio_traffic
        # Both completed the same workload (the app itself verifies the
        # echoed bytes; here we pin the packet accounting).
        assert pci_result.packets == mmio_result.packets == packets

    def test_access_costs_do_differ(self):
        # The shared-line demux (InterruptStatus read + InterruptACK
        # write per interrupt) is intrinsic mmio overhead, so with the
        # same seed the RTT series must NOT be identical even though
        # the ring traffic is.
        pci_result, pci_traffic = _run("pci", 256, 8, 7)
        mmio_result, mmio_traffic = _run("mmio", 256, 8, 7)
        assert pci_traffic == mmio_traffic
        assert (pci_result.rtt_ps != mmio_result.rtt_ps).any()
