"""Property-based tests on the wire codecs (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.xdma.descriptor import XdmaDescriptor
from repro.host.netstack.checksum import internet_checksum, verify_checksum
from repro.host.netstack.ethernet import EthernetFrame
from repro.host.netstack.ip import Ipv4Header
from repro.host.netstack.udp import udp_checksum_valid, udp_datagram
from repro.virtio.net_header import VirtioNetHeader
from repro.virtio.virtqueue import VirtqDescriptor

ips = st.integers(min_value=0, max_value=0xFFFF_FFFF)
ports = st.integers(min_value=0, max_value=0xFFFF)
macs = st.binary(min_size=6, max_size=6)
u16 = st.integers(min_value=0, max_value=0xFFFF)
addr64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestChecksumProperties:
    @given(st.binary(min_size=0, max_size=2048))
    def test_data_plus_checksum_verifies(self, data):
        """RFC 1071 invariant: appending the checksum makes the ones'
        complement sum all-ones."""
        csum = internet_checksum(data if len(data) % 2 == 0 else data + b"\x00")
        padded = data if len(data) % 2 == 0 else data + b"\x00"
        assert verify_checksum(padded + csum.to_bytes(2, "big"))

    @given(st.binary(min_size=2, max_size=512), st.integers(0, 511))
    def test_single_byte_corruption_detected(self, data, position):
        """The internet checksum catches all single-byte errors."""
        if len(data) % 2:
            data += b"\x00"
        position %= len(data)
        csum = internet_checksum(data)
        corrupted = bytearray(data)
        corrupted[position] ^= 0x55
        if bytes(corrupted) != data:
            assert internet_checksum(bytes(corrupted)) != csum


class TestUdpProperties:
    @given(ips, ips, ports, ports, st.binary(max_size=1400))
    @settings(max_examples=50)
    def test_datagram_always_validates(self, src, dst, sport, dport, payload):
        datagram = udp_datagram(src, dst, sport, dport, payload)
        assert udp_checksum_valid(src, dst, datagram)


class TestFrameProperties:
    @given(macs, macs, u16, st.binary(max_size=1500))
    @settings(max_examples=50)
    def test_ethernet_roundtrip(self, dst, src, ethertype, payload):
        frame = EthernetFrame(dst=dst, src=src, ethertype=ethertype, payload=payload)
        decoded = EthernetFrame.decode(frame.encode(pad=False))
        assert decoded == frame

    @given(ips, ips, st.integers(0, 255), st.integers(20, 65535), u16)
    @settings(max_examples=50)
    def test_ipv4_roundtrip_and_checksum(self, src, dst, proto, total, ident):
        header = Ipv4Header(src=src, dst=dst, protocol=proto, total_length=total,
                            identification=ident)
        raw = header.encode()
        decoded = Ipv4Header.decode(raw)
        assert (decoded.src, decoded.dst, decoded.protocol) == (src, dst, proto)
        assert decoded.header_valid(raw)


class TestDescriptorProperties:
    @given(
        addr64, addr64,
        st.integers(min_value=1, max_value=(1 << 28) - 1),
        st.booleans(), st.booleans(), st.booleans(),
        st.integers(0, 63), addr64,
    )
    @settings(max_examples=100)
    def test_xdma_descriptor_roundtrip(self, src, dst, length, stop, eop, irq,
                                       adj, next_addr):
        desc = XdmaDescriptor(
            src_addr=src, dst_addr=dst, length=length, stop=stop, eop=eop,
            completed_irq=irq, nxt_adj=adj, next_addr=next_addr,
        )
        assert XdmaDescriptor.decode(desc.encode()) == desc

    @given(addr64, st.integers(0, 0xFFFF_FFFF), st.integers(0, 7), u16)
    @settings(max_examples=100)
    def test_virtq_descriptor_roundtrip(self, addr, length, flags, next_index):
        desc = VirtqDescriptor(addr=addr, length=length, flags=flags,
                               next_index=next_index)
        assert VirtqDescriptor.decode(desc.encode()) == desc

    @given(st.integers(0, 255), st.integers(0, 255), u16, u16, u16, u16, u16)
    @settings(max_examples=100)
    def test_virtio_net_header_roundtrip(self, flags, gso, hdr_len, gso_size,
                                         cstart, coff, nbuf):
        header = VirtioNetHeader(flags=flags, gso_type=gso, hdr_len=hdr_len,
                                 gso_size=gso_size, csum_start=cstart,
                                 csum_offset=coff, num_buffers=nbuf)
        assert VirtioNetHeader.decode(header.encode()) == header
