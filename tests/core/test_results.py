"""Tests for result containers and breakdown derivation."""

import numpy as np
import pytest

from repro.core.results import (
    BreakdownRow,
    ComparisonResult,
    PayloadResult,
    SweepResult,
    breakdown_rows,
    render_breakdown,
)
from repro.sim.time import us


def make_payload_result(payload=64, n=100, rtt=30, hw=12, resp=2):
    return PayloadResult(
        payload=payload,
        rtt_ps=np.full(n, us(rtt), dtype=np.int64),
        hw_ps=np.full(n, us(hw), dtype=np.int64),
        resp_ps=np.full(n, us(resp), dtype=np.int64),
    )


class TestPayloadResult:
    def test_sw_derived(self):
        result = make_payload_result(rtt=30, hw=12, resp=2)
        assert result.sw_ps[0] == us(16)

    def test_adjusted_rtt_deducts_response(self):
        """Section IV-B: 'the time to generate the response packet is
        also deducted from the latency measurement'."""
        result = make_payload_result(rtt=30, resp=2)
        assert result.adjusted_rtt_ps[0] == us(28)

    def test_sw_clamped_at_zero(self):
        result = make_payload_result(rtt=10, hw=12, resp=2)
        assert (result.sw_ps == 0).all()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PayloadResult(
                payload=64,
                rtt_ps=np.zeros(5, dtype=np.int64),
                hw_ps=np.zeros(4, dtype=np.int64),
                resp_ps=np.zeros(5, dtype=np.int64),
            )

    def test_summaries(self):
        result = make_payload_result()
        assert result.rtt_summary().mean_us == pytest.approx(28.0)
        assert result.hw_summary().mean_us == pytest.approx(12.0)
        assert result.sw_summary().mean_us == pytest.approx(16.0)


class TestSweepResult:
    def test_add_and_order(self):
        sweep = SweepResult(driver="virtio")
        for payload in (1024, 64, 256):
            sweep.add(make_payload_result(payload=payload))
        assert sweep.payload_sizes() == [64, 256, 1024]

    def test_summary_table_renders(self):
        sweep = SweepResult(driver="virtio")
        sweep.add(make_payload_result())
        table = sweep.summary_table()
        assert "virtio" in table
        assert "64" in table


class TestComparison:
    def test_table1_layout(self):
        comparison = ComparisonResult(
            virtio=SweepResult(driver="virtio"),
            xdma=SweepResult(driver="xdma"),
        )
        comparison.virtio.add(make_payload_result(rtt=28))
        comparison.xdma.add(make_payload_result(rtt=40, resp=0))
        text = comparison.table1()
        assert "99.9%" in text
        assert "VirtIO" in text and "XDMA" in text

    def test_payload_sizes_intersection(self):
        comparison = ComparisonResult(
            virtio=SweepResult(driver="virtio"),
            xdma=SweepResult(driver="xdma"),
        )
        comparison.virtio.add(make_payload_result(payload=64))
        comparison.virtio.add(make_payload_result(payload=128))
        comparison.xdma.add(make_payload_result(payload=64))
        assert comparison.payload_sizes() == [64]


class TestBreakdown:
    def test_rows_from_sweep(self):
        sweep = SweepResult(driver="virtio")
        sweep.add(make_payload_result(rtt=30, hw=12, resp=2))
        rows = breakdown_rows(sweep)
        assert rows == [
            BreakdownRow(payload=64, hw_mean_us=pytest.approx(12.0),
                         hw_std_us=pytest.approx(0.0),
                         sw_mean_us=pytest.approx(16.0),
                         sw_std_us=pytest.approx(0.0))
        ]

    def test_render(self):
        sweep = SweepResult(driver="xdma")
        sweep.add(make_payload_result())
        out = render_breakdown(sweep, "Figure 5")
        assert "Figure 5" in out
        assert "hw mean" in out
