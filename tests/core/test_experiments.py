"""Tests for the experiment runners and sweep machinery (small packet
counts; the full-scale claims run lives in test_paper_claims.py)."""

import os

import numpy as np
import pytest

from repro.core.experiments import (
    default_packets,
    figure4,
    figure5,
    run_load_sweep,
    run_virtio_sweep,
    run_xdma_sweep,
)
from repro.core.latency import run_latency_sweep, run_virtio_payload, run_xdma_payload
from repro.core.testbed import build_virtio_testbed, build_xdma_testbed


PACKETS = 60


@pytest.fixture(scope="module")
def virtio_sweep():
    return run_virtio_sweep(payload_sizes=[64, 256], packets=PACKETS, seed=17)


@pytest.fixture(scope="module")
def xdma_sweep():
    return run_xdma_sweep(payload_sizes=[64, 256], packets=PACKETS, seed=17)


class TestSweeps:
    def test_packet_counts(self, virtio_sweep, xdma_sweep):
        for sweep in (virtio_sweep, xdma_sweep):
            for payload in (64, 256):
                assert sweep[payload].packets == PACKETS

    def test_virtio_hw_series_align_with_packets(self, virtio_sweep):
        result = virtio_sweep[64]
        assert len(result.hw_ps) == len(result.rtt_ps) == len(result.resp_ps)

    def test_xdma_resp_is_zero(self, xdma_sweep):
        """The XDMA test has no response generation to deduct."""
        assert (xdma_sweep[64].resp_ps == 0).all()

    def test_virtio_resp_positive(self, virtio_sweep):
        assert (virtio_sweep[64].resp_ps > 0).all()

    def test_hw_grows_with_payload(self, virtio_sweep, xdma_sweep):
        for sweep in (virtio_sweep, xdma_sweep):
            assert sweep[256].hw_summary().mean_us > sweep[64].hw_summary().mean_us

    def test_rtt_exceeds_hw(self, virtio_sweep):
        result = virtio_sweep[64]
        assert (result.rtt_ps > result.hw_ps).all()

    def test_hw_quantized_to_8ns(self, virtio_sweep):
        """Performance-counter readings are whole 125 MHz cycles."""
        assert (virtio_sweep[64].hw_ps % 8000 == 0).all()

    def test_dispatch_by_testbed_type(self):
        virtio = build_virtio_testbed(seed=1)
        sweep = run_latency_sweep(virtio, payload_sizes=[64], packets=10)
        assert sweep.driver == "virtio"
        xdma = build_xdma_testbed(seed=1)
        sweep = run_latency_sweep(xdma, payload_sizes=[64], packets=10)
        assert sweep.driver == "xdma"

    def test_unknown_testbed_rejected(self):
        with pytest.raises(TypeError):
            run_latency_sweep(object(), payload_sizes=[64], packets=1)

    def test_invalid_packet_count(self):
        testbed = build_virtio_testbed(seed=1)
        with pytest.raises(ValueError):
            run_virtio_payload(testbed, 64, 0)


class TestReproducibility:
    def test_same_seed_identical_series(self):
        a = run_virtio_sweep(payload_sizes=[64], packets=20, seed=5)
        b = run_virtio_sweep(payload_sizes=[64], packets=20, seed=5)
        assert np.array_equal(a[64].rtt_ps, b[64].rtt_ps)
        assert np.array_equal(a[64].hw_ps, b[64].hw_ps)

    def test_different_seeds_differ(self):
        a = run_virtio_sweep(payload_sizes=[64], packets=20, seed=5)
        b = run_virtio_sweep(payload_sizes=[64], packets=20, seed=6)
        assert not np.array_equal(a[64].rtt_ps, b[64].rtt_ps)


class TestArtifacts:
    def test_figure4_text(self):
        _, text = figure4(payload_sizes=[64], packets=20, seed=3)
        assert "Figure 4" in text and "VirtIO" in text

    def test_figure5_text(self):
        _, text = figure5(payload_sizes=[64], packets=20, seed=3)
        assert "Figure 5" in text and "XDMA" in text


class TestLoadSweep:
    def test_open_loop_explicit_rates(self):
        results, text = run_load_sweep(
            drivers=("virtio",), packets=40, seed=2, rates=[5_000, 20_000]
        )
        assert set(results) == {"virtio"}
        sweep = results["virtio"]
        assert [p.offered_pps for p in sweep.points] == [5_000, 20_000]
        assert "offered" in text and "p99" in text

    def test_closed_loop_mode(self):
        results, text = run_load_sweep(
            drivers=("xdma",), packets=40, seed=2, outstanding=[1, 2]
        )
        sweep = results["xdma"]
        assert [m.outstanding for m in sweep.points] == [1, 2]
        assert "closed loop" in text

    def test_unknown_driver_rejected(self):
        with pytest.raises(ValueError):
            run_load_sweep(drivers=("nvme",), packets=10, rates=[1000])


class TestDefaultPackets:
    def test_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_PACKETS", raising=False)
        assert default_packets(1234) == 1234

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACKETS", "777")
        assert default_packets() == 777

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACKETS", "-1")
        with pytest.raises(ValueError):
            default_packets()

    def test_non_integer_env_names_variable_and_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACKETS", "abc")
        with pytest.raises(ValueError) as excinfo:
            default_packets()
        message = str(excinfo.value)
        assert "REPRO_PACKETS" in message
        assert "abc" in message

    def test_float_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACKETS", "10.5")
        with pytest.raises(ValueError) as excinfo:
            default_packets()
        assert "REPRO_PACKETS" in str(excinfo.value)
