"""Tests for the calibration profile and wire-size matching."""

import dataclasses

import pytest

from repro.core.calibration import (
    MIN_WIRE_BYTES,
    PAPER_PACKETS_PER_SIZE,
    PAPER_PAYLOAD_SIZES,
    PAPER_PROFILE,
    VIRTIO_WIRE_OVERHEAD,
    CalibrationProfile,
    xdma_transfer_size,
)


class TestPaperConstants:
    def test_payload_sweep_matches_paper(self):
        """Section V: payloads between 64 B and 1 KB."""
        assert PAPER_PAYLOAD_SIZES == (64, 128, 256, 512, 1024)

    def test_packets_per_size(self):
        """Section III-B3: 50 000 packets per payload size."""
        assert PAPER_PACKETS_PER_SIZE == 50_000

    def test_link_is_gen2_x2(self):
        assert PAPER_PROFILE.link.generation == 2
        assert PAPER_PROFILE.link.lanes == 2


class TestWireMatching:
    def test_overhead_is_protocol_headers(self):
        """virtio_net_hdr + Ethernet + IPv4 + UDP."""
        assert VIRTIO_WIRE_OVERHEAD == 12 + 14 + 20 + 8

    def test_transfer_size_adds_overhead(self):
        assert xdma_transfer_size(256) == 256 + VIRTIO_WIRE_OVERHEAD

    def test_minimum_frame_padding(self):
        assert xdma_transfer_size(1) == MIN_WIRE_BYTES

    def test_invalid_payload(self):
        with pytest.raises(ValueError):
            xdma_transfer_size(0)


class TestProfileVariants:
    def test_without_noise(self):
        profile = PAPER_PROFILE.without_noise()
        model = profile.build_cost_model()
        assert model.interference.rate_hz == 0.0
        assert model.segment("task_wakeup").deterministic

    def test_with_link(self):
        profile = PAPER_PROFILE.with_link(3, 8)
        assert profile.link.generation == 3
        assert profile.link.lanes == 8
        # Other link parameters preserved:
        assert profile.link.propagation_ns == PAPER_PROFILE.link.propagation_ns

    def test_without_prefetch(self):
        assert not PAPER_PROFILE.without_prefetch().rx_prefetch

    def test_xdma_c2h_interrupt(self):
        assert PAPER_PROFILE.with_xdma_c2h_interrupt().xdma_c2h_interrupt

    def test_profiles_are_immutable(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PAPER_PROFILE.noise_enabled = False

    def test_host_speed_scaling(self):
        fast = dataclasses.replace(PAPER_PROFILE, host_speed_factor=0.5)
        slow_model = PAPER_PROFILE.build_cost_model()
        fast_model = fast.build_cost_model()
        assert (
            fast_model.segment("task_wakeup").nominal_ps
            < slow_model.segment("task_wakeup").nominal_ps
        )
