"""E5: verification of the paper's Section V claims on a moderate run.

This is the accountability test of the reproduction: every qualitative
claim of the evaluation section must hold on the simulation substrate.
Packet counts are kept CI-sized (tail estimates at p99.9 are noisy, so
the convergence claim is checked in aggregate, as the paper's own
non-monotone Table I warrants).
"""

import pytest

from repro.core.experiments import run_comparison, verify_paper_claims

PACKETS = 700
PAYLOADS = (64, 256, 1024)


@pytest.fixture(scope="module")
def comparison():
    return run_comparison(payload_sizes=PAYLOADS, packets=PACKETS, seed=42)


@pytest.fixture(scope="module")
def claims(comparison):
    return {c.claim: c for c in verify_paper_claims(comparison)}


class TestSectionVClaims:
    def test_all_claims_hold(self, claims):
        failures = [c for c in claims.values() if not c.holds]
        assert not failures, "\n".join(f"{c.claim}: {c.evidence}" for c in failures)

    def test_virtio_wins_p95(self, claims):
        assert claims["VirtIO p95 <= XDMA p95 at every payload"].holds

    def test_virtio_wins_p99(self, claims):
        assert claims["VirtIO p99 <= XDMA p99 at every payload"].holds

    def test_variance_ordering(self, claims):
        assert claims["VirtIO dispersion (p90-p10) < XDMA dispersion"].holds

    def test_breakdown_structure(self, claims):
        assert claims["VirtIO: hardware share > software share"].holds
        assert claims["XDMA: software share > hardware share"].holds

    def test_software_constant(self, claims):
        assert claims[
            "VirtIO software share constant across payloads (<15% spread)"
        ].holds


class TestQuantitativeShape:
    def test_latency_magnitudes_near_paper(self, comparison):
        """Means should land in the tens of microseconds, as Table I
        implies (not hundreds, not single digits)."""
        for payload in PAYLOADS:
            for sweep in (comparison.virtio, comparison.xdma):
                mean = sweep[payload].rtt_summary().mean_us
                assert 15 < mean < 90, f"{sweep.driver}/{payload}B mean {mean}"

    def test_table1_order_of_magnitude(self, comparison):
        """p95 values within a factor ~1.5 of the paper's Table I."""
        paper_p95 = {
            ("virtio", 64): 35.1, ("virtio", 256): 39.6, ("virtio", 1024): 57.8,
            ("xdma", 64): 51.3, ("xdma", 256): 51.5, ("xdma", 1024): 72.8,
        }
        for (driver, payload), expected in paper_p95.items():
            sweep = comparison.virtio if driver == "virtio" else comparison.xdma
            measured = sweep[payload].tail_latencies_us()[95.0]
            assert expected / 1.5 < measured < expected * 1.5, (
                f"{driver}/{payload}B p95 {measured:.1f} vs paper {expected}"
            )

    def test_payload_slope_positive_for_both(self, comparison):
        """Table I: both drivers' latencies grow ~15-25 us from 64 B to
        1 KB (the byte-serial datapath slope)."""
        for sweep in (comparison.virtio, comparison.xdma):
            delta = (
                sweep[1024].rtt_summary().mean_us - sweep[64].rtt_summary().mean_us
            )
            assert 10 < delta < 35, f"{sweep.driver} slope {delta}"

    def test_xdma_interrupt_count_matches_design(self, comparison):
        """The XDMA flow takes two channel interrupts per round trip;
        VirtIO takes one RX interrupt."""
        # Verified through the series lengths: every packet produced
        # exactly one h2c and one c2h engine run (each with its IRQ).
        result = comparison.xdma[64]
        assert result.packets == PACKETS
