"""Tests for the CLI entry point."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1", "--packets", "30", "--payloads", "64"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "VirtIO" in out

    def test_fig4(self, capsys):
        assert main(["fig4", "--packets", "20", "--payloads", "64"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["fig5", "--packets", "20", "--payloads", "64"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_fig3(self, capsys):
        assert main(["fig3", "--packets", "20", "--payloads", "64"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "#" in out  # histogram bars

    def test_claims(self, capsys):
        assert main(["claims", "--packets", "30", "--payloads", "64"]) == 0
        assert "claims" in capsys.readouterr().out.lower()

    def test_seed_flag(self, capsys):
        main(["table1", "--packets", "10", "--payloads", "64", "--seed", "9"])
        first = capsys.readouterr().out
        main(["table1", "--packets", "10", "--payloads", "64", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
