"""Tests for the CLI entry point."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1", "--packets", "30", "--payloads", "64"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "VirtIO" in out

    def test_fig4(self, capsys):
        assert main(["fig4", "--packets", "20", "--payloads", "64"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["fig5", "--packets", "20", "--payloads", "64"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_fig3(self, capsys):
        assert main(["fig3", "--packets", "20", "--payloads", "64"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "#" in out  # histogram bars

    def test_claims(self, capsys):
        assert main(["claims", "--packets", "30", "--payloads", "64"]) == 0
        assert "claims" in capsys.readouterr().out.lower()

    def test_seed_flag(self, capsys):
        main(["table1", "--packets", "10", "--payloads", "64", "--seed", "9"])
        first = capsys.readouterr().out
        main(["table1", "--packets", "10", "--payloads", "64", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


LOADSWEEP_FAST = [
    "loadsweep", "--packets", "40", "--rate", "5000", "20000",
]


class TestLoadsweepCli:
    def test_text_output(self, capsys):
        assert main(LOADSWEEP_FAST) == 0
        out = capsys.readouterr().out
        assert "Load sweep (open loop)" in out
        assert "Throughput vs offered load (virtio" in out
        assert "Throughput vs offered load (xdma" in out
        assert "Latency vs offered load" in out

    def test_deterministic_across_repeats(self, capsys):
        main(LOADSWEEP_FAST + ["--seed", "4"])
        first = capsys.readouterr().out
        main(LOADSWEEP_FAST + ["--seed", "4"])
        second = capsys.readouterr().out
        assert first == second

    def test_json_output(self, capsys):
        assert main(LOADSWEEP_FAST + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["artifact"] == "loadsweep"
        assert doc["mode"] == "open"
        assert set(doc["drivers"]) == {"virtio", "xdma"}
        points = doc["drivers"]["virtio"]["points"]
        assert [p["offered_pps"] for p in points] == [5000.0, 20000.0]
        assert all("p99" in p["latency_us"] for p in points)

    def test_closed_loop_json(self, capsys):
        argv = ["loadsweep", "--packets", "40", "--outstanding", "1", "2", "--json"]
        assert main(argv) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["mode"] == "closed"
        assert [p["outstanding"] for p in doc["drivers"]["xdma"]["points"]] == [1, 2]

    def test_bursty_distribution(self, capsys):
        assert main(LOADSWEEP_FAST + ["--distribution", "bursty"]) == 0
        assert "bursty arrivals" in capsys.readouterr().out


class TestJsonFlag:
    def test_table1_json(self, capsys):
        assert main(["table1", "--packets", "30", "--payloads", "64", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["artifact"] == "table1"
        assert doc["rows"][0]["payload"] == 64
        assert {"virtio", "xdma"} <= set(doc["rows"][0])
        assert "p99_us" in doc["rows"][0]["virtio"]

    def test_fig3_json(self, capsys):
        argv = ["fig3", "--json", "--packets", "10", "--payloads", "64"]
        assert main(argv) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["artifact"] == "fig3"
        assert set(doc["drivers"]) == {"virtio", "xdma"}
        assert "p99_us" in doc["drivers"]["virtio"]["64"]

    @pytest.mark.parametrize("artifact", ["fig4", "fig5"])
    def test_breakdown_json(self, artifact, capsys):
        argv = [artifact, "--json", "--packets", "10", "--payloads", "64"]
        assert main(argv) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["artifact"] == artifact
        assert doc["driver"] == ("virtio" if artifact == "fig4" else "xdma")
        row = doc["breakdown"][0]
        assert row["payload"] == 64
        assert {"hw_mean_us", "sw_mean_us", "total_mean_us"} <= set(row)

    def test_json_rejected_for_other_artifacts(self, capsys):
        for artifact in ("claims", "all"):
            with pytest.raises(SystemExit):
                main([artifact, "--json", "--packets", "10", "--payloads", "64"])
            assert artifact in capsys.readouterr().err


class TestParallelCli:
    def test_jobs_flag_output_matches_single_worker(self, capsys):
        argv = ["table1", "--packets", "40", "--payloads", "64", "--seed", "2"]
        assert main(argv + ["--jobs", "1"]) == 0
        first = capsys.readouterr().out
        assert main(argv + ["-j", "2"]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_jobs_zero_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--packets", "10", "--payloads", "64", "--jobs", "0"])

    def test_bench_writes_record(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        argv = ["bench", "--packets", "40", "--payloads", "64", "--jobs", "2"]
        assert main(argv) == 0
        files = list(tmp_path.glob("BENCH_*.json"))
        assert len(files) == 1
        record = json.loads(files[0].read_text())
        assert record["schema"] == "bench-v2"
        assert record["parallel_matches_serial"] is True
        assert record["micro"]["copy_counts"]["virtio"]["read"] > 0
        assert record["micro"]["cpu_score"] > 0
        assert record["speedup"] > 0
        assert record["serial"]["events"] == record["parallel"]["events"]
        assert "speedup" in capsys.readouterr().out

    def test_bench_json_output(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        argv = ["bench", "--packets", "30", "--payloads", "64", "-j", "2", "--json"]
        assert main(argv) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"]["packets"] == 30

    def test_bench_requires_two_jobs(self):
        with pytest.raises(SystemExit):
            main(["bench", "--packets", "10", "--payloads", "64", "--jobs", "1"])

    def test_bench_check_passes_against_slow_baseline(self, tmp_path, monkeypatch, capsys):
        # A v1-style baseline with a tiny events/s: any real run clears
        # the floor, so this exercises the full --check path deterministically.
        baseline = tmp_path / "BENCH_baseline.json"
        baseline.write_text(json.dumps({
            "schema": "bench-v1",
            "rev": "slow",
            "workload": {"packets": 20, "payload_sizes": [64], "seed": 0},
            "serial": {"events_per_second": 1000.0},
        }))
        argv = ["bench", "--check", "--baseline", str(baseline)]
        assert main(argv) == 0
        assert "PASS" in capsys.readouterr().out

    def test_bench_check_fails_against_impossible_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_baseline.json"
        baseline.write_text(json.dumps({
            "schema": "bench-v1",
            "rev": "impossible",
            "workload": {"packets": 20, "payload_sizes": [64], "seed": 0},
            "serial": {"events_per_second": 1e12},
        }))
        assert main(["bench", "--check", "--baseline", str(baseline)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bench_check_missing_baseline_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--check", "--baseline", str(tmp_path / "nope.json")])

    def test_check_rejected_outside_bench(self):
        with pytest.raises(SystemExit):
            main(["table1", "--check"])


GUESTSWEEP_FAST = [
    "guestsweep", "--packets", "10", "--payloads", "64", "--seed", "7",
]


class TestGuestsweepCli:
    def test_text_output(self, capsys):
        assert main(GUESTSWEEP_FAST) == 0
        out = capsys.readouterr().out
        assert "E-V1 guest sweep" in out
        for block in ("virtio / bare", "virtio / trapped", "virtio / vhost",
                      "xdma / bare", "xdma / trapped", "xdma / vhost"):
            assert f"-- {block} --" in out

    def test_json_output(self, capsys):
        assert main(GUESTSWEEP_FAST + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["experiment"] == "E-V1"
        assert doc["transport"] == "pci"
        assert doc["modes"] == ["bare", "trapped", "vhost"]
        row = doc["results"]["virtio"]["trapped"]["64"]
        assert row["trap_mean_us"] > 0
        assert row["vmm"]["vmexits"] > 0

    def test_modes_flag_dedupes(self, capsys):
        argv = GUESTSWEEP_FAST + ["--modes", "vhost", "vhost", "bare", "--json"]
        assert main(argv) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["modes"] == ["vhost", "bare"]

    def test_mmio_transport(self, capsys):
        argv = GUESTSWEEP_FAST + ["--transport", "mmio", "--modes", "bare",
                                  "--json"]
        assert main(argv) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["transport"] == "mmio"
        assert doc["drivers"] == ["virtio"]  # xdma has no VirtIO transport

    def test_jobs_parity(self, capsys):
        main(GUESTSWEEP_FAST + ["--json", "-j", "1"])
        first = capsys.readouterr().out
        main(GUESTSWEEP_FAST + ["--json", "-j", "2"])
        second = capsys.readouterr().out
        assert first == second

    def test_guest_mode_env_sets_default(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_GUEST_MODE", "vhost")
        assert main(GUESTSWEEP_FAST + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["modes"] == ["vhost"]

    def test_invalid_guest_mode_env_rejected(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_GUEST_MODE", "weird")
        with pytest.raises(SystemExit):
            main(GUESTSWEEP_FAST)
        assert "REPRO_GUEST_MODE" in capsys.readouterr().err

    def test_invalid_transport_rejected(self):
        with pytest.raises(SystemExit):
            main(GUESTSWEEP_FAST + ["--transport", "ccw"])


class TestArtifactRegistry:
    """Satellite: the --json support list is derived, not hand-edited."""

    def test_json_artifacts_derived_from_registry(self):
        from repro.cli import ARTIFACTS, JSON_ARTIFACTS

        assert JSON_ARTIFACTS == tuple(
            name for name, has_json in ARTIFACTS.items() if has_json
        )
        assert "guestsweep" in JSON_ARTIFACTS
        assert "claims" not in JSON_ARTIFACTS
        assert "all" not in JSON_ARTIFACTS

    def test_json_error_lists_supported_subcommands(self, capsys):
        from repro.cli import JSON_ARTIFACTS

        with pytest.raises(SystemExit):
            main(["claims", "--json"])
        err = capsys.readouterr().err
        # The registry drives the message: every supported artifact is
        # named, including ones registered after this test was written.
        for name in JSON_ARTIFACTS:
            assert name in err

    def test_invalid_env_rejected_before_any_work(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "fifo")
        with pytest.raises(SystemExit):
            main(["table1", "--packets", "10", "--payloads", "64"])
        assert "REPRO_SIM_SCHEDULER" in capsys.readouterr().err
