"""Seed-stability: the reproduction's conclusions must not depend on
the random seed (only the exact sample values may)."""

import pytest

from repro.core.experiments import run_comparison

PACKETS = 350
PAYLOADS = (64, 1024)


@pytest.fixture(scope="module", params=[7, 1234, 987654])
def comparison(request):
    return run_comparison(payload_sizes=PAYLOADS, packets=PACKETS, seed=request.param)


class TestSeedStability:
    def test_virtio_wins_p95(self, comparison):
        for payload in PAYLOADS:
            virtio = comparison.virtio[payload].tail_latencies_us()[95.0]
            xdma = comparison.xdma[payload].tail_latencies_us()[95.0]
            assert virtio < xdma

    def test_dispersion_ordering(self, comparison):
        import numpy as np

        for payload in PAYLOADS:
            v = comparison.virtio[payload].adjusted_rtt_ps
            x = comparison.xdma[payload].adjusted_rtt_ps
            v_spread = np.percentile(v, 90) - np.percentile(v, 10)
            x_spread = np.percentile(x, 90) - np.percentile(x, 10)
            assert v_spread < x_spread

    def test_breakdown_structure(self, comparison):
        for payload in PAYLOADS:
            v = comparison.virtio[payload]
            x = comparison.xdma[payload]
            assert v.hw_summary().mean_us > v.sw_summary().mean_us
            assert x.sw_summary().mean_us > x.hw_summary().mean_us

    def test_means_within_calibrated_band(self, comparison):
        """Absolute means stay in the calibrated range across seeds."""
        for payload, low, high in ((64, 25, 50), (1024, 40, 75)):
            v_mean = comparison.virtio[payload].rtt_summary().mean_us
            assert low < v_mean < high
