"""Unit-level tests for the timeline and throughput result types."""

import pytest

from repro.core.throughput import ThroughputResult
from repro.core.timeline import Timeline, _NARRATION
from repro.sim.trace import TraceRecord


class TestThroughputResult:
    def make(self):
        return ThroughputResult(
            driver="virtio", window=4, packets=200, duration_us=10_000.0, irqs=200
        )

    def test_packets_per_second(self):
        assert self.make().packets_per_second == pytest.approx(20_000.0)

    def test_irqs_per_packet(self):
        assert self.make().irqs_per_packet == pytest.approx(1.0)


class TestTimeline:
    def make(self):
        records = [
            TraceRecord(time=1000, source="a", kind="kick"),
            TraceRecord(time=2000, source="b", kind="tlp-tx", detail={"tlp": "MRd"}),
            TraceRecord(time=3000, source="c", kind="queue-irq", detail={"vector": 1}),
        ]
        return Timeline(driver="VirtIO", payload=64, total_us=10.0, records=records)

    def test_events_filters_tlp_noise(self):
        events = self.make().events()
        assert [r.kind for r in events] == ["kick", "queue-irq"]

    def test_render_hides_tlps_by_default(self):
        text = self.make().render()
        assert "MRd" not in text
        assert "doorbell" in text

    def test_render_with_tlps(self):
        text = self.make().render(include_tlps=True)
        assert "tlp-tx" in text

    def test_count(self):
        assert self.make().count("kick") == 1
        assert self.make().count("nothing") == 0

    def test_relative_timestamps(self):
        text = self.make().render()
        assert "+    0.00 us" in text  # first record anchors the origin

    def test_narration_covers_all_hot_kinds(self):
        """Every trace kind the data-path emits has a narration policy
        (a string or explicit None), so new trace points are a conscious
        decision."""
        for kind in ("kick", "host-read", "host-write", "queue-irq", "msi",
                     "sgdma-start", "channel-irq", "udp-tx", "udp-rx"):
            assert kind in _NARRATION
