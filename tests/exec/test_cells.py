"""Cell decomposition and seed-derivation invariants."""

import pytest

from repro.exec import (
    Cell,
    cell_seed,
    closed_sweep_cells,
    derive_cell_seed,
    execute_cell,
    latency_cells,
    run_cells,
    seed_identity,
)
from repro.exec.cells import (
    SEED_IDENTITY_ALIASES,
    calibration_cells,
    fault_cells,
    open_sweep_cells,
)


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_cell_seed(0, "latency", "virtio", 64) == derive_cell_seed(
            0, "latency", "virtio", 64
        )

    def test_distinct_per_identity(self):
        seeds = {
            derive_cell_seed(0, "latency", driver, payload)
            for driver in ("virtio", "xdma")
            for payload in (64, 256, 1024, 2048, 4096)
        }
        assert len(seeds) == 10

    def test_distinct_per_root_seed(self):
        assert derive_cell_seed(0, "latency", "virtio", 64) != derive_cell_seed(
            1, "latency", "virtio", 64
        )

    def test_distinct_per_kind(self):
        assert derive_cell_seed(0, "latency", "virtio", 1) != derive_cell_seed(
            0, "closedload", "virtio", 1
        )

    def test_seed_fits_simulator(self):
        seed = derive_cell_seed(12345, "latency", "xdma", 4096)
        assert 0 <= seed < (1 << 128)


class TestSeedIdentity:
    """The one helper that owns every kind's spawn-key identity."""

    def test_identity_tuples(self):
        assert seed_identity("latency", "virtio", payload=64) == (
            "latency", "virtio", 64
        )
        assert seed_identity("calibrate", "xdma") == ("calibrate", "xdma")
        assert seed_identity("openload", "virtio", index=3) == (
            "openload", "virtio", 3
        )
        assert seed_identity("closedload", "xdma", outstanding=4) == (
            "closedload", "xdma", 4
        )
        assert seed_identity("fleet", pod=1) == ("fleet", 1)

    def test_aliased_kinds_share_parent_identity(self):
        # faultlat/guest cells must replay the latency cell's stream
        # (the baseline column pin), overload must replay openload's.
        assert seed_identity("faultlat", "virtio", payload=64) == seed_identity(
            "latency", "virtio", payload=64
        )
        assert seed_identity("guest", "virtio", payload=64) == seed_identity(
            "latency", "virtio", payload=64
        )
        assert seed_identity("overload", "xdma", index=2) == seed_identity(
            "openload", "xdma", index=2
        )
        assert set(SEED_IDENTITY_ALIASES) == {"faultlat", "guest", "overload"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="no seed identity"):
            seed_identity("thermal", "virtio", payload=64)

    def test_incomplete_identity_rejected(self):
        with pytest.raises(ValueError, match="incomplete seed identity"):
            seed_identity("latency", "virtio")  # payload missing
        with pytest.raises(ValueError, match="incomplete seed identity"):
            seed_identity("closedload", "xdma")  # outstanding missing

    def test_cell_seed_matches_raw_derivation(self):
        assert cell_seed(7, "latency", "virtio", payload=64) == derive_cell_seed(
            7, "latency", "virtio", 64
        )

    def test_factories_agree_with_helper(self):
        lat = latency_cells((64,), packets=5, seed=7)[0]
        assert lat.seed == cell_seed(7, "latency", lat.driver, payload=64)
        fault = fault_cells(("virtio",), (0.01,), payload=64, packets=5, seed=7)[0]
        assert fault.seed == cell_seed(7, "faultlat", fault.driver, payload=64)
        closed = closed_sweep_cells("xdma", (2,), (64,), packets=5, seed=7)[0]
        assert closed.seed == cell_seed(7, "closedload", "xdma", outstanding=2)


class TestDecomposition:
    def test_latency_cells_cover_driver_x_payload(self):
        cells = latency_cells((64, 1024), packets=10, seed=0)
        assert [(c.driver, c.payload) for c in cells] == [
            ("virtio", 64), ("virtio", 1024), ("xdma", 64), ("xdma", 1024),
        ]
        assert all(c.kind == "latency" and c.packets == 10 for c in cells)

    def test_cell_seeds_do_not_depend_on_packet_count(self):
        # Identity is (kind, driver, payload): shrinking a run for a
        # smoke test keeps each cell's stream recognizable.
        a = latency_cells((64,), packets=10, seed=3)[0].seed
        b = latency_cells((64,), packets=10_000, seed=3)[0].seed
        assert a == b

    def test_closed_sweep_cells(self):
        cells = closed_sweep_cells("virtio", (1, 2, 4), (64,), packets=5, seed=0)
        assert [c.outstanding for c in cells] == [1, 2, 4]
        assert len({c.seed for c in cells}) == 3

    def test_open_sweep_cells_seeded_by_index(self):
        a = open_sweep_cells("xdma", [1000.0, 2000.0], (64,), 5, seed=0)
        b = open_sweep_cells("xdma", [1111.0, 2222.0], (64,), 5, seed=0)
        # Same indices, same seeds -- rates are labels, not identity.
        assert [c.seed for c in a] == [c.seed for c in b]

    def test_calibration_cells_one_per_driver(self):
        cells = calibration_cells(("virtio", "xdma"), (64,), 5, seed=0)
        assert [c.driver for c in cells] == ["virtio", "xdma"]

    def test_labels(self):
        assert latency_cells((64,), 1, 0)[0].label == "virtio/64B"
        assert closed_sweep_cells("xdma", (4,), (64,), 1, 0)[0].label == "xdma/N=4"


class TestRunCells:
    def test_unknown_driver_rejected(self):
        cell = Cell(kind="latency", driver="nvme", seed=0, packets=1,
                    profile=None, payload=64)
        with pytest.raises(Exception, match="unknown driver"):
            execute_cell(cell)

    def test_outcomes_follow_cell_order(self):
        cells = latency_cells((1024, 64), packets=20, seed=0)
        outcomes = run_cells(cells, jobs=1)
        assert [o.cell.payload for o in outcomes] == [1024, 64, 1024, 64]
        assert all(o.events > 0 and o.wall_s >= 0 for o in outcomes)

    def test_execute_cell_is_pure(self):
        cell = latency_cells((64,), packets=25, seed=9)[0]
        first = execute_cell(cell)
        second = execute_cell(cell)
        assert (first.value.rtt_ps == second.value.rtt_ps).all()
        assert first.events == second.events
