"""Cold vs warm golden parity for every CLI artifact.

``tests/topology/test_golden_parity.py`` pins every artifact's bytes
against the pre-topology goldens with the cache disabled.  This module
repeats the pin *through the result cache*: the populate pass (all
misses) and the warm pass (all hits) must both reproduce the golden
bytes exactly, at ``-j 1`` and ``-j 4``.  Together with the mixed
hit/miss case in ``test_cache.py`` this is the acceptance matrix
{cold, warm-hit, mixed} x jobs {1, 4}.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.exec import cache as result_cache

_TOPOLOGY = Path(__file__).parent.parent / "topology"


def _load_golden_module():
    spec = importlib.util.spec_from_file_location(
        "golden_parity", _TOPOLOGY / "test_golden_parity.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_GOLDEN_MOD = _load_golden_module()
COMMANDS = _GOLDEN_MOD.COMMANDS
GOLDEN = _TOPOLOGY / "golden"


@pytest.fixture(autouse=True)
def _no_global_cache():
    yield
    result_cache.configure(enabled=False)


def strip_stats(out: str) -> str:
    payload = json.loads(out)
    payload.pop("cache_stats", None)
    return json.dumps(payload, indent=2) + "\n"


@pytest.mark.parametrize("golden_name", sorted(COMMANDS))
@pytest.mark.parametrize("jobs", [1, 4])
def test_cached_artifact_matches_golden(golden_name, jobs, tmp_path, capsys):
    argv = COMMANDS[golden_name] + [
        "-j", str(jobs), "--cache", "--cache-dir", str(tmp_path)
    ]
    expected = (GOLDEN / golden_name).read_text()

    main(argv)
    cold = capsys.readouterr().out
    cold_stats = json.loads(cold)["cache_stats"]
    assert cold_stats["hits"] == 0, f"{golden_name}: populate pass saw hits"
    assert strip_stats(cold) == expected, (
        f"{golden_name} populate pass diverged from golden at -j{jobs}"
    )

    main(argv)
    warm = capsys.readouterr().out
    warm_stats = json.loads(warm)["cache_stats"]
    assert warm_stats["misses"] == 0, (
        f"{golden_name}: warm rerun missed "
        f"({warm_stats['hits']} hits, {warm_stats['misses']} misses)"
    )
    assert warm_stats["hits"] == cold_stats["stores"]
    assert strip_stats(warm) == expected, (
        f"{golden_name} warm pass diverged from golden at -j{jobs}"
    )
