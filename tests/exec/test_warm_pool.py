"""The warm worker pool: one executor shared across fan-outs.

``run_cells`` used to build (and tear down) a ``ProcessPoolExecutor``
per call, so ``execute_load_sweep`` -- two fan-outs per invocation --
paid pool startup twice.  The pool is now a module-level singleton that
later fan-outs reuse; these tests pin the reuse, the grow-on-demand
sizing, the serial bypass, and cleanup.
"""

import pytest

import repro.exec.runner as runner
from repro.exec.cells import latency_cells


@pytest.fixture(autouse=True)
def fresh_pool():
    runner.shutdown_pool()
    yield
    runner.shutdown_pool()


def _cells(n_payloads):
    payloads = [64, 128, 256, 512][:n_payloads]
    return latency_cells(payloads, packets=3, seed=0, drivers=("virtio",))


class TestWarmPool:
    def test_pool_reused_across_fan_outs(self):
        runner.run_cells(_cells(2), jobs=2)
        first = runner._POOL
        assert first is not None
        runner.run_cells(_cells(2), jobs=2)
        assert runner._POOL is first

    def test_pool_grows_but_never_shrinks(self):
        runner.run_cells(_cells(2), jobs=2)
        assert runner._POOL_WORKERS == 2
        runner.run_cells(_cells(4), jobs=4)
        grown = runner._POOL
        assert runner._POOL_WORKERS == 4
        runner.run_cells(_cells(2), jobs=2)
        assert runner._POOL is grown
        assert runner._POOL_WORKERS == 4

    def test_serial_and_single_cell_skip_the_pool(self):
        runner.run_cells(_cells(3), jobs=1)
        assert runner._POOL is None
        runner.run_cells(_cells(1), jobs=4)
        assert runner._POOL is None

    def test_outcomes_in_cell_order_and_identical_to_serial(self):
        cells = _cells(3)
        serial = runner.run_cells(cells, jobs=1)
        pooled = runner.run_cells(cells, jobs=2)
        assert [o.cell for o in pooled] == [o.cell for o in serial]
        # Results carry numpy arrays; repr equality is exact here.
        assert [repr(o.value) for o in pooled] == [repr(o.value) for o in serial]

    def test_shutdown_resets_state(self):
        runner.run_cells(_cells(2), jobs=2)
        runner.shutdown_pool()
        assert runner._POOL is None
        assert runner._POOL_WORKERS == 0
        # And the next fan-out transparently builds a fresh pool.
        outcomes = runner.run_cells(_cells(2), jobs=2)
        assert len(outcomes) == 2
