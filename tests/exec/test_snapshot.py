"""Snapshot boot reuse: stamped cells must equal cold-booted cells.

The fork/copy-on-write transport is only admissible because a stamped
measurement is *byte-identical* to a cold one -- the hypothesis test
below pins that across drivers, payloads, and seeds (pickle equality
covers every array element and every summary float).  The policy tests
use fake boot/measure callables so they exercise the registry logic
without paying testbed boots.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import snapshot
from repro.exec.cells import latency_cells
from repro.exec.runner import _cell_plan


@pytest.fixture(autouse=True)
def _fresh_registry():
    snapshot.reset()
    yield
    snapshot.reset()


requires_fork = pytest.mark.skipif(
    not snapshot._SUPPORTED, reason="os.fork unavailable"
)


@requires_fork
class TestStampParity:
    @settings(max_examples=6, deadline=None)
    @given(
        driver=st.sampled_from(["virtio", "xdma"]),
        payload=st.sampled_from([64, 256, 1024]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_stamped_equals_cold(self, driver, payload, seed):
        cell = latency_cells(
            (payload,), packets=6, seed=seed, drivers=(driver,)
        )[0]
        key, boot, measure = _cell_plan(cell)
        cold = measure(boot())

        snapshot.reset()
        first, reused1 = snapshot.execute(key, boot, measure)
        second, reused2 = snapshot.execute(key, boot, measure)
        third, reused3 = snapshot.execute(key, boot, measure)
        # Seen-once-then-keep: cold, boot+keep (stamped), pure reuse.
        assert (reused1, reused2, reused3) == (False, False, True)
        assert snapshot.snapshots_held() == 1
        assert snapshot.local_reuses() == 1

        baseline = pickle.dumps(cold)
        assert pickle.dumps(first) == baseline
        assert pickle.dumps(second) == baseline
        assert pickle.dumps(third) == baseline

    def test_cross_kind_sharing(self):
        # A faultlat cell aliases the latency seed identity and boots
        # the identical machine: both kinds map to one snapshot key.
        from repro.exec.cells import fault_cells

        lat = latency_cells((64,), packets=5, seed=3, drivers=("virtio",))[0]
        fault = fault_cells(("virtio",), (0.01,), 64, packets=5, seed=3)[0]
        assert _cell_plan(lat)[0] == _cell_plan(fault)[0]


class _FakeBoot:
    """Counts boots; hands out picklable 'testbeds'."""

    def __init__(self):
        self.count = 0

    def __call__(self):
        self.count += 1
        return {"image": self.count}


def _measure(testbed):
    return ("measured", testbed["image"])


@requires_fork
class TestPolicy:
    def test_seen_once_then_keep(self):
        boot = _FakeBoot()
        r1, reused1 = snapshot.execute("k", boot, _measure)
        assert (r1, reused1) == (("measured", 1), False)
        assert snapshot.snapshots_held() == 0  # first use: no image yet
        r2, reused2 = snapshot.execute("k", boot, _measure)
        assert (r2, reused2) == (("measured", 2), False)
        assert snapshot.snapshots_held() == 1  # second use: boot + keep
        r3, reused3 = snapshot.execute("k", boot, _measure)
        assert (r3, reused3) == (("measured", 2), True)  # stamped, no boot
        assert boot.count == 2

    def test_lru_cap(self):
        keys = [f"k{i}" for i in range(snapshot.MAX_SNAPSHOTS + 3)]
        for key in keys:
            snapshot.execute(key, _FakeBoot(), _measure)
            snapshot.execute(key, _FakeBoot(), _measure)  # promotes to kept
        assert snapshot.snapshots_held() == snapshot.MAX_SNAPSHOTS
        # The oldest images were evicted; their next use boots again.
        boot = _FakeBoot()
        _, reused = snapshot.execute(keys[0], boot, _measure)
        assert boot.count == 1 and reused is False

    def test_no_key_always_cold(self):
        boot = _FakeBoot()
        for _ in range(3):
            _, reused = snapshot.execute(None, boot, _measure)
            assert reused is False
        assert boot.count == 3
        assert snapshot.snapshots_held() == 0

    def test_env_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_BOOT", "0")
        assert snapshot.enabled() is False
        boot = _FakeBoot()
        for _ in range(3):
            _, reused = snapshot.execute("k", boot, _measure)
            assert reused is False
        assert boot.count == 3

    def test_transport_failure_falls_back_cold(self, monkeypatch):
        def broken(testbed, measure):
            raise snapshot.SnapshotError("no transport")

        monkeypatch.setattr(snapshot, "_stamp", broken)
        boot = _FakeBoot()
        r1, _ = snapshot.execute("k", boot, _measure)
        r2, _ = snapshot.execute("k", boot, _measure)  # stamp fails here
        r3, reused3 = snapshot.execute("k", boot, _measure)
        assert [r1, r2, r3] == [("measured", i) for i in (1, 2, 3)]
        assert reused3 is False  # key is broken: never retried
        assert snapshot.snapshots_held() == 0

    def test_cell_failure_propagates(self):
        # A failure inside measure must surface exactly as it would
        # cold -- including from inside a fork.
        def exploding(testbed):
            raise ValueError("cell blew up")

        snapshot.execute("k", _FakeBoot(), _measure)  # seen once
        boot = _FakeBoot()
        with pytest.raises(ValueError, match="cell blew up"):
            snapshot.execute("k", boot, exploding)

    def test_parent_aggregation(self):
        snapshot.note_parent_reuses(3)
        snapshot.note_parent_reuses(2)
        assert snapshot.parent_boot_reuses() == 5
        snapshot.reset()
        assert snapshot.parent_boot_reuses() == 0
