"""The content-addressed result cache: parity, invalidation, robustness.

The contract under test (docs/architecture.md, "Result cache &
snapshot boot reuse"):

* a warm rerun of an unchanged command is byte-identical to the cold
  run, for any ``--jobs`` and any hit/miss mix;
* the key covers every relevant input -- root seed, any spec field,
  the source of any module the kind executes -- and nothing more (a
  change to an unrelated subpackage keeps entries valid);
* a defective entry (truncated, corrupted, wrong magic) is a miss,
  never an error.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cli import main
from repro.exec import cache as result_cache
from repro.exec.cache import CacheError, ResultCache, code_fingerprint
from repro.exec.cells import latency_cells
from repro.exec.runner import CellOutcome


@pytest.fixture(autouse=True)
def _no_global_cache():
    """Leave no process-global cache behind for other tests."""
    yield
    result_cache.configure(enabled=False)


def strip_stats(out: str) -> str:
    """Drop the ``cache_stats`` section from a CLI JSON artifact.

    ``cache_stats`` is the one intentional difference between cached
    and uncached output; everything else must match byte-for-byte
    (floats round-trip exactly through json, so re-dumping is safe).
    """
    payload = json.loads(out)
    payload.pop("cache_stats", None)
    return json.dumps(payload, indent=2) + "\n"


def run_cli(argv, capsys) -> str:
    main(argv)
    return capsys.readouterr().out


class TestCliParity:
    ARGV = ["table1", "--packets", "12", "--payloads", "64", "1024",
            "--seed", "3", "--json"]

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_warm_hit_is_byte_identical(self, jobs, tmp_path, capsys):
        argv = self.ARGV + ["-j", str(jobs)]
        cold = run_cli(argv, capsys)

        cached = argv + ["--cache", "--cache-dir", str(tmp_path)]
        first = run_cli(cached, capsys)
        stats = json.loads(first)["cache_stats"]
        assert stats["hits"] == 0 and stats["misses"] == stats["stores"] == 4

        second = run_cli(cached, capsys)
        stats = json.loads(second)["cache_stats"]
        assert stats["hits"] == 4 and stats["misses"] == 0

        assert strip_stats(first) == cold
        assert strip_stats(second) == cold

    def test_mixed_hit_miss_is_byte_identical(self, tmp_path, capsys):
        # Populate only the 64 B column, then run 64+1024: two cells
        # come from disk, two run fresh, and the merged artifact still
        # matches a fully cold run byte-for-byte.
        base = ["table1", "--packets", "12", "--seed", "3", "--json", "-j", "4"]
        cached = ["--cache", "--cache-dir", str(tmp_path)]
        run_cli(base + ["--payloads", "64"] + cached, capsys)

        cold = run_cli(base + ["--payloads", "64", "1024"], capsys)
        mixed = run_cli(base + ["--payloads", "64", "1024"] + cached, capsys)
        stats = json.loads(mixed)["cache_stats"]
        assert stats["hits"] == 2 and stats["misses"] == 2
        assert strip_stats(mixed) == cold

    def test_no_cache_flag_wins_over_env(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["table1", "--packets", "8", "--payloads", "64", "--seed", "3",
                "--json", "-j", "1"]
        enabled = run_cli(argv, capsys)
        assert "cache_stats" in json.loads(enabled)
        disabled = run_cli(argv + ["--no-cache"], capsys)
        assert "cache_stats" not in json.loads(disabled)

    def test_cache_and_no_cache_conflict(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--json", "--cache", "--no-cache"])


def _cell(seed: int = 9, packets: int = 10):
    return latency_cells((64,), packets=packets, seed=seed)[0]


def _outcome(cell):
    return CellOutcome(cell=cell, value={"rtt": [1, 2, 3]}, events=42,
                       wall_s=0.25)


class TestKeying:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cell = _cell()
        assert cache.get(cell) is None
        cache.put(cell, _outcome(cell))
        hit = cache.get(cell)
        assert hit is not None and hit.cached
        assert hit.value == {"rtt": [1, 2, 3]}
        assert hit.events == 42 and hit.wall_s == 0.25
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_seed_change_forces_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.key(_cell(seed=9)) != cache.key(_cell(seed=10))

    def test_spec_change_forces_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.key(_cell(packets=10)) != cache.key(_cell(packets=11))

    def test_code_change_forces_miss(self, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path))
        cell = _cell()
        cache.put(cell, _outcome(cell))
        monkeypatch.setitem(result_cache._FINGERPRINTS, "latency", "0" * 64)
        assert cache.get(cell) is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(CacheError, match="thermal"):
            code_fingerprint("thermal")


class TestFingerprints:
    BASE = {
        "core/latency.py": "aa", "sim/kernel.py": "bb",
        "guest/experiments.py": "cc", "workload/openload.py": "dd",
    }

    def test_relevant_module_changes_fingerprint(self):
        changed = dict(self.BASE, **{"sim/kernel.py": "ee"})
        assert code_fingerprint("latency", self.BASE) != code_fingerprint(
            "latency", changed
        )

    def test_irrelevant_module_keeps_fingerprint(self):
        # latency cells never execute guest code: editing the guest
        # subpackage must not invalidate their cached results.
        changed = dict(self.BASE, **{"guest/experiments.py": "ee"})
        assert code_fingerprint("latency", self.BASE) == code_fingerprint(
            "latency", changed
        )
        # ... but it must invalidate guest cells.
        assert code_fingerprint("guest", self.BASE) != code_fingerprint(
            "guest", changed
        )

    def test_kind_manifests_differ(self):
        assert code_fingerprint("latency", self.BASE) != code_fingerprint(
            "openload", self.BASE
        )

    def test_every_kind_has_a_manifest_fingerprint(self):
        for kind in result_cache.KIND_MODULES:
            assert len(code_fingerprint(kind, self.BASE)) == 64


class TestCorruption:
    def _entry_path(self, cache, cell):
        return cache._path(cache.key(cell))

    def test_flipped_byte_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cell = _cell()
        cache.put(cell, _outcome(cell))
        path = self._entry_path(cache, cell)
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF
        open(path, "wb").write(bytes(data))
        assert cache.get(cell) is None
        assert cache.stats.misses == 1

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cell = _cell()
        cache.put(cell, _outcome(cell))
        path = self._entry_path(cache, cell)
        open(path, "wb").write(open(path, "rb").read()[:10])
        assert cache.get(cell) is None

    def test_bad_magic_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cell = _cell()
        cache.put(cell, _outcome(cell))
        path = self._entry_path(cache, cell)
        data = open(path, "rb").read()
        open(path, "wb").write(b"NOPE" + data[4:])
        assert cache.get(cell) is None

    def test_unpicklable_payload_is_a_miss(self, tmp_path):
        import hashlib

        cache = ResultCache(str(tmp_path))
        cell = _cell()
        payload = b"this is not a pickle"
        entry = result_cache._MAGIC + hashlib.sha256(payload).digest() + payload
        path = self._entry_path(cache, cell)
        import os

        os.makedirs(os.path.dirname(path), exist_ok=True)
        open(path, "wb").write(entry)
        assert cache.get(cell) is None


class TestCanonical:
    def test_dataclasses_are_tagged(self):
        cell = _cell()
        form = result_cache.canonical(cell)
        assert form["__type__"] == "Cell"
        assert form["kind"] == "latency" and form["payload"] == 64

    def test_float_exactness(self):
        a = result_cache.spec_digest({"rate": 0.1})
        b = result_cache.spec_digest({"rate": 0.1 + 2**-54})
        assert a != b

    def test_equal_fields_different_types_do_not_collide(self):
        @dataclasses.dataclass
        class A:
            x: int = 1

        @dataclasses.dataclass
        class B:
            x: int = 1

        assert result_cache.spec_digest(A()) != result_cache.spec_digest(B())
