"""The bench regression gate (``bench --check``).

``evaluate_check`` is a pure function of two records, so the gate rules
are tested directly: normalized events/second within tolerance passes,
beyond tolerance fails, and the deterministic copy-count gate fails on
any increase.  The copy-count measurement itself is smoke-tested at a
tiny packet count.
"""

import pytest

from repro.exec.bench import (
    bench_memory,
    bench_tlp_segmentation,
    bench_virtqueue_walk,
    evaluate_check,
    measure_copies_per_packet,
)


def _baseline(eps=100_000.0, score=10_000_000.0, virtio_reads=12.0, xdma_reads=4.0):
    return {
        "schema": "bench-v2",
        "rev": "baseline",
        "serial": {"events_per_second": eps},
        "micro": {
            "cpu_score": score,
            "end_to_end": {"events_per_second": eps},
            "copy_counts": {
                "virtio": {"read": virtio_reads},
                "xdma": {"read": xdma_reads},
            },
        },
    }


def _current(eps=100_000.0, score=10_000_000.0, virtio_reads=12.0, xdma_reads=4.0):
    return {
        "cpu_score": score,
        "end_to_end": {"events_per_second": eps},
        "copy_counts": {
            "virtio": {"read": virtio_reads},
            "xdma": {"read": xdma_reads},
        },
    }


def test_identical_measurement_passes():
    ok, failures, details = evaluate_check(_baseline(), _current(), tolerance=0.15)
    assert ok and not failures
    assert details["events_per_second"]["ratio"] == pytest.approx(1.0)
    assert details["events_per_second"]["normalized"]


def test_small_regression_within_tolerance_passes():
    ok, failures, _ = evaluate_check(
        _baseline(), _current(eps=90_000.0), tolerance=0.15
    )
    assert ok and not failures


def test_large_regression_fails():
    ok, failures, details = evaluate_check(
        _baseline(), _current(eps=80_000.0), tolerance=0.15
    )
    assert not ok
    assert any("events/s regressed" in failure for failure in failures)
    assert details["events_per_second"]["ratio"] == pytest.approx(0.8)


def test_cpu_score_normalization_excuses_a_slow_machine():
    """Half the machine speed and half the events/s is not a code
    regression: the normalized ratio is 1.0."""
    ok, failures, details = evaluate_check(
        _baseline(), _current(eps=50_000.0, score=5_000_000.0), tolerance=0.15
    )
    assert ok and not failures
    assert details["events_per_second"]["ratio"] == pytest.approx(1.0)


def test_faster_machine_cannot_hide_a_regression():
    """Twice the machine speed with flat events/s IS a regression."""
    ok, failures, _ = evaluate_check(
        _baseline(), _current(score=20_000_000.0), tolerance=0.15
    )
    assert not ok


def test_copy_count_increase_fails_exactly():
    ok, failures, _ = evaluate_check(
        _baseline(), _current(virtio_reads=13.0), tolerance=0.15
    )
    assert not ok
    assert any("virtio" in failure and "copies/packet" in failure for failure in failures)


def test_copy_count_decrease_passes():
    ok, failures, _ = evaluate_check(
        _baseline(), _current(xdma_reads=3.0), tolerance=0.15
    )
    assert ok and not failures


def test_v1_baseline_compares_raw():
    """A pre-micro (bench-v1) baseline still gates, unnormalized and
    without the copy-count rule."""
    baseline = {"schema": "bench-v1", "serial": {"events_per_second": 100_000.0}}
    ok, _, details = evaluate_check(baseline, _current(eps=90_000.0), tolerance=0.15)
    assert ok
    assert not details["events_per_second"]["normalized"]
    ok, failures, _ = evaluate_check(baseline, _current(eps=80_000.0), tolerance=0.15)
    assert not ok and failures


def test_warm_cache_rerun_miss_fails():
    current = _current()
    current["cache_rerun"] = {"cells": 4, "hits": 3, "misses": 1}
    ok, failures, details = evaluate_check(_baseline(), current, tolerance=0.15)
    assert not ok
    assert any("warm cache rerun missed" in failure for failure in failures)
    assert details["cache_rerun"] == {"cells": 4, "hits": 3, "misses": 1}


def test_warm_cache_rerun_all_hits_passes():
    current = _current()
    current["cache_rerun"] = {"cells": 4, "hits": 4, "misses": 0}
    ok, failures, details = evaluate_check(_baseline(), current, tolerance=0.15)
    assert ok and not failures
    assert details["cache_rerun"]["misses"] == 0


def test_no_cache_rerun_section_is_fine():
    # bench --check without an active cache records no rerun; the
    # gate must not demand one.
    ok, _, details = evaluate_check(_baseline(), _current(), tolerance=0.15)
    assert ok and "cache_rerun" not in details


def test_bad_tolerance_rejected():
    with pytest.raises(ValueError):
        evaluate_check(_baseline(), _current(), tolerance=0.0)
    with pytest.raises(ValueError):
        evaluate_check(_baseline(), _current(), tolerance=1.0)


def test_baseline_without_eps_rejected():
    with pytest.raises(ValueError, match="no serial events/second"):
        evaluate_check({"schema": "bench-v2"}, _current())


# -- microbench smoke ----------------------------------------------------------


def test_copy_count_measurement_is_deterministic():
    first = measure_copies_per_packet("virtio", packets=4, warmup=2)
    second = measure_copies_per_packet("virtio", packets=4, warmup=2)
    assert first == second
    assert first["read"] > 0  # the RX snapshot copy is real and counted


def test_copy_count_rejects_unknown_driver():
    with pytest.raises(ValueError, match="unknown driver"):
        measure_copies_per_packet("e1000", packets=2, warmup=1)


def test_micro_smoke():
    mem = bench_memory(block=4096, rounds=4)
    assert mem["read_copy_mb_s"] > 0 and mem["view_mb_s"] > 0
    tlp = bench_tlp_segmentation(payload=1024, iters=8)
    assert tlp["tlps_per_call"] == 4  # 1024B at Max_Payload_Size 256
    vq = bench_virtqueue_walk(iters=16)
    assert vq["cycles_per_second"] > 0
