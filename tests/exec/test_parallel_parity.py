"""Parity suite: the pool must never change results.

The contract of the parallel execution engine is that worker count is
invisible in the output: for a fixed root seed, ``jobs=1`` (in-process),
``jobs=2``, and ``jobs=4`` produce byte-identical artifacts, and a
parallel-mode comparison still passes every Section V claim check.
"""

import json

import pytest

from repro.core.experiments import (
    run_comparison,
    run_load_sweep,
    verify_paper_claims,
)

PACKETS = 150
PAYLOADS = (64, 1024)
SEED = 7


@pytest.fixture(scope="module", params=[1, 2, 4])
def table1_rows_by_jobs(request):
    comparison = run_comparison(
        payload_sizes=PAYLOADS, packets=PACKETS, seed=SEED, jobs=request.param
    )
    return request.param, comparison.table1_rows()


@pytest.fixture(scope="module")
def reference_rows():
    comparison = run_comparison(
        payload_sizes=PAYLOADS, packets=PACKETS, seed=SEED, jobs=1
    )
    return comparison.table1_rows()


class TestComparisonParity:
    def test_table1_rows_identical_across_worker_counts(
        self, table1_rows_by_jobs, reference_rows
    ):
        jobs, rows = table1_rows_by_jobs
        # Byte-identical, not merely approximately equal: serialize and
        # compare the bytes.
        assert json.dumps(rows) == json.dumps(reference_rows), (
            f"jobs={jobs} changed the Table I artifact"
        )

    def test_engine_differs_from_legacy_serial_only_by_seeding(self):
        """The legacy serial path (shared testbed across payloads) stays
        available as the reference when jobs is None."""
        serial = run_comparison(payload_sizes=(64,), packets=40, seed=SEED)
        engine = run_comparison(payload_sizes=(64,), packets=40, seed=SEED, jobs=1)
        # Same experiment shape, same packet counts...
        assert serial.virtio[64].packets == engine.virtio[64].packets
        # ...but independent per-cell streams (different draws).
        assert (serial.virtio[64].rtt_ps != engine.virtio[64].rtt_ps).any()


class TestClaimsInParallelMode:
    def test_parallel_comparison_passes_paper_claims(self):
        comparison = run_comparison(
            payload_sizes=(64, 256, 1024), packets=700, seed=42, jobs=2
        )
        failures = [c for c in verify_paper_claims(comparison) if not c.holds]
        assert not failures, "\n".join(
            f"{c.claim}: {c.evidence}" for c in failures
        )


class TestLoadSweepParity:
    def test_open_loop_knee_identical_across_worker_counts(self):
        renders = []
        knees = []
        for jobs in (1, 3):
            results, text = run_load_sweep(
                drivers=("virtio",), packets=60, seed=3, jobs=jobs
            )
            knees.append(results["virtio"].knee_pps())
            renders.append(text)
        assert knees[0] == knees[1]
        assert renders[0] == renders[1]

    def test_closed_loop_identical_across_worker_counts(self):
        dicts = []
        for jobs in (1, 2, 4):
            results, _ = run_load_sweep(
                drivers=("virtio", "xdma"), packets=50, seed=0,
                outstanding=(1, 2), jobs=jobs,
            )
            dicts.append(
                {name: result.as_dict() for name, result in results.items()}
            )
        assert dicts[0] == dicts[1] == dicts[2]
