"""A2: descriptor-exchange strategy (Section IV-A's design discussion).

The VirtIO device can *prefetch* RX descriptor chains because all ring
addresses were shared at initialization -- so delivery needs only the
data write + used-ring update.  Disabling prefetch degrades the device
to per-delivery descriptor fetching, the "exchange information at
transfer time" philosophy of legacy drivers.  The delta is the latency
value of init-time address sharing.
"""

import pytest

from benchmarks.conftest import attach_table
from repro.core.calibration import PAPER_PROFILE
from repro.core.experiments import run_virtio_sweep

PAYLOADS = (64, 1024)


@pytest.mark.benchmark(group="ablations")
def test_ablation_rx_descriptor_prefetch(benchmark, packets):
    def regenerate():
        prefetch = run_virtio_sweep(payload_sizes=PAYLOADS, packets=packets, seed=0)
        on_demand = run_virtio_sweep(
            payload_sizes=PAYLOADS, packets=packets, seed=0,
            profile=PAPER_PROFILE.without_prefetch(),
        )
        return prefetch, on_demand

    prefetch, on_demand = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    lines = ["A2: RX descriptor prefetch ablation (VirtIO mean us)"]
    for payload in PAYLOADS:
        pre = prefetch[payload].rtt_summary().mean_us
        demand = on_demand[payload].rtt_summary().mean_us
        lines.append(f"  {payload:>5} B: prefetch {pre:6.1f}  on-demand {demand:6.1f}  "
                     f"(+{demand - pre:.1f} us)")
        benchmark.extra_info[f"{payload}B"] = (round(pre, 1), round(demand, 1))
        # Fetching the chain at delivery time adds ring round trips to
        # the critical path.
        assert demand > pre
        # The hardware share grows; software is unchanged.
        assert (
            on_demand[payload].hw_summary().mean_us
            > prefetch[payload].hw_summary().mean_us
        )
        assert on_demand[payload].sw_summary().mean_us == pytest.approx(
            prefetch[payload].sw_summary().mean_us, rel=0.15
        )
    attach_table(benchmark, "Ablation A2", "\n".join(lines))
