"""A3: OS noise on/off.

With the interference fields and body jitter disabled, both drivers
become essentially deterministic -- isolating how much of the measured
variance is OS noise (all of it, per the paper's analysis: "the
software stack is responsible for the majority of the variance") versus
driver-inherent behaviour.
"""

import pytest

from benchmarks.conftest import attach_table
from repro.core.calibration import PAPER_PROFILE
from repro.core.experiments import run_virtio_sweep, run_xdma_sweep

PAYLOAD = 256


@pytest.mark.benchmark(group="ablations")
def test_ablation_noise_off(benchmark, packets):
    quiet = PAPER_PROFILE.without_noise()

    def regenerate():
        return {
            "virtio_noisy": run_virtio_sweep([PAYLOAD], packets, 0)[PAYLOAD],
            "virtio_quiet": run_virtio_sweep([PAYLOAD], packets, 0, quiet)[PAYLOAD],
            "xdma_noisy": run_xdma_sweep([PAYLOAD], packets, 0)[PAYLOAD],
            "xdma_quiet": run_xdma_sweep([PAYLOAD], packets, 0, quiet)[PAYLOAD],
        }

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    lines = [f"A3: noise ablation at {PAYLOAD} B (mean / sd, us)"]
    for name, result in results.items():
        summary = result.rtt_summary()
        lines.append(f"  {name:>13}: {summary.mean_us:6.1f} / {summary.std_us:5.2f}")
        benchmark.extra_info[name] = (round(summary.mean_us, 1), round(summary.std_us, 2))
    attach_table(benchmark, "Ablation A3", "\n".join(lines))

    # Without noise the software stack is deterministic: variance
    # collapses by more than an order of magnitude.
    for driver in ("virtio", "xdma"):
        noisy_sd = results[f"{driver}_noisy"].rtt_summary().std_us
        quiet_sd = results[f"{driver}_quiet"].rtt_summary().std_us
        assert quiet_sd < noisy_sd / 10
    # Quiet means stay close to noisy means (noise is roughly zero-mean
    # body jitter plus rare stalls).
    for driver in ("virtio", "xdma"):
        noisy = results[f"{driver}_noisy"].rtt_summary().mean_us
        quiet = results[f"{driver}_quiet"].rtt_summary().mean_us
        assert quiet == pytest.approx(noisy, rel=0.15)
    # The drivers' *ordering* is driver-inherent, not noise-driven.
    assert (
        results["virtio_quiet"].rtt_summary().mean_us
        < results["xdma_quiet"].rtt_summary().mean_us
    )
