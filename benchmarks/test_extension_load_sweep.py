"""Extension: offered-load sweep through saturation (beyond the paper).

The paper reports one-in-flight ping-pong latency only; it never drives
either stack past its knee. This bench uses the workload engine's
open-loop generator to sweep Poisson offered load across multiples of
each driver's measured base rate and checks the queueing-theoretic
shape of the response:

* below the base rate the system keeps up (achieved ~ offered) and
  latency sits at the ping-pong floor;
* past the knee achieved throughput plateaus at capacity while the
  tail percentiles grow with the backlog;
* VirtIO's capacity exceeds XDMA's, consistent with the paper's
  one-in-flight ranking (fewer interrupts per packet, deeper ring).
"""

import pytest

from benchmarks.conftest import attach_table
from repro.workload import run_driver_load_sweep

MULTIPLIERS = (0.25, 0.5, 1.0, 4.0, 8.0)


@pytest.mark.benchmark(group="extensions")
def test_extension_load_sweep(benchmark, packets):
    count = max(120, min(packets, 300))

    def regenerate():
        return {
            driver: run_driver_load_sweep(
                driver, seed=0, packets=count, multipliers=MULTIPLIERS
            )
            for driver in ("virtio", "xdma")
        }

    sweeps = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    lines = ["Extension: offered-load sweep (64 B payload, Poisson arrivals)"]
    for driver, sweep in sweeps.items():
        lines.append(sweep.render())
        benchmark.extra_info[f"{driver}_capacity_kpps"] = round(
            sweep.capacity_pps() / 1e3, 1
        )
        knee = sweep.knee_pps()
        benchmark.extra_info[f"{driver}_knee_kpps"] = (
            round(knee / 1e3, 1) if knee is not None else None
        )
    attach_table(benchmark, "Load-sweep extension", "\n\n".join(lines))

    for driver, sweep in sweeps.items():
        points = {
            round(p.offered_pps / sweep.base_rate_pps, 2): p.metrics
            for p in sweep.points
        }
        # Light load: the stack keeps up. Short Poisson runs wobble
        # around the offered rate, so the tolerance is loose.
        light = points[0.25]
        assert light.dropped == 0
        assert light.achieved_pps == pytest.approx(
            0.25 * sweep.base_rate_pps, rel=0.35
        )
        # ...and latency sits near the one-in-flight floor.
        light_p50 = light.latency_percentiles_us()[50.0]
        assert light_p50 == pytest.approx(sweep.base_rtt_us, rel=0.5)
        # Heavy load: saturated well below the offered rate.
        heavy = points[8.0]
        assert heavy.achieved_pps < 0.9 * 8.0 * sweep.base_rate_pps
        # The sweep's knee was actually located.
        assert sweep.knee_pps() is not None
        # Tail latency grows through the knee.
        assert (
            heavy.latency_percentiles_us()[99.0]
            > 3 * light.latency_percentiles_us()[99.0]
        )

    # Capacity ranking matches the paper's latency ranking.
    assert sweeps["virtio"].capacity_pps() > sweeps["xdma"].capacity_pps()
