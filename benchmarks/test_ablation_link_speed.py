"""A4: PCIe link generation/width sensitivity.

The paper's future work (Section VI) is a portability study across
devices; the first-order hardware difference between boards is the
negotiated link.  This sweep varies generation and width and checks the
expected sensitivity: faster links shrink the *hardware* share (and the
VirtIO-vs-XDMA ordering is link-independent).
"""

import pytest

from benchmarks.conftest import attach_table
from repro.core.calibration import PAPER_PROFILE
from repro.core.experiments import run_virtio_sweep, run_xdma_sweep

PAYLOAD = 1024
LINKS = [(1, 2), (2, 2), (2, 4), (3, 4)]


@pytest.mark.benchmark(group="ablations")
def test_ablation_link_speed(benchmark, packets):
    def regenerate():
        out = {}
        for generation, lanes in LINKS:
            profile = PAPER_PROFILE.with_link(generation, lanes)
            out[(generation, lanes)] = {
                "virtio": run_virtio_sweep([PAYLOAD], packets, 0, profile)[PAYLOAD],
                "xdma": run_xdma_sweep([PAYLOAD], packets, 0, profile)[PAYLOAD],
            }
        return out

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    lines = [f"A4: link sensitivity at {PAYLOAD} B (mean us: virtio / xdma, hw shares)"]
    for (generation, lanes), row in results.items():
        v = row["virtio"].rtt_summary().mean_us
        x = row["xdma"].rtt_summary().mean_us
        vhw = row["virtio"].hw_summary().mean_us
        xhw = row["xdma"].hw_summary().mean_us
        lines.append(
            f"  Gen{generation} x{lanes}: {v:6.1f} / {x:6.1f}   hw {vhw:5.1f} / {xhw:5.1f}"
        )
        benchmark.extra_info[f"gen{generation}x{lanes}"] = (round(v, 1), round(x, 1))
    attach_table(benchmark, "Ablation A4", "\n".join(lines))

    # Faster links reduce the hardware share monotonically...
    hw_series = [results[link]["virtio"].hw_summary().mean_us for link in LINKS]
    assert hw_series == sorted(hw_series, reverse=True)
    # ...and VirtIO stays ahead on every link (the paper's conclusion is
    # not an artifact of Gen2 x2).
    for link in LINKS:
        assert (
            results[link]["virtio"].rtt_summary().mean_us
            < results[link]["xdma"].rtt_summary().mean_us
        )
