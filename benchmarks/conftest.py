"""Benchmark harness configuration.

Each benchmark regenerates one paper artifact (table/figure) or one
ablation on the simulation substrate.  Runs are single-shot
(``benchmark.pedantic(..., rounds=1)``) because each is a complete
deterministic experiment, not a microbenchmark; the interesting output
is the reproduced numbers, attached as ``extra_info`` and printed.

Packet count per payload size defaults to a CI-friendly value; override
with ``REPRO_PACKETS`` (the paper used 50 000):

    REPRO_PACKETS=50000 pytest benchmarks/ --benchmark-only
"""

import os

import pytest


def bench_packets(default: int = 300) -> int:
    value = os.environ.get("REPRO_PACKETS", "")
    return int(value) if value else default


@pytest.fixture
def packets() -> int:
    return bench_packets()


def attach_table(benchmark, title: str, text: str) -> None:
    """Record a reproduced artifact on the benchmark and print it."""
    benchmark.extra_info["artifact"] = title
    print(f"\n{text}\n")
