"""E3 / Fig. 5: XDMA round-trip latency breakdown.

Shape assertions:

* software time exceeds hardware time at every payload (the inverse of
  Fig. 4 -- "and vice versa with the XDMA driver"),
* the hardware share grows with payload while software stays flat.
"""

import pytest

from benchmarks.conftest import attach_table
from repro.core.calibration import PAPER_PAYLOAD_SIZES
from repro.core.experiments import figure5
from repro.core.results import breakdown_rows


@pytest.mark.benchmark(group="figures")
def test_fig5_xdma_breakdown(benchmark, packets):
    def regenerate():
        return figure5(payload_sizes=PAPER_PAYLOAD_SIZES, packets=packets, seed=0)

    sweep, text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    attach_table(benchmark, "Figure 5", text)

    rows = breakdown_rows(sweep)
    for row in rows:
        benchmark.extra_info[f"hw_{row.payload}B_us"] = round(row.hw_mean_us, 2)
        benchmark.extra_info[f"sw_{row.payload}B_us"] = round(row.sw_mean_us, 2)
        # "the time taken by the hardware is higher ... with the VirtIO
        # driver and vice versa with the XDMA driver"
        assert row.sw_mean_us > row.hw_mean_us

    sw_means = [row.sw_mean_us for row in rows]
    assert (max(sw_means) - min(sw_means)) / min(sw_means) < 0.15

    hw_means = [row.hw_mean_us for row in rows]
    assert hw_means == sorted(hw_means)
