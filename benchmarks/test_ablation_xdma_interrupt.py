"""A1: XDMA with a C2H "data ready" user interrupt + poll().

Section IV-C argues the paper's XDMA setup (back-to-back write/read
without a device interrupt) *underestimates* the legacy driver's real
latency: a real use case needs the device to signal data readiness.
This ablation measures that flow and confirms the paper's claim that
the favourable setup flatters XDMA.
"""

import pytest

from benchmarks.conftest import attach_table
from repro.core.calibration import PAPER_PROFILE
from repro.core.experiments import run_xdma_sweep

PAYLOADS = (64, 1024)


@pytest.mark.benchmark(group="ablations")
def test_ablation_xdma_c2h_interrupt(benchmark, packets):
    def regenerate():
        favourable = run_xdma_sweep(payload_sizes=PAYLOADS, packets=packets, seed=0)
        realistic = run_xdma_sweep(
            payload_sizes=PAYLOADS, packets=packets, seed=0,
            profile=PAPER_PROFILE.with_xdma_c2h_interrupt(),
        )
        return favourable, realistic

    favourable, realistic = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    lines = ["A1: XDMA C2H-interrupt ablation (mean us, paper setup vs real use case)"]
    deltas = {}
    for payload in PAYLOADS:
        fav = favourable[payload].rtt_summary().mean_us
        real = realistic[payload].rtt_summary().mean_us
        deltas[payload] = real - fav
        lines.append(f"  {payload:>5} B: favourable {fav:6.1f}  realistic {real:6.1f}  "
                     f"(+{real - fav:.1f} us)")
        benchmark.extra_info[f"{payload}B"] = (round(fav, 1), round(real, 1))
        # The realistic flow is never faster...
        assert real > fav
        assert real < fav * 2.0  # ...but it does not change the regime.
    # At small payloads the data-ready notification hides under the
    # application's own write-completion handling; once the user logic's
    # processing outlasts it, the poll()+interrupt+wakeup chain lands on
    # the critical path -- the latency the paper says its setup
    # "discounts" (Section IV-C).
    assert deltas[1024] > deltas[64]
    assert deltas[1024] > 8.0
    attach_table(benchmark, "Ablation A1", "\n".join(lines))
