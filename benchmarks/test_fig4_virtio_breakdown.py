"""E2 / Fig. 4: VirtIO round-trip latency breakdown (hardware vs
software), with the response-generation time deducted per Section IV-B.

Shape assertions match the paper's reading of the figure:

* hardware time exceeds software time at every payload,
* the software component is virtually constant across payloads,
* hardware variance is minimal (performance counters barely spread).
"""

import pytest

from benchmarks.conftest import attach_table
from repro.core.calibration import PAPER_PAYLOAD_SIZES
from repro.core.experiments import figure4
from repro.core.results import breakdown_rows


@pytest.mark.benchmark(group="figures")
def test_fig4_virtio_breakdown(benchmark, packets):
    def regenerate():
        return figure4(payload_sizes=PAPER_PAYLOAD_SIZES, packets=packets, seed=0)

    sweep, text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    attach_table(benchmark, "Figure 4", text)

    rows = breakdown_rows(sweep)
    for row in rows:
        benchmark.extra_info[f"hw_{row.payload}B_us"] = round(row.hw_mean_us, 2)
        benchmark.extra_info[f"sw_{row.payload}B_us"] = round(row.sw_mean_us, 2)
        # "the time taken by the hardware is higher than the time for
        # software with the VirtIO driver"
        assert row.hw_mean_us > row.sw_mean_us
        # "the time taken by the hardware ... has minimal variance"
        assert row.hw_std_us < row.sw_std_us

    # "the average latency for the software stack remains virtually
    # constant throughout the range of payloads considered"
    sw_means = [row.sw_mean_us for row in rows]
    assert (max(sw_means) - min(sw_means)) / min(sw_means) < 0.15

    # The hardware share grows with payload (the byte-serial datapath).
    hw_means = [row.hw_mean_us for row in rows]
    assert hw_means == sorted(hw_means)
    assert hw_means[-1] > hw_means[0] * 1.5
