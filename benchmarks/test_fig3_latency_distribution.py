"""E1 / Fig. 3: round-trip latency distributions, VirtIO vs XDMA.

Regenerates the distribution data behind Figure 3 for the paper's five
payload sizes and checks its defining shape: VirtIO's distribution body
sits at or below XDMA's with visibly smaller spread.
"""

import numpy as np
import pytest

from benchmarks.conftest import attach_table
from repro.core.calibration import PAPER_PAYLOAD_SIZES
from repro.core.experiments import figure3


@pytest.mark.benchmark(group="figures")
def test_fig3_latency_distribution(benchmark, packets):
    def regenerate():
        return figure3(payload_sizes=PAPER_PAYLOAD_SIZES, packets=packets, seed=0)

    comparison, text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    attach_table(benchmark, "Figure 3", text)

    for payload in PAPER_PAYLOAD_SIZES:
        virtio = comparison.virtio[payload]
        xdma = comparison.xdma[payload]
        v_summary = virtio.rtt_summary()
        x_summary = xdma.rtt_summary()
        benchmark.extra_info[f"virtio_{payload}B_mean_us"] = round(v_summary.mean_us, 2)
        benchmark.extra_info[f"xdma_{payload}B_mean_us"] = round(x_summary.mean_us, 2)

        # Shape: the VirtIO body is at or below XDMA's...
        assert v_summary.median_us <= x_summary.median_us
        # ...with a tighter spread (Fig. 3: "much lower variance").
        v_spread = np.percentile(virtio.adjusted_rtt_ps, 90) - np.percentile(
            virtio.adjusted_rtt_ps, 10
        )
        x_spread = np.percentile(xdma.adjusted_rtt_ps, 90) - np.percentile(
            xdma.adjusted_rtt_ps, 10
        )
        assert v_spread < x_spread

        # Both distributions are unimodal around their body: the modal
        # bin of the histogram holds a solid share of samples.
        histogram = virtio.histogram(bins=40)
        assert histogram.counts.max() > 0.05 * histogram.total
