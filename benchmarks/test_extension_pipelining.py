"""Extension: behaviour under pipelined load (beyond the paper).

The paper measures one-in-flight latency only. This bench drives both
testbeds with a window of outstanding requests and checks the expected
structural consequences of the two driver designs:

* VirtIO throughput grows with the window (ring batching, independent
  TX/RX pipelines) and costs one interrupt per packet (RX only);
* XDMA costs two interrupts per packet (one per channel) at any window,
  and stays below VirtIO's packet rate at matched windows.
"""

import pytest

from benchmarks.conftest import attach_table
from repro.core.testbed import build_virtio_testbed, build_xdma_testbed
from repro.core.throughput import run_virtio_pipelined, run_xdma_pipelined

WINDOWS = (1, 4, 8)


@pytest.mark.benchmark(group="extensions")
def test_extension_pipelined_load(benchmark, packets):
    count = max(64, min(packets, 400))

    def regenerate():
        virtio = {}
        for window in WINDOWS:
            testbed = build_virtio_testbed(seed=1)
            virtio[window] = run_virtio_pipelined(testbed, window=window, packets=count)
        xdma = {}
        for window in WINDOWS[:2]:
            testbed = build_xdma_testbed(seed=1)
            xdma[window] = run_xdma_pipelined(testbed, window=window, packets=count)
        return virtio, xdma

    virtio, xdma = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    lines = ["Extension: pipelined load (64 B payload)"]
    for window, result in {**{f"v{w}": r for w, r in virtio.items()},
                           **{f"x{w}": r for w, r in xdma.items()}}.items():
        lines.append(f"  {result.driver:>6} window={result.window}: "
                     f"{result.packets_per_second / 1e3:7.1f} kpps, "
                     f"{result.irqs_per_packet:.2f} irq/pkt")
        benchmark.extra_info[f"{result.driver}_w{result.window}_kpps"] = round(
            result.packets_per_second / 1e3, 1
        )
    attach_table(benchmark, "Pipelining extension", "\n".join(lines))

    # VirtIO scales with the window...
    assert virtio[4].packets_per_second > virtio[1].packets_per_second * 1.4
    # ...and saturates (the device pipeline becomes the bottleneck).
    assert virtio[8].packets_per_second < virtio[4].packets_per_second * 1.3
    # Interrupt economics: one RX interrupt per packet vs two channel
    # interrupts per packet.
    for result in virtio.values():
        assert result.irqs_per_packet == pytest.approx(1.0, abs=0.05)
    for result in xdma.values():
        assert result.irqs_per_packet == pytest.approx(2.0, abs=0.05)
    # VirtIO leads at matched windows.
    for window in WINDOWS[:2]:
        assert virtio[window].packets_per_second > xdma[window].packets_per_second
