"""Extension: checksum offload (VIRTIO_NET_F_CSUM) on vs off.

The paper's device [14]-derived design carries checksums in software
(Section IV-B mentions the VirtIO test's checksum overhead); the full
virtio-net feature set lets the device do it instead.

Measured with noise disabled so the shift is exact, the result is a
genuine micro-finding of the reproduction: on this fabric the offload
*increases* round-trip latency. The host's vectorized checksum costs
tens of nanoseconds, while the 125 MHz byte-serial checksum engine
needs ~8 ns/byte -- offload relieves the CPU but lengthens the wire-to
-wire path. (Latency-neutral offload would need a wider FPGA datapath,
which is exactly the kind of design guidance such a model exists to
give.)
"""

import dataclasses

import pytest

from benchmarks.conftest import attach_table
from repro.core.calibration import PAPER_PROFILE
from repro.core.experiments import run_virtio_sweep

PAYLOADS = (64, 1024)


@pytest.mark.benchmark(group="extensions")
def test_extension_checksum_offload(benchmark, packets):
    quiet = PAPER_PROFILE.without_noise()
    offload_quiet = dataclasses.replace(quiet, offer_csum=True)

    def regenerate():
        software = run_virtio_sweep(PAYLOADS, packets, 0, quiet)
        offload = run_virtio_sweep(PAYLOADS, packets, 0, offload_quiet)
        return software, offload

    software, offload = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    lines = ["Extension: checksum offload, noise-free (VirtIO, mean us)"]
    for payload in PAYLOADS:
        sw_run = software[payload]
        hw_run = offload[payload]
        lines.append(
            f"  {payload:>5} B: software-csum rtt {sw_run.rtt_summary().mean_us:6.1f} "
            f"(host sw {sw_run.sw_summary().mean_us:5.2f}) | offloaded rtt "
            f"{hw_run.rtt_summary().mean_us:6.1f} (host sw {hw_run.sw_summary().mean_us:5.2f})"
        )
        benchmark.extra_info[f"{payload}B_rtt"] = (
            round(sw_run.rtt_summary().mean_us, 2),
            round(hw_run.rtt_summary().mean_us, 2),
        )
        # Offload strictly reduces host software time (TX checksum and
        # the RX verify pass both disappear)...
        assert hw_run.sw_summary().mean_us < sw_run.sw_summary().mean_us
        # ...and strictly increases FPGA hardware time (the byte-serial
        # checksum pass).
        assert hw_run.hw_summary().mean_us > sw_run.hw_summary().mean_us
    # The finding: at the paper's fabric width, the FPGA pass costs more
    # than the host saved, so offload lengthens the 1 KiB round trip.
    assert (
        offload[1024].rtt_summary().mean_us > software[1024].rtt_summary().mean_us
    )
    attach_table(benchmark, "Checksum offload extension", "\n".join(lines))
