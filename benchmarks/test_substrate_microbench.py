"""Microbenchmarks of the simulation substrate itself.

These time the hot paths that bound experiment wall-clock cost: the
event loop, the PCIe transaction round trip, the virtqueue bookkeeping,
and a complete echo round trip on each testbed.  Regressions here make
the 50 000-packet full-fidelity runs impractical, so they are tracked
as real (multi-round) pytest benchmarks.
"""

import pytest

from repro.core.calibration import FPGA_IP, TEST_DST_PORT
from repro.core.testbed import build_virtio_testbed, build_xdma_testbed
from repro.host.chardev import sys_read, sys_write
from repro.mem.dma import DmaAllocator
from repro.mem.physical import PhysicalMemory
from repro.sim.kernel import Simulator
from repro.sim.time import ns
from repro.virtio.virtqueue import DriverVirtqueue, ring_layout


@pytest.mark.benchmark(group="substrate")
def test_event_loop_throughput(benchmark):
    """Raw event dispatch rate of the kernel."""

    def run_events():
        sim = Simulator(seed=0)

        def ping():
            for _ in range(10_000):
                yield ns(10)

        sim.spawn(ping())
        sim.run()
        return sim.events_executed

    executed = benchmark(run_events)
    assert executed >= 10_000


@pytest.mark.benchmark(group="substrate")
def test_virtqueue_add_get_throughput(benchmark):
    """Driver-side ring bookkeeping (add_buffer + simulated used)."""
    mem = PhysicalMemory()
    alloc = DmaAllocator(mem)
    _, _, _, total = ring_layout(256)
    vq = DriverVirtqueue(0, 256, alloc.alloc(total, 4096))
    state = {"used_idx": 0}

    def cycle():
        head = vq.add_buffer([(0x10000, 1500)], [])
        vq.publish()
        elem = head.to_bytes(4, "little") + bytes(4)
        mem.write(vq.addresses.used_entry_addr(state["used_idx"]), elem)
        state["used_idx"] = (state["used_idx"] + 1) & 0xFFFF
        mem.write(vq.addresses.used_idx_addr, state["used_idx"].to_bytes(2, "little"))
        assert vq.get_used() is not None

    benchmark(cycle)


@pytest.mark.benchmark(group="substrate")
def test_virtio_echo_round_trip_cost(benchmark):
    """Wall-clock cost of simulating one VirtIO echo round trip."""
    testbed = build_virtio_testbed(seed=0)
    socket = testbed.socket
    payload = b"x" * 64

    def round_trip():
        def app():
            yield from socket.sendto(payload, FPGA_IP, TEST_DST_PORT)
            yield from socket.recvfrom()

        process = testbed.sim.spawn(app())
        testbed.sim.run_until_triggered(process)
        testbed.sim.run()

    benchmark(round_trip)


@pytest.mark.benchmark(group="substrate")
def test_xdma_round_trip_cost(benchmark):
    """Wall-clock cost of simulating one XDMA write+read round trip."""
    testbed = build_xdma_testbed(seed=0)
    payload = b"x" * 118

    def round_trip():
        def app():
            yield from sys_write(testbed.kernel, testbed.driver, payload)
            yield from sys_read(testbed.kernel, testbed.driver, len(payload))

        process = testbed.sim.spawn(app())
        testbed.sim.run_until_triggered(process)
        testbed.sim.run()

    benchmark(round_trip)


@pytest.mark.benchmark(group="substrate")
def test_testbed_boot_cost(benchmark):
    """Wall-clock cost of a full boot (enumeration + probe + RX fill)."""
    counter = {"seed": 0}

    def boot():
        counter["seed"] += 1
        return build_virtio_testbed(seed=counter["seed"])

    testbed = benchmark(boot)
    assert testbed.device.driver_ok


@pytest.mark.benchmark(group="substrate")
def test_event_loop_prescheduled_dispatch(benchmark):
    """Pure dispatch cost of a pre-filled heap (guards the run-loop
    tightening: local heap/pop bindings, no per-event limit checks)."""

    def run_events():
        sim = Simulator(seed=0)
        for i in range(10_000):
            sim.schedule(ns(i), int)
        sim.run()
        return sim.events_executed

    executed = benchmark(run_events)
    assert executed == 10_000  # exact: guards the executed-count accounting


@pytest.mark.benchmark(group="substrate")
def test_tlp_segmentation_cached(benchmark):
    """Steady-state segmentation must be one plan-cache lookup, not a
    Python loop per TLP (guards the (offset, length, limit) memo)."""
    from repro.pcie.tlp import segment_write, segmentation_plan

    data = bytes(4096)
    segment_write(0x1000, data, 128)  # warm the plan cache
    before = segmentation_plan.cache_info().hits

    tlps = benchmark(lambda: segment_write(0x1000, data, 128))
    assert len(tlps) == 4096 // 128
    assert sum(t.payload_bytes for t in tlps) == len(data)
    assert segmentation_plan.cache_info().hits > before


@pytest.mark.benchmark(group="substrate")
def test_max_events_budget_is_exact(benchmark):
    """The max_events valve stops at exactly the budget (off-by-one
    regression guard kept alongside the loop benchmarks)."""
    from repro.sim.kernel import SimulationError

    def run_with_budget():
        sim = Simulator(seed=0)

        def rearm():
            sim.schedule(1, rearm)

        sim.schedule(0, rearm)
        try:
            sim.run(max_events=1000)
        except SimulationError:
            pass
        return sim.events_executed

    assert benchmark(run_with_budget) == 1000


# -- zero-copy data-plane guards ----------------------------------------------

#: Materializing host-memory copies (``PhysicalMemory.read`` calls)
#: allowed per steady-state echo round trip.  Deterministic counts, not
#: timings: the zero-copy data plane holds virtio to ~12 (descriptor
#: table walks dominate; the payload itself is snapshotted once in the
#: driver RX path) and xdma to 4 (descriptor fetch, C2H pooled
#: snapshot, chardev read, status readback).  A budget breach means a
#: copy crept back into a hot path.
VIRTIO_COPIES_PER_PACKET_BUDGET = 12.5
XDMA_COPIES_PER_PACKET_BUDGET = 4.25


@pytest.mark.benchmark(group="copies")
def test_virtio_copies_per_packet_budget(benchmark):
    from repro.exec.bench import measure_copies_per_packet

    counts = benchmark.pedantic(
        measure_copies_per_packet, args=("virtio",), rounds=1, iterations=1
    )
    assert counts["read"] <= VIRTIO_COPIES_PER_PACKET_BUDGET
    assert counts["read_into"] >= 0  # in-place fills are free of budget


@pytest.mark.benchmark(group="copies")
def test_xdma_copies_per_packet_budget(benchmark):
    from repro.exec.bench import measure_copies_per_packet

    counts = benchmark.pedantic(
        measure_copies_per_packet, args=("xdma",), rounds=1, iterations=1
    )
    assert counts["read"] <= XDMA_COPIES_PER_PACKET_BUDGET
