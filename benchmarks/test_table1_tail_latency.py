"""E4 / Table I: 95/99/99.9% tail latencies for both drivers at the
paper's five payload sizes.

Shape assertions (the paper's Table I reading):

* VirtIO shows lower tail latencies at the 95th and 99th percentiles,
* "there isn't a significant difference when we approach 99.9%": the
  relative gap at p99.9 is smaller than at p95 (checked in aggregate --
  the paper's own table is non-monotone per payload).
"""

import pytest

from benchmarks.conftest import attach_table
from repro.core.calibration import PAPER_PAYLOAD_SIZES
from repro.core.experiments import table1


@pytest.mark.benchmark(group="tables")
def test_table1_tail_latencies(benchmark, packets):
    def regenerate():
        return table1(payload_sizes=PAPER_PAYLOAD_SIZES, packets=packets, seed=0)

    comparison, text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    attach_table(benchmark, "Table I", text)

    gaps95, gaps999 = [], []
    for payload in PAPER_PAYLOAD_SIZES:
        virtio = comparison.virtio[payload].tail_latencies_us()
        xdma = comparison.xdma[payload].tail_latencies_us()
        benchmark.extra_info[f"{payload}B_p95"] = (
            round(virtio[95.0], 1), round(xdma[95.0], 1)
        )
        benchmark.extra_info[f"{payload}B_p999"] = (
            round(virtio[99.9], 1), round(xdma[99.9], 1)
        )
        # "VirtIO shows lower tail latencies at 95 and 99 percentiles."
        assert virtio[95.0] <= xdma[95.0]
        assert virtio[99.0] <= xdma[99.0]
        gaps95.append((xdma[95.0] - virtio[95.0]) / virtio[95.0])
        gaps999.append((xdma[99.9] - virtio[99.9]) / virtio[99.9])

    # Tail convergence at p99.9.
    assert sum(gaps999) / len(gaps999) < sum(gaps95) / len(gaps95)
