"""Experiment family E-V1: the guest-mode latency comparison.

The paper measures its drivers on bare metal.  Virtualized deployments
-- the home turf of VirtIO -- add a hypervisor between the driver and
the device, and the cost of that interposition depends entirely on how
the data path is wired: full trap-and-emulate, a vhost-style split
where only the control path traps, or direct assignment.  E-V1 reruns
the paper's ping-pong sweep (Section III-B3) under each
:mod:`repro.guest` mode and reports the Fig. 3 RTT curves plus a
Fig. 4-style breakdown extended with a *trap* column: the VMM
world-switch time attributable to each round trip, measured by
snapshotting the VMM's trap accumulator around every packet.

Determinism: guest cells reuse the plain latency cells' seed identity
(kind "latency", driver, payload), so the ``bare``/``pci`` column boots
the same machine from the same seed as the paper artifacts and
reproduces their numbers byte-identically; the other modes differ only
in what the VMM interposes.  Results merge in cell construction order,
bit-identical across ``--jobs``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.calibration import (
    FPGA_IP,
    PAPER_PAYLOAD_SIZES,
    PAPER_PROFILE,
    TEST_DST_PORT,
    CalibrationProfile,
    xdma_transfer_size,
)
from repro.core.latency import ExperimentError, _collect, _test_payload
from repro.core.results import PayloadResult, SweepResult
from repro.core.testbed import VirtioTestbed, XdmaTestbed
from repro.exec.cells import Cell, guest_cells
from repro.exec.runner import ExecutionStats, _stats, run_cells
from repro.guest.vmm import GUEST_MODES
from repro.host.chardev import sys_poll, sys_read, sys_write
from repro.sim.time import NS
from repro.topology.builder import build_from_spec
from repro.topology.spec import GuestSpec, TopologySpec


# -- trap-accounting test applications ----------------------------------------------
#
# Byte-for-byte the measurement loops of repro.core.latency, plus a
# snapshot of the VMM's trap accumulator around each round trip.  The
# snapshots are plain attribute reads (no yields, no RNG draws), so a
# bare run of these apps is event-identical to the originals -- the
# property the golden-parity suite pins down.


def _guest_virtio_app(
    testbed: VirtioTestbed,
    payload_size: int,
    packets: int,
    rtts_ps: List[int],
    traps_ps: List[int],
) -> Generator[Any, Any, None]:
    kernel = testbed.kernel
    socket = testbed.socket
    vmm = testbed.vmm
    for sequence in range(packets):
        payload = _test_payload(payload_size, sequence)
        yield kernel.clock.call_cost()
        t0_ns = kernel.gettime_ns()
        trap0 = vmm.trap_ps if vmm is not None else 0
        yield from socket.sendto(payload, FPGA_IP, TEST_DST_PORT)
        data, _source = yield from socket.recvfrom()
        yield kernel.clock.call_cost()
        t1_ns = kernel.gettime_ns()
        if len(data) != payload_size:
            raise ExperimentError(
                f"echo size mismatch: sent {payload_size}B, got {len(data)}B"
            )
        rtts_ps.append((t1_ns - t0_ns) * NS)
        traps_ps.append((vmm.trap_ps - trap0) if vmm is not None else 0)
        yield kernel.cpu("app_work")


def _guest_xdma_app(
    testbed: XdmaTestbed,
    transfer_size: int,
    packets: int,
    rtts_ps: List[int],
    traps_ps: List[int],
) -> Generator[Any, Any, None]:
    kernel = testbed.kernel
    driver = testbed.driver
    vmm = testbed.vmm
    use_poll = testbed.profile.xdma_c2h_interrupt
    for sequence in range(packets):
        payload = _test_payload(transfer_size, sequence)
        yield kernel.clock.call_cost()
        t0_ns = kernel.gettime_ns()
        trap0 = vmm.trap_ps if vmm is not None else 0
        written = yield from sys_write(kernel, driver, payload)
        if written != transfer_size:
            raise ExperimentError(f"short write: {written} of {transfer_size}")
        if use_poll:
            yield from sys_poll(kernel, driver)
        data = yield from sys_read(kernel, driver, transfer_size)
        yield kernel.clock.call_cost()
        t1_ns = kernel.gettime_ns()
        if len(data) != transfer_size:
            raise ExperimentError(f"short read: {len(data)} of {transfer_size}")
        rtts_ps.append((t1_ns - t0_ns) * NS)
        traps_ps.append((vmm.trap_ps - trap0) if vmm is not None else 0)
        yield kernel.cpu("app_work")


def run_guest_virtio_payload(
    testbed: VirtioTestbed, payload_size: int, packets: int
) -> PayloadResult:
    """One payload of the VirtIO ping-pong with trap accounting."""
    if packets <= 0:
        raise ValueError(f"packets must be positive, got {packets}")
    perf = testbed.perf
    perf.clear()
    rtts: List[int] = []
    traps: List[int] = []
    app = testbed.sim.spawn(
        _guest_virtio_app(testbed, payload_size, packets, rtts, traps),
        name="virtio-app",
    )
    testbed.sim.run_until_triggered(app)
    strict = testbed.injector is None
    hw = _collect(perf, "virtio_h2c", packets, strict) + _collect(
        perf, "virtio_c2h", packets, strict
    )
    resp = _collect(perf, "virtio_resp", packets, strict)
    return PayloadResult(
        payload=payload_size,
        rtt_ps=np.asarray(rtts, dtype=np.int64),
        hw_ps=hw,
        resp_ps=resp,
        trap_ps=np.asarray(traps, dtype=np.int64) if testbed.vmm is not None else None,
    )


def run_guest_xdma_payload(
    testbed: XdmaTestbed, payload_size: int, packets: int
) -> PayloadResult:
    """One payload of the XDMA ping-pong with trap accounting."""
    if packets <= 0:
        raise ValueError(f"packets must be positive, got {packets}")
    perf = testbed.perf
    perf.clear()
    transfer = xdma_transfer_size(payload_size)
    rtts: List[int] = []
    traps: List[int] = []
    app = testbed.sim.spawn(
        _guest_xdma_app(testbed, transfer, packets, rtts, traps), name="xdma-app"
    )
    testbed.sim.run_until_triggered(app)
    strict = testbed.injector is None
    hw = _collect(perf, "h2c0_dma", packets, strict) + _collect(
        perf, "c2h0_dma", packets, strict
    )
    return PayloadResult(
        payload=payload_size,
        rtt_ps=np.asarray(rtts, dtype=np.int64),
        hw_ps=hw,
        resp_ps=np.zeros(packets, dtype=np.int64),
        trap_ps=np.asarray(traps, dtype=np.int64) if testbed.vmm is not None else None,
    )


# -- cell worker --------------------------------------------------------------------


def guest_cell_plan(cell: Cell):
    """``(snap_key, boot, measure)`` for a ``kind="guest"`` cell.

    ``boot`` builds through the topology builder (the GuestSpec decides
    whether and how a VMM interposes); ``measure`` runs the trap-
    accounted ping-pong and collects the VMM counters.  The key covers
    the mode and transport -- a bare boot and a trapped boot are
    different machines even at the same seed.
    """
    from repro.exec.cache import spec_digest

    guest = GuestSpec(mode=cell.guest_mode or "bare", transport=cell.guest_transport)
    if cell.driver == "virtio":
        spec = TopologySpec.single_virtio(guest)
        runner = run_guest_virtio_payload
    elif cell.driver == "xdma":
        spec = TopologySpec.single_xdma(guest)
        runner = run_guest_xdma_payload
    else:
        raise ValueError(f"unknown guest-cell driver {cell.driver!r}")
    key = (
        f"guest:{cell.driver}:{guest.mode}:{guest.transport}:"
        f"{cell.seed:#x}:{spec_digest(cell.profile)}"
    )

    def boot():
        return build_from_spec(spec, seed=cell.seed, profile=cell.profile)

    def measure(testbed) -> Tuple[Tuple[PayloadResult, Dict[str, Any]], int]:
        result = runner(testbed, cell.payload, cell.packets)
        stats = dict(testbed.vmm.stats) if testbed.vmm is not None else {}
        return (result, stats), testbed.sim.events_executed

    return key, boot, measure


def execute_guest_cell(cell: Cell) -> Tuple[Tuple[PayloadResult, Dict[str, Any]], int]:
    """Worker body for ``kind="guest"`` cells.

    Returns ``((payload result, VMM counters), events)``.  The counters
    are cumulative over the cell (boot + measurement), empty for bare.
    """
    from repro.exec import snapshot

    key, boot, measure = guest_cell_plan(cell)
    (value, events), _ = snapshot.execute(key, boot, measure)
    return value, events


# -- the sweep ----------------------------------------------------------------------


@dataclass
class GuestModeSweep:
    """One (driver, mode) column of the E-V1 comparison."""

    mode: str
    sweep: SweepResult
    #: payload -> cumulative VMM counters for that cell (empty for bare).
    vmm_stats: Dict[int, Dict[str, Any]] = field(default_factory=dict)

    def breakdown_rows(self) -> List[Dict[str, float]]:
        """Fig. 4-style rows with the trap share broken out."""
        rows: List[Dict[str, float]] = []
        for payload in self.sweep.payload_sizes():
            result = self.sweep[payload]
            hw = result.hw_summary()
            sw = result.sw_summary()
            if result.trap_ps is not None:
                trap = result.trap_summary()
                trap_mean, trap_std = trap.mean_us, trap.std_us
            else:
                trap_mean = trap_std = 0.0
            rows.append(
                {
                    "payload": payload,
                    "hw_mean_us": hw.mean_us,
                    "hw_std_us": hw.std_us,
                    "sw_mean_us": sw.mean_us,
                    "sw_std_us": sw.std_us,
                    "trap_mean_us": trap_mean,
                    "trap_std_us": trap_std,
                    "total_mean_us": hw.mean_us + sw.mean_us + trap_mean,
                }
            )
        return rows


@dataclass
class GuestSweepReport:
    """The full E-V1 result: driver x mode sweeps over one payload set."""

    seed: int
    packets: int
    transport: str
    modes: Tuple[str, ...]
    drivers: Tuple[str, ...]
    #: driver -> mode -> that column's sweep.
    results: Dict[str, Dict[str, GuestModeSweep]] = field(default_factory=dict)

    def column(self, driver: str, mode: str) -> GuestModeSweep:
        return self.results[driver][mode]

    def as_dict(self) -> Dict[str, Any]:
        """Machine-readable report (the CLI's ``--json`` rendering)."""
        out: Dict[str, Any] = {
            "experiment": "E-V1",
            "seed": self.seed,
            "packets": self.packets,
            "transport": self.transport,
            "modes": list(self.modes),
            "drivers": list(self.drivers),
            "results": {},
        }
        for driver in self.drivers:
            out["results"][driver] = {}
            for mode in self.modes:
                column = self.results[driver][mode]
                per_payload = {}
                for row in column.breakdown_rows():
                    payload = int(row["payload"])
                    result = column.sweep[payload]
                    summary = result.rtt_summary()
                    tails = result.tail_latencies_us()
                    per_payload[str(payload)] = {
                        "rtt_mean_us": summary.mean_us,
                        "rtt_std_us": summary.std_us,
                        "p95_us": tails[95.0],
                        "p99_us": tails[99.0],
                        "p999_us": tails[99.9],
                        "hw_mean_us": row["hw_mean_us"],
                        "sw_mean_us": row["sw_mean_us"],
                        "trap_mean_us": row["trap_mean_us"],
                        "vmm": column.vmm_stats.get(payload, {}),
                    }
                out["results"][driver][mode] = per_payload
        return out

    def render(self) -> str:
        """Text rendering: one breakdown block per driver x mode."""
        lines = [
            f"E-V1 guest sweep: transport={self.transport} seed={self.seed} "
            f"packets={self.packets}"
        ]
        for driver in self.drivers:
            for mode in self.modes:
                column = self.results[driver][mode]
                lines.append("")
                lines.append(f"-- {driver} / {mode} --")
                lines.append(
                    f"{'payload':>8} {'rtt mean':>9} {'hw mean':>9} {'sw mean':>9} "
                    f"{'trap mean':>10} {'total':>9}  (us)"
                )
                for row in column.breakdown_rows():
                    payload = int(row["payload"])
                    rtt = column.sweep[payload].rtt_summary()
                    lines.append(
                        f"{payload:>8} {rtt.mean_us:>9.1f} {row['hw_mean_us']:>9.1f} "
                        f"{row['sw_mean_us']:>9.1f} {row['trap_mean_us']:>10.2f} "
                        f"{row['total_mean_us']:>9.1f}"
                    )
        return "\n".join(lines)


def run_guest_sweep(
    payload_sizes: Sequence[int] = PAPER_PAYLOAD_SIZES,
    packets: int = 2000,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    modes: Sequence[str] = GUEST_MODES,
    transport: str = "pci",
    drivers: Sequence[str] = ("virtio", "xdma"),
    jobs: int = 1,
) -> Tuple[GuestSweepReport, ExecutionStats]:
    """E-V1: the ping-pong sweep under each guest mode.

    With ``transport="mmio"`` the XDMA driver is dropped from
    *drivers* -- XDMA has no VirtIO transport to rebind (the spec layer
    rejects the combination outright).
    """
    for mode in modes:
        if mode not in GUEST_MODES:
            raise ValueError(f"unknown guest mode {mode!r} (expected {GUEST_MODES})")
    if transport == "mmio":
        drivers = tuple(d for d in drivers if d != "xdma")
        if not drivers:
            raise ValueError("the mmio transport needs the virtio driver")
    started = time.perf_counter()
    cells = guest_cells(
        payload_sizes, packets, seed, profile, tuple(drivers), tuple(modes), transport
    )
    outcomes = run_cells(cells, jobs)
    report = GuestSweepReport(
        seed=seed,
        packets=packets,
        transport=transport,
        modes=tuple(modes),
        drivers=tuple(drivers),
    )
    for outcome in outcomes:  # cell construction order: driver, mode, payload
        cell = outcome.cell
        payload_result, vmm_counters = outcome.value
        column = report.results.setdefault(cell.driver, {}).setdefault(
            cell.guest_mode,
            GuestModeSweep(
                mode=cell.guest_mode,
                sweep=SweepResult(driver=cell.driver, seed=seed),
            ),
        )
        column.sweep.add(payload_result)
        if vmm_counters:
            column.vmm_stats[cell.payload] = vmm_counters
    return report, _stats(outcomes, jobs, time.perf_counter() - started)
