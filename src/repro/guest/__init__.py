"""Guest VM layer: a minimal VMM model over the simulated host.

The paper measures both drivers on bare metal; this package adds the
virtualization axis (the reason VirtIO exists at all): a :class:`Vmm`
that interposes on MMIO and interrupt delivery with calibrated trap
costs, and three execution modes wired through
:class:`repro.topology.spec.GuestSpec`:

``bare``
    No VMM.  Byte-identical to every pre-guest artifact.
``trapped``
    Every MMIO access vmexits into the VMM and vmenters back; every
    interrupt is VMM-injected.  The full-emulation worst case.
``vhost``
    Control path traps as above, but the data path is shortcut
    KVM-style: doorbell writes exit only into an ioeventfd-class
    lightweight handler, completion interrupts are irqfd-injected, and
    direct-mapped windows read without exiting.

Experiment family E-V1 (:func:`repro.guest.experiments.run_guest_sweep`)
compares the three modes per driver with Fig-4-style breakdowns.
"""

from repro.guest.vmm import GUEST_MODES, Vmm

__all__ = ["GUEST_MODES", "Vmm"]
