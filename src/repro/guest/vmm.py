"""The VMM model: trap-cost interposition on MMIO and interrupts.

A deliberately small hypervisor: it does not *translate* anything (the
simulated guest already shares the host address space, like a 1:1
identity-mapped guest), it *charges* for the world switches a real
hypervisor would take on each device access:

* **MMIO write** -- in ``trapped`` mode the store faults: ``vmexit``,
  the VMM performs the access, ``vmentry``.  In ``vhost`` mode a write
  landing in a registered *fast window* (a queue doorbell) takes the
  ioeventfd path instead: a lightweight ``vhost_doorbell`` exit that
  never reaches the VMM's emulator.
* **MMIO read** -- reads are non-posted and always trap in ``trapped``
  mode (``vmexit`` + access + ``vmentry``).  In ``vhost`` mode a read
  from a fast window is direct-mapped (no exit at all; vhost devices
  place the rings and ISR state in shared memory), everything else
  traps.
* **Interrupt** -- a device MSI terminates in the VMM, which injects it
  into the guest: ``irq_inject`` before the guest handler runs.  Fast
  *vectors* (vhost completion interrupts) use the irqfd shortcut,
  ``vhost_irq_inject``.

Costs are ordinary :class:`~repro.host.costs.CostModel` segments
(``vmexit``/``vmentry``/``irq_inject``/``vhost_doorbell``/
``vhost_irq_inject``), so they carry the same body jitter and
interference noise as every other software segment, and bare-metal runs
-- which never sample them -- keep their draw sequences untouched.

The Vmm is intentionally *not* a :class:`~repro.sim.component.Component`:
component names seed RNG streams, and attaching one would disturb the
byte-parity of everything downstream.  It borrows the kernel's
``cpu()`` sampler instead, which is also what a real trap costs: host
CPU time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Set, Tuple

from repro.sim.time import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.kernel import HostKernel

#: Guest execution modes, in cost order (bare < vhost < trapped).
GUEST_MODES = ("bare", "trapped", "vhost")


class Vmm:
    """Interposer charging world-switch costs on device accesses.

    Attach with :meth:`attach` *after* the :class:`HostKernel` exists
    and *before* the driver probes, so every access -- including
    enumeration and initialization -- pays virtualization's price,
    exactly as a guest's boot-time config cycles do.
    """

    def __init__(self, kernel: "HostKernel", mode: str) -> None:
        if mode not in ("trapped", "vhost"):
            raise ValueError(
                f"Vmm mode must be 'trapped' or 'vhost' (bare runs have no "
                f"Vmm), got {mode!r}"
            )
        self.kernel = kernel
        self.mode = mode
        #: vhost fast MMIO windows: ``[(base, end), ...)`` half-open.
        self.fast_windows: List[Tuple[int, int]] = []
        #: vhost fast (irqfd) vectors.
        self.fast_vectors: Set[int] = set()
        #: Total world-switch time charged, ps (per-packet snapshots are
        #: differences of this counter).
        self.trap_ps: SimTime = 0
        self.vmexits = 0
        self.irq_injects = 0
        self.vhost_doorbells = 0
        self.vhost_irq_injects = 0
        self.fast_reads = 0

    # -- wiring -------------------------------------------------------------------

    def attach(self) -> None:
        """Install on the kernel's MMIO paths and IRQ registration."""
        if self.kernel.vmm is not None:
            raise RuntimeError("kernel already has a Vmm attached")
        self.kernel.vmm = self
        self.kernel.irqc.inject_wrap = self._wrap_handler

    def add_fast_window(self, base: int, length: int) -> None:
        """Register ``[base, base+length)`` as a vhost fast window
        (ioeventfd for writes, direct-mapped for reads)."""
        self.fast_windows.append((base, base + length))

    def add_fast_vector(self, vector: int) -> None:
        """Register *vector* for irqfd-style injection."""
        self.fast_vectors.add(vector)

    def _is_fast(self, addr: int) -> bool:
        for base, end in self.fast_windows:
            if base <= addr < end:
                return True
        return False

    # -- MMIO interposition --------------------------------------------------------

    def mmio_write(self, addr: int, data: bytes) -> SimTime:
        """The kernel's posted-write path, virtualized (same contract:
        issue the TLP now, return the CPU cost to yield)."""
        kernel = self.kernel
        if self.mode == "vhost" and self._is_fast(addr):
            # ioeventfd: the store still exits, but into a lightweight
            # in-kernel handler that signals the backend -- no emulator.
            kernel.rc.mmio_write(addr, data)
            base = kernel.cpu("mmio_write_cpu")
            extra = kernel.cpu("vhost_doorbell")
            self.vhost_doorbells += 1
            self.trap_ps += extra
            return base + extra
        exit_cost = kernel.cpu("vmexit")
        kernel.rc.mmio_write(addr, data)
        base = kernel.cpu("mmio_write_cpu")
        entry_cost = kernel.cpu("vmentry")
        self.vmexits += 1
        self.trap_ps += exit_cost + entry_cost
        return exit_cost + base + entry_cost

    def mmio_read(self, addr: int, length: int) -> Generator[Any, Any, bytes]:
        """The kernel's non-posted-read path, virtualized."""
        kernel = self.kernel
        if self.mode == "vhost" and self._is_fast(addr):
            # Direct-mapped: vhost keeps the data-path state in shared
            # memory, so the guest load never exits.
            self.fast_reads += 1
            yield kernel.cpu("mmio_read_extra")
            data = yield kernel.rc.mmio_read(addr, length)
            return data
        exit_cost = kernel.cpu("vmexit")
        self.vmexits += 1
        self.trap_ps += exit_cost
        yield exit_cost
        yield kernel.cpu("mmio_read_extra")
        data = yield kernel.rc.mmio_read(addr, length)
        entry_cost = kernel.cpu("vmentry")
        self.trap_ps += entry_cost
        yield entry_cost
        return data

    # -- interrupt interposition ----------------------------------------------------

    def _wrap_handler(self, vector: int, factory):
        """Decorate a handler factory with injection cost.  The fast-
        vector check happens at *dispatch* time, so vectors promoted to
        irqfd after registration (vhost wiring runs post-probe) take
        the shortcut from then on."""

        def injected() -> Generator[Any, Any, None]:
            if self.mode == "vhost" and vector in self.fast_vectors:
                cost = self.kernel.cpu("vhost_irq_inject")
                self.vhost_irq_injects += 1
            else:
                cost = self.kernel.cpu("irq_inject")
                self.irq_injects += 1
            self.trap_ps += cost
            yield cost
            yield from factory()

        return injected

    # -- diagnostics ----------------------------------------------------------------

    @property
    def stats(self) -> dict:
        return {
            "mode": self.mode,
            "vmexits": self.vmexits,
            "irq_injects": self.irq_injects,
            "vhost_doorbells": self.vhost_doorbells,
            "vhost_irq_injects": self.vhost_irq_injects,
            "fast_reads": self.fast_reads,
            "trap_us": self.trap_ps / 1e6,
        }
