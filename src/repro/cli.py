"""Command-line interface.

``virtio-fpga-repro <artifact>`` regenerates a paper artifact on the
simulation substrate::

    virtio-fpga-repro fig3 --packets 5000
    virtio-fpga-repro table1 --packets 50000 --seed 3
    virtio-fpga-repro claims
    virtio-fpga-repro all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core.calibration import PAPER_PAYLOAD_SIZES
from repro.core.experiments import (
    default_packets,
    figure3,
    figure4,
    figure5,
    render_claims,
    run_comparison,
    table1,
    verify_paper_claims,
)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="virtio-fpga-repro",
        description=(
            "Reproduce the artifacts of 'Performance Evaluation of VirtIO Device "
            "Drivers for Host-FPGA PCIe Communication' (IPDPSW 2024) on a "
            "transaction-level simulation substrate."
        ),
    )
    parser.add_argument(
        "artifact",
        choices=["fig3", "fig4", "fig5", "table1", "claims", "all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--packets",
        type=int,
        default=None,
        help="packets per payload size (default: REPRO_PACKETS env or 2000; "
        "the paper used 50000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--payloads",
        type=int,
        nargs="+",
        default=list(PAPER_PAYLOAD_SIZES),
        help="payload sizes in bytes (default: the paper's sweep)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    packets = args.packets if args.packets is not None else default_packets()
    started = time.time()
    kwargs = dict(payload_sizes=args.payloads, packets=packets, seed=args.seed)

    if args.artifact == "fig3":
        _, text = figure3(**kwargs)
        print(text)
    elif args.artifact == "fig4":
        _, text = figure4(**kwargs)
        print(text)
    elif args.artifact == "fig5":
        _, text = figure5(**kwargs)
        print(text)
    elif args.artifact == "table1":
        _, text = table1(**kwargs)
        print(text)
    elif args.artifact == "claims":
        comparison = run_comparison(**kwargs)
        print(render_claims(verify_paper_claims(comparison)))
    elif args.artifact == "all":
        comparison, text = table1(**kwargs)
        print(text)
        print()
        from repro.core.results import render_breakdown

        print(render_breakdown(comparison.virtio, "Figure 4: VirtIO breakdown"))
        print()
        print(render_breakdown(comparison.xdma, "Figure 5: XDMA breakdown"))
        print()
        print(render_claims(verify_paper_claims(comparison)))
    print(
        f"\n[{args.artifact}: {packets} packets/size x {len(args.payloads)} sizes, "
        f"seed {args.seed}, {time.time() - started:.1f}s]",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
