"""Command-line interface.

``virtio-fpga-repro <artifact>`` regenerates a paper artifact on the
simulation substrate::

    virtio-fpga-repro fig3 --packets 5000
    virtio-fpga-repro table1 --packets 50000 --seed 3
    virtio-fpga-repro table1 --json
    virtio-fpga-repro claims
    virtio-fpga-repro all

``loadsweep`` goes beyond the paper: open/closed-loop traffic from the
workload engine, swept across offered-load points::

    virtio-fpga-repro loadsweep --seed 0
    virtio-fpga-repro loadsweep --rate 20000 40000 80000 --distribution bursty
    virtio-fpga-repro loadsweep --outstanding 1 2 4 8 --json

``faultsweep`` exercises the fault-injection subsystem: each driver's
canonical recoverable fault across increasing rates (E-F1), or the
VirtIO reset/renegotiation storm (E-F2)::

    virtio-fpga-repro faultsweep --json
    virtio-fpga-repro faultsweep --fault-rates 0 0.01 0.05 -j 4
    virtio-fpga-repro faultsweep --scenario reset --every 25

``overload`` drives the end-to-end overload-protection stack: E-O1
graceful-degradation sweeps far beyond the saturation knee, or the
E-S1 three-phase soak (baseline / sustained overload with faults /
recovery), each point audited by a conservation ledger::

    virtio-fpga-repro overload --json
    virtio-fpga-repro overload --multipliers 0.5 1 4 16 -j 4
    virtio-fpga-repro overload --soak --fault-rate 0.02

``fleetsweep`` runs E-M1 on the fleet topology subsystem: pods of
multi-queue virtio-net devices (plain + SR-IOV virtual functions)
behind a shared PCIe switch uplink, each pod serving a set of tenant
flows under admission control, with per-VF/per-queue conservation
lanes, Jain fairness, and p99 isolation::

    virtio-fpga-repro fleetsweep --json
    virtio-fpga-repro fleetsweep --pods 2 --tenants 8 --queue-pairs 4 -j 2
    virtio-fpga-repro fleetsweep --arbiter weighted --vfs 4

``guestsweep`` runs E-V1 on the guest VM layer: the paper's ping-pong
sweep re-measured inside a minimal VMM under each interposition mode
(bare / trap-and-emulate / vhost-style fast path), over the virtio-pci
or virtio-mmio transport, with a trap-time column in the breakdown::

    virtio-fpga-repro guestsweep --json
    virtio-fpga-repro guestsweep --modes bare vhost --payloads 64 1024 -j 4
    virtio-fpga-repro guestsweep --transport mmio --packets 200

``--jobs/-j`` fans any artifact out over a process pool (bit-identical
output for any worker count), and ``bench`` records the serial vs
parallel perf trajectory::

    virtio-fpga-repro table1 --packets 50000 -j 8
    virtio-fpga-repro bench --packets 2000 --jobs 4   # writes BENCH_<rev>.json

``bench --check`` is the regression gate: it re-measures events/s
(cpu-score normalized) and the deterministic copies-per-packet counts
on the committed baseline's workload and exits 1 on regression::

    virtio-fpga-repro bench --check
    virtio-fpga-repro bench --check --baseline BENCH_baseline.json --tolerance 0.15

``--cache`` turns on the content-addressed result cache: cells whose
(kind, spec, seed, code fingerprint) already have a stored outcome are
served from disk, so a warm rerun of an unchanged tree is near-free
and byte-identical to the cold run.  Every ``--json`` report then
carries a ``cache_stats`` section (hits/misses/bytes/boot-reuses)::

    virtio-fpga-repro table1 --cache --json        # cold: populates
    virtio-fpga-repro table1 --cache --json        # warm: all hits
    virtio-fpga-repro fleetsweep --cache --cache-dir /tmp/repro-cache
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.core.calibration import PAPER_PAYLOAD_SIZES
from repro.core.experiments import (
    default_packets,
    figure3,
    figure4,
    figure5,
    render_claims,
    run_comparison,
    run_load_sweep,
    table1,
    verify_paper_claims,
)
from repro.core.results import breakdown_rows
from repro.workload.arrivals import ARRIVAL_KINDS
from repro import env

#: The artifact registry: subcommand name -> whether it has a
#: machine-readable ``--json`` rendering.  The parser's choices and the
#: ``--json`` support list (including its error message) are derived
#: from this one table, so registering an artifact here is the only
#: step the CLI surface needs.
ARTIFACTS = {
    "fig3": True,
    "fig4": True,
    "fig5": True,
    "table1": True,
    "claims": False,
    "loadsweep": True,
    "faultsweep": True,
    "overload": True,
    "fleetsweep": True,
    "guestsweep": True,
    "bench": True,
    "all": False,
}

#: Artifacts with a machine-readable rendering behind ``--json``
#: (derived; never hand-edit).
JSON_ARTIFACTS = tuple(name for name, has_json in ARTIFACTS.items() if has_json)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="virtio-fpga-repro",
        description=(
            "Reproduce the artifacts of 'Performance Evaluation of VirtIO Device "
            "Drivers for Host-FPGA PCIe Communication' (IPDPSW 2024) on a "
            "transaction-level simulation substrate."
        ),
    )
    parser.add_argument(
        "artifact",
        choices=list(ARTIFACTS),
        help="which artifact to regenerate (loadsweep: workload-engine "
        "offered-load sweep, beyond the paper; faultsweep: fault-injection "
        "reliability sweep, beyond the paper; overload: overload-protection "
        "sweep/soak with conservation audit, beyond the paper; fleetsweep: "
        "E-M1 multi-tenant fleet topology sweep, beyond the paper; "
        "guestsweep: E-V1 guest-mode latency comparison, beyond the paper; "
        "bench: time a serial vs parallel reproduction and write "
        "BENCH_<rev>.json)",
    )
    parser.add_argument(
        "--packets",
        type=int,
        default=None,
        help="packets per payload size, or per load point for loadsweep "
        "(default: REPRO_PACKETS env, 2000 for paper artifacts, 400 for "
        "loadsweep; the paper used 50000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="fan the run out over N worker processes via the parallel "
        "execution engine (output is bit-identical for any N; default: "
        "the original serial path; bench default: all CPUs)",
    )
    parser.add_argument(
        "--payloads",
        type=int,
        nargs="+",
        default=None,
        help="payload sizes in bytes (default: the paper's sweep; for "
        "loadsweep one size is fixed traffic, several are an empirical mix; "
        "loadsweep default: 64)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of text tables "
        f"(supported: {', '.join(JSON_ARTIFACTS)})",
    )
    sweep = parser.add_argument_group("loadsweep options")
    sweep.add_argument(
        "--rate",
        type=float,
        nargs="+",
        default=None,
        metavar="PPS",
        help="explicit offered-load points in packets/s (default: "
        "auto-placed multiples of each driver's measured ping-pong rate)",
    )
    sweep.add_argument(
        "--outstanding",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="run a closed-loop sweep over these outstanding-request "
        "counts instead of the open-loop rate sweep (N=1 reproduces the "
        "paper's ping-pong)",
    )
    sweep.add_argument(
        "--distribution",
        choices=list(ARRIVAL_KINDS),
        default="poisson",
        help="open-loop arrival process (default: poisson)",
    )
    faults = parser.add_argument_group("faultsweep options")
    faults.add_argument(
        "--fault-rates",
        type=float,
        nargs="+",
        default=None,
        metavar="P",
        help="per-opportunity fault probabilities to sweep (default: "
        "0 0.002 0.01 0.05; rate 0 is the fault-free baseline and is "
        "bit-identical to a run without any fault plan)",
    )
    faults.add_argument(
        "--scenario",
        choices=["rate", "reset"],
        default="rate",
        help="'rate' (E-F1): tail latency vs fault rate for both drivers; "
        "'reset' (E-F2): VirtIO reset/renegotiation recovery under a "
        "malformed-chain storm (default: rate)",
    )
    faults.add_argument(
        "--every",
        type=int,
        default=25,
        metavar="N",
        help="reset scenario: corrupt every N-th TX descriptor-chain "
        "fetch (default: 25)",
    )
    over = parser.add_argument_group("overload options")
    over.add_argument(
        "--soak",
        action="store_true",
        help="run the E-S1 three-phase soak (baseline / 8x overload with "
        "faults / recovery) instead of the E-O1 load sweep",
    )
    over.add_argument(
        "--multipliers",
        type=float,
        nargs="+",
        default=None,
        metavar="M",
        help="offered-load multiples of each driver's measured base rate "
        "for the E-O1 sweep (default: 0.5 1 2 4 8 16; --rate overrides "
        "with explicit pps points)",
    )
    over.add_argument(
        "--fault-rate",
        type=float,
        default=None,
        metavar="P",
        help="per-opportunity fault probability layered on top of the "
        "overload (sweep default: none; soak default: 0.02)",
    )
    fleet = parser.add_argument_group("fleetsweep options")
    fleet.add_argument(
        "--pods",
        type=int,
        default=4,
        metavar="N",
        help="independent fleet pods, one cell each (default: 4; a pod is "
        "a plain multi-queue device plus an SR-IOV device behind a shared "
        "PCIe switch uplink)",
    )
    fleet.add_argument(
        "--tenants",
        type=int,
        default=16,
        metavar="N",
        help="tenant flows per pod, assigned round-robin across the pod's "
        "functions (default: 16, so the default sweep runs 64 flows)",
    )
    fleet.add_argument(
        "--queue-pairs",
        type=int,
        default=2,
        metavar="N",
        help="TX/RX virtqueue pairs per function (default: 2)",
    )
    fleet.add_argument(
        "--vfs",
        type=int,
        default=2,
        metavar="N",
        help="virtual functions on each pod's SR-IOV device (default: 2)",
    )
    fleet.add_argument(
        "--tenant-rate",
        type=float,
        default=None,
        metavar="PPS",
        help="offered rate per tenant in packets/s (default: 4000)",
    )
    fleet.add_argument(
        "--arbiter",
        choices=["rr", "weighted"],
        default="rr",
        help="DMA bandwidth arbiter across each SR-IOV device's functions "
        "(default: rr)",
    )
    guest = parser.add_argument_group("guestsweep options")
    guest.add_argument(
        "--modes",
        choices=["bare", "trapped", "vhost"],
        nargs="+",
        default=None,
        metavar="MODE",
        help="guest modes to sweep: bare, trapped, and/or vhost "
        "(default: the REPRO_GUEST_MODE env knob if set, else all three)",
    )
    guest.add_argument(
        "--transport",
        choices=["pci", "mmio"],
        default="pci",
        help="VirtIO bus binding the guest drives the device through: "
        "pci (the paper's path, per-queue MSI-X) or mmio (the 4.2 flat "
        "register block with one shared interrupt line; virtio driver "
        "only) (default: pci)",
    )
    gate = parser.add_argument_group("bench options")
    gate.add_argument(
        "--check",
        action="store_true",
        help="regression-gate mode: re-measure events/s and copy counts "
        "on the baseline's workload and fail (exit 1) on regression "
        "beyond --tolerance, instead of writing a new record",
    )
    gate.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline record for --check (default: BENCH_baseline.json)",
    )
    gate.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="F",
        help="allowed fractional events/s regression for --check, after "
        "cpu-score normalization (default: 0.15; copy counts are gated "
        "exactly regardless)",
    )
    gate.add_argument(
        "--profile",
        action="store_true",
        dest="profile_hot",
        help="run the serial bench leg under cProfile and write the "
        "top-30 cumulative table next to the record as "
        "BENCH_<rev>.profile.txt (record mode only; the profiled wall "
        "is not baseline material)",
    )
    cachegrp = parser.add_argument_group("result cache options")
    cachegrp.add_argument(
        "--cache",
        action="store_true",
        help="consult and populate the content-addressed cell result "
        "cache; unchanged cells are served from disk byte-identically "
        "(default: the REPRO_CACHE env knob)",
    )
    cachegrp.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache even when REPRO_CACHE=1",
    )
    cachegrp.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result-cache directory, created if missing (default: "
        "REPRO_CACHE_DIR, else .repro-cache)",
    )
    return parser


def _emit_json(payload: dict) -> None:
    """Print a ``--json`` rendering, appending ``cache_stats`` when the
    result cache is active (disabled runs stay byte-identical to the
    committed goldens)."""
    from repro.exec.cache import cache_stats

    stats = cache_stats()
    if stats is not None:
        payload = dict(payload, cache_stats=stats)
    print(json.dumps(payload, indent=2))


def main(argv: Optional[List[str]] = None) -> int:
    parser = _parser()
    args = parser.parse_args(argv)
    try:
        env.check_environment()
    except env.EnvError as exc:
        parser.error(str(exc))
    if args.json and args.artifact not in JSON_ARTIFACTS:
        parser.error(
            f"--json is not supported for {args.artifact!r} "
            f"(supported: {', '.join(JSON_ARTIFACTS)})"
        )
    if args.rate and any(r <= 0 for r in args.rate):
        parser.error("--rate values must be positive (packets/s)")
    if args.outstanding and any(n <= 0 for n in args.outstanding):
        parser.error("--outstanding values must be positive")
    if args.fault_rates and any(not 0.0 <= p <= 1.0 for p in args.fault_rates):
        parser.error("--fault-rates values must be probabilities in [0, 1]")
    if args.every <= 0:
        parser.error("--every must be positive")
    if args.multipliers and any(m <= 0 for m in args.multipliers):
        parser.error("--multipliers values must be positive")
    if args.fault_rate is not None and not 0.0 <= args.fault_rate <= 1.0:
        parser.error("--fault-rate must be a probability in [0, 1]")
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.pods < 1:
        parser.error("--pods must be >= 1")
    if args.tenants < 1:
        parser.error("--tenants must be >= 1")
    if args.queue_pairs < 1:
        parser.error("--queue-pairs must be >= 1")
    if args.vfs < 1:
        parser.error("--vfs must be >= 1")
    if args.tenant_rate is not None and args.tenant_rate <= 0:
        parser.error("--tenant-rate must be positive (packets/s)")
    if args.check and args.artifact != "bench":
        parser.error("--check is a bench option")
    if args.profile_hot and (args.artifact != "bench" or args.check):
        parser.error("--profile is a bench record-mode option")
    if args.tolerance is not None and not 0.0 < args.tolerance < 1.0:
        parser.error("--tolerance must be a fraction in (0, 1)")
    if args.cache and args.no_cache:
        parser.error("--cache and --no-cache are mutually exclusive")

    from repro.exec import cache as result_cache

    cache = result_cache.configure(
        enabled=(args.cache or env.result_cache()) and not args.no_cache,
        cache_dir=args.cache_dir,
    )
    if (
        cache is not None
        and args.jobs is None
        and args.artifact not in ("fleetsweep", "guestsweep", "bench")
    ):
        # With --jobs unset these artifacts take the legacy serial
        # path, which never enters the cell engine -- the cache would
        # sit idle.  Say so instead of silently reporting zero hits.
        print(
            f"note: the result cache only covers cell-engine runs; "
            f"pass -j (e.g. -j 1) to cache {args.artifact!r} cells",
            file=sys.stderr,
        )

    started = time.time()
    if args.artifact == "bench" and args.check:
        from repro.exec.bench import (
            DEFAULT_BASELINE,
            DEFAULT_TOLERANCE,
            render_check,
            run_check,
        )

        baseline = args.baseline if args.baseline is not None else DEFAULT_BASELINE
        tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        try:
            ok, report = run_check(
                baseline_path=baseline, tolerance=tolerance,
                packets=args.packets, seed=args.seed if args.seed != 0 else None,
            )
        except FileNotFoundError:
            parser.error(f"baseline record not found: {baseline}")
        if args.json:
            _emit_json(report)
        else:
            print(render_check(report))
        print(
            f"\n[bench --check vs {baseline}, {time.time() - started:.1f}s]",
            file=sys.stderr,
        )
        return 0 if ok else 1
    if args.artifact == "bench":
        import os

        from repro.exec.bench import render_bench, run_bench

        jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 2)
        if jobs < 2:
            parser.error("bench compares serial vs parallel; use --jobs >= 2")
        packets = args.packets if args.packets is not None else default_packets()
        payloads = (
            args.payloads if args.payloads is not None else list(PAPER_PAYLOAD_SIZES)
        )
        record, path = run_bench(
            packets=packets, jobs=jobs, payload_sizes=payloads, seed=args.seed,
            profile_hot=args.profile_hot,
        )
        if args.json:
            _emit_json(record)
        else:
            print(render_bench(record))
        print(f"\n[bench record written to {path}]", file=sys.stderr)
        return 0 if record["parallel_matches_serial"] else 1
    if args.artifact == "loadsweep":
        packets = args.packets if args.packets is not None else default_packets(400)
        payloads = args.payloads if args.payloads is not None else [64]
        results, text = run_load_sweep(
            packets=packets,
            seed=args.seed,
            rates=args.rate,
            outstanding=args.outstanding,
            arrival=args.distribution,
            payload_sizes=payloads,
            jobs=args.jobs,
        )
        if args.json:
            _emit_json(
                {
                    "artifact": "loadsweep",
                    "mode": "closed" if args.outstanding else "open",
                    "seed": args.seed,
                    "packets": packets,
                    "payloads": payloads,
                    "drivers": {name: r.as_dict() for name, r in results.items()},
                }
            )
        else:
            print(text)
        print(
            f"\n[loadsweep: {packets} packets/point, seed {args.seed}, "
            f"{time.time() - started:.1f}s]",
            file=sys.stderr,
        )
        return 0
    if args.artifact == "faultsweep":
        from repro.faults.experiments import (
            DEFAULT_FAULT_RATES,
            run_fault_sweep,
            run_reset_recovery,
        )

        packets = args.packets if args.packets is not None else default_packets(300)
        payload = args.payloads[0] if args.payloads else 64
        if args.scenario == "reset":
            result, text = run_reset_recovery(
                every=args.every, payload=payload, packets=packets, seed=args.seed
            )
        else:
            rates = tuple(args.fault_rates) if args.fault_rates else DEFAULT_FAULT_RATES
            result, text = run_fault_sweep(
                rates=rates, payload=payload, packets=packets, seed=args.seed,
                jobs=args.jobs,
            )
        if args.json:
            _emit_json(
                dict(result.as_dict(), artifact="faultsweep", scenario=args.scenario)
            )
        else:
            print(text)
        print(
            f"\n[faultsweep/{args.scenario}: {packets} packets/cell, "
            f"seed {args.seed}, {time.time() - started:.1f}s]",
            file=sys.stderr,
        )
        return 0

    if args.artifact == "overload":
        from repro.health.experiments import (
            OVERLOAD_MULTIPLIERS,
            run_overload_soak,
            run_overload_sweep,
        )

        payloads = args.payloads if args.payloads is not None else [64]
        jobs = args.jobs if args.jobs is not None else 1
        if args.soak:
            packets = args.packets if args.packets is not None else default_packets(300)
            fault_rate = args.fault_rate if args.fault_rate is not None else 0.02
            results, _ = run_overload_soak(
                packets=packets, seed=args.seed, payload_sizes=payloads,
                fault_rate=fault_rate, jobs=jobs,
            )
        else:
            packets = args.packets if args.packets is not None else default_packets(400)
            multipliers = (
                tuple(args.multipliers) if args.multipliers else OVERLOAD_MULTIPLIERS
            )
            results, _ = run_overload_sweep(
                packets=packets, seed=args.seed, multipliers=multipliers,
                rates=args.rate, arrival=args.distribution,
                payload_sizes=payloads, fault_rate=args.fault_rate, jobs=jobs,
            )
        mode = "soak" if args.soak else "sweep"
        if args.json:
            _emit_json(
                {
                    "artifact": "overload",
                    "mode": mode,
                    "seed": args.seed,
                    "packets": packets,
                    "drivers": {name: r.as_dict() for name, r in results.items()},
                }
            )
        else:
            print("\n\n".join(r.render() for r in results.values()))
        print(
            f"\n[overload/{mode}: {packets} packets/"
            f"{'phase' if args.soak else 'point'}, seed {args.seed}, "
            f"{time.time() - started:.1f}s]",
            file=sys.stderr,
        )
        all_pass = all(r.verdict == "PASS" for r in results.values())
        return 0 if all_pass else 1

    if args.artifact == "fleetsweep":
        from repro.topology.experiments import (
            DEFAULT_TENANT_RATE_PPS,
            run_fleet_sweep,
        )

        packets = args.packets if args.packets is not None else default_packets(50)
        payload = args.payloads[0] if args.payloads else 64
        rate = (
            args.tenant_rate if args.tenant_rate is not None
            else DEFAULT_TENANT_RATE_PPS
        )
        result, _ = run_fleet_sweep(
            pods=args.pods,
            tenants=args.tenants,
            packets=packets,
            seed=args.seed,
            queue_pairs=args.queue_pairs,
            rate_pps=rate,
            arrival=args.distribution,
            payload=payload,
            vfs_per_device=args.vfs,
            arbiter=args.arbiter,
            jobs=args.jobs if args.jobs is not None else 1,
        )
        if args.json:
            _emit_json(result.as_dict())
        else:
            print(result.render())
        print(
            f"\n[fleetsweep: {args.pods} pods x {args.tenants} tenants, "
            f"{packets} packets/tenant, seed {args.seed}, "
            f"{time.time() - started:.1f}s]",
            file=sys.stderr,
        )
        return 0 if result.verdict == "PASS" else 1

    if args.artifact == "guestsweep":
        from repro.guest.experiments import run_guest_sweep

        packets = args.packets if args.packets is not None else default_packets(500)
        payloads = args.payloads if args.payloads is not None else [64, 1024, 8192]
        if args.modes:
            modes = tuple(dict.fromkeys(args.modes))  # dedupe, keep order
        elif env.guest_mode() is not None:
            modes = (env.guest_mode(),)
        else:
            modes = ("bare", "trapped", "vhost")
        report, _ = run_guest_sweep(
            payload_sizes=payloads,
            packets=packets,
            seed=args.seed,
            modes=modes,
            transport=args.transport,
            jobs=args.jobs if args.jobs is not None else 1,
        )
        if args.json:
            _emit_json(report.as_dict())
        else:
            print(report.render())
        print(
            f"\n[guestsweep/{args.transport}: modes {'+'.join(modes)}, "
            f"{packets} packets/cell, seed {args.seed}, "
            f"{time.time() - started:.1f}s]",
            file=sys.stderr,
        )
        return 0

    packets = args.packets if args.packets is not None else default_packets()
    payloads = args.payloads if args.payloads is not None else list(PAPER_PAYLOAD_SIZES)
    kwargs = dict(payload_sizes=payloads, packets=packets, seed=args.seed, jobs=args.jobs)

    if args.artifact == "fig3":
        comparison, text = figure3(**kwargs)
        if args.json:
            drivers = {
                name: {
                    str(payload): sweep[payload].rtt_summary().as_dict()
                    for payload in sweep.payload_sizes()
                }
                for name, sweep in (
                    ("virtio", comparison.virtio), ("xdma", comparison.xdma)
                )
            }
            _emit_json(
                {
                    "artifact": "fig3",
                    "seed": args.seed,
                    "packets": packets,
                    "drivers": drivers,
                }
            )
        else:
            print(text)
    elif args.artifact in ("fig4", "fig5"):
        sweep, text = (figure4 if args.artifact == "fig4" else figure5)(**kwargs)
        if args.json:
            _emit_json(
                {
                    "artifact": args.artifact,
                    "driver": sweep.driver,
                    "seed": args.seed,
                    "packets": packets,
                    "breakdown": [
                        {
                            "payload": row.payload,
                            "hw_mean_us": row.hw_mean_us,
                            "hw_std_us": row.hw_std_us,
                            "sw_mean_us": row.sw_mean_us,
                            "sw_std_us": row.sw_std_us,
                            "total_mean_us": row.total_mean_us,
                        }
                        for row in breakdown_rows(sweep)
                    ],
                }
            )
        else:
            print(text)
    elif args.artifact == "table1":
        comparison, text = table1(**kwargs)
        if args.json:
            _emit_json(
                {
                    "artifact": "table1",
                    "seed": args.seed,
                    "packets": packets,
                    "rows": comparison.table1_rows(),
                }
            )
        else:
            print(text)
    elif args.artifact == "claims":
        comparison = run_comparison(**kwargs)
        print(render_claims(verify_paper_claims(comparison)))
    elif args.artifact == "all":
        comparison, text = table1(**kwargs)
        print(text)
        print()
        from repro.core.results import render_breakdown

        print(render_breakdown(comparison.virtio, "Figure 4: VirtIO breakdown"))
        print()
        print(render_breakdown(comparison.xdma, "Figure 5: XDMA breakdown"))
        print()
        print(render_claims(verify_paper_claims(comparison)))
    print(
        f"\n[{args.artifact}: {packets} packets/size x {len(payloads)} sizes, "
        f"seed {args.seed}, {time.time() - started:.1f}s]",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
