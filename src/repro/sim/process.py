"""Generator-based simulation processes.

A process is a Python generator driven by the kernel.  At each step it
yields a *wait target* and is resumed with that target's value:

``yield <int>``
    Sleep for that many picoseconds (resumed with ``None``).
``yield <Event>``
    Wait for the event (resumed with ``event.value``).
``yield <Process>``
    Join another process (resumed with its return value).

Processes terminate by returning (``return value`` inside the generator
sets the process result) or by raising.  Unhandled exceptions are
re-raised out of :meth:`repro.sim.kernel.Simulator.run` with the process
name attached, so model bugs fail loudly instead of silently deadlocking.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

#: The generator type a process body must have.
ProcessGenerator = Generator[Any, Any, Any]

#: Shared args tuple for timer resumptions (``_step(None)``), so the hot
#: sleep path does not allocate a fresh one-element tuple per event.
_RESUME_NONE = (None,)


class ProcessError(RuntimeError):
    """Wraps an exception escaping a process body with process context."""

    def __init__(self, process_name: str, original: BaseException) -> None:
        super().__init__(f"process {process_name!r} failed: {original!r}")
        self.process_name = process_name
        self.original = original


class Process(Event):
    """A running simulation process.

    A ``Process`` *is an* :class:`Event` that triggers with the process
    return value when the body finishes -- this is what makes
    ``yield other_process`` (join) work with no extra machinery.
    """

    __slots__ = ("sim", "body", "_started", "_send", "_step_cb")

    def __init__(self, sim: "Simulator", body: ProcessGenerator, name: str = "") -> None:
        super().__init__(name=name or getattr(body, "__name__", "process"))
        self.sim = sim
        self.body = body
        self._started = False
        # Pre-bound hot-path callables: ``body.send`` runs once per yield
        # and a fresh bound method would otherwise be allocated for every
        # sleep the process schedules.
        self._send = body.send
        self._step_cb = self._step

    @property
    def alive(self) -> bool:
        """True while the body has not finished."""
        return not self.triggered

    @property
    def result(self) -> Any:
        """The process return value (``None`` until finished)."""
        return self.value

    # -- kernel interface -------------------------------------------------

    def _start(self) -> None:
        """First resumption; called by the kernel at spawn time."""
        if self._started:
            raise RuntimeError(f"process {self.name!r} started twice")
        self._started = True
        self._step(None)

    def _step(self, send_value: Any) -> None:
        """Advance the body by one yield and arm the next wait target.

        The arming logic is inlined (not a helper) because ``_step``
        runs once per yield of every process in the simulation.
        """
        try:
            target = self._send(send_value)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        except Exception as exc:
            self.sim._process_failed(ProcessError(self.name, exc))
            return
        if isinstance(target, int):
            if target >= 0:
                # Inlined ``sim.schedule(target, self._step, None)``:
                # sleeping for a sampled duration is the single most
                # frequent wait in the repository, worth skipping the
                # schedule call and the bound-method allocation for.
                sim = self.sim
                sim._seq = seq = sim._seq + 1
                sim._push((sim._now + target, seq, self._step_cb, _RESUME_NONE))
                return
            self.sim._process_failed(
                ProcessError(self.name, ValueError(f"negative delay {target}"))
            )
        elif isinstance(target, Event):
            target.on_trigger(self._resume_from_event)
        else:
            self.sim._process_failed(
                ProcessError(
                    self.name,
                    TypeError(
                        f"process yielded {target!r}; expected int delay, Event, or Process"
                    ),
                )
            )

    def _resume_from_event(self, event: Event) -> None:
        # Resume in the same delta-cycle the event fired; the kernel's
        # callback queue already provides deterministic ordering.
        self._step(event.value)

    def __repr__(self) -> str:
        state = "done" if self.triggered else ("running" if self._started else "new")
        return f"<Process {self.name!r} {state}>"


def process_name(body: ProcessGenerator, fallback: str = "process") -> str:
    """Best-effort readable name for a generator body."""
    name = getattr(body, "__name__", "")
    if name and name != "<genexpr>":
        return name
    return fallback
