"""Events: the synchronization primitive of the simulation kernel.

An :class:`Event` starts *pending* and is *triggered* exactly once with an
optional value.  Processes wait on events by yielding them; callbacks can
also be attached directly.  Composite events (:class:`AnyOf`,
:class:`AllOf`) build barrier / select semantics on top.

Events deliberately do not reference the simulator; triggering is a pure
state change plus callback fan-out, which keeps them usable both from
process context and from component callbacks.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional


class EventError(RuntimeError):
    """Raised on event protocol violations (double trigger, etc.)."""


class Event:
    """A one-shot level-triggered event carrying an optional value.

    Attributes
    ----------
    name:
        Optional diagnostic label (appears in traces and reprs).
    """

    __slots__ = ("name", "_value", "_triggered", "_callbacks")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._value: Any = None
        self._triggered = False
        # Lazily allocated: most events acquire exactly one waiter (or
        # none), so the callback list is only built on demand.
        self._callbacks: Optional[List[Callable[["Event"], None]]] = None

    @property
    def triggered(self) -> bool:
        """Whether the event has fired."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value the event was triggered with (``None`` if pending)."""
        return self._value

    def trigger(self, value: Any = None) -> "Event":
        """Fire the event, delivering *value* to all waiters.

        Raises
        ------
        EventError
            If the event has already been triggered.
        """
        if self._triggered:
            raise EventError(f"event {self!r} triggered twice")
        self._triggered = True
        self._value = value
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            for cb in callbacks:
                cb(self)
        return self

    def on_trigger(self, callback: Callable[["Event"], None]) -> None:
        """Register *callback*; runs immediately if already triggered."""
        if self._triggered:
            callback(self)
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Unregister a previously added callback (no-op if absent)."""
        if self._callbacks is None:
            return
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:
        state = "triggered" if self._triggered else "pending"
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event scheduled to fire after a fixed delay.

    Instances are created by :meth:`repro.sim.kernel.Simulator.timeout`;
    the class exists so traces can distinguish timer wakeups from
    synchronization events.
    """

    __slots__ = ("delay",)

    def __init__(self, delay: int, name: str = "") -> None:
        super().__init__(name=name)
        self.delay = delay


class AnyOf(Event):
    """Fires when *any* child event fires; value is ``(index, child_value)``.

    Later child triggers are ignored (the composite is one-shot).  If a
    child is already triggered at construction time, the composite fires
    immediately with that child.
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event], name: str = "") -> None:
        super().__init__(name=name)
        self.events: List[Event] = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")
        for i, ev in enumerate(self.events):
            ev.on_trigger(self._make_child_callback(i))

    def _make_child_callback(self, index: int) -> Callable[[Event], None]:
        def _cb(child: Event) -> None:
            if not self.triggered:
                self.trigger((index, child.value))

        return _cb


class AllOf(Event):
    """Fires when *all* child events have fired; value is the list of
    child values in construction order."""

    __slots__ = ("events", "_remaining")

    def __init__(self, events: Iterable[Event], name: str = "") -> None:
        super().__init__(name=name)
        self.events: List[Event] = list(events)
        if not self.events:
            raise ValueError("AllOf requires at least one event")
        self._remaining = len(self.events)
        for ev in self.events:
            ev.on_trigger(self._child_done)

    def _child_done(self, _child: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0:
            self.trigger([ev.value for ev in self.events])


def ensure_event(obj: Optional[Event], name: str = "") -> Event:
    """Return *obj* if it is an event, else a fresh pending event."""
    return obj if isinstance(obj, Event) else Event(name=name)
