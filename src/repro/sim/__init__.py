"""Discrete-event simulation kernel.

Public surface:

* :class:`Simulator` -- the event loop (integer-picosecond time).
* :class:`Event`, :class:`Timeout`, :class:`AnyOf`, :class:`AllOf` --
  synchronization primitives.
* :class:`Process` -- generator-based coroutine processes.
* :class:`Channel`, :class:`Resource`, :class:`Mutex` -- blocking queues
  and semaphores with deterministic FIFO wake-up.
* :class:`Component` -- named hierarchy base class for model blocks.
* :class:`LatencyModel` -- nominal + lognormal body + Pareto tail latency
  distributions.
* :mod:`repro.sim.time` helpers (``ns``, ``us``, ``Frequency`` ...).
"""

from repro.sim.component import Component
from repro.sim.event import AllOf, AnyOf, Event, EventError, Timeout
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.process import Process, ProcessError
from repro.sim.random import LatencyModel, fixed, jittered, quantize
from repro.sim.resource import Channel, ChannelClosed, Mutex, Resource
from repro.sim.time import (
    FPGA_FABRIC_CLOCK,
    HOST_TIMER_RESOLUTION,
    HW_COUNTER_RESOLUTION,
    Frequency,
    SimTime,
    ms,
    ns,
    ps,
    seconds,
    to_ms,
    to_ns,
    to_seconds,
    to_us,
    us,
)
from repro.sim.trace import NULL_TRACER, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "ChannelClosed",
    "Component",
    "Event",
    "EventError",
    "FPGA_FABRIC_CLOCK",
    "Frequency",
    "HOST_TIMER_RESOLUTION",
    "HW_COUNTER_RESOLUTION",
    "LatencyModel",
    "Mutex",
    "NULL_TRACER",
    "Process",
    "ProcessError",
    "Resource",
    "SimTime",
    "SimulationError",
    "Simulator",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "fixed",
    "jittered",
    "ms",
    "ns",
    "ps",
    "quantize",
    "seconds",
    "to_ms",
    "to_ns",
    "to_seconds",
    "to_us",
    "us",
]
