"""Blocking synchronization resources built on events.

These model hardware queues and shared units:

:class:`Channel`
    A FIFO of items with optional capacity; ``put``/``get`` return events
    a process yields on.  Used for AXI-stream-like handoff between FSMs.
:class:`Resource`
    Counting semaphore; models units with limited concurrency (a DMA
    engine channel, the PCIe link arbiter).
:class:`Mutex`
    A ``Resource`` with one slot.

All wake-ups are FIFO-ordered, which keeps simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Generator, Optional

from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class ChannelClosed(RuntimeError):
    """Raised when putting to or draining a closed channel."""


class Channel:
    """FIFO channel between processes.

    Parameters
    ----------
    sim:
        Owning simulator (wake-ups are scheduled as zero-delay events so
        producers/consumers resume in deterministic queue order).
    capacity:
        Maximum queued items; ``None`` means unbounded.  ``put`` on a full
        channel returns an event that fires once space frees up.
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None, name: str = "") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Enqueue *item*; the returned event fires when accepted."""
        if self._closed:
            raise ChannelClosed(f"channel {self.name!r} is closed")
        done = Event(name=f"{self.name}.put")
        if self._getters:
            # Hand the item directly to the oldest waiting getter.
            getter = self._getters.popleft()
            self.sim.schedule(0, getter.trigger, item)
            self.sim.schedule(0, done.trigger, None)
        elif not self.full:
            self._items.append(item)
            self.sim.schedule(0, done.trigger, None)
        else:
            self._putters.append((done, item))
        return done

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the channel is full."""
        if self._closed:
            raise ChannelClosed(f"channel {self.name!r} is closed")
        if self._getters:
            getter = self._getters.popleft()
            self.sim.schedule(0, getter.trigger, item)
            return True
        if self.full:
            return False
        self._items.append(item)
        return True

    def get(self) -> Event:
        """Dequeue; the returned event fires with the item."""
        got = Event(name=f"{self.name}.get")
        if self._items:
            item = self._items.popleft()
            self._admit_waiting_putter()
            self.sim.schedule(0, got.trigger, item)
        elif self._closed:
            raise ChannelClosed(f"channel {self.name!r} is closed and drained")
        else:
            self._getters.append(got)
        return got

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item)``."""
        if self._items:
            item = self._items.popleft()
            self._admit_waiting_putter()
            return True, item
        return False, None

    def _admit_waiting_putter(self) -> None:
        if self._putters and not self.full:
            done, item = self._putters.popleft()
            self._items.append(item)
            self.sim.schedule(0, done.trigger, None)

    def close(self) -> None:
        """Mark the channel closed; pending getters on an empty channel
        would deadlock, so closing with waiting getters is an error."""
        if self._getters:
            raise ChannelClosed(f"closing channel {self.name!r} with {len(self._getters)} waiters")
        self._closed = True

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"<Channel {self.name!r} {len(self._items)}/{cap}>"


class Resource:
    """Counting semaphore with FIFO grant order."""

    def __init__(self, sim: "Simulator", slots: int = 1, name: str = "") -> None:
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        self.sim = sim
        self.slots = slots
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.slots - self._in_use

    def acquire(self) -> Event:
        """Request a slot; the event fires when granted."""
        granted = Event(name=f"{self.name}.acquire")
        if self._in_use < self.slots:
            self._in_use += 1
            self.sim.schedule(0, granted.trigger, None)
        else:
            self._waiters.append(granted)
        return granted

    def release(self) -> None:
        """Return a slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Slot passes directly to the next waiter; _in_use unchanged.
            waiter = self._waiters.popleft()
            self.sim.schedule(0, waiter.trigger, None)
        else:
            self._in_use -= 1

    def using(self) -> "_ResourceContext":
        """Generator-style scoped hold::

            with-like usage inside a process:
                yield from res.using().hold(duration)
        """
        return _ResourceContext(self)

    def __repr__(self) -> str:
        return f"<Resource {self.name!r} {self._in_use}/{self.slots} waiters={len(self._waiters)}>"


class _ResourceContext:
    """Helper to acquire, hold for a duration, and release a resource."""

    def __init__(self, resource: Resource) -> None:
        self.resource = resource

    def hold(self, duration: int) -> Generator[Any, Any, None]:
        yield self.resource.acquire()
        try:
            yield duration
        finally:
            self.resource.release()


class Mutex(Resource):
    """A single-slot resource."""

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        super().__init__(sim, slots=1, name=name)
