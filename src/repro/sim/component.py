"""Component base class: named model blocks in a hierarchy.

Every hardware/OS model block derives from :class:`Component`, which
provides the owning simulator, a hierarchical dotted name (used in trace
records and error messages), the shared tracer, and a convenience random
stream scoped to the component path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional

import numpy as np

from repro.sim.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process, ProcessGenerator


class Component:
    """A named block in the simulated system.

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Leaf name of this component.
    parent:
        Optional parent component; the full path is ``parent.path + '.' +
        name``.
    tracer:
        Trace sink; children inherit the parent's tracer by default.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        parent: Optional["Component"] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not name:
            raise ValueError("component name must be non-empty")
        self.sim = sim
        self.name = name
        self.parent = parent
        # Components are built top-down and never reparented, so the
        # dotted path is fixed at construction -- cache it (the recursive
        # property walk showed up at ~10% of hot-loop profiles).
        self.path = name if parent is None else f"{parent.path}.{name}"
        self.children: List[Component] = []
        if tracer is not None:
            self.tracer = tracer
        elif parent is not None:
            self.tracer = parent.tracer
        else:
            self.tracer = NULL_TRACER
        if parent is not None:
            parent.children.append(self)

    def trace(self, kind: str, **detail: Any) -> None:
        """Emit a trace record attributed to this component."""
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(self.sim.now, self.path, kind, **detail)

    def rng(self, stream: str = "") -> np.random.Generator:
        """Random stream scoped to this component (plus optional suffix)."""
        name = self.path if not stream else f"{self.path}.{stream}"
        return self.sim.rng(name)

    def spawn(self, body: "ProcessGenerator", name: str = "") -> "Process":
        """Spawn a process attributed to this component."""
        label = f"{self.path}.{name}" if name else self.path
        return self.sim.spawn(body, name=label)

    def find(self, path: str) -> "Component":
        """Find a descendant by relative dotted path."""
        node: Component = self
        for part in path.split("."):
            for child in node.children:
                if child.name == part:
                    node = child
                    break
            else:
                raise KeyError(f"no child {part!r} under {node.path!r}")
        return node

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.path!r}>"
