"""Structured event tracing.

Components emit trace records (time, source, event kind, payload) into a
:class:`Tracer`.  Traces serve three purposes:

* debugging models ("what transactions did the DMA engine actually see"),
* assertions in integration tests (e.g. "exactly one doorbell MMIO write
  per VirtIO transfer"),
* deriving measurement series without instrumenting model code twice.

Tracing is off by default; a disabled tracer drops records at a cost of
one predicate check, so hot paths can trace unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: int
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:>14d}ps] {self.source:<28s} {self.kind:<24s} {extras}"


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered."""

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self._records: List[TraceRecord] = []
        self._filters: List[Callable[[TraceRecord], bool]] = []

    def add_filter(self, predicate: Callable[[TraceRecord], bool]) -> None:
        """Only records matching every added predicate are kept."""
        self._filters.append(predicate)

    def emit(self, time: int, source: str, kind: str, **detail: Any) -> None:
        """Record an occurrence (no-op when disabled or at capacity)."""
        if not self.enabled:
            return
        if self.capacity is not None and len(self._records) >= self.capacity:
            return
        record = TraceRecord(time=time, source=source, kind=kind, detail=detail)
        if all(f(record) for f in self._filters):
            self._records.append(record)

    @property
    def records(self) -> List[TraceRecord]:
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def clear(self) -> None:
        self._records.clear()

    def query(self, source: Optional[str] = None, kind: Optional[str] = None) -> List[TraceRecord]:
        """Records matching the given source and/or kind (prefix match on
        source so hierarchical names like ``fpga.xdma.h2c`` can be scoped)."""
        out = []
        for r in self._records:
            if source is not None and not r.source.startswith(source):
                continue
            if kind is not None and r.kind != kind:
                continue
            out.append(r)
        return out

    def count(self, source: Optional[str] = None, kind: Optional[str] = None) -> int:
        """Number of matching records."""
        return len(self.query(source=source, kind=kind))

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable multi-line dump (for debugging sessions)."""
        rows = self._records if limit is None else self._records[:limit]
        return "\n".join(str(r) for r in rows)


#: Shared do-nothing tracer used as a default argument.
NULL_TRACER = Tracer(enabled=False)
