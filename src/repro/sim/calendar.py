"""Event-queue backends for the simulation kernel.

Two interchangeable schedulers with the same total order ``(time, seq)``:

``CalendarQueue``
    A bucketed calendar queue (Brown 1988): events land in a ring of
    day-wide buckets indexed by ``(time >> shift) & mask`` and a cursor
    walks forward popping bucket heads, so push and pop are O(1) in the
    common case regardless of how many events are pending.  Buckets are
    kept sorted with ``bisect.insort`` (C memmove on small lists), so a
    pop is ``bucket.pop(0)`` with no Python-level min scan.  Events
    beyond the current bucket window overflow into a small binary heap
    and are migrated into the ring as the cursor approaches them.

``HeapQueue``
    The pre-2.0 single binary heap, kept as a fallback (selected with
    ``REPRO_SIM_SCHEDULER=heap``) and as the reference implementation the
    property tests compare the calendar queue against.

Both pop events in strictly ascending ``(time, seq)`` order, so the
simulation is byte-identical under either backend.  Entries are the
kernel's raw 4-tuples ``(when, seq, callback, args)``; ``seq`` is unique,
so tuple comparison always resolves at the first two elements and never
reaches the callback.

Invariants of the calendar queue (the correctness argument lives here
because the code is deliberately branch-lean):

* every bucketed entry has day ``(when >> shift)`` in the half-open
  window ``[cursor, cursor + nbuckets)`` — so each ring slot holds at
  most one distinct day and a forward scan visits days in order;
* every far-heap entry has a day at or beyond the window at the time it
  was pushed; ``pop`` migrates far entries into the ring the moment the
  window reaches them, before selecting a head;
* the cursor only moves forward to the day of a popped entry (which is
  the global minimum, so no pending entry is ever behind the cursor);
  the one exception is a push behind the cursor — possible only after an
  ``until``-clamp advanced simulation time past a popped-and-pushed-back
  event — which triggers ``_rewind``, a full rebuild anchored at the new
  earliest day.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from typing import Callable, List, Optional, Tuple

#: An event entry as stored by the kernel: (time_ps, seq, callback, args).
Entry = Tuple[int, int, Callable[..., None], tuple]

_heappush = heapq.heappush
_heappop = heapq.heappop


class HeapQueue:
    """Single binary-heap event queue (legacy scheduler, kept as fallback)."""

    name = "heap"

    __slots__ = ("_q", "_peak")

    def __init__(self) -> None:
        self._q: List[Entry] = []
        self._peak = 0

    def __len__(self) -> int:
        return len(self._q)

    def push(self, entry: Entry) -> None:
        _heappush(self._q, entry)

    def push_many(self, entries: List[Entry]) -> None:
        q = self._q
        for entry in entries:
            _heappush(q, entry)

    def pop(self) -> Optional[Entry]:
        # Peak depth is sampled here, where the length is loaded anyway;
        # "peak" means peak pending observed at an event boundary.
        q = self._q
        n = len(q)
        if not n:
            return None
        if n > self._peak:
            self._peak = n
        return _heappop(q)

    def pushback(self, entry: Entry) -> None:
        """Return the most recently popped entry to the queue."""
        _heappush(self._q, entry)

    def stats(self) -> dict:
        return {
            "scheduler": self.name,
            "pending": len(self._q),
            "peak_depth": self._peak,
        }


class CalendarQueue:
    """Bucketed calendar queue with sorted buckets and O(1) push/pop."""

    name = "calendar"

    __slots__ = (
        "_shift",
        "_nb",
        "_mask",
        "_buckets",
        "_far",
        "_cur",
        "_count",
        "_peak",
        "_far_pushes",
        "_migrated",
        "_grows",
        "_max_nb",
    )

    def __init__(
        self,
        shift: int = 21,
        nbuckets: int = 64,
        max_nbuckets: int = 1 << 14,
    ) -> None:
        if nbuckets <= 0 or nbuckets & (nbuckets - 1):
            raise ValueError(f"nbuckets must be a power of two, got {nbuckets}")
        if max_nbuckets < nbuckets:
            raise ValueError("max_nbuckets must be >= nbuckets")
        self._shift = shift
        self._nb = nbuckets
        self._mask = nbuckets - 1
        self._buckets: List[List[Entry]] = [[] for _ in range(nbuckets)]
        self._far: List[Entry] = []
        self._cur = 0
        self._count = 0
        self._peak = 0
        self._far_pushes = 0
        self._migrated = 0
        self._grows = 0
        self._max_nb = max_nbuckets

    def __len__(self) -> int:
        return self._count

    # -- push ---------------------------------------------------------------

    # Peak depth and the grow trigger are sampled in ``pop`` (which loads
    # the count anyway) rather than maintained here: ``push`` is the most
    # frequent operation in the repository and every interpreted op counts.

    def push(self, entry: Entry) -> None:
        day = entry[0] >> self._shift
        if self._count:
            d = day - self._cur
            if 0 <= d < self._nb:
                insort(self._buckets[day & self._mask], entry)
                self._count += 1
                return
            self._push_slow(entry, day, d)
        else:
            # Queue went quiet (the common case at shallow depths):
            # restart the window at this entry's day so the next pop
            # starts here instead of scanning from a stale cursor.
            self._cur = day
            self._buckets[day & self._mask].append(entry)
            self._count = 1

    def _push_slow(self, entry: Entry, day: int, d: int) -> None:
        if d < 0:
            # Push behind the cursor: only possible after an ``until``
            # clamp advanced sim time past a popped-and-pushed-back event.
            # Rebuild the window anchored at the new earliest day.
            self._rewind(day)
            insort(self._buckets[day & self._mask], entry)
        else:
            _heappush(self._far, entry)
            self._far_pushes += 1
        self._count += 1

    def push_many(self, entries: List[Entry]) -> None:
        """Push a batch of same-time entries with one splice per bucket."""
        n = len(entries)
        if not n:
            return
        day = entries[0][0] >> self._shift
        if self._count:
            d = day - self._cur
            if 0 <= d < self._nb:
                b = self._buckets[day & self._mask]
                # All entries share (when) and carry ascending seq, so they
                # occupy one contiguous run; a single slice insert keeps the
                # bucket sorted.
                i = bisect_left(b, entries[0])
                b[i:i] = entries
                self._count += n
                return
            for entry in entries:
                self.push(entry)
        else:
            self._cur = day
            # Ascending seq at one timestamp: already sorted.
            self._buckets[day & self._mask].extend(entries)
            self._count = n

    # -- pop ----------------------------------------------------------------

    def pop(self) -> Optional[Entry]:
        count = self._count
        if not count:
            return None
        if count > self._peak:
            self._peak = count
            if count > (self._nb << 3) and self._nb < self._max_nb:
                self._grow()
        self._count = count - 1
        cur = self._cur
        far = self._far
        if far and (far[0][0] >> self._shift) - cur < self._nb:
            self._migrate(cur)
        buckets = self._buckets
        mask = self._mask
        b = buckets[cur & mask]
        if b:
            return b.pop(0)
        stop = cur + self._nb
        while True:
            cur += 1
            if cur == stop:
                # The whole window is empty; everything pending sits in
                # the far heap.  Jump the window to the far minimum.
                cur = far[0][0] >> self._shift
                self._migrate(cur)
                b = buckets[cur & mask]
                break
            b = buckets[cur & mask]
            if b:
                break
        self._cur = cur
        return b.pop(0)

    def pushback(self, entry: Entry) -> None:
        """Return the entry from the immediately preceding ``pop``.

        The popped entry was the global minimum, so its day equals the
        cursor and every other entry still satisfies the window
        invariant; it goes back as the head of the cursor's bucket.
        """
        b = self._buckets[(entry[0] >> self._shift) & self._mask]
        b.insert(0, entry)
        self._count += 1

    # -- maintenance --------------------------------------------------------

    def _migrate(self, cur: int) -> None:
        """Move far-heap entries whose day entered the window into buckets."""
        far = self._far
        shift = self._shift
        nb = self._nb
        buckets = self._buckets
        mask = self._mask
        moved = 0
        while far:
            day = far[0][0] >> shift
            if day - cur >= nb:
                break
            insort(buckets[day & mask], _heappop(far))
            moved += 1
        self._migrated += moved

    def _rebucket(self, cur: int) -> None:
        """Re-place every entry relative to window start *cur*."""
        entries = [e for b in self._buckets for e in b]
        entries.extend(self._far)
        entries.sort()
        nb = self._nb
        self._mask = mask = nb - 1
        self._buckets = buckets = [[] for _ in range(nb)]
        far: List[Entry] = []
        shift = self._shift
        for e in entries:
            d = (e[0] >> shift) - cur
            if 0 <= d < nb:
                # Appending in globally sorted order keeps buckets sorted.
                buckets[(e[0] >> shift) & mask].append(e)
            else:
                far.append(e)
        heapq.heapify(far)
        self._far = far

    def _rewind(self, day: int) -> None:
        self._cur = day
        self._rebucket(day)

    def _grow(self) -> None:
        self._nb <<= 1
        self._grows += 1
        self._rebucket(self._cur)

    # -- stats --------------------------------------------------------------

    def stats(self) -> dict:
        nonempty = sum(1 for b in self._buckets if b)
        near = self._count - len(self._far)
        return {
            "scheduler": self.name,
            "pending": self._count,
            "peak_depth": self._peak,
            "nbuckets": self._nb,
            "bucket_width_ps": 1 << self._shift,
            "nonempty_buckets": nonempty,
            "occupancy": (near / nonempty) if nonempty else 0.0,
            "far_pending": len(self._far),
            "far_pushes": self._far_pushes,
            "migrated": self._migrated,
            "grows": self._grows,
        }


def make_queue(scheduler: str):
    """Construct the event-queue backend named *scheduler*."""
    if scheduler == "calendar":
        return CalendarQueue()
    if scheduler == "heap":
        return HeapQueue()
    raise ValueError(
        f"unknown scheduler {scheduler!r}: expected 'calendar' or 'heap'"
    )
