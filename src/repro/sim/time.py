"""Simulation time base.

All simulation timestamps are **integer picoseconds**.  Integers keep the
event queue exactly ordered and reproducible (no floating-point drift when
summing many small delays), while 1 ps resolution is fine enough to express
both the host's 1 ns ``clock_gettime`` resolution and the FPGA's 8 ns
(125 MHz) performance-counter resolution without rounding.

The module provides conversion helpers and a :class:`Frequency` type used
by clocked components (e.g. the 125 MHz FPGA fabric clock).
"""

from __future__ import annotations

from dataclasses import dataclass

#: One picosecond (the base unit).
PS = 1
#: Picoseconds per nanosecond.
NS = 1_000
#: Picoseconds per microsecond.
US = 1_000_000
#: Picoseconds per millisecond.
MS = 1_000_000_000
#: Picoseconds per second.
S = 1_000_000_000_000

#: Type alias used throughout: a simulation timestamp/duration in ps.
SimTime = int


def ps(value: float) -> SimTime:
    """Duration of *value* picoseconds."""
    return round(value * PS)


def ns(value: float) -> SimTime:
    """Duration of *value* nanoseconds as integer picoseconds."""
    return round(value * NS)


def us(value: float) -> SimTime:
    """Duration of *value* microseconds as integer picoseconds."""
    return round(value * US)


def ms(value: float) -> SimTime:
    """Duration of *value* milliseconds as integer picoseconds."""
    return round(value * MS)


def seconds(value: float) -> SimTime:
    """Duration of *value* seconds as integer picoseconds."""
    return round(value * S)


def to_ns(t: SimTime) -> float:
    """Convert integer picoseconds to float nanoseconds."""
    return t / NS


def to_us(t: SimTime) -> float:
    """Convert integer picoseconds to float microseconds."""
    return t / US


def to_ms(t: SimTime) -> float:
    """Convert integer picoseconds to float milliseconds."""
    return t / MS


def to_seconds(t: SimTime) -> float:
    """Convert integer picoseconds to float seconds."""
    return t / S


@dataclass(frozen=True)
class Frequency:
    """A clock frequency with exact integer-period arithmetic.

    Parameters
    ----------
    hz:
        Frequency in hertz.  Must divide 1e12 or the period is rounded to
        the nearest picosecond (documented behaviour; all frequencies used
        by the models -- 125 MHz, 250 MHz -- divide evenly).
    """

    hz: int

    def __post_init__(self) -> None:
        if self.hz <= 0:
            raise ValueError(f"frequency must be positive, got {self.hz}")
        # Cached period: ``period_ps`` is read on every clocked operation
        # (hardware timestamps, cycle conversions), so compute the
        # division once.  ``object.__setattr__`` because the dataclass is
        # frozen; not a field, so eq/repr are unaffected.
        object.__setattr__(self, "_period", round(S / self.hz))

    @property
    def period_ps(self) -> SimTime:
        """Clock period in integer picoseconds (rounded to nearest)."""
        return self._period

    def cycles_to_time(self, cycles: int) -> SimTime:
        """Duration of *cycles* clock cycles."""
        if cycles < 0:
            raise ValueError(f"cycle count must be non-negative, got {cycles}")
        return cycles * self.period_ps

    def time_to_cycles(self, t: SimTime) -> int:
        """Whole clock cycles elapsed in duration *t* (floor division).

        This mirrors how a free-running hardware counter quantizes time:
        a duration shorter than one period reads as zero cycles.
        """
        if t < 0:
            raise ValueError(f"duration must be non-negative, got {t}")
        return t // self.period_ps

    @classmethod
    def mhz(cls, value: float) -> "Frequency":
        """Construct from megahertz."""
        return cls(round(value * 1_000_000))

    @classmethod
    def ghz(cls, value: float) -> "Frequency":
        """Construct from gigahertz."""
        return cls(round(value * 1_000_000_000))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.hz % 1_000_000_000 == 0:
            return f"{self.hz // 1_000_000_000} GHz"
        if self.hz % 1_000_000 == 0:
            return f"{self.hz // 1_000_000} MHz"
        return f"{self.hz} Hz"


#: The FPGA fabric clock used by all designs in the paper (Section III-B):
#: "The FPGA designs used for testing are running at 125MHz."
FPGA_FABRIC_CLOCK = Frequency.mhz(125)

#: Resolution of the FPGA hardware performance counters (8 ns at 125 MHz).
HW_COUNTER_RESOLUTION = FPGA_FABRIC_CLOCK.period_ps

#: Resolution of the host's CLOCK_MONOTONIC timer (Section III-B: 1 ns).
HOST_TIMER_RESOLUTION = NS
