"""Latency distributions used by the OS and hardware noise models.

The paper's latency data has the canonical systems shape: a tight body
(most operations take close to their nominal cost), a moderate spread from
cache/TLB/frequency effects, and a heavy upper tail from scheduler
preemption and interrupt interference.  We model that as a mixture:

* body: lognormal around the nominal cost (multiplicative noise),
* tail: with small probability, a Pareto-distributed excursion (models a
  preemption or SMI-like event that stalls the software path).

All sampling goes through named :class:`LatencyModel` objects bound to a
seeded stream, so experiments are reproducible and individual sources of
noise can be switched off for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.sim.time import SimTime


@dataclass(frozen=True)
class LatencyModel:
    """A randomized latency: nominal cost plus body jitter plus rare tail.

    Parameters
    ----------
    nominal_ps:
        Deterministic base latency in picoseconds.
    jitter_sigma:
        Sigma of the lognormal multiplicative body jitter.  0 disables
        body jitter (the draw is exactly ``nominal_ps`` unless the tail
        fires).
    tail_prob:
        Probability that a draw takes a heavy-tail excursion.
    tail_scale_ps:
        Scale (minimum magnitude) of the Pareto excursion, added on top
        of the body draw.
    tail_alpha:
        Pareto shape; smaller = heavier tail.  Must be > 0.
    """

    nominal_ps: SimTime
    jitter_sigma: float = 0.0
    tail_prob: float = 0.0
    tail_scale_ps: SimTime = 0
    tail_alpha: float = 2.0

    def __post_init__(self) -> None:
        if self.nominal_ps < 0:
            raise ValueError(f"nominal_ps must be >= 0, got {self.nominal_ps}")
        if self.jitter_sigma < 0:
            raise ValueError(f"jitter_sigma must be >= 0, got {self.jitter_sigma}")
        if not 0.0 <= self.tail_prob <= 1.0:
            raise ValueError(f"tail_prob must be in [0,1], got {self.tail_prob}")
        if self.tail_alpha <= 0:
            raise ValueError(f"tail_alpha must be > 0, got {self.tail_alpha}")
        if self.tail_scale_ps < 0:
            raise ValueError(f"tail_scale_ps must be >= 0, got {self.tail_scale_ps}")

    def sample(self, rng: np.random.Generator) -> SimTime:
        """Draw one latency in integer picoseconds (never below zero)."""
        value = float(self.nominal_ps)
        if self.jitter_sigma > 0.0:
            # Lognormal with median == nominal: exp(N(0, sigma)) multiplier.
            value *= float(np.exp(rng.normal(0.0, self.jitter_sigma)))
        if self.tail_prob > 0.0 and rng.random() < self.tail_prob:
            # Pareto excursion: tail_scale * (1/U)^(1/alpha) >= tail_scale.
            u = rng.random()
            # Guard against u == 0 (probability ~2^-53 but be safe).
            u = max(u, 1e-12)
            value += float(self.tail_scale_ps) * u ** (-1.0 / self.tail_alpha)
        return max(0, round(value))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vectorized draw of *n* latencies (int64 picoseconds)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        values = np.full(n, float(self.nominal_ps))
        if self.jitter_sigma > 0.0:
            values *= np.exp(rng.normal(0.0, self.jitter_sigma, size=n))
        if self.tail_prob > 0.0:
            hits = rng.random(n) < self.tail_prob
            k = int(hits.sum())
            if k:
                u = np.maximum(rng.random(k), 1e-12)
                values[hits] += float(self.tail_scale_ps) * u ** (-1.0 / self.tail_alpha)
        return np.maximum(0, np.rint(values)).astype(np.int64)

    def scaled(self, factor: float) -> "LatencyModel":
        """A copy with nominal and tail scale multiplied by *factor*."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return LatencyModel(
            nominal_ps=round(self.nominal_ps * factor),
            jitter_sigma=self.jitter_sigma,
            tail_prob=self.tail_prob,
            tail_scale_ps=round(self.tail_scale_ps * factor),
            tail_alpha=self.tail_alpha,
        )

    def without_noise(self) -> "LatencyModel":
        """A deterministic copy (nominal only) for noise ablations."""
        return LatencyModel(nominal_ps=self.nominal_ps)

    @property
    def deterministic(self) -> bool:
        """True when sampling always returns the nominal value."""
        return self.jitter_sigma == 0.0 and self.tail_prob == 0.0


def fixed(nominal_ps: SimTime) -> LatencyModel:
    """A deterministic latency of *nominal_ps*."""
    return LatencyModel(nominal_ps=nominal_ps)


def jittered(
    nominal_ps: SimTime,
    sigma: float,
    tail_prob: float = 0.0,
    tail_scale_ps: SimTime = 0,
    tail_alpha: float = 2.0,
) -> LatencyModel:
    """Convenience constructor mirroring :class:`LatencyModel` fields."""
    return LatencyModel(
        nominal_ps=nominal_ps,
        jitter_sigma=sigma,
        tail_prob=tail_prob,
        tail_scale_ps=tail_scale_ps,
        tail_alpha=tail_alpha,
    )


def quantize(t: SimTime, resolution_ps: SimTime) -> SimTime:
    """Floor-quantize a duration to a timer resolution.

    Models how a sampled counter reads: the host's CLOCK_MONOTONIC
    quantizes to 1 ns, the FPGA cycle counters to 8 ns.
    """
    if resolution_ps <= 0:
        raise ValueError(f"resolution must be positive, got {resolution_ps}")
    return (t // resolution_ps) * resolution_ps
