"""The discrete-event simulation kernel.

A minimal, deterministic event-driven kernel in the style of SimPy but
specialized for this codebase:

* integer-picosecond timestamps (see :mod:`repro.sim.time`),
* a pluggable event queue with a monotonically increasing sequence
  number as tie-breaker, so same-time events always run in schedule
  order (full determinism across runs and platforms).  The default
  backend is a bucketed calendar queue with O(1) push/pop; the legacy
  binary heap remains available via ``REPRO_SIM_SCHEDULER=heap`` (see
  :mod:`repro.sim.calendar`) and both produce byte-identical runs,
* generator-based processes (:mod:`repro.sim.process`),
* named, hierarchically seeded NumPy random streams so that adding a new
  consumer of randomness never perturbs existing streams.

The kernel is intentionally free of model knowledge; hardware and OS
models live in higher layers and interact only through ``schedule``,
``spawn``, events, and random streams.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.sim.calendar import make_queue
from repro.sim.event import Event, Timeout
from repro.sim.process import Process, ProcessError, ProcessGenerator, process_name
from repro.sim.time import SimTime


#: Sentinel bound for "no limit" in the event loop: comparing integer
#: timestamps / counters against +inf is branch-predictable and avoids a
#: per-event ``is not None`` check on the hot path.
_NO_LIMIT = float("inf")

#: Environment variable selecting the event-queue backend.
SCHEDULER_ENV = "REPRO_SIM_SCHEDULER"


class SimulationError(RuntimeError):
    """Raised for kernel-level protocol violations."""


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all random streams.  Two simulators constructed
        with the same seed and driven by the same model code produce
        bit-identical event orders and random draws.
    scheduler:
        Event-queue backend: ``"calendar"`` (default) or ``"heap"``.
        ``None`` reads ``REPRO_SIM_SCHEDULER`` from the environment.
        Both backends pop in the same ``(time, seq)`` total order, so
        the choice never changes simulation results.
    """

    def __init__(self, seed: int = 0, scheduler: Optional[str] = None) -> None:
        self._now: SimTime = 0
        if scheduler is None:
            from repro import env

            scheduler = env.scheduler()
        try:
            self._q = make_queue(scheduler)
        except ValueError as exc:
            raise SimulationError(str(exc)) from None
        # Bound once: ``schedule`` runs once per future event and the
        # attribute chain is measurable at that call rate.
        self._push = self._q.push
        self._seq = 0
        self._seed = seed
        self._seed_root = np.random.SeedSequence(seed)
        self._rngs: Dict[str, np.random.Generator] = {}
        self._pending_failure: Optional[ProcessError] = None
        self._processes_spawned = 0
        self._events_executed = 0

    # -- time --------------------------------------------------------------

    @property
    def now(self) -> SimTime:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def seed(self) -> int:
        """The root seed the simulator was constructed with."""
        return self._seed

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: SimTime, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after *delay* picoseconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq = seq = self._seq + 1
        self._push((self._now + delay, seq, callback, args))

    def schedule_many(
        self,
        delay: SimTime,
        callback: Callable[..., None],
        argtuples: Iterable[tuple],
    ) -> None:
        """Batch-schedule ``callback(*args)`` for each tuple in *argtuples*.

        All callbacks fire at the same time, in *argtuples* order —
        exactly equivalent to a loop of :meth:`schedule` calls, but with
        one queue operation for the whole batch.  Chatty posters (PCIe
        completion splitters, descriptor bursts) use this to amortize
        per-event scheduling overhead.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        when = self._now + delay
        seq = self._seq
        entries = []
        append = entries.append
        for args in argtuples:
            seq += 1
            append((when, seq, callback, args))
        self._seq = seq
        self._q.push_many(entries)

    def schedule_at(self, when: SimTime, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute time *when*."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past: requested t={when}ps, now t={self._now}ps"
            )
        self.schedule(when - self._now, callback, *args)

    def timeout(self, delay: SimTime, value: Any = None, name: str = "") -> Timeout:
        """An event that fires after *delay* picoseconds with *value*."""
        ev = Timeout(delay, name=name)
        self.schedule(delay, ev.trigger, value)
        return ev

    def event(self, name: str = "") -> Event:
        """A fresh pending event."""
        return Event(name=name)

    # -- processes -----------------------------------------------------------

    def spawn(self, body: ProcessGenerator, name: str = "") -> Process:
        """Start a new process running *body* at the current time.

        The first step of the body runs when the event loop reaches the
        current timestamp, not synchronously inside ``spawn`` -- this
        matches hardware semantics where a newly started FSM acts on the
        next delta cycle.
        """
        proc = Process(self, body, name=name or process_name(body))
        self._processes_spawned += 1
        self.schedule(0, proc._start)
        return proc

    def _process_failed(self, error: ProcessError) -> None:
        """Record a process failure; the run loops re-raise it promptly."""
        if self._pending_failure is None:
            self._pending_failure = error

    def _raise_pending_failure(self) -> None:
        failure, self._pending_failure = self._pending_failure, None
        raise failure

    # -- event loop ------------------------------------------------------------

    def run(self, until: Optional[SimTime] = None, max_events: Optional[int] = None) -> SimTime:
        """Execute events until the queue drains or *until* is reached.

        Parameters
        ----------
        until:
            Absolute stop time (inclusive of events at exactly *until*).
        max_events:
            Safety valve for runaway models; raises as soon as a
            further callback would exceed the budget, so exactly
            *max_events* callbacks have run when it fires.

        Returns
        -------
        The simulation time when the loop stopped.

        A process failure recorded before the call raises immediately;
        one recorded by an executed event raises right after that event,
        before any further event runs.  ``run_until_triggered`` surfaces
        failures at the same points.
        """
        # The loop body is the hottest code in the repository (one
        # iteration per simulated event); bind the queue operations and
        # the stop bound to locals so each iteration avoids repeated
        # attribute and global lookups.
        executed = 0
        pop = self._q.pop
        pushback = self._q.pushback
        stop = _NO_LIMIT if until is None else until
        budget = _NO_LIMIT if max_events is None else max_events
        if self._pending_failure is not None:
            self._raise_pending_failure()
        try:
            while True:
                entry = pop()
                if entry is None:
                    break
                when = entry[0]
                if when > stop:
                    pushback(entry)
                    self._now = until
                    break
                if executed >= budget:
                    pushback(entry)
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={self._now}ps"
                    )
                self._now = when
                entry[2](*entry[3])
                executed += 1
                if self._pending_failure is not None:
                    self._raise_pending_failure()
        finally:
            self._events_executed += executed
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_triggered(self, event: Event, limit: Optional[SimTime] = None) -> Any:
        """Run until *event* fires; return its value.

        Raises
        ------
        SimulationError
            If the queue drains (or *limit* passes) with the event still
            pending -- a deadlock in the model.

        Process failures surface at the same points as in :meth:`run`:
        a pre-recorded failure raises before any event executes, and a
        failure recorded by an executed event raises right after it.
        """
        pop = self._q.pop
        pushback = self._q.pushback
        stop = _NO_LIMIT if limit is None else limit
        executed = 0
        if self._pending_failure is not None:
            self._raise_pending_failure()
        try:
            while not event._triggered:
                entry = pop()
                if entry is None:
                    raise SimulationError(
                        f"deadlock: queue empty while waiting for {event!r}"
                    )
                when = entry[0]
                if when > stop:
                    pushback(entry)
                    raise SimulationError(f"timeout at {limit}ps waiting for {event!r}")
                self._now = when
                entry[2](*entry[3])
                executed += 1
                if self._pending_failure is not None:
                    self._raise_pending_failure()
        finally:
            self._events_executed += executed
        return event.value

    @property
    def pending_events(self) -> int:
        """Number of events currently queued."""
        return len(self._q)

    @property
    def events_executed(self) -> int:
        """Total events executed since construction (diagnostics)."""
        return self._events_executed

    @property
    def scheduler_stats(self) -> dict:
        """Backend queue statistics plus kernel-level schedule/pop counts."""
        stats = self._q.stats()
        stats["schedules"] = self._seq
        stats["executed"] = self._events_executed
        return stats

    # -- randomness ---------------------------------------------------------------

    def rng(self, stream: str) -> np.random.Generator:
        """Named random stream, derived deterministically from the root seed.

        Each distinct *stream* name gets an independent generator seeded
        from ``(root_seed, stream_name)``, so the draw sequence of one
        stream is unaffected by how often other streams are used.
        """
        gen = self._rngs.get(stream)
        if gen is None:
            # Derive a child seed from the stream name so allocation order
            # does not matter: hash the name into spawn-key material.
            name_key = [b for b in stream.encode("utf-8")]
            child = np.random.SeedSequence(
                entropy=self._seed_root.entropy, spawn_key=tuple(name_key)
            )
            gen = np.random.default_rng(child)
            self._rngs[stream] = gen
        return gen

    def __repr__(self) -> str:
        return (
            f"<Simulator t={self._now}ps queued={len(self._q)} "
            f"executed={self._events_executed} seed={self._seed}>"
        )
