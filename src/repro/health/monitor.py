"""Exactly-once conservation accounting for one workload run.

:class:`ConservationMonitor` is a per-run ledger the generators drive
alongside their :class:`~repro.workload.metrics.RunRecorder`: every
offered packet must end in **exactly one** terminal state --

* ``delivered``  -- its completion was observed,
* ``dropped``    -- it was refused or lost *with a recorded reason*
  (admission reject, rate limit, full queue, retries exhausted, ...).

Anything else is a conservation violation: a packet delivered twice
(duplication), a completion for a packet never admitted (ghost), or a
packet still unaccounted at the end of the run whose loss no hop
claimed (silent loss).  :meth:`ConservationMonitor.finalize` performs
the end-of-run reconciliation -- leftover in-flight packets are matched
against hop-level drop counters harvested from the stack (e.g. the
socket receive backlog dropping an echo leaves the original packet
in flight; the socket's counter explains it) -- and freezes the ledger
into a :class:`HealthReport`.

The monitor is pure bookkeeping: no simulator events, no RNG draws, no
yields.  Attaching one to a run cannot change a single timestamp,
which is what lets zero-overload monitored rows stay bit-identical to
plain runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Terminal states in the per-packet ledger.
_ADMITTED = "admitted"
_DELIVERED = "delivered"
_DROPPED = "dropped"


@dataclass
class HealthReport:
    """Frozen conservation verdict for one run."""

    driver: str
    mode: str
    offered: int
    admitted: int
    delivered: int
    dropped: int
    #: reason -> packets dropped for that reason (admission rejects,
    #: rate limiting, full queues, exhausted retries, hop losses).
    drop_reasons: Dict[str, int] = field(default_factory=dict)
    #: hop name -> items that hop refused (stack-side counters, for
    #: cross-checking the per-packet ledger).
    hop_drops: Dict[str, int] = field(default_factory=dict)
    #: conservation violations, empty when the run is healthy.
    violations: List[str] = field(default_factory=list)
    #: lane name -> per-lane ledger counters (queue pair, VF, tenant);
    #: empty when the run did not tag packets with lanes.
    lanes: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def conserved(self) -> bool:
        return not self.violations

    @property
    def verdict(self) -> str:
        return "PASS" if self.conserved else "FAIL"

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "driver": self.driver,
            "mode": self.mode,
            "offered": self.offered,
            "admitted": self.admitted,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "drop_reasons": dict(sorted(self.drop_reasons.items())),
            "hop_drops": dict(sorted(self.hop_drops.items())),
            "violations": list(self.violations),
            "verdict": self.verdict,
        }
        if self.lanes:
            # Key order is stable and the key is absent entirely for
            # un-laned runs, so pre-lane artifact JSON is unchanged.
            out["lanes"] = {
                lane: dict(sorted(counters.items()))
                for lane, counters in sorted(self.lanes.items())
            }
        return out

    def render(self) -> str:
        reasons = ", ".join(
            f"{reason}={count}" for reason, count in sorted(self.drop_reasons.items())
        ) or "none"
        return (
            f"health[{self.driver}/{self.mode}]: {self.verdict} -- "
            f"offered {self.offered} = delivered {self.delivered} "
            f"+ dropped {self.dropped} (reasons: {reasons})"
            + ("" if self.conserved else f"; VIOLATIONS: {'; '.join(self.violations)}")
        )


class ConservationMonitor:
    """Mutable per-run ledger; freeze with :meth:`finalize`."""

    def __init__(self, driver: str = "", mode: str = "") -> None:
        self.driver = driver
        self.mode = mode
        self._state: Dict[int, str] = {}
        self._lane_of: Dict[int, str] = {}
        self.offered = 0
        self.admitted = 0
        self.delivered = 0
        self.dropped = 0
        self.drop_reasons: Dict[str, int] = {}
        self.hop_drops: Dict[str, int] = {}
        self.violations: List[str] = []
        self.lanes: Dict[str, Dict[str, int]] = {}

    # -- ledger transitions -------------------------------------------------

    def admit(self, seq: int, lane: Optional[str] = None) -> None:
        """Packet *seq* passed admission and entered the system.

        *lane* tags the packet with a sub-ledger dimension (queue pair,
        virtual function, tenant); later transitions are attributed to
        the same lane automatically."""
        if seq in self._state:
            self._violate(f"packet {seq} admitted twice")
            return
        self._state[seq] = _ADMITTED
        self.offered += 1
        self.admitted += 1
        if lane is not None:
            self._lane_of[seq] = lane
            counters = self._lane(lane)
            counters["offered"] += 1
            counters["admitted"] += 1

    def deliver(self, seq: int) -> None:
        """Packet *seq*'s completion was observed."""
        state = self._state.get(seq)
        if state is None:
            self._violate(f"ghost completion for packet {seq} (never admitted)")
            return
        if state != _ADMITTED:
            self._violate(f"packet {seq} completed twice (duplication)")
            return
        self._state[seq] = _DELIVERED
        self.delivered += 1
        lane = self._lane_of.get(seq)
        if lane is not None:
            self._lane(lane)["delivered"] += 1

    def drop(self, seq: int, reason: str, lane: Optional[str] = None) -> None:
        """Packet *seq* terminally dropped for *reason*.

        Valid both for packets refused before admission (the seq was
        never admitted: it is offered-and-dropped in one step) and for
        admitted packets whose loss a layer detected (exhausted
        retries, failed request)."""
        state = self._state.get(seq)
        if state in (_DELIVERED, _DROPPED):
            self._violate(f"packet {seq} dropped after already {state}")
            return
        if lane is None:
            lane = self._lane_of.get(seq)
        if state is None:
            self.offered += 1
            if lane is not None and seq not in self._lane_of:
                self._lane_of[seq] = lane
                self._lane(lane)["offered"] += 1
        self._state[seq] = _DROPPED
        self.dropped += 1
        self._count_reason(reason)
        if lane is not None:
            self._lane(lane)["dropped"] += 1

    # -- hop-side evidence --------------------------------------------------

    def note_hop_drops(self, hop: str, count: int) -> None:
        """Record that stack hop *hop* refused *count* items in total
        (harvested from its counters at end of run)."""
        if count:
            self.hop_drops[hop] = self.hop_drops.get(hop, 0) + count

    # -- finalization -------------------------------------------------------

    def finalize(self) -> HealthReport:
        """Reconcile and freeze.

        Packets still in flight at the end of the run are only legal if
        hop-level drop counters account for them (an echo tail-dropped
        at the socket backlog leaves its packet in flight; the hop
        counter is the recorded reason).  Leftovers beyond the hops'
        total are silent losses -- a violation.
        """
        leftovers = sorted(
            seq for seq, state in self._state.items() if state == _ADMITTED
        )
        unattributed = sum(self.hop_drops.values()) - sum(
            count
            for reason, count in self.drop_reasons.items()
            if reason.startswith("hop:")
        )
        for seq in leftovers:
            if unattributed > 0:
                unattributed -= 1
                self._state[seq] = _DROPPED
                self.dropped += 1
                self._count_reason("hop:in_flight_lost")
                lane = self._lane_of.get(seq)
                if lane is not None:
                    self._lane(lane)["dropped"] += 1
            else:
                self._violate(f"packet {seq} lost without a recorded reason")
        if self.offered != self.delivered + self.dropped + sum(
            1 for state in self._state.values() if state == _ADMITTED
        ):
            self._violate(
                f"ledger identity broken: offered {self.offered} != "
                f"delivered {self.delivered} + dropped {self.dropped}"
            )
        return HealthReport(
            driver=self.driver,
            mode=self.mode,
            offered=self.offered,
            admitted=self.admitted,
            delivered=self.delivered,
            dropped=self.dropped,
            drop_reasons=dict(self.drop_reasons),
            hop_drops=dict(self.hop_drops),
            violations=list(self.violations),
            lanes={lane: dict(c) for lane, c in self.lanes.items()},
        )

    # -- internals ----------------------------------------------------------

    def _lane(self, lane: str) -> Dict[str, int]:
        counters = self.lanes.get(lane)
        if counters is None:
            counters = {"offered": 0, "admitted": 0, "delivered": 0, "dropped": 0}
            self.lanes[lane] = counters
        return counters

    def _count_reason(self, reason: str) -> None:
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1

    def _violate(self, message: str) -> None:
        self.violations.append(message)
