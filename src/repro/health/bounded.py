"""Bounded queues with explicit full-queue policies.

Every queueing hop in the stack -- socket receive backlog, the
open-loop generators' software job queue, the virtqueue avail ring,
the XDMA driver's pending-request window -- either used an implicit
bound with silent drops or no bound at all.  This module gives them a
single primitive with a *named* policy and *counted* drop reasons, so
overload behaviour is a configuration decision, not an accident of
which layer fills up first.

Three policies, the classic trio:

* ``drop``   -- tail-drop the newest item and count it under a reason
  (the qdisc / SO_RCVBUF behaviour; the only legal policy in softirq
  context, where nothing may block);
* ``block``  -- the producer waits for room, optionally bounded by a
  timeout (the blocking-syscall behaviour);
* ``reject`` -- refuse immediately with :class:`QueueFullError` so the
  caller can apply its own retry/backoff discipline (the ``EAGAIN``
  behaviour).

:func:`apply_overload_bounds` installs an
:class:`~repro.workload.admission.OverloadConfig`'s per-hop bounds onto
a booted testbed: socket receive limits, the virtio transmit ring's
depth limit, and the XDMA driver's pending window.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

#: Tail-drop the newest item, counting the drop under its reason.
POLICY_DROP = "drop"
#: Producer blocks until there is room (optionally with a timeout).
POLICY_BLOCK = "block"
#: Refuse immediately with :class:`QueueFullError`.
POLICY_REJECT = "reject"

POLICIES = (POLICY_DROP, POLICY_BLOCK, POLICY_REJECT)


class QueueFullError(RuntimeError):
    """A bounded queue refused an item under the ``reject`` policy."""

    def __init__(self, name: str, reason: str) -> None:
        super().__init__(f"queue {name!r} full ({reason})")
        self.queue_name = name
        self.reason = reason


class BoundedQueue:
    """A FIFO with a capacity, a policy, and per-reason drop counters.

    The queue itself never blocks -- blocking needs simulator events,
    which belong to the process that owns the queue.  ``try_push``
    returns ``False`` (drop policy, counted) or raises
    (:class:`QueueFullError`, reject policy) when full; callers running
    the block policy test :meth:`has_room` and wait on their own event
    before pushing.
    """

    def __init__(
        self,
        capacity: Optional[int],
        name: str = "queue",
        policy: str = POLICY_DROP,
        drop_reason: str = "overflow",
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r} (expected one of {POLICIES})")
        self.capacity = capacity
        self.name = name
        self.policy = policy
        self.drop_reason = drop_reason
        self._items: Deque[Any] = deque()
        #: reason -> count of items refused at this hop.
        self.drops: Dict[str, int] = {}

    # -- state -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def has_room(self) -> bool:
        return self.capacity is None or len(self._items) < self.capacity

    @property
    def dropped_total(self) -> int:
        return sum(self.drops.values())

    # -- operations --------------------------------------------------------

    def count_drop(self, reason: Optional[str] = None, n: int = 1) -> None:
        """Count *n* refusals under *reason* (callers that drop outside
        the queue -- e.g. before even building the item -- still get
        their loss on this hop's ledger)."""
        key = reason or self.drop_reason
        self.drops[key] = self.drops.get(key, 0) + n

    def try_push(self, item: Any, reason: Optional[str] = None) -> bool:
        """Append *item* if there is room.  When full: count and return
        ``False`` (drop policy) or raise (reject policy).  The block
        policy also returns ``False`` -- the caller owns the waiting."""
        if self.has_room():
            self._items.append(item)
            return True
        if self.policy == POLICY_REJECT:
            self.count_drop(reason)
            raise QueueFullError(self.name, reason or self.drop_reason)
        if self.policy == POLICY_DROP:
            self.count_drop(reason)
        return False

    def popleft(self) -> Any:
        return self._items.popleft()

    def clear(self) -> None:
        self._items.clear()

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return (
            f"<BoundedQueue {self.name} {len(self._items)}/{cap} "
            f"policy={self.policy} dropped={self.dropped_total}>"
        )


def apply_overload_bounds(testbed, config) -> None:
    """Install *config*'s per-hop bounds onto a booted testbed.

    * VirtIO: the measurement socket(s) get the receive-backlog bound;
      the transmit virtqueue gets an avail-ring depth limit (the driver
      refuses to expose more than ``tx_depth_limit`` chains at once);
      the netdev gets a ``can_xmit`` gate so a full ring is a counted
      qdisc drop instead of a ring exception.
    * XDMA: the driver gets a bounded pending-request window
      (``reject``-to-caller, the ``EAGAIN`` analogue).

    A ``None`` bound leaves that hop exactly as it was -- applying an
    all-``None`` config is a no-op, which is what keeps zero-overload
    runs bit-identical to plain ones.
    """
    from repro.core.testbed import VirtioTestbed, XdmaTestbed

    if isinstance(testbed, VirtioTestbed):
        if config.socket_rx_limit is not None:
            testbed.socket.rx_queue_limit = config.socket_rx_limit
        driver = testbed.driver
        if config.tx_depth_limit is not None:
            from repro.drivers.virtio_net import TRANSMITQ

            driver.transport.queue(TRANSMITQ).depth_limit = config.tx_depth_limit
        if driver.netdev is not None and driver.netdev.can_xmit is None:
            driver.netdev.can_xmit = driver.tx_has_room
    elif isinstance(testbed, XdmaTestbed):
        if config.xdma_max_pending is not None:
            testbed.driver.max_pending = config.xdma_max_pending
    else:
        raise TypeError(f"unknown testbed type {type(testbed).__name__}")
