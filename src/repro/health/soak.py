"""E-S1 soak machinery: sustained overload with recovery, one testbed.

A soak runs three open-loop phases **back to back on a single booted
testbed** (unlike sweep points, which each boot fresh) -- surviving the
overload is the point, so the overloaded machine state must carry into
the recovery phase:

1. ``baseline``  -- 0.5x the measured base rate: the healthy reference
   goodput;
2. ``overload``  -- 8x the base rate, far beyond the knee, with the
   driver's PR-3 characteristic fault plan active (lost notifications
   for VirtIO, descriptor errors for XDMA) when a fault rate is given;
3. ``recovery``  -- back to 0.5x: the system must shed the backlog and
   return to baseline goodput.

The soak **passes** only if every phase's conservation ledger holds
(each admitted packet exactly-once delivered or dropped-with-reason)
and recovery goodput reaches :data:`RECOVERY_FLOOR` of baseline.

The fault plan is attached before the *first* phase: all three phases
run under the same fault process, so a recovery shortfall means the
system failed to recover, not that the phases measured different
machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.health.monitor import ConservationMonitor, HealthReport
from repro.workload.admission import OverloadConfig
from repro.workload.arrivals import make_arrivals
from repro.workload.generator import OpenLoopGenerator
from repro.workload.metrics import RunMetrics
from repro.workload.sizes import FixedSize

#: (phase name, offered rate as a multiple of the base rate).
SOAK_PHASES = (("baseline", 0.5), ("overload", 8.0), ("recovery", 0.5))

#: Recovery goodput must reach this fraction of baseline goodput.
RECOVERY_FLOOR = 0.75


@dataclass
class SoakPhase:
    """One phase's outcome."""

    name: str
    offered_pps: float
    metrics: RunMetrics
    health: HealthReport

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "offered_pps": self.offered_pps,
            "metrics": self.metrics.as_dict(),
            "health": self.health.as_dict(),
        }


@dataclass
class SoakResult:
    """Full E-S1 outcome for one driver."""

    driver: str
    seed: int
    base_rate_pps: float
    fault_rate: Optional[float]
    phases: List[SoakPhase]

    def phase(self, name: str) -> SoakPhase:
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(f"no soak phase named {name!r}")

    @property
    def conserved(self) -> bool:
        """Every phase's exactly-once ledger held."""
        return all(phase.health.conserved for phase in self.phases)

    @property
    def recovery_ratio(self) -> float:
        baseline = self.phase("baseline").metrics.achieved_pps
        if baseline <= 0:
            return 0.0
        return self.phase("recovery").metrics.achieved_pps / baseline

    @property
    def recovered(self) -> bool:
        """Goodput returned to baseline once the overload subsided."""
        return self.recovery_ratio >= RECOVERY_FLOOR

    @property
    def passed(self) -> bool:
        return self.conserved and self.recovered

    @property
    def verdict(self) -> str:
        return "PASS" if self.passed else "FAIL"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "driver": self.driver,
            "seed": self.seed,
            "base_rate_pps": self.base_rate_pps,
            "fault_rate": self.fault_rate,
            "phases": [phase.as_dict() for phase in self.phases],
            "conserved": self.conserved,
            "recovery_ratio": self.recovery_ratio,
            "recovered": self.recovered,
            "verdict": self.verdict,
        }

    def render(self) -> str:
        fault = f", fault rate {self.fault_rate:g}" if self.fault_rate else ""
        rows = [
            f"Overload soak ({self.driver}, base {self.base_rate_pps / 1e3:.1f} "
            f"kpps{fault})",
            f"{'phase':>10} {'offered':>10} {'goodput':>10} {'drops':>7} "
            f"{'health':>7}   (kpps)",
        ]
        for phase in self.phases:
            m = phase.metrics
            rows.append(
                f"{phase.name:>10} {phase.offered_pps / 1e3:>10.1f} "
                f"{m.achieved_pps / 1e3:>10.1f} {m.dropped:>7} "
                f"{phase.health.verdict:>7}"
            )
        rows.append(
            f"  recovery goodput {self.recovery_ratio:.2f}x baseline "
            f"(floor {RECOVERY_FLOOR:.2f}) -> {self.verdict}"
        )
        return "\n".join(rows)


def _reset_hop_counters(testbed) -> None:
    """Zero the cumulative stack-side drop counters between phases so
    each phase's monitor reconciles against its own hop drops only."""
    from repro.core.testbed import VirtioTestbed, XdmaTestbed

    if isinstance(testbed, VirtioTestbed):
        from repro.drivers.virtio_net import TRANSMITQ

        if testbed.driver.netdev is not None:
            testbed.driver.netdev.tx_dropped.clear()
        testbed.driver.transport.queue(TRANSMITQ).depth_rejects = 0
    elif isinstance(testbed, XdmaTestbed):
        testbed.driver.busy_rejects = 0


def run_soak_on(
    testbed,
    driver: str,
    base_rate_pps: float,
    packets: int,
    overload: Optional[OverloadConfig] = None,
    fault_rate: Optional[float] = None,
    seed: int = 0,
    payload: int = 64,
    arrival: str = "poisson",
) -> SoakResult:
    """Run the three-phase soak on an already-booted *testbed*."""
    if base_rate_pps <= 0:
        raise ValueError(f"base rate must be positive, got {base_rate_pps}")
    if fault_rate:
        from repro.faults.injector import attach_fault_plan
        from repro.faults.plan import driver_fault_plan

        attach_fault_plan(testbed, driver_fault_plan(driver, fault_rate))
    if overload is not None:
        from repro.health.bounded import apply_overload_bounds

        apply_overload_bounds(testbed, overload)

    phases: List[SoakPhase] = []
    for name, multiplier in SOAK_PHASES:
        rate = multiplier * base_rate_pps
        _reset_hop_counters(testbed)
        monitor = ConservationMonitor(driver, "open")
        generator = OpenLoopGenerator(
            arrivals=make_arrivals(arrival, rate),
            sizes=FixedSize(payload),
            packets=packets,
            overload=overload,
            monitor=monitor,
        )
        metrics = generator.run(testbed)
        phases.append(
            SoakPhase(name=name, offered_pps=rate, metrics=metrics,
                      health=monitor.finalize())
        )
    return SoakResult(
        driver=driver,
        seed=seed,
        base_rate_pps=base_rate_pps,
        fault_rate=fault_rate,
        phases=phases,
    )
