"""Overload protection and end-to-end conservation accounting.

This package makes every queueing hop of both driver paths *bounded*
with an explicit full-queue policy, and provides the run-level
bookkeeping that proves no packet is ever silently lost:

* :mod:`repro.health.bounded` -- the bounded-queue primitive every hop
  uses (socket receive backlog, the open-loop software job queue) plus
  the policy vocabulary (drop-with-reason, block-with-timeout,
  reject-to-caller) and :func:`apply_overload_bounds`, which walks a
  booted testbed and installs the configured bound at each hop;
* :mod:`repro.health.monitor` -- :class:`ConservationMonitor`, a
  per-run ledger asserting that every admitted packet is exactly-once
  accounted as delivered or dropped-with-reason, frozen into a
  :class:`HealthReport` next to the fault subsystem's
  ``ReliabilityReport``;
* :mod:`repro.health.experiments` -- E-O1 (graceful-degradation curve)
  and E-S1 (overload + fault soak), deliberately *not* imported here:
  it sits above :mod:`repro.exec`, which this package must stay below.
"""

from repro.health.bounded import (
    POLICY_BLOCK,
    POLICY_DROP,
    POLICY_REJECT,
    BoundedQueue,
    QueueFullError,
    apply_overload_bounds,
)
from repro.health.monitor import ConservationMonitor, HealthReport

__all__ = [
    "POLICY_BLOCK",
    "POLICY_DROP",
    "POLICY_REJECT",
    "BoundedQueue",
    "QueueFullError",
    "apply_overload_bounds",
    "ConservationMonitor",
    "HealthReport",
]
