"""E-O1 / E-S1: overload experiments on the parallel execution engine.

* :func:`run_overload_sweep` (E-O1) -- both drivers' graceful-
  degradation curves: open-loop offered load swept from well below the
  saturation knee to far beyond it, with the full overload-protection
  stack armed (bounded hops, admission window, drop-with-reason) and a
  :class:`~repro.health.ConservationMonitor` riding every point.  The
  headline claims: goodput *plateaus* beyond the knee instead of
  collapsing, and every lost packet carries a recorded drop reason.

* :func:`run_overload_soak` (E-S1) -- the three-phase soak of
  :mod:`repro.health.soak` fanned out per driver: sustained overload
  under the PR-3 characteristic fault plans, passing only if the
  conservation invariants hold in every phase and goodput recovers
  once load subsides.

Both ride the cell engine (:mod:`repro.exec`): points fan out across a
process pool and merge in construction order, so reports are
bit-identical for any ``--jobs`` (the determinism tests pin this).
This module sits *above* ``repro.exec`` -- it is intentionally not
re-exported from ``repro.health``'s package root to keep the
lower-layer imports acyclic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.calibration import PAPER_PROFILE, CalibrationProfile
from repro.exec.cells import Cell, calibration_cells, overload_cells, soak_cells
from repro.exec.runner import ExecutionStats, _stats, run_cells
from repro.health.monitor import HealthReport
from repro.health.soak import SoakResult
from repro.workload.admission import OverloadConfig
from repro.workload.metrics import RunMetrics

#: Offered-load multiples of the measured base rate for E-O1 -- from
#: half the knee to 16x beyond it (the graceful-degradation regime).
OVERLOAD_MULTIPLIERS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)

#: Achieved/offered ratio below which a point counts as saturated.
KNEE_UTILIZATION = 0.9

#: Goodput beyond the knee must hold this fraction of peak capacity
#: for the degradation to count as graceful.
GOODPUT_FLOOR = 0.7

#: The protection stack E-O1 arms by default: every hop bounded, an
#: end-to-end admission window, tail-drop policy with counted reasons.
DEFAULT_OVERLOAD = OverloadConfig(
    admission_limit=256,
    socket_rx_limit=256,
    tx_depth_limit=64,
    xdma_queue_limit=64,
    xdma_max_pending=8,
)


@dataclass
class OverloadPoint:
    """One offered-load operating point with its conservation verdict."""

    offered_pps: float
    metrics: RunMetrics
    health: HealthReport

    def as_dict(self) -> Dict[str, Any]:
        return {
            "offered_pps": self.offered_pps,
            **self.metrics.as_dict(),
            "health": self.health.as_dict(),
        }


@dataclass
class OverloadSweepResult:
    """One driver's E-O1 graceful-degradation curve."""

    driver: str
    seed: int
    arrival_kind: str
    base_rtt_us: float
    base_rate_pps: float
    fault_rate: Optional[float]
    overload: Optional[OverloadConfig]
    points: List[OverloadPoint]

    def knee_pps(self, utilization: float = KNEE_UTILIZATION) -> Optional[float]:
        for point in self.points:
            if point.metrics.achieved_pps < utilization * point.offered_pps:
                return point.offered_pps
        return None

    def capacity_pps(self) -> float:
        return max(point.metrics.achieved_pps for point in self.points)

    @property
    def all_conserved(self) -> bool:
        """Every point's ledger held: each lost packet has a reason."""
        return all(point.health.conserved for point in self.points)

    def degrades_gracefully(self, floor: float = GOODPUT_FLOOR) -> bool:
        """Whether goodput plateaus beyond the knee instead of
        collapsing: every saturated point keeps at least ``floor``
        times the sweep's peak capacity, and every point conserves."""
        if not self.all_conserved:
            return False
        knee = self.knee_pps()
        if knee is None:
            return True  # never saturated; nothing to degrade
        capacity = self.capacity_pps()
        return all(
            point.metrics.achieved_pps >= floor * capacity
            for point in self.points
            if point.offered_pps >= knee
        )

    def hop_drop_totals(self) -> Dict[str, int]:
        """Per-hop refusal counts summed across all points."""
        totals: Dict[str, int] = {}
        for point in self.points:
            for hop, count in point.health.hop_drops.items():
                totals[hop] = totals.get(hop, 0) + count
        return dict(sorted(totals.items()))

    def drop_reason_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for point in self.points:
            for reason, count in point.health.drop_reasons.items():
                totals[reason] = totals.get(reason, 0) + count
        return dict(sorted(totals.items()))

    @property
    def verdict(self) -> str:
        return "PASS" if self.degrades_gracefully() else "FAIL"

    def render(self) -> str:
        fault = f", fault rate {self.fault_rate:g}" if self.fault_rate else ""
        rows = [
            f"Overload sweep ({self.driver}, {self.arrival_kind} arrivals, "
            f"base RTT {self.base_rtt_us:.1f} us{fault})",
            f"{'offered':>10} {'goodput':>10} {'util':>6} {'drops':>7} "
            f"{'p99':>8} {'health':>7}   (kpps, us)",
        ]
        for point in self.points:
            m = point.metrics
            util = m.achieved_pps / point.offered_pps if point.offered_pps else 0.0
            tails = m.latency_percentiles_us()
            p99 = tails[99.0] if m.latency_ps.size else 0.0
            rows.append(
                f"{point.offered_pps / 1e3:>10.1f} {m.achieved_pps / 1e3:>10.1f} "
                f"{util:>6.2f} {m.dropped:>7} {p99:>8.1f} "
                f"{point.health.verdict:>7}"
            )
        knee = self.knee_pps()
        rows.append(
            "  knee: "
            + (f"~{knee / 1e3:.1f} kpps offered" if knee is not None
               else "not reached")
            + f", capacity {self.capacity_pps() / 1e3:.1f} kpps, "
            f"graceful degradation: {self.verdict}"
        )
        reasons = self.drop_reason_totals()
        if reasons:
            rows.append(
                "  drops by reason: "
                + ", ".join(f"{k}={v}" for k, v in reasons.items())
            )
        hops = self.hop_drop_totals()
        if hops:
            rows.append(
                "  refusals by hop: "
                + ", ".join(f"{k}={v}" for k, v in hops.items())
            )
        return "\n".join(rows)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "driver": self.driver,
            "seed": self.seed,
            "arrival_kind": self.arrival_kind,
            "base_rtt_us": self.base_rtt_us,
            "base_rate_pps": self.base_rate_pps,
            "fault_rate": self.fault_rate,
            "knee_pps": self.knee_pps(),
            "capacity_pps": self.capacity_pps(),
            "all_conserved": self.all_conserved,
            "degrades_gracefully": self.degrades_gracefully(),
            "verdict": self.verdict,
            "drop_reason_totals": self.drop_reason_totals(),
            "hop_drop_totals": self.hop_drop_totals(),
            "points": [point.as_dict() for point in self.points],
        }


def run_overload_sweep(
    drivers: Sequence[str] = ("virtio", "xdma"),
    packets: int = 400,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    multipliers: Sequence[float] = OVERLOAD_MULTIPLIERS,
    rates: Optional[Sequence[float]] = None,
    arrival: str = "poisson",
    payload_sizes: Sequence[int] = (64,),
    overload: Optional[OverloadConfig] = DEFAULT_OVERLOAD,
    fault_rate: Optional[float] = None,
    jobs: int = 1,
) -> Tuple[Dict[str, OverloadSweepResult], ExecutionStats]:
    """E-O1: overload-protected load sweeps for all *drivers*.

    Two fan-outs, like :func:`repro.exec.runner.execute_load_sweep`:
    calibration cells measure each driver's base rate, then every
    driver x rate overload cell runs at once.  ``rates`` overrides the
    auto-placed ``multipliers``-times-base points.
    """
    started = time.perf_counter()
    cal_cells = calibration_cells(drivers, payload_sizes, packets, seed, profile)
    cal_outcomes = run_cells(cal_cells, jobs)
    base: Dict[str, Tuple[float, float]] = {
        outcome.cell.driver: outcome.value for outcome in cal_outcomes
    }

    point_cells: List[Cell] = []
    offered: Dict[str, List[float]] = {}
    for driver in drivers:
        _, base_rate = base[driver]
        offered[driver] = (
            list(rates) if rates else [m * base_rate for m in multipliers]
        )
        if not offered[driver]:
            raise ValueError("overload sweep needs at least one offered-load point")
        point_cells.extend(
            overload_cells(driver, offered[driver], payload_sizes, packets,
                           seed, arrival, profile, overload, fault_rate)
        )
    point_outcomes = run_cells(point_cells, jobs)

    per_driver: Dict[str, List[OverloadPoint]] = {driver: [] for driver in drivers}
    for outcome in point_outcomes:
        metrics, health = outcome.value
        per_driver[outcome.cell.driver].append(
            OverloadPoint(offered_pps=outcome.cell.rate_pps, metrics=metrics,
                          health=health)
        )
    results: Dict[str, OverloadSweepResult] = {}
    for driver in drivers:
        rtt_us, base_rate = base[driver]
        results[driver] = OverloadSweepResult(
            driver=driver,
            seed=seed,
            arrival_kind=arrival,
            base_rtt_us=rtt_us,
            base_rate_pps=base_rate,
            fault_rate=fault_rate,
            overload=overload,
            points=per_driver[driver],
        )
    all_outcomes = list(cal_outcomes) + list(point_outcomes)
    return results, _stats(all_outcomes, jobs, time.perf_counter() - started)


def run_overload_soak(
    drivers: Sequence[str] = ("virtio", "xdma"),
    packets: int = 300,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    payload_sizes: Sequence[int] = (64,),
    overload: Optional[OverloadConfig] = DEFAULT_OVERLOAD,
    fault_rate: Optional[float] = 0.02,
    jobs: int = 1,
) -> Tuple[Dict[str, SoakResult], ExecutionStats]:
    """E-S1: the three-phase overload soak for all *drivers*.

    Calibration cells measure base rates first; each driver then runs
    its whole soak as one cell (the phases share a testbed, so they
    cannot be decomposed further).  *packets* is per phase.
    """
    started = time.perf_counter()
    cal_cells = calibration_cells(drivers, payload_sizes, packets, seed, profile)
    cal_outcomes = run_cells(cal_cells, jobs)
    base_rates = {
        outcome.cell.driver: outcome.value[1] for outcome in cal_outcomes
    }
    cells = soak_cells(drivers, base_rates, packets, seed, profile,
                       overload, fault_rate)
    outcomes = run_cells(cells, jobs)
    results = {outcome.cell.driver: outcome.value for outcome in outcomes}
    all_outcomes = list(cal_outcomes) + list(outcomes)
    return results, _stats(all_outcomes, jobs, time.perf_counter() - started)
