"""Sparse host physical memory.

The host model needs gigabytes of addressable memory but touches only a few
megabytes, so the backing store is a page-sparse dict.  Pages materialize
on first write; reads of untouched pages return zeros (matching how a
fresh kernel page behaves after zeroing).
"""

from __future__ import annotations

from typing import Dict

from repro.mem.region import MemoryRegion

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4 KiB, matching the modeled x86-64 host


class PhysicalMemory(MemoryRegion):
    """Page-sparse physical memory of a given size."""

    def __init__(self, size: int = 1 << 34, name: str = "host-ram") -> None:
        super().__init__(size, name)
        self._pages: Dict[int, bytearray] = {}

    def _page_for_write(self, pfn: int) -> bytearray:
        page = self._pages.get(pfn)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[pfn] = page
        return page

    def read(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        out = bytearray(length)
        pos = 0
        addr = offset
        while pos < length:
            pfn = addr >> PAGE_SHIFT
            in_page = addr & (PAGE_SIZE - 1)
            chunk = min(length - pos, PAGE_SIZE - in_page)
            page = self._pages.get(pfn)
            if page is not None:
                out[pos : pos + chunk] = page[in_page : in_page + chunk]
            # else: leave zeros
            pos += chunk
            addr += chunk
        return bytes(out)

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        pos = 0
        addr = offset
        length = len(data)
        while pos < length:
            pfn = addr >> PAGE_SHIFT
            in_page = addr & (PAGE_SIZE - 1)
            chunk = min(length - pos, PAGE_SIZE - in_page)
            page = self._page_for_write(pfn)
            page[in_page : in_page + chunk] = data[pos : pos + chunk]
            pos += chunk
            addr += chunk

    @property
    def resident_pages(self) -> int:
        """Number of materialized pages (memory-usage diagnostics)."""
        return len(self._pages)

    def fill(self, offset: int, length: int, value: int = 0) -> None:
        """Set *length* bytes at *offset* to *value*."""
        if not 0 <= value <= 0xFF:
            raise ValueError(f"fill value must be a byte, got {value}")
        self.write(offset, bytes([value]) * length)
