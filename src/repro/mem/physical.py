"""Sparse host physical memory.

The host model needs gigabytes of addressable memory but touches only a few
megabytes, so the backing store is a page-sparse dict.  Pages materialize
on first write; reads of untouched pages return zeros (matching how a
fresh kernel page behaves after zeroing).
"""

from __future__ import annotations

from typing import Dict, Union

from repro.mem.region import MemoryRegion

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4 KiB, matching the modeled x86-64 host

#: Shared read-only backing for views of never-written pages.
_ZERO_PAGE = bytes(PAGE_SIZE)

Buffer = Union[bytes, bytearray, memoryview]


class PhysicalMemory(MemoryRegion):
    """Page-sparse physical memory of a given size."""

    def __init__(self, size: int = 1 << 34, name: str = "host-ram") -> None:
        super().__init__(size, name)
        self._pages: Dict[int, bytearray] = {}

    def _page_for_write(self, pfn: int) -> bytearray:
        page = self._pages.get(pfn)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[pfn] = page
        return page

    def read(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        in_page = offset & (PAGE_SIZE - 1)
        if in_page + length <= PAGE_SIZE:
            # Fast path: the access sits inside one page (every TLP does,
            # since segmentation splits at page boundaries).
            page = self._pages.get(offset >> PAGE_SHIFT)
            if page is None:
                return _ZERO_PAGE[:length]
            return bytes(page[in_page : in_page + length])
        out = bytearray(length)
        self.read_into(offset, out)
        return bytes(out)

    def read_into(self, offset: int, buf: Buffer) -> None:
        """Copy ``len(buf)`` bytes at *offset* into caller-owned *buf*."""
        length = len(buf)
        self._check(offset, length)
        out = memoryview(buf)
        pos = 0
        addr = offset
        while pos < length:
            pfn = addr >> PAGE_SHIFT
            in_page = addr & (PAGE_SIZE - 1)
            chunk = min(length - pos, PAGE_SIZE - in_page)
            page = self._pages.get(pfn)
            if page is not None:
                out[pos : pos + chunk] = page[in_page : in_page + chunk]
            else:
                out[pos : pos + chunk] = _ZERO_PAGE[:chunk]
            pos += chunk
            addr += chunk

    def view(self, offset: int, length: int) -> memoryview:
        """Read-only view of *length* bytes at *offset*.

        Zero-copy when the range sits inside one page (the data-plane
        case: TLP segmentation never crosses a page).  A cross-page range
        is assembled into a private buffer and a view of that returned.
        The view is a snapshot boundary only if the caller treats it as
        one: it aliases live memory, so consumers that outlive the next
        write to the range must copy (see docs/architecture.md).
        """
        self._check(offset, length)
        in_page = offset & (PAGE_SIZE - 1)
        if in_page + length <= PAGE_SIZE:
            page = self._pages.get(offset >> PAGE_SHIFT)
            if page is None:
                return memoryview(_ZERO_PAGE)[:length]
            return memoryview(page).toreadonly()[in_page : in_page + length]
        out = bytearray(length)
        self.read_into(offset, out)
        return memoryview(out).toreadonly()

    def write(self, offset: int, data: Buffer) -> None:
        length = len(data)
        self._check(offset, length)
        in_page = offset & (PAGE_SIZE - 1)
        if in_page + length <= PAGE_SIZE:
            page = self._page_for_write(offset >> PAGE_SHIFT)
            page[in_page : in_page + length] = data
            return
        src = memoryview(data)
        pos = 0
        addr = offset
        while pos < length:
            pfn = addr >> PAGE_SHIFT
            in_page = addr & (PAGE_SIZE - 1)
            chunk = min(length - pos, PAGE_SIZE - in_page)
            page = self._page_for_write(pfn)
            page[in_page : in_page + chunk] = src[pos : pos + chunk]
            pos += chunk
            addr += chunk

    @property
    def resident_pages(self) -> int:
        """Number of materialized pages (memory-usage diagnostics)."""
        return len(self._pages)

    def fill(self, offset: int, length: int, value: int = 0) -> None:
        """Set *length* bytes at *offset* to *value*, page by page in
        place -- no ``length``-sized intermediate buffer."""
        if not 0 <= value <= 0xFF:
            raise ValueError(f"fill value must be a byte, got {value}")
        self._check(offset, length)
        pos = 0
        addr = offset
        while pos < length:
            pfn = addr >> PAGE_SHIFT
            in_page = addr & (PAGE_SIZE - 1)
            chunk = min(length - pos, PAGE_SIZE - in_page)
            if value == 0 and in_page == 0 and chunk == PAGE_SIZE:
                # Whole-page zeroing: drop back to the sparse default.
                self._pages.pop(pfn, None)
            else:
                page = self._pages.get(pfn)
                if page is not None:
                    page[in_page : in_page + chunk] = bytes([value]) * chunk if value else b"\x00" * chunk
                elif value:
                    page = self._page_for_write(pfn)
                    page[in_page : in_page + chunk] = bytes([value]) * chunk
                # value == 0 on an unmaterialized page: already zeros.
            pos += chunk
            addr += chunk
