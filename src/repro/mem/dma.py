"""DMA buffer allocation.

Kernel drivers allocate DMA-able buffers (descriptor rings, packet
buffers) out of host physical memory.  :class:`DmaAllocator` is a simple
bump allocator with alignment and optional freeing by region reset --
plenty for driver models whose allocations are long-lived rings plus
per-packet buffers recycled by index.

Bus addresses equal physical addresses (identity IOMMU), matching the
paper's bare-metal host (no vIOMMU is involved in the measurements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.mem.layout import align_up
from repro.mem.physical import PhysicalMemory


class DmaAllocationError(RuntimeError):
    """Arena exhausted."""


@dataclass(frozen=True)
class DmaBuffer:
    """A contiguous DMA-able region of host memory.

    ``addr`` is both the CPU physical and the device bus address
    (identity mapping).
    """

    addr: int
    size: int
    memory: PhysicalMemory

    def read(self, offset: int = 0, length: int | None = None) -> bytes:
        if length is None:
            length = self.size - offset
        if offset < 0 or offset + length > self.size:
            raise IndexError(f"read [{offset},{offset + length}) outside buffer of {self.size}")
        return self.memory.read(self.addr + offset, length)

    def read_into(self, buf, offset: int = 0) -> None:
        """Copy ``len(buf)`` bytes into caller-owned *buf* (no
        intermediate ``bytes``)."""
        length = len(buf)
        if offset < 0 or offset + length > self.size:
            raise IndexError(f"read [{offset},{offset + length}) outside buffer of {self.size}")
        self.memory.read_into(self.addr + offset, buf)

    def view(self, offset: int = 0, length: int | None = None) -> memoryview:
        """Read-only view of the buffer contents (aliases live memory)."""
        if length is None:
            length = self.size - offset
        if offset < 0 or offset + length > self.size:
            raise IndexError(f"view [{offset},{offset + length}) outside buffer of {self.size}")
        return self.memory.view(self.addr + offset, length)

    def write(self, data: bytes, offset: int = 0) -> None:
        if offset < 0 or offset + len(data) > self.size:
            raise IndexError(
                f"write [{offset},{offset + len(data)}) outside buffer of {self.size}"
            )
        self.memory.write(self.addr + offset, data)

    def zero(self) -> None:
        self.memory.fill(self.addr, self.size, 0)


class DmaAllocator:
    """Bump allocator over a window of host physical memory."""

    def __init__(
        self,
        memory: PhysicalMemory,
        base: int = 0x1000_0000,
        size: int = 64 << 20,
        name: str = "dma-arena",
    ) -> None:
        if base < 0 or size <= 0 or base + size > memory.size:
            raise ValueError(f"arena [{base:#x}, {base + size:#x}) outside memory")
        self.memory = memory
        self.base = base
        self.size = size
        self.name = name
        self._next = base
        self._allocations: List[DmaBuffer] = []

    def alloc(self, size: int, alignment: int = 64) -> DmaBuffer:
        """Allocate *size* bytes aligned to *alignment* (cache line by
        default, as ``dma_alloc_coherent`` would give)."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        addr = align_up(self._next, alignment)
        if addr + size > self.base + self.size:
            raise DmaAllocationError(
                f"arena {self.name!r} exhausted: need {size}B at {addr:#x}, "
                f"end is {self.base + self.size:#x}"
            )
        self._next = addr + size
        buf = DmaBuffer(addr=addr, size=size, memory=self.memory)
        self._allocations.append(buf)
        return buf

    @property
    def allocated_bytes(self) -> int:
        return self._next - self.base

    @property
    def allocations(self) -> List[DmaBuffer]:
        return list(self._allocations)

    def reset(self) -> None:
        """Drop all allocations (testbed teardown)."""
        self._next = self.base
        self._allocations.clear()
