"""Pooled data-plane buffers with explicit ownership handoff.

The zero-copy data plane threads ``memoryview`` references through the
PCIe/virtio/XDMA hot paths instead of materializing a ``bytes`` copy at
every hop.  Views need a stable backing store with a clear owner, so the
staging copies that *do* remain (DMA-read snapshots, descriptor-chain
gathers) come out of a :class:`BufferPool`: recycled ``bytearray``
segments wrapped in :class:`BufferRef` handles.

Ownership rules (see docs/architecture.md, "Zero-copy data plane"):

* ``acquire()`` returns a :class:`BufferRef` owned by the caller, who may
  mutate it through ``view()``.
* ``handoff()`` transfers the payload to a consumer: the producer keeps
  the obligation to ``release()`` but loses the right to mutate.  The
  consumer reads through ``readonly()``.
* ``release()`` returns the segment to the pool's free list.  Any later
  access through the ref raises.

Reuse is a LIFO free list keyed by capacity bucket, so for a fixed
acquire/release sequence the mapping of refs to segments is a pure
function of program order -- identical in every worker process, which is
what keeps pooled runs byte-identical across ``--jobs``.

Debug mode (``debug=True`` or ``REPRO_BUFPOOL_DEBUG=1``) adds the safety
checks the tests exercise: use-after-release, mutation-after-handoff,
double release, and releasing a segment while exported views are still
alive (the aliasing hazard -- the recycled segment would be visible
through a stale view).  The liveness check leans on CPython's buffer
protocol: resizing a ``bytearray`` with exported buffers raises
``BufferError``.
"""

from __future__ import annotations

from typing import Dict, List


class BufferPoolError(RuntimeError):
    """A buffer-ownership rule was violated."""


def _env_debug() -> bool:
    from repro import env

    return env.bufpool_debug()


def _bucket(length: int, minimum: int) -> int:
    """Capacity bucket for *length*: the smallest power of two >= both."""
    cap = minimum
    while cap < length:
        cap <<= 1
    return cap


class BufferRef:
    """A caller-owned slice of a pooled segment.

    Exposes the first ``length`` bytes of the backing segment.  The ref
    itself is the ownership token; the raw ``bytearray`` never escapes.
    """

    __slots__ = ("_pool", "_segment", "_segment_id", "length", "_released", "_handed_off")

    def __init__(self, pool: "BufferPool", segment: bytearray, segment_id: int, length: int) -> None:
        self._pool = pool
        self._segment = segment
        self._segment_id = segment_id
        self.length = length
        self._released = False
        self._handed_off = False

    @property
    def segment_id(self) -> int:
        """Identity of the backing segment (deterministic-reuse tests)."""
        return self._segment_id

    def _check_live(self) -> None:
        if self._released:
            raise BufferPoolError(
                f"use after release of pooled buffer (segment {self._segment_id} "
                f"of pool {self._pool.name!r})"
            )

    def view(self) -> memoryview:
        """Writable view of the payload.  Owner-only: invalid after
        ``handoff()`` or ``release()``."""
        self._check_live()
        if self._handed_off:
            raise BufferPoolError(
                f"mutation after handoff of pooled buffer (segment {self._segment_id} "
                f"of pool {self._pool.name!r})"
            )
        return memoryview(self._segment)[: self.length]

    def readonly(self) -> memoryview:
        """Read-only view of the payload (what consumers receive)."""
        self._check_live()
        return memoryview(self._segment).toreadonly()[: self.length]

    def handoff(self) -> memoryview:
        """Transfer the payload to a consumer.

        Returns the read-only view the consumer should use.  The producer
        keeps the release obligation but may no longer mutate.
        """
        self._check_live()
        self._handed_off = True
        return self.readonly()

    def release(self) -> None:
        """Return the segment to the pool."""
        self._check_live()
        self._released = True
        self._pool._reclaim(self)

    def __len__(self) -> int:
        return self.length

    def __bytes__(self) -> bytes:
        self._check_live()
        return bytes(self._segment[: self.length])

    def __repr__(self) -> str:
        state = "released" if self._released else ("handed-off" if self._handed_off else "owned")
        return f"<BufferRef seg={self._segment_id} len={self.length} {state}>"


class BufferPool:
    """Recycled ``bytearray`` segments for data-plane staging copies."""

    def __init__(self, segment_size: int = 4096, name: str = "bufpool", debug: bool | None = None) -> None:
        if segment_size <= 0:
            raise ValueError(f"segment size must be positive, got {segment_size}")
        self.segment_size = segment_size
        self.name = name
        self.debug = _env_debug() if debug is None else debug
        self._free: Dict[int, List[tuple]] = {}  # bucket -> [(segment, id), ...] LIFO
        self._next_id = 0
        self.allocated = 0  # segments ever created
        self.acquires = 0
        self.reuses = 0
        self.outstanding = 0
        self.high_water = 0

    def acquire(self, length: int) -> BufferRef:
        """A ref over at least *length* writable bytes (zero-length ok)."""
        if length < 0:
            raise ValueError(f"negative buffer length {length}")
        cap = _bucket(length, self.segment_size)
        free = self._free.get(cap)
        if free:
            segment, segment_id = free.pop()
            if self.debug:
                self._probe_exports(segment, segment_id)
            self.reuses += 1
        else:
            segment = bytearray(cap)
            segment_id = self._next_id
            self._next_id += 1
            self.allocated += 1
        self.acquires += 1
        self.outstanding += 1
        if self.outstanding > self.high_water:
            self.high_water = self.outstanding
        return BufferRef(self, segment, segment_id, length)

    def acquire_from(self, data) -> BufferRef:
        """Acquire a ref pre-filled with a copy of *data*."""
        ref = self.acquire(len(data))
        if ref.length:
            ref.view()[:] = data
        return ref

    def _probe_exports(self, segment: bytearray, segment_id: int) -> None:
        """Raise if *segment* still has exported buffer views.

        Run at *reacquire* time, not release time: a consumer's view may
        legitimately sit on the call stack while the producer releases;
        the aliasing hazard is real only once the segment is recycled
        while such a view persists.  The probe leans on the buffer
        protocol -- resizing a ``bytearray`` with exports raises.
        """
        try:
            segment.append(0)
            segment.pop()
        except BufferError:
            raise BufferPoolError(
                f"segment {segment_id} of pool {self.name!r} recycled while views "
                f"of its previous use are still exported (aliasing hazard)"
            ) from None

    def _reclaim(self, ref: BufferRef) -> None:
        segment = ref._segment
        self.outstanding -= 1
        cap = len(segment)
        self._free.setdefault(cap, []).append((segment, ref._segment_id))

    def stats(self) -> Dict[str, int]:
        return {
            "allocated": self.allocated,
            "acquires": self.acquires,
            "reuses": self.reuses,
            "outstanding": self.outstanding,
            "high_water": self.high_water,
        }
