"""Little-endian binary layout helpers.

Everything that crosses the simulated PCIe link -- TLP headers, VirtIO
configuration structures, virtqueue descriptors, XDMA registers, Ethernet
/IP/UDP headers -- is real bytes in simulated memory.  This module gives
the rest of the codebase one well-tested way to encode/decode scalar
fields and to declare packed structures, instead of scattering
``int.from_bytes`` calls everywhere.

VirtIO structures are little-endian by spec ("virtio-endian"); network
headers are big-endian, so both byte orders are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple


# -- scalar accessors ---------------------------------------------------------


def read_uint(buf: bytes, offset: int, size: int, *, big_endian: bool = False) -> int:
    """Read an unsigned integer of *size* bytes at *offset*."""
    if offset < 0 or offset + size > len(buf):
        raise IndexError(f"read of {size}B at {offset} outside buffer of {len(buf)}B")
    return int.from_bytes(buf[offset : offset + size], "big" if big_endian else "little")


def write_uint(
    buf: bytearray, offset: int, size: int, value: int, *, big_endian: bool = False
) -> None:
    """Write an unsigned integer of *size* bytes at *offset* (range-checked)."""
    if offset < 0 or offset + size > len(buf):
        raise IndexError(f"write of {size}B at {offset} outside buffer of {len(buf)}B")
    if value < 0 or value >= 1 << (8 * size):
        raise ValueError(f"value {value:#x} does not fit in {size} bytes")
    buf[offset : offset + size] = value.to_bytes(size, "big" if big_endian else "little")


def read_u8(buf: bytes, offset: int) -> int:
    return read_uint(buf, offset, 1)


def read_u16(buf: bytes, offset: int) -> int:
    return read_uint(buf, offset, 2)


def read_u32(buf: bytes, offset: int) -> int:
    return read_uint(buf, offset, 4)


def read_u64(buf: bytes, offset: int) -> int:
    return read_uint(buf, offset, 8)


def write_u8(buf: bytearray, offset: int, value: int) -> None:
    write_uint(buf, offset, 1, value)


def write_u16(buf: bytearray, offset: int, value: int) -> None:
    write_uint(buf, offset, 2, value)


def write_u32(buf: bytearray, offset: int, value: int) -> None:
    write_uint(buf, offset, 4, value)


def write_u64(buf: bytearray, offset: int, value: int) -> None:
    write_uint(buf, offset, 8, value)


def read_u16_be(buf: bytes, offset: int) -> int:
    return read_uint(buf, offset, 2, big_endian=True)


def read_u32_be(buf: bytes, offset: int) -> int:
    return read_uint(buf, offset, 4, big_endian=True)


def write_u16_be(buf: bytearray, offset: int, value: int) -> None:
    write_uint(buf, offset, 2, value, big_endian=True)


def write_u32_be(buf: bytearray, offset: int, value: int) -> None:
    write_uint(buf, offset, 4, value, big_endian=True)


# -- declarative packed structs ------------------------------------------------


@dataclass(frozen=True)
class Field:
    """One scalar field of a packed struct."""

    name: str
    offset: int
    size: int

    def __post_init__(self) -> None:
        if self.size not in (1, 2, 4, 8):
            raise ValueError(f"field {self.name!r}: unsupported size {self.size}")
        if self.offset < 0:
            raise ValueError(f"field {self.name!r}: negative offset")

    @property
    def end(self) -> int:
        return self.offset + self.size

    @property
    def mask(self) -> int:
        return (1 << (8 * self.size)) - 1


class StructDef:
    """A named packed-struct layout: ordered fields at explicit offsets.

    Explicit offsets (rather than auto-packing) match how hardware specs
    are written and let tests assert offsets against the spec documents.

    Example
    -------
    ``VIRTIO_PCI_COMMON_CFG`` from the VirtIO 1.2 spec::

        COMMON_CFG = StructDef("virtio_pci_common_cfg", [
            ("device_feature_select", 0x00, 4),
            ("device_feature",        0x04, 4),
            ...
        ])
    """

    def __init__(
        self,
        name: str,
        fields: List[Tuple[str, int, int]],
        *,
        total_size: int | None = None,
        big_endian: bool = False,
    ) -> None:
        self.name = name
        self.big_endian = big_endian
        self.fields: Dict[str, Field] = {}
        for fname, offset, size in fields:
            if fname in self.fields:
                raise ValueError(f"duplicate field {fname!r} in {name}")
            self.fields[fname] = Field(fname, offset, size)
        self._check_overlap()
        max_end = max((f.end for f in self.fields.values()), default=0)
        self.size = total_size if total_size is not None else max_end
        if self.size < max_end:
            raise ValueError(f"{name}: total_size {self.size} smaller than field extent {max_end}")

    def _check_overlap(self) -> None:
        ordered = sorted(self.fields.values(), key=lambda f: f.offset)
        for a, b in zip(ordered, ordered[1:]):
            if a.end > b.offset:
                raise ValueError(f"{self.name}: fields {a.name!r} and {b.name!r} overlap")

    def __contains__(self, name: str) -> bool:
        return name in self.fields

    def __iter__(self) -> Iterator[Field]:
        return iter(sorted(self.fields.values(), key=lambda f: f.offset))

    def offset_of(self, name: str) -> int:
        return self.fields[name].offset

    def size_of(self, name: str) -> int:
        return self.fields[name].size

    def field_at(self, offset: int, size: int) -> Field | None:
        """The field exactly matching an access, or ``None``.

        MMIO models use this to map a register access to a named field;
        sub-field or straddling accesses return ``None`` and are handled
        by the caller (typically as byte-granular RAM semantics).
        """
        for f in self.fields.values():
            if f.offset == offset and f.size == size:
                return f
        return None

    def field_containing(self, offset: int) -> Field | None:
        """The field whose byte range contains *offset*, if any."""
        for f in self.fields.values():
            if f.offset <= offset < f.end:
                return f
        return None

    def read(self, buf: bytes, name: str, base: int = 0) -> int:
        f = self.fields[name]
        return read_uint(buf, base + f.offset, f.size, big_endian=self.big_endian)

    def write(self, buf: bytearray, name: str, value: int, base: int = 0) -> None:
        f = self.fields[name]
        write_uint(buf, base + f.offset, f.size, value, big_endian=self.big_endian)

    def unpack(self, buf: bytes, base: int = 0) -> Dict[str, int]:
        """Decode every field into a dict (diagnostics / tests)."""
        return {f.name: self.read(buf, f.name, base) for f in self}

    def pack(self, values: Dict[str, int]) -> bytearray:
        """Encode a dict of field values into a fresh buffer; unset
        fields are zero."""
        buf = bytearray(self.size)
        for name, value in values.items():
            self.write(buf, name, value)
        return buf

    def __repr__(self) -> str:
        return f"<StructDef {self.name} size={self.size} fields={len(self.fields)}>"


def hexdump(data: bytes, base: int = 0, width: int = 16) -> str:
    """Classic hexdump string (debugging aid for simulated memory)."""
    lines = []
    for row in range(0, len(data), width):
        chunk = data[row : row + width]
        hexpart = " ".join(f"{b:02x}" for b in chunk)
        asciipart = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append(f"{base + row:08x}  {hexpart:<{width * 3}} |{asciipart}|")
    return "\n".join(lines)


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to a multiple of *alignment* (a power of two)."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


def is_aligned(value: int, alignment: int) -> bool:
    """True if *value* is a multiple of power-of-two *alignment*."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value & (alignment - 1)) == 0
