"""Memory regions and address-space routing.

A :class:`MemoryRegion` is anything addressable with byte reads/writes.
An :class:`AddressSpace` maps regions at base addresses and routes
accesses to them -- this is how the host physical address space (RAM +
device BARs) and the FPGA-internal AXI address map are both modeled.

Routing is functional (no simulated time); timing is accounted where the
transaction travels (PCIe link model, DMA engines), keeping memory
semantics separate from timing models.
"""

from __future__ import annotations

import bisect
from typing import Callable, List, Optional, Tuple


class MemoryAccessError(RuntimeError):
    """Out-of-range or unmapped access."""


class MemoryRegion:
    """Abstract byte-addressable region of a fixed size."""

    def __init__(self, size: int, name: str = "") -> None:
        if size <= 0:
            raise ValueError(f"region size must be positive, got {size}")
        self.size = size
        self.name = name

    def read(self, offset: int, length: int) -> bytes:
        raise NotImplementedError

    def write(self, offset: int, data: bytes) -> None:
        raise NotImplementedError

    def read_into(self, offset: int, buf) -> None:
        """Copy ``len(buf)`` bytes at *offset* into caller-owned *buf*.

        The base implementation goes through :meth:`read`; dense regions
        override it to skip the intermediate ``bytes``.
        """
        memoryview(buf)[:] = self.read(offset, len(buf))

    def view(self, offset: int, length: int) -> memoryview:
        """Read-only view of *length* bytes at *offset*.

        Zero-copy where the backing store allows it (RAM-like regions);
        the base implementation wraps a :meth:`read` snapshot.
        """
        return memoryview(self.read(offset, length))

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise MemoryAccessError(
                f"access [{offset:#x}, {offset + length:#x}) outside region "
                f"{self.name!r} of size {self.size:#x}"
            )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} size={self.size:#x}>"


class RamRegion(MemoryRegion):
    """Plain backing-store region (dense bytearray)."""

    def __init__(self, size: int, name: str = "", fill: int = 0) -> None:
        super().__init__(size, name)
        self._data = bytearray([fill]) * size if fill else bytearray(size)

    def read(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        return bytes(self._data[offset : offset + length])

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self._data[offset : offset + len(data)] = data

    def read_into(self, offset: int, buf) -> None:
        length = len(buf)
        self._check(offset, length)
        memoryview(buf)[:] = self._data[offset : offset + length]

    def view(self, offset: int, length: int) -> memoryview:
        self._check(offset, length)
        return memoryview(self._data).toreadonly()[offset : offset + length]

    @property
    def raw(self) -> bytearray:
        """Direct view of the backing store (tests / zero-copy internals)."""
        return self._data


ReadHandler = Callable[[int, int], bytes]
WriteHandler = Callable[[int, bytes], None]


class MmioRegion(MemoryRegion):
    """Region whose accesses invoke callbacks (device registers).

    The device model supplies ``read_handler(offset, length) -> bytes``
    and ``write_handler(offset, data)``.  Unlike RAM, MMIO access width
    and offset are semantically meaningful, so handlers receive them
    verbatim.
    """

    def __init__(
        self,
        size: int,
        read_handler: ReadHandler,
        write_handler: WriteHandler,
        name: str = "",
    ) -> None:
        super().__init__(size, name)
        self._read_handler = read_handler
        self._write_handler = write_handler

    def read(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        data = self._read_handler(offset, length)
        if len(data) != length:
            raise MemoryAccessError(
                f"MMIO read handler of {self.name!r} returned {len(data)}B, expected {length}B"
            )
        return data

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self._write_handler(offset, bytes(data))


class AddressSpace:
    """Maps regions at base addresses; routes reads/writes.

    Mappings must not overlap.  Accesses that straddle a mapping boundary
    are rejected: real interconnects split such transactions before they
    reach a device, and every producer in this codebase (DMA segmentation,
    TLP formation) already splits at boundaries, so a straddle indicates a
    model bug worth failing on.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._bases: List[int] = []
        self._maps: List[Tuple[int, MemoryRegion]] = []
        # Last successful resolve as (base, end, region): accesses
        # cluster heavily on one region (RAM, a ring, a BAR), so this
        # turns most lookups into two integer compares.
        self._last: Optional[Tuple[int, int, MemoryRegion]] = None

    def map(self, base: int, region: MemoryRegion) -> None:
        """Install *region* at *base*."""
        if base < 0:
            raise ValueError(f"negative base address {base:#x}")
        new_end = base + region.size
        for existing_base, existing in self._maps:
            if base < existing_base + existing.size and existing_base < new_end:
                raise ValueError(
                    f"mapping {region.name!r} at {base:#x} overlaps "
                    f"{existing.name!r} at {existing_base:#x}"
                )
        idx = bisect.bisect_left(self._bases, base)
        self._bases.insert(idx, base)
        self._maps.insert(idx, (base, region))
        self._last = None

    def unmap(self, base: int) -> MemoryRegion:
        """Remove and return the region mapped at exactly *base*."""
        idx = bisect.bisect_left(self._bases, base)
        if idx >= len(self._bases) or self._bases[idx] != base:
            raise KeyError(f"no mapping at {base:#x} in {self.name!r}")
        self._bases.pop(idx)
        self._last = None
        return self._maps.pop(idx)[1]

    def resolve(self, addr: int) -> Tuple[MemoryRegion, int]:
        """The region containing *addr* and the offset within it."""
        last = self._last
        if last is not None and last[0] <= addr < last[1]:
            return last[2], addr - last[0]
        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx >= 0:
            base, region = self._maps[idx]
            if addr < base + region.size:
                self._last = (base, base + region.size, region)
                return region, addr - base
        raise MemoryAccessError(f"unmapped address {addr:#x} in space {self.name!r}")

    def region_at(self, addr: int) -> Optional[MemoryRegion]:
        """The region containing *addr*, or ``None``."""
        try:
            return self.resolve(addr)[0]
        except MemoryAccessError:
            return None

    def read(self, addr: int, length: int) -> bytes:
        region, offset = self.resolve(addr)
        if offset + length > region.size:
            raise MemoryAccessError(
                f"read [{addr:#x},{addr + length:#x}) straddles mapping of {region.name!r}"
            )
        return region.read(offset, length)

    def write(self, addr: int, data: bytes) -> None:
        region, offset = self.resolve(addr)
        if offset + len(data) > region.size:
            raise MemoryAccessError(
                f"write [{addr:#x},{addr + len(data):#x}) straddles mapping of {region.name!r}"
            )
        region.write(offset, data)

    def read_into(self, addr: int, buf) -> None:
        """Copy ``len(buf)`` bytes at *addr* into caller-owned *buf*."""
        length = len(buf)
        region, offset = self.resolve(addr)
        if offset + length > region.size:
            raise MemoryAccessError(
                f"read [{addr:#x},{addr + length:#x}) straddles mapping of {region.name!r}"
            )
        region.read_into(offset, buf)

    def view(self, addr: int, length: int) -> memoryview:
        """Read-only view of *length* bytes at *addr* (zero-copy for
        RAM-like regions)."""
        region, offset = self.resolve(addr)
        if offset + length > region.size:
            raise MemoryAccessError(
                f"view [{addr:#x},{addr + length:#x}) straddles mapping of {region.name!r}"
            )
        return region.view(offset, length)

    @property
    def mappings(self) -> List[Tuple[int, MemoryRegion]]:
        """Sorted list of (base, region)."""
        return list(self._maps)

    def __repr__(self) -> str:
        return f"<AddressSpace {self.name!r} mappings={len(self._maps)}>"
