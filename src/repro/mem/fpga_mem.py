"""FPGA-side memories: BRAM and external DRAM.

Both are plain RAM regions plus access-timing metadata.  The paper's
designs store packet data in BRAM connected to the XDMA AXI
memory-mapped interface; DRAM is provided because Fig. 2 lists
"BRAM/DDR" as the VirtIO controller's data store and the bypass-interface
example uses a larger buffer than BRAM would hold.

Timing is exposed as ``access_time(bytes)`` used by the FPGA-side FSMs;
the byte store itself is functional (zero-time), consistent with the rest
of :mod:`repro.mem`.
"""

from __future__ import annotations

from repro.mem.region import RamRegion
from repro.sim.time import FPGA_FABRIC_CLOCK, Frequency, SimTime


class Bram(RamRegion):
    """On-chip block RAM.

    True dual-port BRAM at fabric clock: 1-cycle read latency, full
    per-cycle throughput at the port width.

    Parameters
    ----------
    size:
        Capacity in bytes.
    width_bytes:
        Port width (the XDMA example design uses a 64-bit = 8-byte AXI
        data path at x2 Gen2; the VirtIO design matches it, per
        Section III-B2 "minor modifications ... to match that used in the
        VirtIO design").
    clock:
        Fabric clock (125 MHz by default).
    """

    def __init__(
        self,
        size: int = 64 << 10,
        width_bytes: int = 1,
        clock: Frequency = FPGA_FABRIC_CLOCK,
        name: str = "bram",
    ) -> None:
        super().__init__(size, name)
        if width_bytes <= 0 or width_bytes & (width_bytes - 1):
            raise ValueError(f"width_bytes must be a power of two, got {width_bytes}")
        self.width_bytes = width_bytes
        self.clock = clock

    def access_time(self, length: int) -> SimTime:
        """Cycles to stream *length* bytes through one port, as time."""
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        beats = (length + self.width_bytes - 1) // self.width_bytes
        # 1 setup cycle + 1 beat per width.
        return self.clock.cycles_to_time(1 + beats)


class FpgaDram(RamRegion):
    """External DDR attached to the FPGA.

    Modeled as fixed row-activation latency plus streaming at the
    controller's effective bandwidth.
    """

    def __init__(
        self,
        size: int = 256 << 20,
        activate_ns: float = 45.0,
        bandwidth_bytes_per_s: float = 1.6e9,
        name: str = "fpga-dram",
    ) -> None:
        super().__init__(size, name)
        if activate_ns < 0:
            raise ValueError(f"activate_ns must be >= 0, got {activate_ns}")
        if bandwidth_bytes_per_s <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bytes_per_s}")
        self.activate_ns = activate_ns
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s

    def access_time(self, length: int) -> SimTime:
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        stream_ps = length / self.bandwidth_bytes_per_s * 1e12
        return round(self.activate_ns * 1000 + stream_ps)
