"""XDMA scatter-gather descriptor format.

PG195 descriptors are 32 bytes::

    [0]  control: magic (0xAD4B) in [31:16], nxt_adj in [13:8],
         flags in [7:0] (STOP, COMPLETED, EOP)
    [4]  length in bytes (28 bits)
    [8]  src address low
    [12] src address high
    [16] dst address low
    [20] dst address high
    [24] next descriptor address low
    [28] next descriptor address high

For H2C the source is a host address and the destination an AXI (card)
address; for C2H the reverse.  The same encoding is used on the
descriptor-bypass port, which is how the VirtIO controller drives the
engines without host-resident descriptor rings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.layout import read_u32, write_u32

DESCRIPTOR_SIZE = 32
DESCRIPTOR_MAGIC = 0xAD4B
MAX_DESCRIPTOR_LENGTH = (1 << 28) - 1

# Control flag bits.
DESC_STOP = 1 << 0
DESC_COMPLETED = 1 << 1
DESC_EOP = 1 << 4


class DescriptorError(ValueError):
    """Malformed descriptor (bad magic, oversized length)."""


@dataclass(frozen=True)
class XdmaDescriptor:
    """Decoded descriptor."""

    src_addr: int
    dst_addr: int
    length: int
    stop: bool = True
    eop: bool = True
    completed_irq: bool = False
    nxt_adj: int = 0
    next_addr: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.length <= MAX_DESCRIPTOR_LENGTH:
            raise DescriptorError(f"descriptor length {self.length} out of range")
        if self.src_addr < 0 or self.dst_addr < 0 or self.next_addr < 0:
            raise DescriptorError("negative address in descriptor")
        if not 0 <= self.nxt_adj < 64:
            raise DescriptorError(f"nxt_adj {self.nxt_adj} out of range")

    def encode(self) -> bytes:
        """Serialize to the 32-byte wire format."""
        buf = bytearray(DESCRIPTOR_SIZE)
        flags = 0
        if self.stop:
            flags |= DESC_STOP
        if self.completed_irq:
            flags |= DESC_COMPLETED
        if self.eop:
            flags |= DESC_EOP
        control = (DESCRIPTOR_MAGIC << 16) | ((self.nxt_adj & 0x3F) << 8) | flags
        write_u32(buf, 0, control)
        write_u32(buf, 4, self.length)
        write_u32(buf, 8, self.src_addr & 0xFFFF_FFFF)
        write_u32(buf, 12, self.src_addr >> 32)
        write_u32(buf, 16, self.dst_addr & 0xFFFF_FFFF)
        write_u32(buf, 20, self.dst_addr >> 32)
        write_u32(buf, 24, self.next_addr & 0xFFFF_FFFF)
        write_u32(buf, 28, self.next_addr >> 32)
        return bytes(buf)

    @classmethod
    def decode(cls, data: bytes) -> "XdmaDescriptor":
        """Parse the 32-byte wire format (validates the magic)."""
        if len(data) != DESCRIPTOR_SIZE:
            raise DescriptorError(f"descriptor must be {DESCRIPTOR_SIZE}B, got {len(data)}")
        control = read_u32(data, 0)
        if (control >> 16) != DESCRIPTOR_MAGIC:
            raise DescriptorError(f"bad descriptor magic {control >> 16:#x}")
        flags = control & 0xFF
        return cls(
            src_addr=read_u32(data, 8) | (read_u32(data, 12) << 32),
            dst_addr=read_u32(data, 16) | (read_u32(data, 20) << 32),
            length=read_u32(data, 4),
            stop=bool(flags & DESC_STOP),
            eop=bool(flags & DESC_EOP),
            completed_irq=bool(flags & DESC_COMPLETED),
            nxt_adj=(control >> 8) & 0x3F,
            next_addr=read_u32(data, 24) | (read_u32(data, 28) << 32),
        )
