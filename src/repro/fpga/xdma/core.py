"""XDMA IP top level.

Composes the PCIe endpoint, the register file exposed through the DMA
config BAR, the H2C/C2H engines, the IRQ block, and the AXI
memory-mapped master toward FPGA-side memory (BRAM in both of the
paper's designs).

BAR layout matches the paper's XDMA example design:

* **BAR0** -- AXI-MM bypass window: host accesses go straight to the AXI
  address space (the example design wires a BRAM here; Section III-B2).
* **BAR1** -- XDMA DMA/config register space (PG195 layout subset).
* **BAR2** -- MSI-X table/PBA (the real IP embeds it in the DMA BAR; a
  separate BAR keeps decode simple and is driver-invisible since drivers
  locate the table via the MSI-X capability's BIR field).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.faults.plan import KIND_LOST_IRQ, KIND_SPURIOUS_USR_IRQ, SITE_XDMA_ENGINE
from repro.mem.bufpool import BufferPool
from repro.mem.region import AddressSpace, MemoryRegion
from repro.pcie.config_space import ConfigSpace
from repro.pcie.device import PcieEndpoint
from repro.pcie.link import PcieLink
from repro.fpga.perf_counter import PerfCounterBank
from repro.fpga.registers import RegisterFile
from repro.fpga.xdma.engine import Direction, DmaEngine
from repro.fpga.xdma.regs import (
    C2H_CHANNEL_BASE,
    C2H_SGDMA_BASE,
    CFG_IDENTIFIER,
    CHAN_COMPLETED_DESC_COUNT,
    CHAN_CONTROL,
    CHAN_IDENTIFIER,
    CHAN_POLL_MODE_WB_HI,
    CHAN_POLL_MODE_WB_LO,
    CHAN_STATUS,
    CHANNEL_STRIDE,
    CONFIG_BLOCK_BASE,
    DMA_BAR_SIZE,
    H2C_CHANNEL_BASE,
    H2C_SGDMA_BASE,
    IRQ_BLOCK_BASE,
    IRQ_CHANNEL_INT_ENABLE,
    IRQ_CHANNEL_VECTOR_BASE,
    IRQ_IDENTIFIER,
    IRQ_USER_INT_ENABLE,
    IRQ_USER_VECTOR_BASE,
    SGDMA_DESC_ADJACENT,
    SGDMA_DESC_HI,
    SGDMA_DESC_LO,
    channel_identifier,
)
from repro.sim.component import Component
from repro.sim.time import FPGA_FABRIC_CLOCK, Frequency, SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

#: Xilinx vendor ID and the XDMA example design's device ID.
XILINX_VENDOR_ID = 0x10EE
XDMA_DEVICE_ID = 0x7024

#: Default AXI address where FPGA memory (BRAM) is mapped.
AXI_BRAM_BASE = 0x0000_0000

#: Number of user interrupt lines exposed to fabric logic.
NUM_USER_IRQS = 4


class AxiWindow(MemoryRegion):
    """A BAR window that forwards accesses into the AXI address space
    (the XDMA 'AXI Memory Mapped' bypass interface)."""

    def __init__(self, axi_space: AddressSpace, size: int, name: str = "axi-window") -> None:
        super().__init__(size, name)
        self.axi_space = axi_space

    def read(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        return self.axi_space.read(offset, length)

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self.axi_space.write(offset, data)


class XdmaCore(Component):
    """The DMA/Bridge Subsystem for PCI Express, as one component.

    Parameters
    ----------
    sim, link:
        Simulator and the endpoint link from the root complex.
    h2c_channels / c2h_channels:
        Channel counts (the paper's designs use one of each).
    device_config:
        Optional externally built config space.  The VirtIO FPGA device
        passes its own (VirtIO vendor/device IDs + VirtIO capabilities)
        -- this mirrors the paper's Section II-C: announcing VirtIO IDs
        "may require modifications to the vendor-provided PCIe IPs".
    """

    def __init__(
        self,
        sim: "Simulator",
        link: PcieLink,
        name: str = "xdma",
        parent: Optional[Component] = None,
        h2c_channels: int = 1,
        c2h_channels: int = 1,
        clock: Frequency = FPGA_FABRIC_CLOCK,
        device_config: Optional[ConfigSpace] = None,
        msix_vectors: int = 8,
        axi_bypass_size: int = 1 << 20,
        tracer=None,
    ) -> None:
        super().__init__(sim, name, parent=parent, tracer=tracer)
        self.clock = clock
        config = device_config or ConfigSpace(
            vendor_id=XILINX_VENDOR_ID,
            device_id=XDMA_DEVICE_ID,
            class_code=0x058000,  # memory controller: other
        )
        self.endpoint = PcieEndpoint(sim, link, config, name="ep", parent=self)
        self.perf = PerfCounterBank(sim, name="perf", parent=self, clock=clock)
        #: Fault injector, attached by repro.faults after boot (None in
        #: normal runs -- every fault hook is gated on this).
        self.injector = None
        self.irqs_lost = 0
        self.spurious_user_irqs = 0

        # AXI-MM master address space toward fabric memories/logic.
        self.axi_space = AddressSpace(name=f"{name}.axi")
        #: Pooled staging buffers for C2H payload snapshots (recycled
        #: bytearray segments; see repro.mem.bufpool).
        self.bufpool = BufferPool(segment_size=2048, name=f"{name}.bufpool")

        # Engines.
        self.h2c: List[DmaEngine] = [
            DmaEngine(sim, self, Direction.H2C, i, parent=self) for i in range(h2c_channels)
        ]
        self.c2h: List[DmaEngine] = [
            DmaEngine(sim, self, Direction.C2H, i, parent=self) for i in range(c2h_channels)
        ]

        # IRQ block state.
        self.user_int_enable = 0
        self.channel_int_enable = 0
        self.user_vectors = list(range(NUM_USER_IRQS))
        self.channel_vectors = list(range(h2c_channels + c2h_channels))

        # Register file behind BAR1.
        self.regs = RegisterFile(DMA_BAR_SIZE, name=f"{name}.regs")
        self._build_registers()

        # BARs.
        self.endpoint.attach_bar(0, AxiWindow(self.axi_space, axi_bypass_size))
        self.endpoint.attach_bar(1, self.regs.as_region())
        self.endpoint.enable_msix(msix_vectors, bar_index=2)

    # -- register construction ----------------------------------------------------

    def _build_registers(self) -> None:
        for i, engine in enumerate(self.h2c):
            self._build_channel_registers(H2C_CHANNEL_BASE, H2C_SGDMA_BASE, 0, 4, i, engine)
        for i, engine in enumerate(self.c2h):
            self._build_channel_registers(C2H_CHANNEL_BASE, C2H_SGDMA_BASE, 1, 5, i, engine)
        self.regs.reg(
            "cfg_identifier",
            CONFIG_BLOCK_BASE + CFG_IDENTIFIER,
            reset=channel_identifier(3, 0),
            read_only=True,
        )
        self._build_irq_registers()

    def _build_channel_registers(
        self,
        chan_base: int,
        sgdma_base: int,
        target: int,
        sgdma_target: int,
        index: int,
        engine: DmaEngine,
    ) -> None:
        cbase = chan_base + index * CHANNEL_STRIDE
        sbase = sgdma_base + index * CHANNEL_STRIDE
        prefix = f"{engine.direction.value}{index}"
        self.regs.reg(
            f"{prefix}_identifier",
            cbase + CHAN_IDENTIFIER,
            reset=channel_identifier(target, index),
            read_only=True,
        )
        self.regs.reg(
            f"{prefix}_control",
            cbase + CHAN_CONTROL,
            write_hook=engine.control_write,
        )
        self.regs.reg(
            f"{prefix}_status",
            cbase + CHAN_STATUS,
            read_hook=engine.status_read,
            read_only=False,
        )
        self.regs.reg(
            f"{prefix}_completed",
            cbase + CHAN_COMPLETED_DESC_COUNT,
            read_hook=engine.completed_count_read,
            read_only=True,
        )
        self.regs.reg(
            f"{prefix}_poll_wb_lo",
            cbase + CHAN_POLL_MODE_WB_LO,
            write_hook=lambda v, e=engine: setattr(e, "poll_wb_lo", v),
        )
        self.regs.reg(
            f"{prefix}_poll_wb_hi",
            cbase + CHAN_POLL_MODE_WB_HI,
            write_hook=lambda v, e=engine: setattr(e, "poll_wb_hi", v),
        )
        self.regs.reg(
            f"{prefix}_sgdma_identifier",
            sbase + CHAN_IDENTIFIER,
            reset=channel_identifier(sgdma_target, index),
            read_only=True,
        )
        self.regs.reg(
            f"{prefix}_desc_lo",
            sbase + SGDMA_DESC_LO,
            write_hook=lambda v, e=engine: setattr(e, "desc_lo", v),
        )
        self.regs.reg(
            f"{prefix}_desc_hi",
            sbase + SGDMA_DESC_HI,
            write_hook=lambda v, e=engine: setattr(e, "desc_hi", v),
        )
        self.regs.reg(
            f"{prefix}_desc_adjacent",
            sbase + SGDMA_DESC_ADJACENT,
            write_hook=lambda v, e=engine: setattr(e, "desc_adjacent", v),
        )

    def _build_irq_registers(self) -> None:
        base = IRQ_BLOCK_BASE
        self.regs.reg(
            "irq_identifier", base + IRQ_IDENTIFIER, reset=channel_identifier(2, 0), read_only=True
        )
        self.regs.reg(
            "irq_user_int_enable",
            base + IRQ_USER_INT_ENABLE,
            write_hook=lambda v: setattr(self, "user_int_enable", v),
        )
        self.regs.reg(
            "irq_channel_int_enable",
            base + IRQ_CHANNEL_INT_ENABLE,
            write_hook=lambda v: setattr(self, "channel_int_enable", v),
        )
        for i in range(NUM_USER_IRQS):
            self.regs.reg(
                f"irq_user_vector{i}",
                base + IRQ_USER_VECTOR_BASE + 4 * i,
                reset=self.user_vectors[i],
                write_hook=lambda v, i=i: self.user_vectors.__setitem__(i, v & 0x1F),
            )
        for i in range(len(self.channel_vectors)):
            self.regs.reg(
                f"irq_channel_vector{i}",
                base + IRQ_CHANNEL_VECTOR_BASE + 4 * i,
                reset=self.channel_vectors[i],
                write_hook=lambda v, i=i: self.channel_vectors.__setitem__(i, v & 0x1F),
            )

    # -- AXI master -----------------------------------------------------------------

    def attach_axi(self, base: int, region: MemoryRegion) -> None:
        """Map FPGA-side memory or logic at an AXI address."""
        self.axi_space.map(base, region)

    def axi_read(self, addr: int, length: int) -> bytes:
        return self.axi_space.read(addr, length)

    def axi_write(self, addr: int, data: bytes) -> None:
        self.axi_space.write(addr, data)

    def axi_read_into(self, addr: int, buf) -> None:
        """Read ``len(buf)`` AXI bytes straight into caller-owned *buf*
        (no intermediate ``bytes``)."""
        self.axi_space.read_into(addr, buf)

    def axi_access_time(self, addr: int, length: int) -> SimTime:
        """Access time of the AXI target at *addr* (regions without a
        timing model cost one fabric cycle)."""
        region = self.axi_space.region_at(addr)
        access_time = getattr(region, "access_time", None)
        if access_time is not None:
            return access_time(length)
        return self.clock.period_ps

    # -- interrupts -------------------------------------------------------------------

    def _channel_irq_index(self, engine: DmaEngine) -> int:
        """IRQ-block channel index: H2C channels first, then C2H."""
        if engine.direction is Direction.H2C:
            return engine.channel
        return len(self.h2c) + engine.channel

    def raise_channel_irq(self, engine: DmaEngine) -> None:
        """Channel interrupt request (engine completion path)."""
        index = self._channel_irq_index(engine)
        if not (self.channel_int_enable >> index) & 1:
            self.trace("channel-irq-masked", channel=index)
            return
        if (
            self.injector is not None
            and self.injector.fire(SITE_XDMA_ENGINE, KIND_LOST_IRQ) is not None
        ):
            # The interrupt request pulse is swallowed before it reaches
            # the MSI-X machinery; the engine status still shows the
            # transfer completed, so the driver can recover by polling.
            self.irqs_lost += 1
            self.trace("channel-irq-lost", channel=index)
            return
        vector = self.channel_vectors[index]
        self.trace("channel-irq", channel=index, vector=vector)
        self.endpoint.raise_msix(vector)

    def raise_user_irq(self, index: int) -> None:
        """User interrupt request from fabric logic (usr_irq_req)."""
        if not 0 <= index < NUM_USER_IRQS:
            raise IndexError(f"user irq {index} out of range 0..{NUM_USER_IRQS - 1}")
        if not (self.user_int_enable >> index) & 1:
            self.trace("user-irq-masked", line=index)
            return
        vector = self.user_vectors[index]
        self.trace("user-irq", line=index, vector=vector)
        self.endpoint.raise_msix(vector)
        if (
            self.injector is not None
            and self.injector.fire(SITE_XDMA_ENGINE, KIND_SPURIOUS_USR_IRQ) is not None
        ):
            # Glitchy usr_irq_req line: the host sees the vector twice
            # and its handler must tolerate the spurious second firing.
            self.spurious_user_irqs += 1
            self.trace("user-irq-spurious", line=index, vector=vector)
            self.endpoint.raise_msix(vector)

    # -- statistics --------------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, int]:
        out = dict(self.endpoint.stats)
        for engine in self.h2c + self.c2h:
            out[f"{engine.name}_descriptors"] = engine.descriptors_executed
            out[f"{engine.name}_bytes"] = engine.bytes_moved
        return out
