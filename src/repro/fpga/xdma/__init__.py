"""Model of the Xilinx DMA/Bridge Subsystem for PCI Express (XDMA).

The PCIe IP used by both FPGA designs in the paper (Section III-B).
See :mod:`repro.fpga.xdma.core` for the top level.
"""

from repro.fpga.xdma.core import (
    AXI_BRAM_BASE,
    NUM_USER_IRQS,
    XDMA_DEVICE_ID,
    XILINX_VENDOR_ID,
    AxiWindow,
    XdmaCore,
)
from repro.fpga.xdma.descriptor import (
    DESC_COMPLETED,
    DESC_EOP,
    DESC_STOP,
    DESCRIPTOR_MAGIC,
    DESCRIPTOR_SIZE,
    DescriptorError,
    XdmaDescriptor,
)
from repro.fpga.xdma.engine import (
    COMPLETION_CYCLES,
    DESC_PROCESS_CYCLES,
    Direction,
    DmaEngine,
)
from repro.fpga.xdma import regs

__all__ = [
    "AXI_BRAM_BASE",
    "AxiWindow",
    "COMPLETION_CYCLES",
    "DESC_COMPLETED",
    "DESC_EOP",
    "DESC_PROCESS_CYCLES",
    "DESC_STOP",
    "DESCRIPTOR_MAGIC",
    "DESCRIPTOR_SIZE",
    "DescriptorError",
    "Direction",
    "DmaEngine",
    "NUM_USER_IRQS",
    "XDMA_DEVICE_ID",
    "XILINX_VENDOR_ID",
    "XdmaCore",
    "XdmaDescriptor",
    "regs",
]
