"""XDMA H2C/C2H DMA engine finite-state machines.

Each engine supports the two operating modes of the real IP:

**SGDMA mode** (used by the reference XDMA driver): the driver places
descriptors in host memory, programs the SGDMA descriptor-pointer
registers, and sets the Run bit.  The engine then *fetches* each
descriptor over PCIe (a non-posted read round trip), executes it, and
finally sets status bits, optionally writes back the completed count,
and raises its channel interrupt.

**Descriptor-bypass mode** (used by the VirtIO controller, per the
paper's Fig. 2: "The VirtIO controller ... controls the DMA engine of
the XDMA IP"): fabric logic feeds descriptors directly through the
bypass port; no host-resident descriptor, no fetch round trip.  Each
submission completes with an event the controller chains on.

Execution timing = descriptor processing cycles + PCIe transfer
(request segmentation, serialization, completion reassembly -- all from
:mod:`repro.pcie`) + AXI-side memory access time.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Deque, Optional, Tuple

from repro.faults.plan import KIND_DESC_ERROR, KIND_ENGINE_STALL, SITE_XDMA_ENGINE
from repro.fpga.xdma.descriptor import DescriptorError, XdmaDescriptor
from repro.fpga.xdma.regs import (
    CTRL_IE_DESC_COMPLETED,
    CTRL_IE_DESC_STOPPED,
    CTRL_POLLMODE_WB_ENABLE,
    CTRL_RUN,
    STAT_BUSY,
    STAT_DESC_COMPLETED,
    STAT_DESC_ERROR,
    STAT_DESC_STOPPED,
)
from repro.sim.component import Component
from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.fpga.xdma.core import XdmaCore
    from repro.sim.kernel import Simulator


class Direction(enum.Enum):
    """Transfer direction, named from the host's point of view."""

    H2C = "h2c"  # host to card
    C2H = "c2h"  # card to host


#: Fabric cycles to decode a descriptor and set up the data mover.
#: The byte-serial data path parses the 32-byte descriptor one byte per
#: cycle and reloads the mover's address/length registers, hence the
#: multi-tens-of-cycles setup.
DESC_PROCESS_CYCLES = 40
#: Fabric cycles from final beat to status/writeback emission.
COMPLETION_CYCLES = 4


class DmaEngine(Component):
    """One DMA channel (direction + index) of the XDMA IP."""

    def __init__(
        self,
        sim: "Simulator",
        core: "XdmaCore",
        direction: Direction,
        channel: int,
        parent: Optional[Component] = None,
    ) -> None:
        super().__init__(sim, f"{direction.value}{channel}", parent=parent)
        self.core = core
        self.direction = direction
        self.channel = channel
        # Fixed fabric-time costs (the clock never changes after build).
        self._desc_process_time = core.clock.cycles_to_time(DESC_PROCESS_CYCLES)
        self._bypass_event_name = f"{self.path}.bypass"
        self._completion_time = core.clock.cycles_to_time(COMPLETION_CYCLES)
        # Register state (mirrored by the register file hooks).
        self.control = 0
        self.status = STAT_DESC_STOPPED
        self.completed_count = 0
        self.desc_lo = 0
        self.desc_hi = 0
        self.desc_adjacent = 0
        self.poll_wb_lo = 0
        self.poll_wb_hi = 0
        # Bypass mode.
        self._bypass_fifo: Deque[Tuple[XdmaDescriptor, Event]] = deque()
        self._bypass_busy = False
        # Statistics.
        self.descriptors_executed = 0
        self.bytes_moved = 0
        self.last_descriptor_length = 0
        #: Optional fabric-side hook invoked when an SGDMA run finishes
        #: (the A1 ablation's "user logic monitoring the engine's status
        #: signals" wires this to a user interrupt).
        self.completion_hook: Optional[callable] = None

    # -- register hooks ---------------------------------------------------------

    @property
    def descriptor_address(self) -> int:
        return (self.desc_hi << 32) | self.desc_lo

    @property
    def poll_wb_address(self) -> int:
        return (self.poll_wb_hi << 32) | self.poll_wb_lo

    @property
    def busy(self) -> bool:
        return bool(self.status & STAT_BUSY)

    def control_write(self, value: int) -> None:
        """Control register write hook (Run bit edge starts SGDMA)."""
        was_running = bool(self.control & CTRL_RUN)
        self.control = value
        now_running = bool(value & CTRL_RUN)
        if now_running and not was_running and not self.busy:
            self.trace("sgdma-start", desc_addr=self.descriptor_address)
            self.spawn(self._run_sgdma(), name="sgdma")

    def status_read(self) -> int:
        return self.status

    def completed_count_read(self) -> int:
        return self.completed_count

    # -- SGDMA mode --------------------------------------------------------------

    def _run_sgdma(self):
        """Process body: fetch-execute descriptor chain until STOP."""
        self.status = STAT_BUSY
        perf = self.core.perf
        perf.start(self._perf_name())
        injector = self.core.injector
        addr = self.descriptor_address
        while True:
            raw = yield self.core.endpoint.dma_read(addr, 32)
            if injector is not None:
                if injector.fire(SITE_XDMA_ENGINE, KIND_DESC_ERROR) is not None:
                    # The fetch returned garbage: zero the control dword
                    # so the magic check fails, as a real bit error would.
                    raw = b"\x00\x00\x00\x00" + raw[4:]
                try:
                    desc = XdmaDescriptor.decode(raw)
                except DescriptorError as err:
                    yield self._completion_time
                    self.status = STAT_DESC_STOPPED | STAT_DESC_ERROR
                    perf.stop(self._perf_name())
                    self.trace("sgdma-desc-error", error=str(err))
                    # PG195 halts the engine with the error status bit
                    # set and raises no completion; the host driver must
                    # notice via its request timeout.
                    return
                spec = injector.fire(SITE_XDMA_ENGINE, KIND_ENGINE_STALL)
                if spec is not None:
                    self.trace("engine-stall")
                    yield injector.delay_ps(spec, default_ns=1_000_000.0)
            else:
                desc = XdmaDescriptor.decode(raw)
            yield from self._execute(desc)
            self.completed_count += 1
            if desc.stop or not (self.control & CTRL_RUN):
                break
            addr = desc.next_addr
        yield self._completion_time
        self.status = STAT_DESC_STOPPED | STAT_DESC_COMPLETED
        perf.stop(self._perf_name())
        if self.control & CTRL_POLLMODE_WB_ENABLE and self.poll_wb_address:
            wb = self.completed_count.to_bytes(4, "little")
            yield self.core.endpoint.dma_write(self.poll_wb_address, wb)
        if self.control & (CTRL_IE_DESC_STOPPED | CTRL_IE_DESC_COMPLETED):
            self.core.raise_channel_irq(self)
        if self.completion_hook is not None:
            self.completion_hook()
        self.trace("sgdma-done", completed=self.completed_count)

    def _perf_name(self) -> str:
        return f"{self.direction.value}{self.channel}_dma"

    # -- descriptor bypass mode ------------------------------------------------------

    def submit_bypass(self, desc: XdmaDescriptor) -> Event:
        """Feed a descriptor through the bypass port.

        Returns an event fired when the data movement for this
        descriptor is complete.  Descriptors execute in submission
        order, one at a time (the engine has a single data mover).
        """
        done = Event(name=self._bypass_event_name)
        self._bypass_fifo.append((desc, done))
        if not self._bypass_busy:
            self._bypass_busy = True
            self.spawn(self._run_bypass(), name="bypass")
        return done

    def _run_bypass(self):
        """Process body: drain the bypass FIFO."""
        while self._bypass_fifo:
            desc, done = self._bypass_fifo.popleft()
            self.status = STAT_BUSY
            yield from self._execute(desc)
            self.status = STAT_DESC_STOPPED | STAT_DESC_COMPLETED
            done.trigger(None)
        self._bypass_busy = False

    # -- shared data mover ----------------------------------------------------------

    def _execute(self, desc: XdmaDescriptor):
        """Move one descriptor's worth of data."""
        yield self._desc_process_time
        if self.direction is Direction.H2C:
            data = yield self.core.endpoint.dma_read(desc.src_addr, desc.length)
            yield self.core.axi_access_time(desc.dst_addr, desc.length)
            self.core.axi_write(desc.dst_addr, data)
        else:
            yield self.core.axi_access_time(desc.src_addr, desc.length)
            # Snapshot the AXI source into a pooled buffer: the staging
            # slot may be rewritten while the write TLPs are in flight,
            # so the payload views must reference this private copy.
            ref = self.core.bufpool.acquire(desc.length)
            self.core.axi_read_into(desc.src_addr, ref.view())
            yield self.core.endpoint.dma_write(desc.dst_addr, ref.handoff())
            # The delivery event fired: the link holds no live payload
            # views, so the segment can be recycled.
            ref.release()
        self.descriptors_executed += 1
        self.bytes_moved += desc.length
        self.last_descriptor_length = desc.length
        if self.tracer.enabled:
            self.trace(
                "desc-executed",
                direction=self.direction.value,
                length=desc.length,
                src=desc.src_addr,
                dst=desc.dst_addr,
            )
