"""XDMA register map constants.

Follows the shape of PG195 ("DMA/Bridge Subsystem for PCI Express v4.1",
the IP used by the paper, its reference [31]): the DMA register BAR is
divided into 4 KiB blocks per functional target, identified by the upper
address bits; each channel block carries identifier/control/status
registers, and the SGDMA blocks carry the descriptor pointers.

Only the registers the reference driver actually touches on the data
path are implemented; identifiers are present so driver-side sanity
checks (reading the subsystem identifier) behave like real hardware.
"""

from __future__ import annotations

#: Size of the DMA config BAR.
DMA_BAR_SIZE = 64 << 10

# -- target block bases (upper bits of the register offset) -----------------
H2C_CHANNEL_BASE = 0x0000
C2H_CHANNEL_BASE = 0x1000
IRQ_BLOCK_BASE = 0x2000
CONFIG_BLOCK_BASE = 0x3000
H2C_SGDMA_BASE = 0x4000
C2H_SGDMA_BASE = 0x5000
SGDMA_COMMON_BASE = 0x6000

#: Stride between channels within a target block (channel N at base+N*0x100).
CHANNEL_STRIDE = 0x100

# -- channel register offsets (within a channel block) ---------------------------
CHAN_IDENTIFIER = 0x00
CHAN_CONTROL = 0x04
CHAN_STATUS = 0x40
CHAN_COMPLETED_DESC_COUNT = 0x48
CHAN_ALIGNMENTS = 0x4C
CHAN_POLL_MODE_WB_LO = 0x88
CHAN_POLL_MODE_WB_HI = 0x8C
CHAN_INT_ENABLE_MASK = 0x90

# Control register bits.
CTRL_RUN = 1 << 0
CTRL_IE_DESC_STOPPED = 1 << 1
CTRL_IE_DESC_COMPLETED = 1 << 2
CTRL_POLLMODE_WB_ENABLE = 1 << 26

# Status register bits.
STAT_BUSY = 1 << 0
STAT_DESC_STOPPED = 1 << 1
STAT_DESC_COMPLETED = 1 << 2
STAT_DESC_ERROR = 1 << 19  # descriptor magic/format error (PG195 bit 19)

# -- SGDMA register offsets (within a channel's SGDMA block) ----------------------
SGDMA_DESC_LO = 0x80
SGDMA_DESC_HI = 0x84
SGDMA_DESC_ADJACENT = 0x88
SGDMA_DESC_CREDITS = 0x8C

# -- IRQ block registers -------------------------------------------------------------
IRQ_IDENTIFIER = 0x00
IRQ_USER_INT_ENABLE = 0x04
IRQ_CHANNEL_INT_ENABLE = 0x10
IRQ_USER_INT_REQUEST = 0x40
IRQ_CHANNEL_INT_REQUEST = 0x44
IRQ_USER_VECTOR_BASE = 0x80  # 4 regs, 4 vectors each (nibble-packed in HW; one per reg here)
IRQ_CHANNEL_VECTOR_BASE = 0xA0

# -- config block --------------------------------------------------------------------
CFG_IDENTIFIER = 0x00

#: Identifier register magic: upper 20 bits of every XDMA identifier
#: register read 0x1fc. Subsystem for channel blocks encodes target+id.
IDENTIFIER_MAGIC = 0x1FC0_0000


def channel_identifier(target: int, channel: int, stream: bool = False) -> int:
    """Compose an identifier register value as PG195 does: magic,
    target (H2C=0, C2H=1, IRQ=2, CFG=3, SGDMA=4/5), stream bit, id."""
    return IDENTIFIER_MAGIC | ((target & 0xF) << 16) | ((1 if stream else 0) << 15) | (
        channel & 0xF
    )
