"""Register file: named 32-bit registers behind an MMIO region.

Hardware blocks (the XDMA IP, the VirtIO controller) declare registers
with optional read/write hooks; the file exposes itself as an
:class:`~repro.mem.region.MmioRegion` for BAR attachment and as a plain
Python attribute-ish API for fabric-side logic.

Registers are 32 bits wide (the access width of both the XDMA register
space and the VirtIO PCI configuration structures for their control
fields; wider VirtIO fields are composed of two registers by the
controller).  Sub-word MMIO access is supported because VirtIO drivers
legitimately issue 1- and 2-byte accesses to config structures.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.mem.region import MmioRegion

ReadHook = Callable[[], int]
WriteHook = Callable[[int], None]


class Register:
    """One 32-bit register with optional hooks.

    ``read_hook`` overrides the stored value on reads (computed/status
    registers); ``write_hook`` observes the new value after storage
    (doorbells, control bits).  ``read_only`` silently drops writes,
    matching typical hardware.
    """

    __slots__ = ("name", "offset", "value", "read_hook", "write_hook", "read_only")

    def __init__(
        self,
        name: str,
        offset: int,
        reset: int = 0,
        read_hook: Optional[ReadHook] = None,
        write_hook: Optional[WriteHook] = None,
        read_only: bool = False,
    ) -> None:
        if offset % 4:
            raise ValueError(f"register {name!r} offset {offset:#x} not dword-aligned")
        if not 0 <= reset <= 0xFFFF_FFFF:
            raise ValueError(f"register {name!r} reset value out of range")
        self.name = name
        self.offset = offset
        self.value = reset
        self.read_hook = read_hook
        self.write_hook = write_hook
        self.read_only = read_only

    def read(self) -> int:
        if self.read_hook is not None:
            self.value = self.read_hook() & 0xFFFF_FFFF
        return self.value

    def write(self, value: int) -> None:
        if self.read_only:
            return
        self.value = value & 0xFFFF_FFFF
        if self.write_hook is not None:
            self.write_hook(self.value)


class RegisterFile:
    """A bank of registers plus backing bytes for unregistered offsets.

    Unregistered offsets behave as scratch RAM -- VirtIO device-specific
    config areas contain byte fields (MAC address) that are simpler to
    keep as raw bytes than as registers.
    """

    def __init__(self, size: int, name: str = "regs") -> None:
        if size % 4:
            raise ValueError(f"register file size {size} not dword-aligned")
        self.size = size
        self.name = name
        self._registers: Dict[int, Register] = {}
        self._shadow = bytearray(size)

    def add(self, register: Register) -> Register:
        if register.offset + 4 > self.size:
            raise ValueError(
                f"register {register.name!r} at {register.offset:#x} outside file of {self.size:#x}"
            )
        if register.offset in self._registers:
            raise ValueError(f"offset {register.offset:#x} already has a register")
        self._registers[register.offset] = register
        return register

    def reg(
        self,
        name: str,
        offset: int,
        reset: int = 0,
        read_hook: Optional[ReadHook] = None,
        write_hook: Optional[WriteHook] = None,
        read_only: bool = False,
    ) -> Register:
        """Declare-and-add convenience."""
        return self.add(
            Register(name, offset, reset, read_hook, write_hook, read_only)
        )

    def __getitem__(self, offset: int) -> Register:
        return self._registers[offset]

    def by_name(self, name: str) -> Register:
        for reg in self._registers.values():
            if reg.name == name:
                return reg
        raise KeyError(f"no register named {name!r} in {self.name!r}")

    # -- MMIO semantics -------------------------------------------------------

    def mmio_read(self, offset: int, length: int) -> bytes:
        """Read; may span registers and scratch bytes."""
        out = bytearray()
        pos = offset
        end = offset + length
        while pos < end:
            base = pos & ~3
            reg = self._registers.get(base)
            if reg is not None:
                word = reg.read().to_bytes(4, "little")
            else:
                word = bytes(self._shadow[base : base + 4])
            take_from = pos - base
            take = min(4 - take_from, end - pos)
            out += word[take_from : take_from + take]
            pos += take
        return bytes(out)

    def mmio_write(self, offset: int, data: bytes) -> None:
        """Write; sub-word writes to registers read-modify-write the
        stored value (hooks fire with the merged word)."""
        pos = offset
        end = offset + len(data)
        while pos < end:
            base = pos & ~3
            take_from = pos - base
            take = min(4 - take_from, end - pos)
            chunk = data[pos - offset : pos - offset + take]
            reg = self._registers.get(base)
            if reg is not None:
                word = bytearray(reg.value.to_bytes(4, "little"))
                word[take_from : take_from + take] = chunk
                reg.write(int.from_bytes(word, "little"))
            else:
                self._shadow[base + take_from : base + take_from + take] = chunk
            pos += take

    def as_region(self) -> MmioRegion:
        """Wrap as a BAR-attachable MMIO region."""
        return MmioRegion(self.size, self.mmio_read, self.mmio_write, name=self.name)

    # -- scratch access for fabric logic -------------------------------------------

    def scratch_read(self, offset: int, length: int) -> bytes:
        return bytes(self._shadow[offset : offset + length])

    def scratch_write(self, offset: int, data: bytes) -> None:
        self._shadow[offset : offset + len(data)] = data
