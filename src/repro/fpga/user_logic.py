"""User logic: the application side of the paper's Fig. 2.

The VirtIO controller exposes RX/TX queue interfaces "that follow the
same semantics as a virtqueue" to user logic.  For the latency
experiments the user logic is a UDP echo responder: "The user logic on
the FPGA responds with a UDP packet of the same size" (Section IV-B).

Processing cost is charged in fabric cycles at 125 MHz: streaming passes
over the frame at the 8-byte datapath width plus fixed parse/build
overhead.  The checksum engine used when VIRTIO_NET_F_CSUM offload is
negotiated is modeled the same way (one streaming pass).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.host.netstack.ethernet import ETH_HEADER_SIZE, ETH_P_IP, EthernetFrame
from repro.host.netstack.ip import IP_HEADER_SIZE, IPPROTO_UDP, Ipv4Header
from repro.host.netstack.udp import UdpHeader, udp_checksum
from repro.sim.component import Component
from repro.sim.time import FPGA_FABRIC_CLOCK, Frequency, SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

#: Datapath width of the modeled designs (matches the byte-serial BRAM port).
DATAPATH_BYTES = 1


def streaming_cycles(length: int, fixed: int = 4) -> int:
    """Cycles for one pass over *length* bytes at the datapath width."""
    return fixed + (length + DATAPATH_BYTES - 1) // DATAPATH_BYTES


class UserLogic(Component):
    """Base class: receives host frames, may produce responses.

    ``handle_frame`` is a generator so implementations can consume
    simulated fabric time; it returns the response frame bytes or
    ``None``.
    """

    def __init__(self, sim: "Simulator", name: str = "user-logic",
                 parent: Optional[Component] = None,
                 clock: Frequency = FPGA_FABRIC_CLOCK) -> None:
        super().__init__(sim, name, parent=parent)
        self.clock = clock
        self.frames_received = 0
        self.responses_produced = 0

    def cycles(self, count: int) -> SimTime:
        """Duration of *count* fabric cycles (to be yielded)."""
        return self.clock.cycles_to_time(count)

    def handle_frame(self, frame: bytes) -> Generator[Any, Any, Optional[bytes]]:
        """Process one frame from the host; return a response or None."""
        raise NotImplementedError
        yield  # pragma: no cover

    def fill_checksum(self, frame: bytes, csum_start: int,
                      csum_offset: int) -> Generator[Any, Any, bytes]:
        """Checksum offload: compute and insert the L4 checksum the host
        left blank (CHECKSUM_PARTIAL semantics).

        One streaming pass over the checksummed region.
        """
        yield self.cycles(streaming_cycles(len(frame) - csum_start))
        ip_header = Ipv4Header.decode(frame[ETH_HEADER_SIZE:])
        datagram = frame[csum_start:]
        csum = udp_checksum(ip_header.src, ip_header.dst, datagram)
        position = csum_start + csum_offset
        patched = frame[:position] + csum.to_bytes(2, "big") + frame[position + 2:]
        return patched


class EchoUserLogic(UserLogic):
    """The latency-test responder: echo a UDP packet of the same size.

    Swaps Ethernet MACs, IP addresses, and UDP ports, recomputes both
    checksums, and returns the frame.  Each header manipulation is a
    streaming pass in fabric time.
    """

    def handle_frame(self, frame: bytes) -> Generator[Any, Any, Optional[bytes]]:
        self.frames_received += 1
        # Parse pass.
        yield self.cycles(streaming_cycles(min(len(frame), 64)))
        eth = EthernetFrame.decode(frame)
        if eth.ethertype != ETH_P_IP:
            return None
        ip_header = Ipv4Header.decode(eth.payload)
        if ip_header.protocol != IPPROTO_UDP:
            return None
        datagram = eth.payload[IP_HEADER_SIZE : ip_header.total_length]
        udp_header = UdpHeader.decode(datagram)
        payload = datagram[8 : udp_header.length]

        # Build the swapped response (one pass over the frame).
        yield self.cycles(streaming_cycles(len(frame)))
        reply_ip = Ipv4Header(
            src=ip_header.dst,
            dst=ip_header.src,
            protocol=IPPROTO_UDP,
            total_length=ip_header.total_length,
            identification=ip_header.identification,
        )
        reply_datagram_wo_csum = (
            udp_header.dst_port.to_bytes(2, "big")
            + udp_header.src_port.to_bytes(2, "big")
            + udp_header.length.to_bytes(2, "big")
            + b"\x00\x00"
            + payload
        )
        # Checksum pass (pipelined with the build in real RTL; charged
        # as its own pass here -- conservative).
        yield self.cycles(streaming_cycles(len(reply_datagram_wo_csum)))
        csum = udp_checksum(reply_ip.src, reply_ip.dst, reply_datagram_wo_csum)
        reply_datagram = (
            reply_datagram_wo_csum[:6] + csum.to_bytes(2, "big") + reply_datagram_wo_csum[8:]
        )
        reply = EthernetFrame(
            dst=eth.src, src=eth.dst, ethertype=ETH_P_IP,
            payload=reply_ip.encode() + reply_datagram,
        )
        self.responses_produced += 1
        self.trace("echo", bytes=len(payload))
        return reply.encode(pad=False)


class SinkUserLogic(UserLogic):
    """Consume frames without responding (throughput-style workloads)."""

    def handle_frame(self, frame: bytes) -> Generator[Any, Any, Optional[bytes]]:
        self.frames_received += 1
        yield self.cycles(streaming_cycles(len(frame)))
        return None
