"""FPGA-side substrate: registers, performance counters, the XDMA IP
model, and user-logic building blocks."""

from repro.fpga.perf_counter import CounterError, PerfCounterBank
from repro.fpga.registers import Register, RegisterFile

__all__ = [
    "CounterError",
    "PerfCounterBank",
    "Register",
    "RegisterFile",
]
