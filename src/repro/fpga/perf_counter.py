"""Hardware performance counters.

Section III-B3: "The PCIe IP and the VirtIO controller both include
hardware performance counters to measure latency between different
events on the FPGA. The FPGA designs used for testing are running at
125MHz. Therefore, the hardware performance counters provide a
resolution of 8ns."

A :class:`PerfCounterBank` provides named interval counters clocked at
the fabric frequency: ``start(name)`` latches the current cycle,
``stop(name)`` records the elapsed *whole cycles* (so measured durations
are multiples of 8 ns, exactly like the hardware).  The experiment layer
drains recorded intervals per packet to build the Fig. 4/5 hardware
component.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.sim.component import Component
from repro.sim.time import FPGA_FABRIC_CLOCK, Frequency, SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class CounterError(RuntimeError):
    """Protocol misuse (stop without start, nested start)."""


class PerfCounterBank(Component):
    """A bank of named start/stop interval counters.

    Measured intervals are quantized to whole fabric-clock cycles at
    *stop* time -- the counter increments on clock edges, so a duration
    straddling N edges reads N cycles.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str = "perf",
        parent: Optional[Component] = None,
        clock: Frequency = FPGA_FABRIC_CLOCK,
    ) -> None:
        super().__init__(sim, name, parent=parent)
        self.clock = clock
        self._open: Dict[str, SimTime] = {}
        self._intervals: Dict[str, List[SimTime]] = {}

    def start(self, counter: str) -> None:
        """Latch the start edge for *counter*."""
        if counter in self._open:
            raise CounterError(f"counter {counter!r} started twice without stop")
        self._open[counter] = self.sim.now

    def stop(self, counter: str) -> SimTime:
        """Record and return the elapsed interval, cycle-quantized (ps)."""
        started = self._open.pop(counter, None)
        if started is None:
            raise CounterError(f"counter {counter!r} stopped without start")
        cycles = self.clock.time_to_cycles(self.sim.now - started)
        interval = self.clock.cycles_to_time(cycles)
        self._intervals.setdefault(counter, []).append(interval)
        self.trace("perf-interval", counter=counter, cycles=cycles)
        return interval

    def is_running(self, counter: str) -> bool:
        return counter in self._open

    def intervals(self, counter: str) -> List[SimTime]:
        """All recorded intervals for *counter* (ps, cycle-quantized)."""
        return list(self._intervals.get(counter, []))

    def intervals_array(self, counter: str) -> np.ndarray:
        """Recorded intervals as an int64 array (vectorized statistics)."""
        return np.asarray(self._intervals.get(counter, []), dtype=np.int64)

    def last(self, counter: str) -> SimTime:
        """Most recent interval for *counter*."""
        values = self._intervals.get(counter)
        if not values:
            raise CounterError(f"counter {counter!r} has no recorded intervals")
        return values[-1]

    def total(self, counter: str) -> SimTime:
        """Sum of recorded intervals."""
        return sum(self._intervals.get(counter, []))

    def count(self, counter: str) -> int:
        return len(self._intervals.get(counter, ()))

    def counters(self) -> List[str]:
        return sorted(self._intervals)

    def clear(self) -> None:
        """Drop recorded intervals (open intervals keep running)."""
        self._intervals.clear()
