"""Snapshot boot reuse: boot a testbed once, stamp cells from the image.

Booting a testbed -- device enumeration, feature negotiation, ring
setup, the driver probe, and the ``sim.run()`` drain -- is a
deterministic function of ``(spec, seed, profile)``, and several cell
families deliberately share that triple: every fault rate of a
(driver, payload) column, every repeated invocation of the comparison
workload inside ``bench``/``bench --check``, a warm worker seeing the
same spec across fan-outs.  Re-running the boot for each of them is
pure waste; this module boots once and reuses the post-probe state.

Why fork, not deepcopy
----------------------

A booted testbed is *not* copyable in-process: the machine's suspended
coroutine processes (the echo user-logic loop, RX service loops) live
in generator frames that are unreachable from the testbed object
graph, so ``copy.deepcopy`` silently drops them and the copy deadlocks
on first use (generators themselves refuse to deepcopy, but nothing
reachable from the testbed *is* the generator).  The only faithful
copy of a running simulation is a copy of the whole process image --
``os.fork()``'s copy-on-write clone.  Each stamped cell forks a child
off the pristine parent, runs the measurement there, and ships the
pickled result back through a pipe; the parent image is never touched,
so one boot serves any number of same-key cells, byte-identically
(``tests/exec/test_snapshot.py`` pins the parity with a hypothesis
test).

Policy
------

Keeping a pristine image costs memory and a fork per stamp, and most
cell keys occur exactly once (latency cells all have distinct seeds).
The registry therefore keeps nothing until a key repeats: the first
use runs cold, the second boots and *keeps* the pristine image
(stamping the measurement off it), and every later use stamps straight
from the image -- a *boot reuse*.  Images are capped by an LRU; any
transport failure (no ``fork``, unpicklable result) falls back to the
cold path, never to an error.  The registry is per-process: each warm
pool worker accumulates its own images, which survive across fan-outs
exactly like the worker's module caches.

``REPRO_SNAPSHOT_BOOT=0`` disables the whole layer (every cell boots
cold, the pre-snapshot behavior).
"""

from __future__ import annotations

import os
import pickle
import struct
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from repro import env


class SnapshotError(RuntimeError):
    """The fork/pipe transport failed (the caller falls back to cold)."""


#: Cap on pristine testbed images kept per process (LRU-evicted).
MAX_SNAPSHOTS = 8

_SUPPORTED = hasattr(os, "fork")

# Per-process state: pristine images by key (LRU order), how often each
# key has been requested, keys whose stamping transport failed (never
# retried), and how many boots this process has reused.
_PRISTINE: "OrderedDict[str, Any]" = OrderedDict()
_SEEN: Dict[str, int] = {}
_BROKEN: set = set()
_LOCAL_REUSES = 0

# Parent-side aggregation: ``run_cells`` folds the ``boot_reused``
# flags riding each outcome back here, so reuses that happened inside
# pool workers are visible to ``cache_stats()`` in the parent.
_PARENT_REUSES = 0


def enabled() -> bool:
    """Whether boot snapshots are usable in this process."""
    return _SUPPORTED and env.snapshot_boot()


def reset() -> None:
    """Drop all pristine images and counters (tests; monkeypatched
    module state in a pristine image would otherwise leak across
    tests)."""
    global _LOCAL_REUSES, _PARENT_REUSES
    _PRISTINE.clear()
    _SEEN.clear()
    _BROKEN.clear()
    _LOCAL_REUSES = 0
    _PARENT_REUSES = 0


def local_reuses() -> int:
    """Boot reuses performed by *this* process (worker-side counter)."""
    return _LOCAL_REUSES


def note_parent_reuses(count: int) -> None:
    """Fold worker-side reuses (from outcome flags) into the parent."""
    global _PARENT_REUSES
    _PARENT_REUSES += count


def parent_boot_reuses() -> int:
    """Total boot reuses observed across all workers (parent-side)."""
    return _PARENT_REUSES


def snapshots_held() -> int:
    """Pristine images currently kept in this process."""
    return len(_PRISTINE)


def execute(
    key: Optional[str],
    boot: Callable[[], Any],
    measure: Callable[[Any], Any],
) -> Tuple[Any, bool]:
    """Run *measure* on a testbed from *boot*, reusing snapshots.

    Returns ``(measure's result, boot_reused)``.  ``boot`` must be the
    pure testbed construction (everything *key* identifies) and
    ``measure`` everything after it -- fault-plan attachment, overload
    bounds, the workload itself -- so the pristine image is never
    mutated by cell-specific state.
    """
    global _LOCAL_REUSES
    if key is None or key in _BROKEN or not enabled():
        return measure(boot()), False
    pristine = _PRISTINE.get(key)
    if pristine is not None:
        _PRISTINE.move_to_end(key)
        try:
            result = _stamp(pristine, measure)
        except SnapshotError:
            _PRISTINE.pop(key, None)
            _BROKEN.add(key)
            return measure(boot()), False
        _LOCAL_REUSES += 1
        return result, True
    count = _SEEN.get(key, 0) + 1
    _SEEN[key] = count
    if count == 1:
        # Most keys occur once; don't pay fork/pickle or image memory
        # until the key proves it repeats.
        return measure(boot()), False
    testbed = boot()
    try:
        result = _stamp(testbed, measure)
    except SnapshotError:
        _BROKEN.add(key)
        # The freshly booted testbed is still pristine: measure on it
        # directly, which is exactly the cold path.
        return measure(testbed), False
    _keep(key, testbed)
    return result, False


def _keep(key: str, testbed: Any) -> None:
    _PRISTINE[key] = testbed
    _PRISTINE.move_to_end(key)
    while len(_PRISTINE) > MAX_SNAPSHOTS:
        _PRISTINE.popitem(last=False)


def _read_exact(fd: int, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = os.read(fd, remaining)
        if not chunk:
            raise SnapshotError(
                f"snapshot child pipe closed with {remaining} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        view = view[os.write(fd, view):]


def _stamp(testbed: Any, measure: Callable[[Any], Any]) -> Any:
    """Run *measure* against a copy-on-write fork of this process.

    The child mutates its own image of *testbed* (rings advance,
    processes run) and ships ``pickle((ok, result))`` back through a
    pipe; the parent's image -- and everything else in the parent --
    is untouched.  A failure inside *measure* is pickled and re-raised
    here, so cell errors surface exactly as they would cold.
    """
    if not _SUPPORTED:
        raise SnapshotError("os.fork is unavailable on this platform")
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        # Child: never return into the caller's stack; _exit skips
        # atexit hooks (the warm pool's shutdown) and buffered I/O.
        try:
            os.close(read_fd)
            try:
                payload = pickle.dumps(
                    (True, measure(testbed)), protocol=pickle.HIGHEST_PROTOCOL
                )
            except BaseException as exc:  # noqa: BLE001 - forwarded to parent
                try:
                    payload = pickle.dumps(
                        (False, exc), protocol=pickle.HIGHEST_PROTOCOL
                    )
                except Exception:
                    payload = pickle.dumps(
                        (False, SnapshotError(f"unpicklable cell failure: {exc!r}"))
                    )
            _write_all(write_fd, struct.pack("<Q", len(payload)) + payload)
        except BaseException:  # noqa: BLE001 - nothing to report through
            os._exit(1)
        finally:
            os._exit(0)
    os.close(write_fd)
    try:
        header = _read_exact(read_fd, 8)
        payload = _read_exact(read_fd, struct.unpack("<Q", header)[0])
    finally:
        os.close(read_fd)
        os.waitpid(pid, 0)
    try:
        ok, value = pickle.loads(payload)
    except Exception as exc:
        raise SnapshotError(f"snapshot result failed to unpickle: {exc!r}") from exc
    if not ok:
        raise value
    return value
