"""The ``bench`` subcommand: record and gate the performance trajectory.

Two modes:

* **record** (default) -- time a fixed-size reproduction twice, serial
  (``jobs=1``, in process) and parallel (the requested worker count),
  run the per-subsystem microbenches, and write a ``BENCH_<rev>.json``
  record with wall-clock, events/second, the speedup, and the micro
  numbers, so the repository accumulates perf history alongside
  correctness history.  The run doubles as a parity check: the serial
  and parallel artifacts must be byte-identical (same root seed, same
  cells), and the record says whether they were.

* **check** (``bench --check``) -- the regression gate.  Re-measures
  the end-to-end events/second on the workload recorded in a committed
  ``BENCH_baseline.json`` and fails when it regresses beyond a
  tolerance.  Raw events/second is machine-dependent, so both sides
  are normalized by :func:`cpu_score`, a fixed pure-Python reference
  loop measured on the same machine at the same time -- the compared
  quantity is "simulator events per reference op", which transfers
  across hosts of different speeds.  The hot-path *copy counts* per
  packet are deterministic (they count ``PhysicalMemory`` calls, not
  time), so those are gated exactly: more materializing copies per
  packet than the baseline is a failure at any tolerance.

The microbenches cover the subsystems the zero-copy work touches:

* ``memory`` -- :class:`~repro.mem.physical.PhysicalMemory` copy
  (``read``), in-place (``read_into``), zero-copy (``view``), and
  ``fill`` bandwidth;
* ``copy_counts`` -- materializing host-memory copies per echo round
  trip for each driver (the paper's Table 1 workload);
* ``tlp_segmentation`` -- MWr segmentation rate through the memoized
  plan cache;
* ``virtqueue_walk`` -- driver-side ring bookkeeping cycle rate;
* ``end_to_end`` -- serial events/second of the comparison workload.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.calibration import PAPER_PAYLOAD_SIZES, PAPER_PROFILE, CalibrationProfile
from repro.exec import cache as result_cache
from repro.exec.runner import execute_comparison

#: Packets per payload for the cache-exercise legs (populate + warm
#: rerun).  Small on purpose: the legs prove cache behavior, not
#: throughput, and the timed legs already cover the full workload.
CACHE_RERUN_PACKETS = 50

#: Schema tag written into bench records.  ``bench-v1`` records (no
#: ``micro`` section) are still readable by ``--check`` -- the copy-count
#: gate is skipped and events/second is compared unnormalized.
BENCH_SCHEMA = "bench-v2"

#: Default committed baseline path (repo root) and gate tolerance.
DEFAULT_BASELINE = "BENCH_baseline.json"
DEFAULT_TOLERANCE = 0.15


def repo_revision() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


# -- machine-speed reference ---------------------------------------------------


def cpu_score(repeats: int = 5, iters: int = 200_000) -> float:
    """Ops/second of a fixed pure-Python loop (best of *repeats*).

    A crude single-core speed reference: the same interpreter work the
    simulator's hot paths are made of (integer arithmetic, name lookups,
    loop overhead).  ``--check`` divides events/second by this score on
    both sides of the comparison, so a committed baseline from one
    machine gates runs on another.
    """
    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc = 0
        for i in range(iters):
            acc = (acc + i * 7) % 1_000_003
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            best = max(best, iters / elapsed)
    return best


# -- per-subsystem microbenches ------------------------------------------------


def bench_memory(block: int = 64 << 10, rounds: int = 128) -> Dict[str, Any]:
    """PhysicalMemory bandwidth: copy vs in-place vs view vs fill."""
    from repro.mem.physical import PhysicalMemory

    mem = PhysicalMemory()
    mem.write(0, (bytes(range(256)) * (block // 256 + 1))[:block])
    scratch = bytearray(block)
    mb = block * rounds / 1e6

    t0 = time.perf_counter()
    for _ in range(rounds):
        mem.read(0, block)
    read_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(rounds):
        mem.read_into(0, scratch)
    read_into_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(rounds):
        mem.view(0, block)
    view_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(rounds):
        mem.fill(0, block, 0xA5)
    fill_s = time.perf_counter() - t0

    def rate(elapsed: float) -> float:
        return mb / elapsed if elapsed > 0 else 0.0

    return {
        "block_bytes": block,
        "rounds": rounds,
        "read_copy_mb_s": rate(read_s),
        "read_into_mb_s": rate(read_into_s),
        "view_mb_s": rate(view_s),
        "fill_mb_s": rate(fill_s),
    }


def measure_copies_per_packet(
    driver: str,
    payload: int = 64,
    packets: int = 24,
    warmup: int = 4,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
) -> Dict[str, float]:
    """Materializing host-memory copies per echo round trip.

    Counts :class:`~repro.mem.physical.PhysicalMemory` calls on the
    host RAM of a booted testbed during the Table 1 latency workload:
    ``read`` materializes a ``bytes`` copy, ``read_into`` fills a
    caller buffer in place, ``view`` is zero-copy.  Two runs (*warmup*
    packets and *warmup + packets* packets) are differenced so boot,
    ring setup, and first-packet ARP traffic drop out; the result is
    the steady-state per-packet count -- a deterministic function of
    the data-plane code, not of machine speed, which is what makes it
    gateable with zero tolerance.
    """
    from repro.core.latency import run_virtio_payload, run_xdma_payload
    from repro.core.testbed import build_virtio_testbed, build_xdma_testbed

    if driver == "virtio":
        build, runner = build_virtio_testbed, run_virtio_payload
    elif driver == "xdma":
        build, runner = build_xdma_testbed, run_xdma_payload
    else:
        raise ValueError(f"unknown driver {driver!r} (expected 'virtio' or 'xdma')")

    def counted(total_packets: int) -> Dict[str, int]:
        testbed = build(seed=seed, profile=profile)
        mem = testbed.kernel.memory
        counts = {"read": 0, "read_into": 0, "view": 0, "write": 0}
        for name in counts:
            original = getattr(mem, name)

            def wrapper(*args: Any, _original=original, _name=name, **kwargs: Any):
                counts[_name] += 1
                return _original(*args, **kwargs)

            setattr(mem, name, wrapper)  # instance attr shadows the class method
        runner(testbed, payload, total_packets)
        return counts

    base = counted(warmup)
    full = counted(warmup + packets)
    return {name: (full[name] - base[name]) / packets for name in base}


def bench_copy_counts(
    payload: int = 64, packets: int = 24, seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
) -> Dict[str, Dict[str, float]]:
    """Per-driver steady-state copy counts (see
    :func:`measure_copies_per_packet`)."""
    return {
        driver: measure_copies_per_packet(
            driver, payload=payload, packets=packets, seed=seed, profile=profile
        )
        for driver in ("virtio", "xdma")
    }


def bench_tlp_segmentation(payload: int = 4096, iters: int = 2000) -> Dict[str, Any]:
    """MWr segmentation rate for an unaligned *payload*-byte transfer.

    The address is offset within its page so the split crosses a 4 KiB
    boundary -- the worst case the memoized plan has to cover.
    """
    from repro.pcie.tlp import segment_write

    data = bytes(payload)
    addr = 0x10_0040  # 64 bytes into a page: forces a boundary split
    tlps_per_call = len(segment_write(addr, data, 256))  # warm the plan cache
    t0 = time.perf_counter()
    for _ in range(iters):
        segment_write(addr, data, 256)
    elapsed = time.perf_counter() - t0
    return {
        "payload_bytes": payload,
        "max_payload": 256,
        "tlps_per_call": tlps_per_call,
        "calls_per_second": iters / elapsed if elapsed > 0 else 0.0,
        "tlps_per_second": iters * tlps_per_call / elapsed if elapsed > 0 else 0.0,
    }


def bench_virtqueue_walk(iters: int = 4000) -> Dict[str, Any]:
    """Driver-side ring bookkeeping: add_buffer + publish + get_used."""
    from repro.mem.dma import DmaAllocator
    from repro.mem.physical import PhysicalMemory
    from repro.virtio.virtqueue import DriverVirtqueue, ring_layout

    mem = PhysicalMemory()
    alloc = DmaAllocator(mem)
    _, _, _, total = ring_layout(256)
    vq = DriverVirtqueue(0, 256, alloc.alloc(total, 4096))
    used_idx = 0
    t0 = time.perf_counter()
    for _ in range(iters):
        head = vq.add_buffer([(0x10000, 1500)], [])
        vq.publish()
        elem = head.to_bytes(4, "little") + bytes(4)
        mem.write(vq.addresses.used_entry_addr(used_idx), elem)
        used_idx = (used_idx + 1) & 0xFFFF
        mem.write(vq.addresses.used_idx_addr, used_idx.to_bytes(2, "little"))
        if vq.get_used() is None:
            raise RuntimeError("virtqueue walk lost a used element")
    elapsed = time.perf_counter() - t0
    return {
        "ring_size": 256,
        "cycles_per_second": iters / elapsed if elapsed > 0 else 0.0,
    }


def bench_scheduler(
    payload: int = 64,
    packets: int = 200,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
) -> Dict[str, Any]:
    """Event-kernel statistics over one serial latency cell.

    Boots a VirtIO testbed (the denser of the two drivers' event
    streams), runs the Table 1 ping-pong workload, and reports the
    queue backend's counters -- peak depth, calendar bucket occupancy,
    slow-path push rates -- plus wall-normalized schedule/pop rates.
    The structural numbers (peak depth, far-heap pushes) are
    deterministic; only the rates are machine-dependent.
    """
    from repro.core.latency import run_virtio_payload
    from repro.core.testbed import build_virtio_testbed

    testbed = build_virtio_testbed(seed=seed, profile=profile)
    t0 = time.perf_counter()
    run_virtio_payload(testbed, payload, packets)
    elapsed = time.perf_counter() - t0
    stats = dict(testbed.sim.scheduler_stats)
    stats["payload_bytes"] = payload
    stats["packets"] = packets
    stats["wall_s"] = elapsed
    if elapsed > 0:
        stats["schedules_per_second"] = stats.get("schedules", 0) / elapsed
        stats["pops_per_second"] = stats.get("executed", 0) / elapsed
    return stats


def run_microbench(
    packets: int = 400,
    payload_sizes: Sequence[int] = PAPER_PAYLOAD_SIZES,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    end_to_end: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """All per-subsystem microbenches as one JSON-ready dict.

    Pass *end_to_end* (``{"wall_s", "events", "events_per_second"}``)
    to reuse a serial comparison that was already timed instead of
    running another one.
    """
    if end_to_end is None:
        _, stats = execute_comparison(payload_sizes, packets, seed, profile, jobs=1)
        end_to_end = {
            "wall_s": stats.wall_s,
            "events": stats.events,
            "events_per_second": stats.events_per_second,
        }
    return {
        "cpu_score": cpu_score(),
        "memory": bench_memory(),
        "copy_counts": bench_copy_counts(seed=seed, profile=profile),
        "tlp_segmentation": bench_tlp_segmentation(),
        "virtqueue_walk": bench_virtqueue_walk(),
        "scheduler": bench_scheduler(seed=seed, profile=profile),
        "end_to_end": end_to_end,
    }


# -- record mode ---------------------------------------------------------------


def run_bench(
    packets: int = 2000,
    jobs: int = 4,
    payload_sizes: Sequence[int] = PAPER_PAYLOAD_SIZES,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    out_dir: str = ".",
    rev: Optional[str] = None,
    profile_hot: bool = False,
) -> Tuple[dict, str]:
    """Time serial vs parallel reproduction; write ``BENCH_<rev>.json``.

    With *profile_hot* the serial run executes under :mod:`cProfile`
    and the top-30 cumulative-time table is written next to the record
    as ``BENCH_<rev>.profile.txt`` (the serial wall then includes
    profiler overhead, so such records are for hot-spot hunting, not
    for committing as baselines).

    Returns ``(record, path)``.

    The timed legs always run with the result cache bypassed -- a
    cache hit would measure disk reads, not the simulator.  When a
    cache is active, one extra (small) comparison runs through it
    afterwards and its counters land in the record's ``cache_stats``
    section: all misses on a first run, all hits on a warm rerun (the
    CI two-pass job reads exactly that).
    """
    if jobs < 2:
        raise ValueError(f"bench compares serial vs parallel; need jobs >= 2, got {jobs}")
    profiler = None
    if profile_hot:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    with result_cache.bypass():
        serial_comparison, serial_stats = execute_comparison(
            payload_sizes, packets, seed, profile, jobs=1
        )
        if profiler is not None:
            profiler.disable()
        parallel_comparison, parallel_stats = execute_comparison(
            payload_sizes, packets, seed, profile, jobs=jobs
        )
    identical = serial_comparison.table1_rows() == parallel_comparison.table1_rows()
    speedup = (
        serial_stats.wall_s / parallel_stats.wall_s if parallel_stats.wall_s > 0 else 0.0
    )
    with result_cache.bypass():
        micro = run_microbench(
            packets=packets, payload_sizes=payload_sizes, seed=seed, profile=profile,
            end_to_end={
                "wall_s": serial_stats.wall_s,
                "events": serial_stats.events,
                "events_per_second": serial_stats.events_per_second,
            },
        )
    cache_section = None
    if result_cache.active_cache() is not None:
        execute_comparison(
            payload_sizes, CACHE_RERUN_PACKETS, seed, profile, jobs=1
        )
        cache_section = result_cache.cache_stats()
    record = {
        "schema": BENCH_SCHEMA,
        "rev": rev if rev is not None else repo_revision(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "workload": {
            "artifact": "comparison",
            "packets": packets,
            "payload_sizes": list(payload_sizes),
            "seed": seed,
            "cells": serial_stats.cells,
        },
        "serial": {
            "wall_s": serial_stats.wall_s,
            "events": serial_stats.events,
            "events_per_second": serial_stats.events_per_second,
        },
        "parallel": {
            "jobs": jobs,
            "wall_s": parallel_stats.wall_s,
            "events": parallel_stats.events,
            "events_per_second": parallel_stats.events_per_second,
        },
        "speedup": speedup,
        "parallel_matches_serial": identical,
        "micro": micro,
        "cache_stats": cache_section,
    }
    path = os.path.join(out_dir, f"BENCH_{record['rev']}.json")
    if profiler is not None:
        import io
        import pstats

        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(30)
        profile_path = os.path.join(out_dir, f"BENCH_{record['rev']}.profile.txt")
        with open(profile_path, "w", encoding="utf-8") as handle:
            handle.write(
                f"# cProfile of the serial (jobs=1) bench run @ {record['rev']}\n"
                f"# workload: {packets} packets x {list(payload_sizes)} x 2 drivers\n"
            )
            handle.write(buffer.getvalue())
        record["profile_path"] = profile_path
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    return record, path


def render_bench(record: dict) -> str:
    """Human-readable summary of a bench record."""
    serial = record["serial"]
    parallel = record["parallel"]
    lines = [
        f"Bench @ {record['rev']} "
        f"({record['workload']['packets']} packets x "
        f"{len(record['workload']['payload_sizes'])} payloads x 2 drivers, "
        f"{record['workload']['cells']} cells, {record['host']['cpus']} CPUs)",
        f"  serial   (jobs=1): {serial['wall_s']:8.2f} s  "
        f"{serial['events_per_second']:>12,.0f} events/s",
        f"  parallel (jobs={parallel['jobs']}): {parallel['wall_s']:8.2f} s  "
        f"{parallel['events_per_second']:>12,.0f} events/s",
        f"  speedup: {record['speedup']:.2f}x; parallel output "
        + ("bit-identical to serial" if record["parallel_matches_serial"]
           else "DIFFERS from serial (BUG)"),
    ]
    micro = record.get("micro")
    if micro:
        mem = micro["memory"]
        copies = micro["copy_counts"]
        lines += [
            "  micro:",
            f"    memory      copy {mem['read_copy_mb_s']:,.0f} MB/s | "
            f"in-place {mem['read_into_mb_s']:,.0f} MB/s | "
            f"view {mem['view_mb_s']:,.0f} MB/s | fill {mem['fill_mb_s']:,.0f} MB/s",
            f"    copies/pkt  virtio {copies['virtio']['read']:.1f} reads | "
            f"xdma {copies['xdma']['read']:.1f} reads (materializing)",
            f"    tlp seg     {micro['tlp_segmentation']['tlps_per_second']:,.0f} TLPs/s "
            f"({micro['tlp_segmentation']['tlps_per_call']} per 4 KiB call)",
            f"    vq walk     {micro['virtqueue_walk']['cycles_per_second']:,.0f} cycles/s",
            f"    cpu score   {micro['cpu_score']:,.0f} ref-ops/s",
        ]
        sched = micro.get("scheduler")
        if sched:
            lines.append(
                f"    scheduler   {sched.get('scheduler', '?')}: "
                f"peak depth {sched.get('peak_depth', 0)}, "
                f"{sched.get('nonempty_buckets', 0)}/{sched.get('nbuckets', 0)} "
                f"buckets live (occupancy {sched.get('occupancy', 0.0):.1f}), "
                f"far pushes {sched.get('far_pushes', 0)}, "
                f"{sched.get('schedules_per_second', 0.0):,.0f} sched/s | "
                f"{sched.get('pops_per_second', 0.0):,.0f} pops/s"
            )
    if record.get("profile_path"):
        lines.append(f"  profile: top-30 cumulative written to {record['profile_path']}")
    return "\n".join(lines)


# -- check mode ----------------------------------------------------------------


def evaluate_check(
    baseline: dict, current: dict, tolerance: float = DEFAULT_TOLERANCE
) -> Tuple[bool, List[str], Dict[str, Any]]:
    """Pure comparison of a *current* measurement against a *baseline*.

    *current* needs ``end_to_end.events_per_second`` and optionally
    ``cpu_score`` and ``copy_counts`` (same shapes as a record's
    ``micro`` section).  Returns ``(ok, failures, details)``; the gate
    rules are:

    * normalized events/second below ``(1 - tolerance) x`` baseline
      fails (normalization by :func:`cpu_score` when both sides have
      one, raw comparison otherwise);
    * any driver's materializing ``read`` copies per packet above the
      baseline count fails -- the count is deterministic, so there is
      no noise to tolerate;
    * when *current* carries a ``parallel`` section
      (``{"jobs", "speedup", "cpus"}``), a speedup at or below 1.0
      fails **if** the host has at least ``jobs`` CPUs -- warm-pool
      fan-out must actually beat the serial path on real multi-core
      hardware, while 1-vCPU runners skip the assertion;
    * when *current* carries a ``cache_rerun`` section
      (``{"cells", "hits", "misses"}``), any miss fails -- the rerun
      executed the identical workload moments after populating the
      cache, so a miss means keying or invalidation is broken.
    """
    if not 0.0 < tolerance < 1.0:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    failures: List[str] = []
    base_micro = baseline.get("micro", {})
    base_eps = (
        base_micro.get("end_to_end", {}).get("events_per_second")
        or baseline.get("serial", {}).get("events_per_second")
    )
    if not base_eps:
        raise ValueError("baseline record has no serial events/second")
    cur_eps = current["end_to_end"]["events_per_second"]
    base_score = base_micro.get("cpu_score")
    cur_score = current.get("cpu_score")
    normalized = bool(base_score and cur_score)
    if normalized:
        ratio = (cur_eps / cur_score) / (base_eps / base_score)
    else:
        ratio = cur_eps / base_eps
    if ratio < 1.0 - tolerance:
        failures.append(
            f"end-to-end events/s regressed to {ratio:.2f}x of baseline "
            f"({'normalized' if normalized else 'raw'}; "
            f"floor is {1.0 - tolerance:.2f}x)"
        )
    parallel = current.get("parallel")
    if parallel:
        cpus = parallel.get("cpus") or 0
        par_jobs = parallel.get("jobs") or 0
        if cpus >= par_jobs > 1 and parallel["speedup"] <= 1.0:
            failures.append(
                f"jobs={par_jobs} speedup is {parallel['speedup']:.2f}x on a "
                f"{cpus}-CPU host (must exceed 1.0x)"
            )
    base_copies = base_micro.get("copy_counts", {})
    cur_copies = current.get("copy_counts", {})
    for driver in sorted(base_copies.keys() & cur_copies.keys()):
        base_reads = base_copies[driver]["read"]
        cur_reads = cur_copies[driver]["read"]
        if cur_reads > base_reads + 1e-9:
            failures.append(
                f"{driver}: {cur_reads:.2f} materializing copies/packet "
                f"(baseline {base_reads:.2f}; counts are deterministic, "
                f"any increase fails)"
            )
    cache_rerun = current.get("cache_rerun")
    if cache_rerun and cache_rerun.get("misses", 0) > 0:
        failures.append(
            f"warm cache rerun missed on {cache_rerun['misses']} of "
            f"{cache_rerun['cells']} cells (an unchanged workload must "
            f"hit the result cache on every cell)"
        )
    details = {
        "events_per_second": {
            "baseline": base_eps,
            "current": cur_eps,
            "ratio": ratio,
            "normalized": normalized,
            "floor": 1.0 - tolerance,
        },
        "copy_counts": {
            driver: {
                "baseline": base_copies.get(driver, {}).get("read"),
                "current": cur_copies.get(driver, {}).get("read"),
            }
            for driver in sorted(base_copies.keys() | cur_copies.keys())
        },
    }
    if cache_rerun is not None:
        details["cache_rerun"] = dict(cache_rerun)
    return not failures, failures, details


def run_check(
    baseline_path: str = DEFAULT_BASELINE,
    tolerance: float = DEFAULT_TOLERANCE,
    packets: Optional[int] = None,
    seed: Optional[int] = None,
    profile: CalibrationProfile = PAPER_PROFILE,
) -> Tuple[bool, dict]:
    """Measure the current tree and gate it against *baseline_path*.

    The workload (packets, payload sizes, seed) is taken from the
    baseline record so the comparison is apples-to-apples; *packets*
    and *seed* override it (events/second is a throughput, so a
    shorter run stays comparable up to boot overhead).  On hosts with
    at least 4 CPUs the same workload is also fanned out at ``jobs=4``
    and the speedup must exceed 1.0x (skipped on smaller hosts, where
    a process pool cannot beat the serial path).  The timed legs run
    with the result cache bypassed; when a cache is active, a small
    populate + warm-rerun pair runs through it afterwards and any
    warm-pass miss fails the gate.  Returns ``(ok, report)``.
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    workload = baseline.get("workload", {})
    run_packets = packets if packets is not None else workload.get("packets", 400)
    run_payloads = workload.get("payload_sizes") or list(PAPER_PAYLOAD_SIZES)
    run_seed = seed if seed is not None else workload.get("seed", 0)
    with result_cache.bypass():
        _, stats = execute_comparison(
            run_payloads, run_packets, run_seed, profile, jobs=1
        )
    current = {
        "cpu_score": cpu_score(),
        "copy_counts": bench_copy_counts(seed=run_seed, profile=profile),
        "end_to_end": {
            "wall_s": stats.wall_s,
            "events": stats.events,
            "events_per_second": stats.events_per_second,
        },
    }
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        with result_cache.bypass():
            _, par_stats = execute_comparison(
                run_payloads, run_packets, run_seed, profile, jobs=4
            )
        current["parallel"] = {
            "jobs": 4,
            "cpus": cpus,
            "wall_s": par_stats.wall_s,
            "speedup": (
                stats.wall_s / par_stats.wall_s if par_stats.wall_s > 0 else 0.0
            ),
        }
    if result_cache.active_cache() is not None:
        rerun_packets = min(run_packets, CACHE_RERUN_PACKETS)
        execute_comparison(  # populate pass
            run_payloads, rerun_packets, run_seed, profile, jobs=1
        )
        _, warm_stats = execute_comparison(  # warm pass: must be all hits
            run_payloads, rerun_packets, run_seed, profile, jobs=1
        )
        current["cache_rerun"] = {
            "cells": warm_stats.cells,
            "hits": warm_stats.cache_hits,
            "misses": warm_stats.cells - warm_stats.cache_hits,
        }
    ok, failures, details = evaluate_check(baseline, current, tolerance)
    report = {
        "schema": "bench-check-v1",
        "baseline": {"path": baseline_path, "rev": baseline.get("rev", "unknown")},
        "rev": repo_revision(),
        "workload": {
            "packets": run_packets,
            "payload_sizes": list(run_payloads),
            "seed": run_seed,
        },
        "tolerance": tolerance,
        "ok": ok,
        "failures": failures,
        "details": details,
        "current": current,
    }
    return ok, report


def render_check(report: dict) -> str:
    """Human-readable summary of a ``--check`` report."""
    eps = report["details"]["events_per_second"]
    copies = report["details"]["copy_counts"]
    lines = [
        f"Bench check @ {report['rev']} vs baseline "
        f"{report['baseline']['rev']} ({report['baseline']['path']})",
        f"  events/s: {eps['current']:,.0f} now vs {eps['baseline']:,.0f} baseline "
        f"-> {eps['ratio']:.2f}x "
        f"({'cpu-score normalized' if eps['normalized'] else 'raw'}; "
        f"floor {eps['floor']:.2f}x)",
    ]
    for driver, counts in copies.items():
        if counts["baseline"] is None or counts["current"] is None:
            continue
        lines.append(
            f"  {driver} copies/pkt: {counts['current']:.2f} now vs "
            f"{counts['baseline']:.2f} baseline (exact gate)"
        )
    parallel = report.get("current", {}).get("parallel")
    if parallel:
        lines.append(
            f"  jobs={parallel['jobs']} speedup: {parallel['speedup']:.2f}x "
            f"on {parallel['cpus']} CPUs (must exceed 1.0x)"
        )
    cache_rerun = report.get("current", {}).get("cache_rerun")
    if cache_rerun:
        lines.append(
            f"  cache rerun: {cache_rerun['hits']}/{cache_rerun['cells']} "
            f"hits (any miss fails)"
        )
    if report["ok"]:
        lines.append("  PASS")
    else:
        lines.append("  FAIL")
        lines += [f"    - {failure}" for failure in report["failures"]]
    return "\n".join(lines)
