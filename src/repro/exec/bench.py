"""The ``bench`` subcommand: record the performance trajectory.

Times a fixed-size reproduction twice -- serial (``jobs=1``, in
process) and parallel (the requested worker count) -- and writes a
``BENCH_<rev>.json`` record with wall-clock, events/second, and the
speedup, so the repository finally accumulates perf history alongside
correctness history.  The run doubles as a parity check: the serial and
parallel artifacts must be byte-identical (same root seed, same cells),
and the record says whether they were.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Optional, Sequence, Tuple

from repro.core.calibration import PAPER_PAYLOAD_SIZES, PAPER_PROFILE, CalibrationProfile
from repro.exec.runner import execute_comparison


def repo_revision() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def run_bench(
    packets: int = 2000,
    jobs: int = 4,
    payload_sizes: Sequence[int] = PAPER_PAYLOAD_SIZES,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    out_dir: str = ".",
    rev: Optional[str] = None,
) -> Tuple[dict, str]:
    """Time serial vs parallel reproduction; write ``BENCH_<rev>.json``.

    Returns ``(record, path)``.
    """
    if jobs < 2:
        raise ValueError(f"bench compares serial vs parallel; need jobs >= 2, got {jobs}")
    serial_comparison, serial_stats = execute_comparison(
        payload_sizes, packets, seed, profile, jobs=1
    )
    parallel_comparison, parallel_stats = execute_comparison(
        payload_sizes, packets, seed, profile, jobs=jobs
    )
    identical = serial_comparison.table1_rows() == parallel_comparison.table1_rows()
    speedup = (
        serial_stats.wall_s / parallel_stats.wall_s if parallel_stats.wall_s > 0 else 0.0
    )
    record = {
        "schema": "bench-v1",
        "rev": rev if rev is not None else repo_revision(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "workload": {
            "artifact": "comparison",
            "packets": packets,
            "payload_sizes": list(payload_sizes),
            "seed": seed,
            "cells": serial_stats.cells,
        },
        "serial": {
            "wall_s": serial_stats.wall_s,
            "events": serial_stats.events,
            "events_per_second": serial_stats.events_per_second,
        },
        "parallel": {
            "jobs": jobs,
            "wall_s": parallel_stats.wall_s,
            "events": parallel_stats.events,
            "events_per_second": parallel_stats.events_per_second,
        },
        "speedup": speedup,
        "parallel_matches_serial": identical,
    }
    path = os.path.join(out_dir, f"BENCH_{record['rev']}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    return record, path


def render_bench(record: dict) -> str:
    """Human-readable summary of a bench record."""
    serial = record["serial"]
    parallel = record["parallel"]
    lines = [
        f"Bench @ {record['rev']} "
        f"({record['workload']['packets']} packets x "
        f"{len(record['workload']['payload_sizes'])} payloads x 2 drivers, "
        f"{record['workload']['cells']} cells, {record['host']['cpus']} CPUs)",
        f"  serial   (jobs=1): {serial['wall_s']:8.2f} s  "
        f"{serial['events_per_second']:>12,.0f} events/s",
        f"  parallel (jobs={parallel['jobs']}): {parallel['wall_s']:8.2f} s  "
        f"{parallel['events_per_second']:>12,.0f} events/s",
        f"  speedup: {record['speedup']:.2f}x; parallel output "
        + ("bit-identical to serial" if record["parallel_matches_serial"]
           else "DIFFERS from serial (BUG)"),
    ]
    return "\n".join(lines)
