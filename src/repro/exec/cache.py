"""Content-addressed on-disk cache of cell results.

Every artifact decomposes into cells that are pure functions of their
parameters (``docs/architecture.md``, "Parallel execution"), which
makes their results *content-addressable*: a cell's outcome is fully
determined by its kind, its canonicalized spec (every ``Cell`` field,
including the spawn-key-derived seed), and the source code of the
modules its execution reads.  The cache keys on exactly that triple,
so a warm rerun of an unchanged tree returns every cell from disk --
and any change to a relevant input (a spec field, the root seed, a
module the kind executes) changes the key and forces a fresh run.

Key derivation
--------------

``sha256(json({kind, spec, code}))`` where

* ``spec`` is the cell's dataclass canonicalized recursively (floats
  kept exact via JSON's shortest-repr round trip, nested dataclasses
  such as the calibration profile / fault plan / overload config /
  fleet config expanded field-by-field with their type names);
* ``code`` is the kind's *code fingerprint*: a hash over the per-module
  source hashes of the ``repro`` modules that kind reads, per the
  :data:`KIND_MODULES` manifest.  Per-module hashing means a change to
  ``repro/guest`` does not invalidate latency cells, and a docs-only
  or CLI-only change invalidates nothing (``cli.py``, ``bench.py``,
  and this module are in no manifest entry).

The cell seed already encodes the experiment's root seed and the
cell's spawn-key identity (:func:`repro.exec.cells.seed_identity`), so
including it in ``spec`` covers the seed-identity axis of the key.

Entry format and corruption
---------------------------

Entries live at ``<dir>/<key[:2]>/<key>.entry`` as ``magic + sha256 +
pickle((value, events, wall_s))``, written via a temp file and
``os.replace`` so readers never see a half-written entry.  A missing
file, bad magic, checksum mismatch, or unpicklable payload is treated
as a miss -- a corrupted cache can cost time, never correctness.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

#: Default on-disk location (relative to the working directory) when
#: neither ``--cache-dir`` nor ``REPRO_CACHE_DIR`` names one.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Entry-format magic; bump when the payload layout changes (old
#: entries then read as corrupt, i.e. as misses).
_MAGIC = b"RPC1"

#: ``repro`` source prefixes every cell kind executes: the simulator
#: kernel, the device/driver/host model, the topology builder all cells
#: boot through, and the execution engine itself.  Paths are relative
#: to the ``repro`` package, ``/``-separated; a bare name covers the
#: whole subpackage.
COMMON_MODULES: Tuple[str, ...] = (
    "core",
    "drivers",
    "env.py",
    "fpga",
    "host",
    "mem",
    "pcie",
    "sim",
    "stats",
    "topology",
    "virtio",
    "exec/cells.py",
    "exec/runner.py",
    "exec/snapshot.py",
)

#: Kind -> additional source prefixes that kind's measurement reads.
#: The manifest is deliberately over-inclusive (extra entries cost
#: spurious invalidation, missing ones would cost staleness).
KIND_MODULES: Dict[str, Tuple[str, ...]] = {
    "latency": (),
    "calibrate": ("workload",),
    "openload": ("workload",),
    "closedload": ("workload",),
    "faultlat": ("faults",),
    "overload": ("workload", "health", "faults"),
    "soak": ("workload", "health", "faults"),
    "fleet": ("workload", "health"),
    "guest": ("guest",),
}


class CacheError(RuntimeError):
    """The cache was asked something it cannot answer (unknown kind)."""


# -- code fingerprints ---------------------------------------------------------


def _package_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


_MODULE_HASHES: Optional[Dict[str, str]] = None


def module_hashes() -> Mapping[str, str]:
    """``repro``-relative path -> sha256 of that source file.

    Computed once per process; the tree is assumed stable for the
    process lifetime (the same assumption imports make).
    """
    global _MODULE_HASHES
    if _MODULE_HASHES is None:
        root = _package_root()
        hashes: Dict[str, str] = {}
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, "rb") as handle:
                    hashes[rel] = hashlib.sha256(handle.read()).hexdigest()
        _MODULE_HASHES = hashes
    return _MODULE_HASHES


def _covered(rel: str, prefixes: Tuple[str, ...]) -> bool:
    return any(rel == p or rel.startswith(p + "/") for p in prefixes)


_FINGERPRINTS: Dict[str, str] = {}


def code_fingerprint(kind: str, hashes: Optional[Mapping[str, str]] = None) -> str:
    """Hash of the per-module source hashes the *kind* reads.

    Pass *hashes* to fingerprint a hypothetical tree (tests); the
    default uses the running tree and memoizes per kind.
    """
    if kind not in KIND_MODULES:
        raise CacheError(
            f"no module manifest for cell kind {kind!r} "
            f"(known: {', '.join(sorted(KIND_MODULES))})"
        )
    if hashes is None:
        if kind not in _FINGERPRINTS:
            _FINGERPRINTS[kind] = code_fingerprint(kind, module_hashes())
        return _FINGERPRINTS[kind]
    prefixes = COMMON_MODULES + KIND_MODULES[kind]
    hasher = hashlib.sha256()
    for rel in sorted(hashes):
        if _covered(rel, prefixes):
            hasher.update(rel.encode("utf-8"))
            hasher.update(hashes[rel].encode("ascii"))
    return hasher.hexdigest()


# -- spec canonicalization -----------------------------------------------------


def canonical(value: Any) -> Any:
    """A JSON-able, deterministic form of a cell spec value.

    Nested dataclasses (profiles, fault plans, overload/fleet configs)
    expand field-by-field tagged with their type name, so two configs
    of different types with equal fields cannot collide.  Floats ride
    as JSON numbers: ``json.dumps`` emits ``repr``-shortest forms,
    which distinguish any two different doubles.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, dict):
        return {
            str(key): canonical(value[key])
            for key in sorted(value, key=str)
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: Dict[str, Any] = {"__type__": type(value).__qualname__}
        for field in dataclasses.fields(value):
            out[field.name] = canonical(getattr(value, field.name))
        return out
    return {"__repr__": f"{type(value).__qualname__}:{value!r}"}


def spec_digest(value: Any) -> str:
    """Short stable digest of any canonicalizable value (snapshot keys)."""
    material = json.dumps(canonical(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


# -- the store -----------------------------------------------------------------


@dataclasses.dataclass
class CacheStats:
    """Counters for one cache instance (rides every JSON report)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    hit_bytes: int = 0
    stored_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class ResultCache:
    """The content-addressed store; one instance per cache directory."""

    def __init__(self, root: str):
        self.root = root
        self.stats = CacheStats()
        os.makedirs(root, exist_ok=True)

    def key(self, cell: Any) -> str:
        """The cell's content address (see the module docstring)."""
        material = json.dumps(
            {
                "kind": cell.kind,
                "spec": canonical(cell),
                "code": code_fingerprint(cell.kind),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.entry")

    def get(self, cell: Any):
        """The cell's cached outcome, or ``None`` (counted as a miss).

        Any defect in the entry -- missing, short, bad magic, checksum
        mismatch, unpicklable -- is a miss, never an error.
        """
        from repro.exec.runner import CellOutcome

        path = self._path(self.key(cell))
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self.stats.misses += 1
            return None
        payload = data[36:]
        if (
            len(data) < 36
            or data[:4] != _MAGIC
            or hashlib.sha256(payload).digest() != data[4:36]
        ):
            self.stats.misses += 1
            return None
        try:
            value, events, wall_s = pickle.loads(payload)
        except Exception:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.hit_bytes += len(data)
        return CellOutcome(
            cell=cell, value=value, events=events, wall_s=wall_s, cached=True
        )

    def put(self, cell: Any, outcome: Any) -> None:
        """Store *outcome* atomically (temp file + ``os.replace``)."""
        payload = pickle.dumps(
            (outcome.value, outcome.events, outcome.wall_s),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        data = _MAGIC + hashlib.sha256(payload).digest() + payload
        path = self._path(self.key(cell))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self.stats.stored_bytes += len(data)


# -- the process-global active cache -------------------------------------------

_ACTIVE: Optional[ResultCache] = None


def configure(
    enabled: Optional[bool] = None, cache_dir: Optional[str] = None
) -> Optional[ResultCache]:
    """Install (or remove) the process-global cache.

    ``enabled=None`` defers to the ``REPRO_CACHE`` env knob; an explicit
    ``False`` always removes the active cache.  The directory falls
    back ``cache_dir`` -> ``REPRO_CACHE_DIR`` -> ``.repro-cache``.
    """
    from repro import env

    global _ACTIVE
    if enabled is None:
        enabled = env.result_cache()
    if not enabled:
        _ACTIVE = None
        return None
    _ACTIVE = ResultCache(cache_dir or env.cache_dir() or DEFAULT_CACHE_DIR)
    return _ACTIVE


def active_cache() -> Optional[ResultCache]:
    """The cache ``run_cells`` consults, or ``None`` when disabled."""
    return _ACTIVE


@contextmanager
def bypass() -> Iterator[None]:
    """Temporarily run with no cache (bench timing legs, tests)."""
    global _ACTIVE
    saved, _ACTIVE = _ACTIVE, None
    try:
        yield
    finally:
        _ACTIVE = saved


def cache_stats() -> Optional[Dict[str, Any]]:
    """The active cache's counters as a JSON-ready dict, or ``None``.

    ``boot_reuses`` comes from the snapshot layer's parent-side
    aggregation, so it covers reuses performed inside pool workers.
    """
    from repro.exec import snapshot

    if _ACTIVE is None:
        return None
    stats = _ACTIVE.stats.as_dict()
    stats["boot_reuses"] = snapshot.parent_boot_reuses()
    stats["dir"] = _ACTIVE.root
    return stats
