"""Process-pool execution of cells and the deterministic merge.

``execute_cell`` is a pure function of its :class:`~repro.exec.cells.Cell`
(it boots a fresh testbed from the cell's derived seed), so running
cells across a process pool cannot change any result -- only the
wall-clock time.  Results are merged back into the existing
:class:`~repro.core.results.SweepResult` /
:class:`~repro.core.results.ComparisonResult` /
:class:`~repro.workload.sweep.LoadSweepResult` types **in cell
construction order**, never completion order, which is what makes the
output byte-identical across ``jobs=1``, ``jobs=2``, ``jobs=4``.

``jobs=1`` runs the same cells in-process (no pool), so it doubles as
the bit-exact reference for the pool path and keeps single-core runs
free of fork/pickle overhead.

Two caching layers sit in front of execution (both preserve the
byte-identity guarantee):

* the content-addressed **result cache** (:mod:`repro.exec.cache`,
  when activated via ``--cache``/``REPRO_CACHE``): ``run_cells``
  consults it per cell before fanning out, runs only the misses, and
  merges hits + fresh results back in cell construction order -- the
  output is byte-identical for any ``jobs`` and any hit/miss mix;
* **snapshot boot reuse** (:mod:`repro.exec.snapshot`, default on):
  ``execute_cell`` splits every kind into a pure *boot* (testbed
  construction from (spec, seed, profile)) and a *measure* closure
  (fault-plan attachment, overload bounds, the workload), and the
  snapshot layer stamps repeated same-boot cells off one pristine
  copy-on-write image instead of re-booting.
"""

from __future__ import annotations

import atexit
import gc
import multiprocessing
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.calibration import PAPER_PROFILE, CalibrationProfile
from repro.core.latency import run_virtio_payload, run_xdma_payload
from repro.core.results import ComparisonResult, SweepResult
from repro.core.testbed import build_virtio_testbed, build_xdma_testbed
from repro.exec import cache as result_cache
from repro.exec import snapshot
from repro.exec.cells import (
    Cell,
    calibration_cells,
    closed_sweep_cells,
    fault_cells,
    latency_cells,
    open_sweep_cells,
)
from repro.workload.generator import ClosedLoopGenerator, OpenLoopGenerator
from repro.workload.sweep import (
    CALIBRATION_PACKETS,
    DEFAULT_MULTIPLIERS,
    ClosedSweepResult,
    LoadPoint,
    LoadSweepResult,
)


class ExecutionError(RuntimeError):
    """A cell failed or the decomposition was invalid."""


@dataclass
class CellOutcome:
    """What a worker sends back for one cell."""

    cell: Cell
    value: Any  # PayloadResult | RunMetrics | (rtt_us, rate_pps)
    events: int  # simulator events the cell executed (perf accounting)
    wall_s: float  # worker-side wall clock for the cell
    cached: bool = False  # served from the result cache, not executed
    boot_reused: bool = False  # measured off a pristine boot snapshot


@dataclass
class ExecutionStats:
    """Aggregate accounting for one fan-out (feeds the bench records)."""

    jobs: int
    cells: int
    events: int
    wall_s: float  # end-to-end wall clock of the fan-out
    cell_wall_s: float  # sum of per-cell worker wall clocks
    cache_hits: int = 0  # cells served from the result cache
    boot_reuses: int = 0  # cells stamped from a boot snapshot

    @property
    def events_per_second(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


def _builder(driver: str):
    if driver == "virtio":
        return build_virtio_testbed
    if driver == "xdma":
        return build_xdma_testbed
    raise ExecutionError(f"unknown driver {driver!r} (expected 'virtio' or 'xdma')")


def _make_sizes(payload_sizes: Sequence[int]):
    from repro.workload.sizes import FixedSize, make_sizes

    return make_sizes(list(payload_sizes)) if payload_sizes else FixedSize(64)


def execute_cell(cell: Cell) -> CellOutcome:
    """Run one cell to completion on a freshly booted testbed.

    Module-level (picklable) and a pure function of *cell*: the only
    inputs are the cell's parameters and its derived seed.

    Cyclic GC is suspended for the duration of the cell: the model
    allocates heavily but the testbed graph is alive until the cell
    ends, so collection passes mid-run only burn time.  Everything the
    cell built is reclaimed by refcounting (plus the next automatic
    collection) once it returns.  The GIL switch interval is widened
    likewise -- cells are single-threaded, so the default 5 ms
    round-robin checks are pure eval-loop overhead.
    """
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    switch_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.1)
    try:
        return _execute_cell(cell)
    finally:
        sys.setswitchinterval(switch_interval)
        if gc_was_enabled:
            gc.enable()


def _measure_cell(cell: Cell, testbed: Any) -> Tuple[Any, int]:
    """Everything a single-driver cell does after boot: attach plans,
    apply bounds, run the workload.  Runs either directly on a fresh
    testbed (cold path) or inside a snapshot fork (stamped path), so it
    must never rely on parent-process side effects."""
    if cell.kind == "latency":
        runner = run_virtio_payload if cell.driver == "virtio" else run_xdma_payload
        value: Any = runner(testbed, cell.payload, cell.packets)
    elif cell.kind == "calibrate":
        generator = ClosedLoopGenerator(
            outstanding=1, sizes=_make_sizes(cell.payload_sizes),
            packets=CALIBRATION_PACKETS,
        )
        metrics = testbed.run_workload(generator)
        rtt_us = float(metrics.latency_ps.mean()) / 1e6
        value = (rtt_us, 1e6 / rtt_us)
    elif cell.kind == "openload":
        from repro.workload.arrivals import make_arrivals

        generator = OpenLoopGenerator(
            arrivals=make_arrivals(cell.arrival, cell.rate_pps),
            sizes=_make_sizes(cell.payload_sizes),
            packets=cell.packets,
        )
        value = testbed.run_workload(generator)
    elif cell.kind == "closedload":
        generator = ClosedLoopGenerator(
            outstanding=cell.outstanding,
            sizes=_make_sizes(cell.payload_sizes),
            packets=cell.packets,
        )
        value = testbed.run_workload(generator)
    elif cell.kind == "overload":
        from repro.health.bounded import apply_overload_bounds
        from repro.health.monitor import ConservationMonitor
        from repro.workload.arrivals import make_arrivals

        if cell.fault_plan is not None or cell.fault_rate:
            from repro.faults.injector import attach_fault_plan
            from repro.faults.plan import driver_fault_plan

            plan = cell.fault_plan
            if plan is None:
                plan = driver_fault_plan(cell.driver, cell.fault_rate or 0.0)
            attach_fault_plan(testbed, plan)
        if cell.overload is not None:
            apply_overload_bounds(testbed, cell.overload)
        monitor = ConservationMonitor(cell.driver, "open")
        generator = OpenLoopGenerator(
            arrivals=make_arrivals(cell.arrival, cell.rate_pps),
            sizes=_make_sizes(cell.payload_sizes),
            packets=cell.packets,
            overload=cell.overload,
            monitor=monitor,
        )
        metrics = generator.run(testbed)
        value = (metrics, monitor.finalize())
    elif cell.kind == "soak":
        from repro.health.soak import run_soak_on

        value = run_soak_on(
            testbed,
            driver=cell.driver,
            base_rate_pps=cell.rate_pps or 0.0,
            packets=cell.packets,
            overload=cell.overload,
            fault_rate=cell.fault_rate,
            seed=cell.seed,
        )
    elif cell.kind == "faultlat":
        from repro.faults.injector import attach_fault_plan
        from repro.faults.plan import driver_fault_plan
        from repro.faults.report import ReliabilityReport

        plan = cell.fault_plan
        if plan is None:
            plan = driver_fault_plan(cell.driver, cell.fault_rate or 0.0)
        attach_fault_plan(testbed, plan)
        runner = run_virtio_payload if cell.driver == "virtio" else run_xdma_payload
        result = runner(testbed, cell.payload, cell.packets)
        report = ReliabilityReport.collect(testbed, fault_rate=cell.fault_rate)
        value = (result, report.as_dict())
    else:
        raise ExecutionError(f"unknown cell kind {cell.kind!r}")
    return value, testbed.sim.events_executed


def _cell_plan(cell: Cell):
    """``(snap_key, boot, measure)`` for any cell kind.

    ``boot`` is the pure testbed construction -- everything the
    snapshot key identifies -- and ``measure`` everything after it.
    Cells that share a key (e.g. every fault rate of one (driver,
    payload) column, which deliberately shares the latency cell's
    seed) boot identical machines, so the snapshot layer may measure
    all of them off one pristine image.
    """
    if cell.kind == "fleet":
        # Fleet cells boot their own multi-device testbed from the spec
        # riding the cell, so they never touch the legacy builders.
        from repro.topology.experiments import fleet_cell_plan

        return fleet_cell_plan(cell)
    if cell.kind == "guest":
        # Guest cells boot through the topology builder (the GuestSpec
        # decides whether a VMM interposes), not the legacy builders.
        from repro.guest.experiments import guest_cell_plan

        return guest_cell_plan(cell)
    builder = _builder(cell.driver)
    key = (
        f"single:{cell.driver}:{cell.seed:#x}:"
        f"{result_cache.spec_digest(cell.profile)}"
    )

    def boot() -> Any:
        return builder(seed=cell.seed, profile=cell.profile)

    def measure(testbed: Any) -> Tuple[Any, int]:
        return _measure_cell(cell, testbed)

    return key, boot, measure


def _execute_cell(cell: Cell) -> CellOutcome:
    started = time.perf_counter()
    key, boot, measure = _cell_plan(cell)
    (value, events), boot_reused = snapshot.execute(key, boot, measure)
    return CellOutcome(
        cell=cell,
        value=value,
        events=events,
        wall_s=time.perf_counter() - started,
        boot_reused=boot_reused,
    )


def _pool_context():
    """Prefer fork (cheap, inherits the imported model code); fall back
    to spawn on platforms without it."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _warm_worker() -> None:
    """Pool-worker initializer: pay the model-import cost once per
    worker instead of once per cell (a no-op under fork, where imports
    are inherited; the win is on spawn platforms)."""
    import repro.core.testbed  # noqa: F401
    import repro.topology.experiments  # noqa: F401


# The warm pool: constructed on the first jobs>1 fan-out and reused by
# every later one (``execute_load_sweep`` alone performs two fan-outs
# per call, and the bench harness many more).  Reuse also keeps
# worker-process caches warm across fan-outs -- imported model modules
# and the ``lru_cache``-backed TLP segmentation plans survive from cell
# to cell, which a throwaway executor forfeits.
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared executor, grown (never shrunk) to *workers*."""
    global _POOL, _POOL_WORKERS
    if _POOL is None or _POOL_WORKERS < workers:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
        _POOL = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_pool_context(),
            initializer=_warm_worker,
        )
        _POOL_WORKERS = workers
    return _POOL


def shutdown_pool() -> None:
    """Tear down the warm pool (atexit hook; also used by tests)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


def _fan_out(pool: ProcessPoolExecutor, cells: Sequence[Cell]) -> List[CellOutcome]:
    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    futures = {pool.submit(execute_cell, cell): i for i, cell in enumerate(cells)}
    for future in as_completed(futures):
        outcomes[futures[future]] = future.result()
    return outcomes  # type: ignore[return-value]


def _run_cells_fresh(cells: Sequence[Cell], jobs: int) -> List[CellOutcome]:
    """Execute every cell (no cache consult), outcomes in cell order."""
    if jobs == 1 or len(cells) <= 1:
        return [execute_cell(cell) for cell in cells]
    try:
        return _fan_out(_get_pool(min(jobs, len(cells))), cells)
    except BrokenProcessPool:
        # A worker died (OOM kill, signal).  Cells are pure functions of
        # their parameters, so one retry on a fresh pool is safe.
        shutdown_pool()
        return _fan_out(_get_pool(min(jobs, len(cells))), cells)


def run_cells(cells: Sequence[Cell], jobs: int = 1) -> List[CellOutcome]:
    """Execute *cells*, returning outcomes in cell order.

    ``jobs=1`` runs in-process; ``jobs>1`` fans out over the shared
    warm pool.  Either way the returned list is indexed by the cells'
    construction order, so downstream merges are order-deterministic.

    When a result cache is active, every cell is looked up first and
    only the misses are executed; hits and fresh results merge back in
    construction order, so the output is byte-identical to an uncached
    run for any ``jobs`` and any hit/miss mix.
    """
    jobs = max(1, int(jobs))
    cache = result_cache.active_cache()
    if cache is None:
        outcomes = _run_cells_fresh(cells, jobs)
    else:
        outcomes = [cache.get(cell) for cell in cells]
        miss_at = [i for i, outcome in enumerate(outcomes) if outcome is None]
        fresh = _run_cells_fresh([cells[i] for i in miss_at], jobs)
        for i, outcome in zip(miss_at, fresh):
            cache.put(cells[i], outcome)
            outcomes[i] = outcome
    # Fold worker-side boot reuses (riding the outcome flags) into the
    # parent-side counter cache_stats() reports.
    snapshot.note_parent_reuses(sum(1 for o in outcomes if o.boot_reused))
    return outcomes


def _stats(outcomes: Sequence[CellOutcome], jobs: int, wall_s: float) -> ExecutionStats:
    return ExecutionStats(
        jobs=jobs,
        cells=len(outcomes),
        events=sum(o.events for o in outcomes),
        wall_s=wall_s,
        cell_wall_s=sum(o.wall_s for o in outcomes),
        cache_hits=sum(1 for o in outcomes if o.cached),
        boot_reuses=sum(1 for o in outcomes if o.boot_reused),
    )


# -- artifact-level entry points ---------------------------------------------------


def execute_sweep(
    driver: str,
    payload_sizes: Sequence[int],
    packets: int,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    jobs: int = 1,
) -> Tuple[SweepResult, ExecutionStats]:
    """One driver's payload sweep via the cell engine."""
    started = time.perf_counter()
    cells = latency_cells(payload_sizes, packets, seed, profile, drivers=(driver,))
    outcomes = run_cells(cells, jobs)
    sweep = SweepResult(driver=driver, seed=seed)
    for outcome in outcomes:
        sweep.add(outcome.value)
    return sweep, _stats(outcomes, jobs, time.perf_counter() - started)


def execute_comparison(
    payload_sizes: Sequence[int],
    packets: int,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    jobs: int = 1,
) -> Tuple[ComparisonResult, ExecutionStats]:
    """Both drivers' sweeps via the cell engine (one shared fan-out, so
    all driver x payload cells load the pool at once)."""
    started = time.perf_counter()
    cells = latency_cells(payload_sizes, packets, seed, profile)
    outcomes = run_cells(cells, jobs)
    sweeps = {
        "virtio": SweepResult(driver="virtio", seed=seed),
        "xdma": SweepResult(driver="xdma", seed=seed),
    }
    for outcome in outcomes:
        sweeps[outcome.cell.driver].add(outcome.value)
    comparison = ComparisonResult(virtio=sweeps["virtio"], xdma=sweeps["xdma"])
    return comparison, _stats(outcomes, jobs, time.perf_counter() - started)


#: driver -> [(fault_rate, PayloadResult, reliability dict)] in rate order.
FaultSweepResults = Dict[str, List[Tuple[float, Any, Dict[str, Any]]]]


def execute_fault_sweep(
    rates: Sequence[float],
    payload: int = 64,
    packets: int = 300,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    drivers: Sequence[str] = ("virtio", "xdma"),
    jobs: int = 1,
) -> Tuple[FaultSweepResults, ExecutionStats]:
    """Driver x fault-rate fan-out via the cell engine.

    Each cell measures one ping-pong run under that driver's
    characteristic fault (lost notifications for VirtIO, descriptor
    errors for XDMA) at the given Bernoulli rate, and collects a
    :class:`~repro.faults.ReliabilityReport`.  Results merge in cell
    construction order, bit-identical across ``jobs``.
    """
    started = time.perf_counter()
    cells = fault_cells(drivers, rates, payload, packets, seed, profile)
    outcomes = run_cells(cells, jobs)
    results: FaultSweepResults = {driver: [] for driver in drivers}
    for outcome in outcomes:
        payload_result, report = outcome.value
        results[outcome.cell.driver].append(
            (outcome.cell.fault_rate, payload_result, report)
        )
    return results, _stats(outcomes, jobs, time.perf_counter() - started)


LoadResults = Dict[str, Union[LoadSweepResult, ClosedSweepResult]]


def execute_load_sweep(
    drivers: Sequence[str] = ("virtio", "xdma"),
    packets: int = 400,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    rates: Optional[Sequence[float]] = None,
    outstanding: Optional[Sequence[int]] = None,
    arrival: str = "poisson",
    payload_sizes: Sequence[int] = (64,),
    jobs: int = 1,
) -> Tuple[LoadResults, ExecutionStats]:
    """Load sweeps for all drivers via the cell engine.

    Open-loop sweeps are two fan-outs: all drivers' calibration cells
    first (their base rates place the load points), then every
    driver x rate cell at once.  Closed-loop sweeps are a single
    driver x outstanding fan-out.
    """
    started = time.perf_counter()
    results: LoadResults = {}
    if outstanding:
        cells: List[Cell] = []
        for driver in drivers:
            cells.extend(
                closed_sweep_cells(driver, outstanding, payload_sizes, packets,
                                   seed, profile)
            )
        outcomes = run_cells(cells, jobs)
        per_driver: Dict[str, list] = {driver: [] for driver in drivers}
        for outcome in outcomes:
            per_driver[outcome.cell.driver].append(outcome.value)
        for driver in drivers:
            results[driver] = ClosedSweepResult(
                driver=driver, seed=seed, points=per_driver[driver]
            )
        return results, _stats(outcomes, jobs, time.perf_counter() - started)

    cal_cells = calibration_cells(drivers, payload_sizes, packets, seed, profile)
    cal_outcomes = run_cells(cal_cells, jobs)
    base: Dict[str, Tuple[float, float]] = {
        outcome.cell.driver: outcome.value for outcome in cal_outcomes
    }

    point_cells: List[Cell] = []
    offered: Dict[str, List[float]] = {}
    for driver in drivers:
        _, base_rate = base[driver]
        offered[driver] = list(rates) if rates else [m * base_rate for m in DEFAULT_MULTIPLIERS]
        if not offered[driver]:
            raise ExecutionError("load sweep needs at least one offered-load point")
        point_cells.extend(
            open_sweep_cells(driver, offered[driver], payload_sizes, packets,
                             seed, arrival, profile)
        )
    point_outcomes = run_cells(point_cells, jobs)

    per_driver_points: Dict[str, List[LoadPoint]] = {driver: [] for driver in drivers}
    for outcome in point_outcomes:
        per_driver_points[outcome.cell.driver].append(
            LoadPoint(offered_pps=outcome.cell.rate_pps, metrics=outcome.value)
        )
    for driver in drivers:
        rtt_us, base_rate = base[driver]
        results[driver] = LoadSweepResult(
            driver=driver,
            seed=seed,
            arrival_kind=arrival,
            base_rtt_us=rtt_us,
            base_rate_pps=base_rate,
            points=per_driver_points[driver],
        )
    all_outcomes = list(cal_outcomes) + list(point_outcomes)
    return results, _stats(all_outcomes, jobs, time.perf_counter() - started)
