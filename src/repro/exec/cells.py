"""Cell decomposition and per-cell seed derivation.

A *cell* is the smallest unit of experiment work whose result depends
on nothing but its own parameters: one (driver, payload) latency
measurement, one (driver, offered-rate) load point, one calibration
ping-pong.  Decomposing an artifact into cells is what makes the
process-pool fan-out legal -- cells share no simulator state, so they
can run in any order on any worker.

Seed derivation
---------------

Each cell's simulator seed is derived from the experiment's root seed
through a :class:`numpy.random.SeedSequence` spawn key built from the
cell's *identity* (kind, driver, payload / point index) -- never from
worker IDs, submission order, or wall-clock time.  Two consequences:

* the same root seed always produces the same per-cell seeds, so a
  run is bit-reproducible regardless of worker count or completion
  order;
* distinct cells get statistically independent streams (SeedSequence's
  spawn-key mixing), so fanning out does not correlate the noise
  processes of different cells.

This mirrors how the simulation kernel derives named random streams
(:meth:`repro.sim.kernel.Simulator.rng` hashes the stream name into
spawn-key material), extended one level up the hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.calibration import PAPER_PROFILE, CalibrationProfile


def derive_cell_seed(root_seed: int, *identity: object) -> int:
    """A 128-bit simulator seed for the cell named by *identity*.

    The identity parts are joined into spawn-key material byte-wise, the
    same scheme the kernel uses for named random streams, so the value
    is stable across platforms and numpy versions that keep the
    SeedSequence hashing contract.
    """
    material = ":".join(str(part) for part in identity).encode("utf-8")
    child = np.random.SeedSequence(entropy=root_seed, spawn_key=tuple(material))
    seed = 0
    for shift, word in enumerate(child.generate_state(4, np.uint32)):
        seed |= int(word) << (32 * shift)
    return seed


#: Kinds whose cells deliberately reuse another kind's seed identity.
#: These aliases are the determinism guards the layered experiments
#: rest on: a fault/guest cell boots the very machine the plain latency
#: cell booted (so the rate-0 / bare column is bit-identical to the
#: paper artifact), and an overload point boots the plain load-sweep
#: point's machine (so an all-off OverloadConfig reproduces it).
SEED_IDENTITY_ALIASES = {
    "faultlat": "latency",
    "guest": "latency",
    "overload": "openload",
}


def seed_identity(
    kind: str,
    driver: Optional[str] = None,
    *,
    payload: Optional[int] = None,
    index: Optional[int] = None,
    outstanding: Optional[int] = None,
    pod: Optional[int] = None,
) -> Tuple[object, ...]:
    """The spawn-key identity tuple for one cell of *kind*.

    This is the single source of truth for per-kind seed identities --
    the cell factories, the fleet sweep, and the result cache all
    derive from it, so the runners and the cache key cannot drift.
    Aliased kinds (see :data:`SEED_IDENTITY_ALIASES`) resolve to the
    identity of the kind they must reproduce byte-identically.

    Open-loop points are identified by *index*, never by the rate
    value: auto-placed rates are floats whose textual form could vary,
    while the point index is exact and stable.
    """
    base = SEED_IDENTITY_ALIASES.get(kind, kind)
    if base == "latency":
        parts: Tuple[object, ...] = (base, driver, payload)
    elif base in ("calibrate", "soak"):
        parts = (base, driver)
    elif base == "openload":
        parts = (base, driver, index)
    elif base == "closedload":
        parts = (base, driver, outstanding)
    elif base == "fleet":
        parts = (base, pod)
    else:
        raise ValueError(f"no seed identity for cell kind {kind!r}")
    if any(part is None for part in parts):
        raise ValueError(f"incomplete seed identity for kind {kind!r}: {parts}")
    return parts


def cell_seed(
    root_seed: int,
    kind: str,
    driver: Optional[str] = None,
    *,
    payload: Optional[int] = None,
    index: Optional[int] = None,
    outstanding: Optional[int] = None,
    pod: Optional[int] = None,
) -> int:
    """:func:`derive_cell_seed` over the kind's :func:`seed_identity`."""
    return derive_cell_seed(
        root_seed,
        *seed_identity(
            kind, driver, payload=payload, index=index,
            outstanding=outstanding, pod=pod,
        ),
    )


@dataclass(frozen=True)
class Cell:
    """One independent unit of experiment work.

    ``kind`` selects the worker routine:

    * ``"latency"`` -- one payload size of the paper's ping-pong sweep
      (uses ``payload``);
    * ``"calibrate"`` -- the short closed-loop run that measures a
      driver's base rate for auto-placing load points (uses
      ``payload_sizes``);
    * ``"openload"`` -- one offered-rate point of an open-loop sweep
      (uses ``rate_pps``, ``arrival``, ``payload_sizes``);
    * ``"closedload"`` -- one outstanding-count point of a closed-loop
      sweep (uses ``outstanding``, ``payload_sizes``);
    * ``"faultlat"`` -- one ping-pong measurement under fault injection
      (uses ``payload`` plus ``fault_rate`` / ``fault_plan``);
    * ``"overload"`` -- one offered-rate point of an overload-protected
      open-loop sweep with conservation monitoring (uses ``rate_pps``,
      ``arrival``, ``payload_sizes``, ``overload``, optionally
      ``fault_rate`` / ``fault_plan``);
    * ``"soak"`` -- one driver's three-phase overload soak on a single
      testbed (uses ``rate_pps`` as the measured base rate plus
      ``overload`` and ``fault_rate``);
    * ``"fleet"`` -- one pod of the E-M1 tenant-fleet sweep (uses
      ``pod`` plus the ``fleet`` config; ``packets`` is per tenant);
    * ``"guest"`` -- one (driver, guest mode, payload) ping-pong
      measurement of the E-V1 guest sweep (uses ``payload`` plus
      ``guest_mode`` / ``guest_transport``).
    """

    kind: str
    driver: str
    seed: int
    packets: int
    profile: CalibrationProfile
    payload: Optional[int] = None
    payload_sizes: Tuple[int, ...] = ()
    rate_pps: Optional[float] = None
    arrival: str = "poisson"
    outstanding: Optional[int] = None
    fault_rate: Optional[float] = None
    fault_plan: Optional[object] = None  # repro.faults.FaultPlan (picklable)
    overload: Optional[object] = None  # repro.workload.OverloadConfig (picklable)
    pod: Optional[int] = None
    fleet: Optional[object] = None  # repro.topology.experiments.FleetConfig
    guest_mode: Optional[str] = None  # "bare" | "trapped" | "vhost"
    guest_transport: str = "pci"  # "pci" | "mmio"

    @property
    def label(self) -> str:
        """Human-readable identity (progress messages, bench records)."""
        if self.kind == "latency":
            return f"{self.driver}/{self.payload}B"
        if self.kind == "calibrate":
            return f"{self.driver}/calibrate"
        if self.kind in ("openload", "overload"):
            return f"{self.driver}/{self.rate_pps:.0f}pps"
        if self.kind == "faultlat":
            return f"{self.driver}/r{self.fault_rate:g}"
        if self.kind == "soak":
            return f"{self.driver}/soak"
        if self.kind == "fleet":
            return f"fleet/pod{self.pod}"
        if self.kind == "guest":
            return f"{self.driver}/{self.guest_mode}/{self.payload}B"
        return f"{self.driver}/N={self.outstanding}"


def latency_cells(
    payload_sizes: Sequence[int],
    packets: int,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    drivers: Sequence[str] = ("virtio", "xdma"),
) -> list[Cell]:
    """Driver x payload decomposition of the latency artifacts."""
    return [
        Cell(
            kind="latency",
            driver=driver,
            payload=payload,
            packets=packets,
            profile=profile,
            seed=cell_seed(seed, "latency", driver, payload=payload),
        )
        for driver in drivers
        for payload in payload_sizes
    ]


def guest_cells(
    payload_sizes: Sequence[int],
    packets: int,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    drivers: Sequence[str] = ("virtio", "xdma"),
    modes: Sequence[str] = ("bare", "trapped", "vhost"),
    transport: str = "pci",
) -> list[Cell]:
    """Driver x guest-mode x payload decomposition of the E-V1 sweep.

    The seed identity is deliberately the *latency* identity (kind
    "latency", driver, payload), not a guest-specific one: every mode
    of a (driver, payload) column then boots from the same seed, so the
    ``bare``/``pci`` column reproduces the plain latency cell
    byte-identically -- the determinism guard the guest experiments
    rest on (same discipline as :func:`fault_cells`).
    """
    return [
        Cell(
            kind="guest",
            driver=driver,
            payload=payload,
            packets=packets,
            profile=profile,
            guest_mode=mode,
            guest_transport=transport,
            seed=cell_seed(seed, "guest", driver, payload=payload),
        )
        for driver in drivers
        for mode in modes
        for payload in payload_sizes
    ]


def fault_cells(
    drivers: Sequence[str],
    rates: Sequence[float],
    payload: int,
    packets: int,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
) -> list[Cell]:
    """Driver x fault-rate decomposition of the fault sweep.

    The seed identity is deliberately the *latency* identity (kind
    "latency", driver, payload) rather than a fault-specific one: every
    rate of a (driver, payload) column then boots an identical testbed
    and differs only in what the injector does, so the rate-0 column is
    bit-identical to the fault-free latency cell -- the determinism
    guard the fault experiments rest on.
    """
    return [
        Cell(
            kind="faultlat",
            driver=driver,
            payload=payload,
            packets=packets,
            profile=profile,
            fault_rate=rate,
            seed=cell_seed(seed, "faultlat", driver, payload=payload),
        )
        for driver in drivers
        for rate in rates
    ]


def calibration_cells(
    drivers: Sequence[str],
    payload_sizes: Sequence[int],
    packets: int,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
) -> list[Cell]:
    """One base-rate calibration cell per driver."""
    return [
        Cell(
            kind="calibrate",
            driver=driver,
            payload_sizes=tuple(payload_sizes),
            packets=packets,
            profile=profile,
            seed=cell_seed(seed, "calibrate", driver),
        )
        for driver in drivers
    ]


def open_sweep_cells(
    driver: str,
    rates: Sequence[float],
    payload_sizes: Sequence[int],
    packets: int,
    seed: int = 0,
    arrival: str = "poisson",
    profile: CalibrationProfile = PAPER_PROFILE,
) -> list[Cell]:
    """Driver x offered-rate decomposition of an open-loop sweep.

    The seed identity uses the *point index*, not the rate value: rates
    auto-placed from a measured base rate are floats whose textual form
    could vary, while the index is exact and stable.
    """
    return [
        Cell(
            kind="openload",
            driver=driver,
            rate_pps=rate,
            arrival=arrival,
            payload_sizes=tuple(payload_sizes),
            packets=packets,
            profile=profile,
            seed=cell_seed(seed, "openload", driver, index=index),
        )
        for index, rate in enumerate(rates)
    ]


def overload_cells(
    driver: str,
    rates: Sequence[float],
    payload_sizes: Sequence[int],
    packets: int,
    seed: int = 0,
    arrival: str = "poisson",
    profile: CalibrationProfile = PAPER_PROFILE,
    overload: Optional[object] = None,
    fault_rate: Optional[float] = None,
) -> list[Cell]:
    """Driver x offered-rate decomposition of an overload sweep (E-O1).

    The seed identity is deliberately the *openload* identity (kind
    "openload", driver, point index), not an overload-specific one: a
    point run with an all-off :class:`OverloadConfig` then boots an
    identical testbed and draws identical schedules, so its metrics are
    bit-identical to the plain load-sweep cell -- the determinism guard
    the overload experiments rest on (same discipline as
    :func:`fault_cells`).
    """
    return [
        Cell(
            kind="overload",
            driver=driver,
            rate_pps=rate,
            arrival=arrival,
            payload_sizes=tuple(payload_sizes),
            packets=packets,
            profile=profile,
            overload=overload,
            fault_rate=fault_rate,
            seed=cell_seed(seed, "overload", driver, index=index),
        )
        for index, rate in enumerate(rates)
    ]


def soak_cells(
    drivers: Sequence[str],
    base_rates: dict,
    packets: int,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    overload: Optional[object] = None,
    fault_rate: Optional[float] = None,
) -> list[Cell]:
    """One three-phase soak cell per driver (E-S1); ``base_rates`` maps
    driver -> measured base rate in pps."""
    return [
        Cell(
            kind="soak",
            driver=driver,
            rate_pps=base_rates[driver],
            packets=packets,
            profile=profile,
            overload=overload,
            fault_rate=fault_rate,
            seed=cell_seed(seed, "soak", driver),
        )
        for driver in drivers
    ]


def closed_sweep_cells(
    driver: str,
    outstanding: Sequence[int],
    payload_sizes: Sequence[int],
    packets: int,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
) -> list[Cell]:
    """Driver x outstanding-count decomposition of a closed-loop sweep."""
    return [
        Cell(
            kind="closedload",
            driver=driver,
            outstanding=n,
            payload_sizes=tuple(payload_sizes),
            packets=packets,
            profile=profile,
            seed=cell_seed(seed, "closedload", driver, outstanding=n),
        )
        for n in outstanding
    ]
