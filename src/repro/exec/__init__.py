"""Parallel execution engine.

Experiment artifacts decompose into independent *cells* -- driver x
payload for the latency artifacts (Fig. 3/4/5, Table I), driver x
offered-rate point for the load sweeps -- each of which boots its own
testbed from a seed derived via :class:`numpy.random.SeedSequence`
spawn keys.  Cells run across a :class:`concurrent.futures.ProcessPoolExecutor`
and merge back into the existing result types in deterministic cell
order, so a run's output is bit-identical for a given root seed
regardless of worker count or completion order.

Two caching layers make re-runs near-free: the content-addressed
result cache (:mod:`repro.exec.cache`) returns unchanged cells from
disk, and snapshot boot reuse (:mod:`repro.exec.snapshot`) stamps
repeated same-boot cells off one pristine fork/copy-on-write image.

See ``docs/architecture.md`` ("Parallel execution" and "Result cache &
snapshot boot reuse") for the design notes and the seed-derivation
argument.
"""

from repro.exec.cache import (
    ResultCache,
    active_cache,
    cache_stats,
    code_fingerprint,
    configure,
)
from repro.exec.cells import (
    Cell,
    cell_seed,
    closed_sweep_cells,
    derive_cell_seed,
    latency_cells,
    seed_identity,
)
from repro.exec.runner import (
    CellOutcome,
    ExecutionStats,
    execute_cell,
    execute_comparison,
    execute_load_sweep,
    execute_sweep,
    run_cells,
)

__all__ = [
    "Cell",
    "CellOutcome",
    "ExecutionStats",
    "ResultCache",
    "active_cache",
    "cache_stats",
    "cell_seed",
    "closed_sweep_cells",
    "code_fingerprint",
    "configure",
    "derive_cell_seed",
    "execute_cell",
    "execute_comparison",
    "execute_load_sweep",
    "execute_sweep",
    "latency_cells",
    "run_cells",
    "seed_identity",
]
