"""Declarative fault plans.

A :class:`FaultPlan` is a frozen tuple of :class:`FaultSpec` entries;
each spec names an injection **site** (where in the model the fault
strikes), a **kind** (what goes wrong there), and a **trigger** (when).
Plans carry no simulator state, so they hash, pickle, and travel to
pool workers inside :class:`~repro.exec.cells.Cell` unchanged -- the
compilation against a live testbed happens in
:class:`~repro.faults.injector.FaultInjector`.

Sites and kinds are plain strings so the low-level layers (PCIe link,
XDMA engines, VirtIO controller, host IRQ delivery) can reference them
without importing anything above :mod:`repro.faults.plan`, which itself
imports nothing from the model -- the dependency arrow only ever points
downward into this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

# -- injection sites -----------------------------------------------------------------

#: Root complex -> endpoint direction of the PCIe link.
SITE_PCIE_DOWN = "pcie.down"
#: Endpoint -> root complex direction of the PCIe link.
SITE_PCIE_UP = "pcie.up"
#: XDMA SGDMA engines and the IRQ block (descriptor fetch/IRQ raise).
SITE_XDMA_ENGINE = "xdma.engine"
#: VirtIO controller (notify region, queue engines, used-ring writes).
SITE_VIRTIO_CTRL = "virtio.controller"
#: Host-side MSI delivery (root complex -> interrupt controller).
SITE_HOST_IRQ = "host.irq"

# -- fault kinds ---------------------------------------------------------------------

#: Silently drop a posted memory-write TLP (data poisoning by loss).
KIND_TLP_DROP = "tlp_drop"
#: Flip a byte of a posted write's payload at arrival.
KIND_TLP_CORRUPT = "tlp_corrupt"
#: Hold a TLP at the receiver for ``delay_ns`` before delivery -- the
#: model's stand-in for a completion timeout / replay.
KIND_TLP_DELAY = "tlp_delay"
#: Corrupt a fetched SGDMA descriptor so magic/format validation fails
#: and the engine error-stops without completing or interrupting.
KIND_DESC_ERROR = "desc_error"
#: Stall the engine ``delay_ns`` between descriptor decode and data move.
KIND_ENGINE_STALL = "engine_stall"
#: Swallow a channel-interrupt request inside the XDMA IRQ block.
KIND_LOST_IRQ = "lost_irq"
#: Duplicate a user-interrupt request (spurious usr_irq).
KIND_SPURIOUS_USR_IRQ = "spurious_usr_irq"
#: Swallow a doorbell write in the VirtIO notify region.
KIND_LOST_NOTIFY = "lost_notify"
#: Delay the device's used-ring element write by ``delay_ns``.
KIND_USED_DELAY = "used_delay"
#: Corrupt a fetched descriptor into a self-referential chain -- the
#: controller detects it and latches ``STATUS_DEVICE_NEEDS_RESET``.
KIND_MALFORMED_CHAIN = "malformed_chain"
#: Drop an MSI-X message between root complex and interrupt controller.
KIND_LOST_MSI = "lost_msi"
#: Deliver an MSI-X message twice.
KIND_DUP_MSI = "dup_msi"


# -- triggers ------------------------------------------------------------------------


@dataclass(frozen=True)
class NthEvent:
    """Fire exactly once, at the *n*-th opportunity (1-based)."""

    n: int


@dataclass(frozen=True)
class EveryNth:
    """Fire at every *n*-th opportunity (n, 2n, 3n, ...)."""

    n: int


@dataclass(frozen=True)
class TimeWindow:
    """Fire at every opportunity whose sim time falls in
    ``[start_ns, end_ns]``."""

    start_ns: float
    end_ns: float


@dataclass(frozen=True)
class PoissonRate:
    """Per-opportunity Bernoulli draw with probability *probability*.

    Thinning the site's opportunity stream this way yields Poisson
    fault arrivals in event count.  Draws come from the dedicated
    ``faults.<site>.<kind>`` named RNG stream, never from the model's
    calibrated noise streams -- and the stream is drawn even when
    ``probability`` is 0, so raising the rate never re-aligns which
    opportunity sees which uniform variate.
    """

    probability: float


Trigger = Union[NthEvent, EveryNth, TimeWindow, PoissonRate]


@dataclass(frozen=True)
class FaultSpec:
    """One fault: *kind* at *site*, fired per *trigger*.

    ``delay_ns`` parameterizes the delay/stall kinds; other kinds
    ignore it.
    """

    site: str
    kind: str
    trigger: Trigger
    delay_ns: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """An immutable collection of fault specs for one run."""

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"FaultPlan entries must be FaultSpec, got {spec!r}")

    def for_hook(self, site: str, kind: str) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.site == site and s.kind == kind)

    @property
    def sites(self) -> Tuple[str, ...]:
        return tuple(sorted({s.site for s in self.specs}))


def driver_fault_plan(driver: str, rate: float) -> FaultPlan:
    """The ``faultsweep`` chaos plan: the canonical recoverable fault
    of each stack at per-opportunity probability *rate*.

    * ``virtio`` -- lost queue notifications (the doorbell never reaches
      the controller); the driver's TX watchdog must detect and re-kick.
    * ``xdma`` -- corrupted SGDMA descriptors (the engine error-stops
      without an interrupt); the driver's request timeout must detect
      and retry with backoff.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"fault rate must be in [0, 1], got {rate}")
    if driver == "virtio":
        return FaultPlan(
            (FaultSpec(SITE_VIRTIO_CTRL, KIND_LOST_NOTIFY, PoissonRate(rate)),)
        )
    if driver == "xdma":
        return FaultPlan(
            (FaultSpec(SITE_XDMA_ENGINE, KIND_DESC_ERROR, PoissonRate(rate)),)
        )
    raise ValueError(f"unknown driver {driver!r} (expected 'virtio' or 'xdma')")


def reset_storm_plan(every: int) -> FaultPlan:
    """E-F2 plan: a malformed TX descriptor chain at every *every*-th
    chain fetch, forcing repeated ``STATUS_DEVICE_NEEDS_RESET`` ->
    driver reset/renegotiation cycles."""
    if every <= 0:
        raise ValueError(f"reset interval must be positive, got {every}")
    return FaultPlan(
        (FaultSpec(SITE_VIRTIO_CTRL, KIND_MALFORMED_CHAIN, EveryNth(every)),)
    )
