"""Fault-injection experiments (extension beyond the paper).

Two reliability experiments built on the fault subsystem:

* **E-F1** (:func:`run_fault_sweep`) -- tail-latency inflation and
  goodput degradation under increasing fault rates, VirtIO vs XDMA.
  Each driver is swept across per-opportunity fault probabilities of
  its canonical recoverable fault (lost doorbells for VirtIO,
  corrupted SGDMA descriptors for XDMA); the rate-0 column doubles as
  the determinism guard -- it is bit-identical to a fault-free run.

* **E-F2** (:func:`run_reset_recovery`) -- recovery-latency
  distribution of the VirtIO driver's full reset/renegotiation path:
  malformed descriptor chains injected at a fixed cadence force
  ``STATUS_DEVICE_NEEDS_RESET``, and the report captures how long each
  detect -> reset -> renegotiate -> replay cycle takes.

This module sits *above* the rest of :mod:`repro.faults` (it imports
the exec engine and core experiment plumbing), so it is deliberately
not re-exported from ``repro.faults.__init__`` -- importing it pulls in
:mod:`repro.core`, and the testbed layer imports the fault package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.calibration import PAPER_PROFILE, CalibrationProfile
from repro.core.experiments import default_packets
from repro.faults.plan import reset_storm_plan

#: Default per-opportunity fault probabilities for E-F1.  Zero first:
#: that row is the fault-free baseline every other row is compared to.
DEFAULT_FAULT_RATES: Tuple[float, ...] = (0.0, 0.002, 0.01, 0.05)

#: Default malformed-chain cadence for E-F2 (one forced reset per
#: ``every`` TX descriptor-chain fetches).
DEFAULT_RESET_EVERY = 25


# -- E-F1: fault-rate sweep ----------------------------------------------------------


@dataclass
class FaultRateRow:
    """One (driver, fault-rate) point of the E-F1 sweep."""

    rate: float
    mean_us: float
    p50_us: float
    p95_us: float
    p99_us: float
    p999_us: float
    goodput_mbps: float
    reliability: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "mean_us": self.mean_us,
            "p50_us": self.p50_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "p999_us": self.p999_us,
            "goodput_mbps": self.goodput_mbps,
            "reliability": self.reliability,
        }


@dataclass
class FaultSweepResult:
    """E-F1: per-driver fault-rate rows plus sweep parameters."""

    payload: int
    packets: int
    seed: int
    drivers: Dict[str, List[FaultRateRow]] = field(default_factory=dict)

    def baseline(self, driver: str) -> FaultRateRow:
        """The lowest-rate row (the fault-free reference when rate 0
        is part of the sweep)."""
        rows = self.drivers[driver]
        return min(rows, key=lambda row: row.rate)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "experiment": "E-F1",
            "payload": self.payload,
            "packets": self.packets,
            "seed": self.seed,
            "drivers": {},
        }
        for driver, rows in self.drivers.items():
            base = self.baseline(driver)
            out["drivers"][driver] = [
                dict(
                    row.as_dict(),
                    p99_inflation=_ratio(row.p99_us, base.p99_us),
                    goodput_degradation=1.0 - _ratio(row.goodput_mbps, base.goodput_mbps),
                )
                for row in rows
            ]
        return out

    def render(self) -> str:
        blocks = [
            "E-F1: tail latency and goodput vs fault rate "
            f"(payload {self.payload} B, {self.packets} packets)"
        ]
        fault_names = {"virtio": "lost notifications", "xdma": "descriptor errors"}
        for driver, rows in self.drivers.items():
            base = self.baseline(driver)
            blocks.append(
                f"\n-- {driver} (fault: {fault_names.get(driver, 'custom plan')}) --"
            )
            blocks.append(
                f"{'rate':>8} {'mean':>8} {'p95':>8} {'p99':>8} {'p99.9':>8} "
                f"{'x-p99':>6} {'gput':>8} {'-gput':>6} {'det':>5} {'rty':>5} "
                f"{'rst':>4} {'recov-p99':>10}   (us / Mb/s)"
            )
            for row in rows:
                rel = row.reliability
                blocks.append(
                    f"{row.rate:>8g} {row.mean_us:>8.1f} {row.p95_us:>8.1f} "
                    f"{row.p99_us:>8.1f} {row.p999_us:>8.1f} "
                    f"{_ratio(row.p99_us, base.p99_us):>6.2f} "
                    f"{row.goodput_mbps:>8.2f} "
                    f"{1.0 - _ratio(row.goodput_mbps, base.goodput_mbps):>6.1%} "
                    f"{rel['detected']:>5} {rel['retries']:>5} "
                    f"{rel['device_resets']:>4} "
                    f"{rel['recovery_us']['p99']:>10.1f}"
                )
        return "\n".join(blocks)


def _ratio(value: float, reference: float) -> float:
    return value / reference if reference else 0.0


def _row_from_payload(rate: float, payload_result, reliability: Dict[str, Any]) -> FaultRateRow:
    summary = payload_result.rtt_summary()
    tails = payload_result.tail_latencies_us()
    elapsed_s = float(np.sum(payload_result.adjusted_rtt_ps)) / 1e12
    bits = payload_result.payload * 8 * payload_result.packets
    return FaultRateRow(
        rate=rate,
        mean_us=summary.mean_us,
        p50_us=summary.median_us,
        p95_us=tails[95.0],
        p99_us=tails[99.0],
        p999_us=tails[99.9],
        goodput_mbps=(bits / elapsed_s) / 1e6 if elapsed_s else 0.0,
        reliability=reliability,
    )


def run_fault_sweep(
    rates: Sequence[float] = DEFAULT_FAULT_RATES,
    payload: int = 64,
    packets: Optional[int] = None,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    drivers: Sequence[str] = ("virtio", "xdma"),
    jobs: Optional[int] = None,
) -> Tuple[FaultSweepResult, str]:
    """E-F1: sweep both driver stacks across fault rates.

    Always routes through the cell engine (``jobs=None`` runs the cells
    in-process); output is bit-identical for any worker count because
    cells merge in construction order and each cell's seed depends only
    on its (driver, payload) identity.
    """
    from repro.exec.runner import execute_fault_sweep

    count = packets or default_packets(300)
    results, _ = execute_fault_sweep(
        rates=rates,
        payload=payload,
        packets=count,
        seed=seed,
        profile=profile,
        drivers=drivers,
        jobs=jobs or 1,
    )
    sweep = FaultSweepResult(payload=payload, packets=count, seed=seed)
    for driver in drivers:
        sweep.drivers[driver] = [
            _row_from_payload(rate, payload_result, reliability)
            for rate, payload_result, reliability in results[driver]
        ]
    return sweep, sweep.render()


# -- E-F2: reset-recovery distribution -----------------------------------------------


@dataclass
class ResetRecoveryResult:
    """E-F2: recovery behaviour across forced device-reset cycles."""

    every: int
    payload: int
    packets: int
    seed: int
    mean_us: float
    p99_us: float
    reliability: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "experiment": "E-F2",
            "every": self.every,
            "payload": self.payload,
            "packets": self.packets,
            "seed": self.seed,
            "mean_us": self.mean_us,
            "p99_us": self.p99_us,
            "reliability": self.reliability,
        }

    def render(self) -> str:
        rel = self.reliability
        recov = rel["recovery_us"]
        lines = [
            "E-F2: VirtIO reset/renegotiation recovery "
            f"(malformed chain every {self.every} fetches, "
            f"payload {self.payload} B, {self.packets} packets)",
            f"device resets: {rel['device_resets']}   "
            f"detected: {rel['detected']}   retries: {rel['retries']}   "
            f"requests failed: {rel['requests_failed']}",
            f"recovery latency (us): n={recov['count']} "
            f"p50={recov['p50']:.1f} p95={recov['p95']:.1f} "
            f"p99={recov['p99']:.1f} mean={recov['mean']:.1f} "
            f"max={recov['max']:.1f}",
            f"round trip under reset storm (us): mean={self.mean_us:.1f} "
            f"p99={self.p99_us:.1f}",
        ]
        return "\n".join(lines)


def run_reset_recovery(
    every: int = DEFAULT_RESET_EVERY,
    payload: int = 64,
    packets: Optional[int] = None,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
) -> Tuple[ResetRecoveryResult, str]:
    """E-F2: force periodic VirtIO device resets and measure recovery.

    Every *every*-th TX descriptor-chain fetch is corrupted into a
    self-referential chain; the controller latches
    ``STATUS_DEVICE_NEEDS_RESET`` and the driver must notice (config
    interrupt), reset, renegotiate, and replay pending TX without
    losing a packet -- the run only completes if every echo arrives.
    """
    from repro.core.latency import run_virtio_payload
    from repro.core.testbed import build_virtio_testbed
    from repro.faults.report import ReliabilityReport

    count = packets or default_packets(300)
    testbed = build_virtio_testbed(
        seed=seed, profile=profile, fault_plan=reset_storm_plan(every)
    )
    payload_result = run_virtio_payload(testbed, payload, count)
    report = ReliabilityReport.collect(testbed)
    summary = payload_result.rtt_summary()
    result = ResetRecoveryResult(
        every=every,
        payload=payload,
        packets=count,
        seed=seed,
        mean_us=summary.mean_us,
        p99_us=summary.p99_us,
        reliability=report.as_dict(),
    )
    return result, result.render()
