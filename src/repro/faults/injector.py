"""Compiling a :class:`~repro.faults.plan.FaultPlan` onto a testbed.

The injector is deliberately passive: instrumented sites call
:meth:`FaultInjector.fire` at each *opportunity* (a TLP arriving, a
descriptor being fetched, a doorbell landing, an MSI being delivered)
and receive either ``None`` (proceed normally) or the matching
:class:`~repro.faults.plan.FaultSpec` (misbehave as that spec says).
All trigger bookkeeping -- opportunity counters, one-shot state,
Bernoulli draws from the dedicated ``faults.<site>.<kind>`` streams --
lives here, so the model layers stay free of trigger logic.

``attach_fault_plan`` wires one injector onto every instrumented hook
of a booted testbed.  Attachment happens *after* boot, so enumeration
and driver probe are never exposed to faults; only the measured
runtime path is.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.faults.plan import (
    EveryNth,
    FaultPlan,
    FaultSpec,
    NthEvent,
    PoissonRate,
    TimeWindow,
)
from repro.sim.time import ns

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class _SpecState:
    """Runtime trigger state for one spec (one-shot latch)."""

    __slots__ = ("spec", "exhausted")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.exhausted = False


class FaultInjector:
    """A plan compiled against one simulator."""

    def __init__(self, plan: FaultPlan, sim: "Simulator") -> None:
        self.plan = plan
        self.sim = sim
        self._hooks: Dict[Tuple[str, str], List[_SpecState]] = {}
        for spec in plan.specs:
            self._hooks.setdefault((spec.site, spec.kind), []).append(_SpecState(spec))
        #: (site, kind) -> opportunities seen (fire() calls).
        self.opportunities: Dict[Tuple[str, str], int] = {}
        #: (site, kind) -> faults actually injected.
        self.injected: Dict[Tuple[str, str], int] = {}
        #: (sim_time_ps, site, kind) for every injection, in order.
        self.events: List[Tuple[int, str, str]] = []

    # -- the hook API ----------------------------------------------------------------

    def fire(self, site: str, kind: str) -> Optional[FaultSpec]:
        """One opportunity at (*site*, *kind*); returns the spec to act
        on, or ``None``.  The first matching spec wins an opportunity."""
        key = (site, kind)
        states = self._hooks.get(key)
        if not states:
            return None
        count = self.opportunities.get(key, 0) + 1
        self.opportunities[key] = count
        for state in states:
            if state.exhausted:
                continue
            if self._evaluate(state, key, count):
                self.injected[key] = self.injected.get(key, 0) + 1
                self.events.append((self.sim.now, site, kind))
                return state.spec
        return None

    def _evaluate(self, state: _SpecState, key: Tuple[str, str], count: int) -> bool:
        trigger = state.spec.trigger
        if isinstance(trigger, NthEvent):
            if count == trigger.n:
                state.exhausted = True
                return True
            return False
        if isinstance(trigger, EveryNth):
            return trigger.n > 0 and count % trigger.n == 0
        if isinstance(trigger, TimeWindow):
            return ns(trigger.start_ns) <= self.sim.now <= ns(trigger.end_ns)
        if isinstance(trigger, PoissonRate):
            # Always draw, even at probability 0: keeps the uniform
            # stream aligned with the opportunity stream across rates.
            draw = self.sim.rng(f"faults.{key[0]}.{key[1]}").random()
            return draw < trigger.probability
        raise TypeError(f"unknown trigger type {type(trigger).__name__}")

    def delay_ps(self, spec: FaultSpec, default_ns: float = 0.0) -> int:
        """The spec's delay parameter as integer picoseconds."""
        return ns(spec.delay_ns if spec.delay_ns > 0 else default_ns)

    # -- accounting ------------------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def injected_by_hook(self) -> Dict[str, int]:
        """``"site/kind" -> count`` with deterministic key order."""
        return {
            f"{site}/{kind}": count
            for (site, kind), count in sorted(self.injected.items())
        }

    def opportunities_by_hook(self) -> Dict[str, int]:
        return {
            f"{site}/{kind}": count
            for (site, kind), count in sorted(self.opportunities.items())
        }


def attach_fault_plan(testbed, plan: FaultPlan) -> FaultInjector:
    """Wire a fresh injector for *plan* onto every instrumented hook of
    a booted testbed (VirtIO or XDMA).  Returns the injector; it is
    also stored as ``testbed.injector`` so measurement code can detect
    fault-mode runs."""
    injector = FaultInjector(plan, testbed.sim)
    device = getattr(testbed, "device", None)
    if device is not None:  # VirtIO testbed: controller + its XDMA IP
        device.injector = injector
        core = device.xdma
    else:  # XDMA example-design testbed
        core = testbed.xdma
    core.injector = injector
    link = core.endpoint.link
    link.downstream.injector = injector
    link.upstream.injector = injector
    testbed.kernel.irqc.injector = injector
    testbed.driver.injector = injector
    testbed.injector = injector
    return injector
