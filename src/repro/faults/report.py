"""Per-run reliability accounting.

A :class:`ReliabilityReport` collects, after a fault-mode run, what the
injector recorded (opportunities, injections) and what the driver's
recovery machinery observed (detections, retries, recovery latencies,
failed requests).  Drivers expose these as plain counter attributes --
``fault_timeouts``, ``fault_retries``, ``watchdog_stalls``,
``device_resets``, ``recovery_latencies_ps``, ``requests_failed`` --
so the driver layer never has to import this package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.sim.time import US


def _percentiles_us(samples_ps: List[int]) -> Dict[str, float]:
    """Recovery-latency distribution in microseconds (zeros if none)."""
    if not samples_ps:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    arr = np.asarray(samples_ps, dtype=np.float64) / US
    return {
        "count": int(arr.size),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "mean": float(arr.mean()),
        "max": float(arr.max()),
    }


@dataclass
class ReliabilityReport:
    """What went wrong and how the driver coped, for one run."""

    driver: str
    fault_rate: Optional[float] = None
    #: "site/kind" -> injected count, from the injector.
    injected: Dict[str, int] = field(default_factory=dict)
    #: "site/kind" -> opportunity count, from the injector.
    opportunities: Dict[str, int] = field(default_factory=dict)
    #: Fault-handling episodes the driver noticed (timeouts, watchdog
    #: stalls, NEEDS_RESET config interrupts).
    detected: int = 0
    #: Retransmissions/re-kicks issued while recovering.
    retries: int = 0
    #: Full device reset + renegotiation cycles (VirtIO only).
    device_resets: int = 0
    #: Requests abandoned after bounded retries were exhausted.
    requests_failed: int = 0
    #: Detection-to-completion latency of each successful recovery (ps).
    recovery_latencies_ps: List[int] = field(default_factory=list)

    @property
    def recoveries(self) -> int:
        return len(self.recovery_latencies_ps)

    def recovery_percentiles_us(self) -> Dict[str, float]:
        return _percentiles_us(self.recovery_latencies_ps)

    @classmethod
    def collect(cls, testbed, fault_rate: Optional[float] = None) -> "ReliabilityReport":
        """Assemble the report from a testbed after its run."""
        driver = testbed.driver
        name = "virtio" if hasattr(driver, "transport") else "xdma"
        injector = getattr(testbed, "injector", None)
        report = cls(driver=name, fault_rate=fault_rate)
        if injector is not None:
            report.injected = injector.injected_by_hook()
            report.opportunities = injector.opportunities_by_hook()
        report.detected = (
            getattr(driver, "fault_timeouts", 0)
            + getattr(driver, "watchdog_stalls", 0)
            + getattr(driver, "needs_reset_seen", 0)
        )
        report.retries = (
            getattr(driver, "fault_retries", 0)
            + getattr(driver, "watchdog_rekicks", 0)
        )
        report.device_resets = getattr(driver, "device_resets", 0)
        report.requests_failed = getattr(driver, "requests_failed", 0)
        report.recovery_latencies_ps = list(
            getattr(driver, "recovery_latencies_ps", ())
        )
        return report

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (recovery latencies summarized, not dumped)."""
        out: Dict[str, Any] = {
            "driver": self.driver,
            "injected": dict(self.injected),
            "opportunities": dict(self.opportunities),
            "detected": self.detected,
            "retries": self.retries,
            "recoveries": self.recoveries,
            "device_resets": self.device_resets,
            "requests_failed": self.requests_failed,
            "recovery_us": self.recovery_percentiles_us(),
        }
        if self.fault_rate is not None:
            out["fault_rate"] = self.fault_rate
        return out
