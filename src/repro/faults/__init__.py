"""Deterministic fault injection and reliability accounting.

The paper measures both driver stacks only on the happy path; this
package lets experiments ask how each stack behaves when the link, the
DMA engine, or the rings misbehave -- the validation role SystemC-TLM
virtual platforms and QEMU co-simulation play for real driver bring-up.

* :mod:`repro.faults.plan` -- declarative, picklable fault specs
  (site, kind, trigger) grouped into a :class:`~repro.faults.plan.FaultPlan`.
* :mod:`repro.faults.injector` -- compiles a plan against a booted
  testbed: every instrumented site asks ``injector.fire(site, kind)``
  at each opportunity and acts on the returned spec.
* :mod:`repro.faults.report` -- per-run :class:`~repro.faults.report.
  ReliabilityReport`: injected/detected faults, retries, recovery-
  latency distribution, lost requests.

Determinism guarantees:

* a testbed without a plan attached runs byte-identical to a testbed
  built before this package existed (every hook is gated on
  ``injector is not None``);
* Poisson-rate triggers draw from dedicated ``faults.<site>.<kind>``
  named streams, so the calibrated noise streams of the model are
  untouched and a **zero-rate** plan produces latency samples
  bit-identical to the fault-free run;
* all trigger state is per-(site, kind) opportunity counting inside the
  simulator -- nothing depends on wall clock or host state, so fault
  runs parallelize across a process pool with bit-identical output.

The experiment layer (E-F1 fault-rate sweeps, E-F2 reset-recovery
distribution) lives in :mod:`repro.faults.experiments`; it is imported
explicitly to keep this package free of circular imports with
``repro.core``.
"""

from repro.faults.injector import FaultInjector, attach_fault_plan
from repro.faults.plan import (
    KIND_DESC_ERROR,
    KIND_DUP_MSI,
    KIND_ENGINE_STALL,
    KIND_LOST_IRQ,
    KIND_LOST_MSI,
    KIND_LOST_NOTIFY,
    KIND_MALFORMED_CHAIN,
    KIND_SPURIOUS_USR_IRQ,
    KIND_TLP_CORRUPT,
    KIND_TLP_DELAY,
    KIND_TLP_DROP,
    KIND_USED_DELAY,
    SITE_HOST_IRQ,
    SITE_PCIE_DOWN,
    SITE_PCIE_UP,
    SITE_VIRTIO_CTRL,
    SITE_XDMA_ENGINE,
    EveryNth,
    FaultPlan,
    FaultSpec,
    NthEvent,
    PoissonRate,
    TimeWindow,
    driver_fault_plan,
)
from repro.faults.report import ReliabilityReport

__all__ = [
    "EveryNth",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "NthEvent",
    "PoissonRate",
    "ReliabilityReport",
    "TimeWindow",
    "attach_fault_plan",
    "driver_fault_plan",
    "KIND_DESC_ERROR",
    "KIND_DUP_MSI",
    "KIND_ENGINE_STALL",
    "KIND_LOST_IRQ",
    "KIND_LOST_MSI",
    "KIND_LOST_NOTIFY",
    "KIND_MALFORMED_CHAIN",
    "KIND_SPURIOUS_USR_IRQ",
    "KIND_TLP_CORRUPT",
    "KIND_TLP_DELAY",
    "KIND_TLP_DROP",
    "KIND_USED_DELAY",
    "SITE_HOST_IRQ",
    "SITE_PCIE_DOWN",
    "SITE_PCIE_UP",
    "SITE_VIRTIO_CTRL",
    "SITE_XDMA_ENGINE",
]
