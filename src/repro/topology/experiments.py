"""E-M1: the tenant-fleet sweep on the topology subsystem.

One *pod* is the canonical fleet shape of
:meth:`~repro.topology.spec.TopologySpec.fleet_pod`: a plain
multi-queue virtio-net device plus an SR-IOV device carved into
virtual functions, all behind a shared-uplink PCIe switch.  Each pod
hosts a set of *tenants* -- independent open-loop UDP flows, one per
tenant, assigned round-robin across the pod's functions and kept on
one queue pair by RSS (distinct source ports make distinct flows).

Every tenant runs under the PR-4 overload machinery: a per-tenant
admission window, a bounded socket receive backlog, TX avail-ring
depth limits on every pair, and drop-with-reason accounting.  A
:class:`~repro.health.ConservationMonitor` rides the whole pod with
per-function *lane* tags (``dev<d>/vf<v>/q<pair>``), so the ledger
reconciles per virtual function and queue, not just in aggregate.

The headline metrics:

* **aggregate goodput** -- delivered packets/s summed over tenants;
* **fairness** -- Jain's index over per-tenant goodput
  (:func:`repro.stats.fairness.jain_index`);
* **tail isolation** -- per-tenant p99 latency and the max/min p99
  spread across tenants (a noisy neighbour shows up as a big spread).

Pods share nothing (each boots its own simulator), so they are the
cell decomposition: ``run_fleet_sweep`` fans pods out over the
process pool and merges in pod order, bit-identical for any
``--jobs`` (the same discipline every other artifact follows).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.core.calibration import PAPER_PROFILE, TEST_DST_PORT, CalibrationProfile
from repro.exec.cells import Cell, cell_seed
from repro.exec.runner import CellOutcome, ExecutionStats, _stats, run_cells
from repro.health.monitor import ConservationMonitor, HealthReport
from repro.host.netstack.rss import flow_hash
from repro.stats.fairness import jain_index
from repro.topology.builder import FleetTestbed, build_fleet
from repro.topology.spec import ARBITER_ROUND_ROBIN, TopologySpec
from repro.workload.admission import AdmissionController
from repro.workload.arrivals import make_arrivals
from repro.workload.generator import _sequence_of, _stamp

#: First UDP source port of the tenant sockets (above the workload
#: engine's open/closed-loop ranges, so the ports never collide).
FLEET_PORT_BASE = 49000

#: Default per-tenant offered rate.  With the default pod (3 functions,
#: ~5 tenants each) this sits around each function's saturation knee,
#: so admission and bounded queues actually engage.
DEFAULT_TENANT_RATE_PPS = 4000.0

#: Named per-tenant arrival streams (independent of every model stream).
TENANT_ARRIVAL_STREAM = "fleet.arrivals.t{tenant}"


@dataclass(frozen=True)
class FleetConfig:
    """Per-pod workload + topology parameters (picklable, rides the Cell)."""

    tenants: int = 16
    queue_pairs: int = 2
    plain_devices: int = 1
    vf_devices: int = 1
    vfs_per_device: int = 2
    arbiter: str = ARBITER_ROUND_ROBIN
    vf_weights: Optional[Tuple[int, ...]] = None
    rate_pps: float = DEFAULT_TENANT_RATE_PPS
    arrival: str = "poisson"
    payload: int = 64
    admission_limit: int = 64
    tx_depth_limit: Optional[int] = 64
    socket_rx_limit: Optional[int] = 256

    def spec(self) -> TopologySpec:
        return TopologySpec.fleet_pod(
            queue_pairs=self.queue_pairs,
            plain_devices=self.plain_devices,
            vf_devices=self.vf_devices,
            vfs_per_device=self.vfs_per_device,
            arbiter=self.arbiter,
            vf_weights=self.vf_weights,
        )


@dataclass
class TenantStats:
    """One tenant's share of a pod run."""

    tenant: int
    function: int  # global function index within the pod
    lane: str
    queue_pair: int
    offered: int
    delivered: int
    dropped: int
    goodput_pps: float
    p50_us: float
    p99_us: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "function": self.function,
            "lane": self.lane,
            "queue_pair": self.queue_pair,
            "offered": self.offered,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "goodput_pps": self.goodput_pps,
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
        }


@dataclass
class FleetPodReport:
    """One pod's booted-fleet run with its conservation verdict."""

    pod: int
    seed: int
    functions: int
    devices: int
    queue_pairs: int
    tenants: List[TenantStats]
    health: HealthReport
    switch_stats: Dict[str, int]
    arbiter_stats: List[Dict[str, int]]
    rx_steered: Dict[str, List[int]] = field(default_factory=dict)
    #: simulator events the pod executed (perf accounting, not JSON).
    events: int = 0

    @property
    def aggregate_goodput_pps(self) -> float:
        return sum(t.goodput_pps for t in self.tenants)

    @property
    def fairness(self) -> float:
        return jain_index([t.goodput_pps for t in self.tenants])

    @property
    def p99_spread(self) -> float:
        """max/min per-tenant p99 over tenants that delivered (1.0 when
        fewer than two tenants have samples)."""
        tails = [t.p99_us for t in self.tenants if t.delivered > 0]
        if len(tails) < 2 or min(tails) <= 0.0:
            return 1.0
        return max(tails) / min(tails)

    @property
    def conserved(self) -> bool:
        return self.health.conserved

    def as_dict(self) -> Dict[str, Any]:
        return {
            "pod": self.pod,
            "seed": self.seed,
            "functions": self.functions,
            "devices": self.devices,
            "queue_pairs": self.queue_pairs,
            "aggregate_goodput_pps": self.aggregate_goodput_pps,
            "fairness": self.fairness,
            "p99_spread": self.p99_spread,
            "tenants": [t.as_dict() for t in self.tenants],
            "health": self.health.as_dict(),
            "switch": dict(sorted(self.switch_stats.items())),
            "arbiters": [dict(sorted(s.items())) for s in self.arbiter_stats],
            "rx_steered": self.rx_steered,
        }


@dataclass
class FleetSweepResult:
    """The whole E-M1 artifact: every pod's report plus fleet rollups."""

    seed: int
    packets: int
    config: FleetConfig
    pods: List[FleetPodReport]

    @property
    def flows(self) -> int:
        return sum(len(pod.tenants) for pod in self.pods)

    @property
    def aggregate_goodput_pps(self) -> float:
        return sum(pod.aggregate_goodput_pps for pod in self.pods)

    @property
    def fairness(self) -> float:
        """Jain's index over every tenant of every pod."""
        return jain_index(
            [t.goodput_pps for pod in self.pods for t in pod.tenants]
        )

    @property
    def all_conserved(self) -> bool:
        return all(pod.conserved for pod in self.pods)

    @property
    def verdict(self) -> str:
        return "PASS" if self.all_conserved else "FAIL"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "artifact": "fleetsweep",
            "seed": self.seed,
            "packets": self.packets,
            "tenants_per_pod": self.config.tenants,
            "queue_pairs": self.config.queue_pairs,
            "rate_pps": self.config.rate_pps,
            "arbiter": self.config.arbiter,
            "flows": self.flows,
            "aggregate_goodput_pps": self.aggregate_goodput_pps,
            "fairness": self.fairness,
            "all_conserved": self.all_conserved,
            "verdict": self.verdict,
            "pods": [pod.as_dict() for pod in self.pods],
        }

    def render(self) -> str:
        rows = [
            f"Fleet sweep (E-M1): {len(self.pods)} pods x "
            f"{self.config.tenants} tenants = {self.flows} flows, "
            f"{self.config.queue_pairs} queue pairs/function, "
            f"{self.config.arbiter} DMA arbiter",
            f"{'pod':>4} {'goodput':>10} {'jain':>6} {'p99 spread':>11} "
            f"{'health':>7}   (kpps)",
        ]
        for pod in self.pods:
            rows.append(
                f"{pod.pod:>4} {pod.aggregate_goodput_pps / 1e3:>10.1f} "
                f"{pod.fairness:>6.3f} {pod.p99_spread:>10.2f}x "
                f"{pod.health.verdict:>7}"
            )
        rows.append(
            f"  fleet: {self.aggregate_goodput_pps / 1e3:.1f} kpps aggregate, "
            f"Jain {self.fairness:.3f} over {self.flows} tenants, "
            f"conservation: {self.verdict}"
        )
        lanes: Dict[str, Dict[str, int]] = {}
        for pod in self.pods:
            for lane, counters in pod.health.lanes.items():
                rollup = lanes.setdefault(
                    lane, {"offered": 0, "delivered": 0, "dropped": 0}
                )
                for key in rollup:
                    rollup[key] += counters.get(key, 0)
        if lanes:
            rows.append("  per-lane ledger (summed over pods):")
            for lane, counters in sorted(lanes.items()):
                rows.append(
                    f"    {lane:<14} offered {counters['offered']:>6} "
                    f"delivered {counters['delivered']:>6} "
                    f"dropped {counters['dropped']:>6}"
                )
        return "\n".join(rows)


# -- one pod ---------------------------------------------------------------------


def tenant_queue_pair(host_ip: int, fpga_ip: int, src_port: int,
                      queue_pairs: int) -> int:
    """The TX queue pair RSS steers a tenant's flow onto (the same
    reduction :func:`repro.host.netstack.rss.steer` applies to the
    tenant's outbound frames)."""
    if queue_pairs <= 1:
        return 0
    return flow_hash(host_ip, fpga_ip, src_port, TEST_DST_PORT) % queue_pairs


def run_fleet_pod(
    pod: int,
    seed: int,
    packets: int,
    config: FleetConfig,
    profile: CalibrationProfile = PAPER_PROFILE,
    testbed: Optional[FleetTestbed] = None,
) -> FleetPodReport:
    """Boot one pod and drive all its tenants to completion.

    Pure function of its arguments (fresh simulator from *seed*), so
    pods can run on any process-pool worker in any order.  Pass a
    pre-booted *testbed* (same spec, seed, profile) to skip the boot --
    the snapshot layer uses this to stamp cells from a pristine image.
    """
    from repro.drivers.virtio_net import tx_queue_index

    if testbed is None:
        testbed = build_fleet(config.spec(), seed=seed, profile=profile)
    sim = testbed.sim
    functions = testbed.functions
    monitor = ConservationMonitor("virtio", "fleet")

    # PR-4 bounds on every hop: TX avail-ring depth per pair, a qdisc
    # gate on the netdev, and (below) a receive-backlog bound per socket.
    for function in functions:
        driver = function.driver
        if config.tx_depth_limit is not None:
            for pair in range(driver.queue_pairs):
                driver.transport.queue(
                    tx_queue_index(pair)
                ).depth_limit = config.tx_depth_limit
        if driver.netdev is not None and driver.netdev.can_xmit is None:
            driver.netdev.can_xmit = driver.tx_has_room

    arrivals = make_arrivals(config.arrival, config.rate_pps)
    t0 = sim.now
    sockets = []
    tenant_rows: List[Dict[str, Any]] = []
    done_events = []
    for tenant in range(config.tenants):
        function = functions[tenant % len(functions)]
        src_port = FLEET_PORT_BASE + tenant
        socket = testbed.open_socket(src_port)
        if config.socket_rx_limit is not None:
            socket.rx_queue_limit = config.socket_rx_limit
        sockets.append(socket)
        pair = tenant_queue_pair(
            function.host_ip, function.fpga_ip, src_port, function.spec.queue_pairs
        )
        lane = f"{function.lane}/q{pair}"
        gaps = arrivals.intervals(
            sim.rng(TENANT_ARRIVAL_STREAM.format(tenant=tenant)), packets
        )
        admission = AdmissionController(config.admission_limit)
        row: Dict[str, Any] = {
            "tenant": tenant,
            "function": function,
            "lane": lane,
            "pair": pair,
            "offered": 0,
            "dropped": 0,
            "deadlines": {},
            "latencies": [],
        }
        tenant_rows.append(row)
        done_events.append(
            sim.spawn(
                _tenant_injector(
                    sim, testbed, monitor, row, socket, gaps, admission,
                    packets, config.payload, base_seq=tenant * packets,
                ),
                name=f"fleet-tx-t{tenant}",
            )
        )
        sim.spawn(
            _tenant_collector(sim, monitor, row, socket, admission),
            name=f"fleet-rx-t{tenant}",
        )

    for done in done_events:
        sim.run_until_triggered(done)
    sim.run()  # drain in-flight echoes across all tenants

    # Hop-side evidence for the ledger reconciliation.
    monitor.note_hop_drops("socket_rx", sum(s.rx_dropped for s in sockets))
    for function in functions:
        netdev = function.driver.netdev
        if netdev is not None:
            for reason, count in netdev.tx_dropped.items():
                monitor.note_hop_drops(f"netdev_tx:{reason}", count)
        monitor.note_hop_drops(
            "virtqueue_depth", function.driver.tx_depth_rejects()
        )
    for socket in sockets:
        socket.close()
    health = monitor.finalize()

    span_s = max(sim.now - t0, 1) / 1e12
    tenants: List[TenantStats] = []
    for row in tenant_rows:
        latencies = np.asarray(row["latencies"], dtype=np.float64)
        delivered = int(latencies.size)
        tenants.append(
            TenantStats(
                tenant=row["tenant"],
                function=row["function"].index,
                lane=row["lane"],
                queue_pair=row["pair"],
                offered=row["offered"],
                delivered=delivered,
                dropped=row["dropped"],
                goodput_pps=delivered / span_s,
                p50_us=float(np.percentile(latencies, 50)) / 1e6 if delivered else 0.0,
                p99_us=float(np.percentile(latencies, 99)) / 1e6 if delivered else 0.0,
            )
        )
    return FleetPodReport(
        pod=pod,
        seed=seed,
        functions=len(functions),
        devices=len(testbed.spec.devices),
        queue_pairs=config.queue_pairs,
        tenants=tenants,
        health=health,
        switch_stats=dict(testbed.switch.stats) if testbed.switch else {},
        arbiter_stats=[dict(a.stats) for a in testbed.arbiters],
        rx_steered={
            f.lane: list(f.device.personality.rx_steered) for f in functions
        },
        events=sim.events_executed,
    )


def _tenant_injector(
    sim,
    testbed: FleetTestbed,
    monitor: ConservationMonitor,
    row: Dict[str, Any],
    socket,
    gaps,
    admission: AdmissionController,
    packets: int,
    payload: int,
    base_seq: int,
) -> Generator[Any, Any, None]:
    """Open-loop injection for one tenant (the generator's VirtIO
    injector, with per-tenant admission and lane-tagged bookkeeping)."""
    function = row["function"]
    lane = row["lane"]
    next_t = sim.now
    for i in range(packets):
        seq = base_seq + i
        next_t += int(gaps[i])
        if sim.now < next_t:
            yield next_t - sim.now
        row["offered"] += 1
        if not admission.try_admit():
            monitor.drop(seq, "admission_limit", lane=lane)
            row["dropped"] += 1
            continue
        if not function.driver.tx_has_room():
            # qdisc-style tail drop; the admission slot is returned.
            admission.release()
            monitor.drop(seq, "txq_full", lane=lane)
            row["dropped"] += 1
            continue
        row["deadlines"][seq] = next_t
        monitor.admit(seq, lane=lane)
        yield from socket.sendto(
            _stamp(seq, payload), function.fpga_ip, TEST_DST_PORT
        )


def _tenant_collector(
    sim,
    monitor: ConservationMonitor,
    row: Dict[str, Any],
    socket,
    admission: AdmissionController,
) -> Generator[Any, Any, None]:
    """Match echoes back to injections; latency is completion minus the
    *intended* arrival instant (no coordinated omission)."""
    while True:
        data, _source = yield from socket.recvfrom()
        seq = _sequence_of(data)
        arrival = row["deadlines"].pop(seq, None)
        if arrival is None:
            raise RuntimeError(f"echo completion for unknown sequence {seq}")
        row["latencies"].append(sim.now - arrival)
        monitor.deliver(seq)
        admission.release()


# -- cells + sweep ---------------------------------------------------------------


def fleet_cells(
    pods: int,
    packets: int,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    config: Optional[FleetConfig] = None,
) -> List[Cell]:
    """One cell per pod; the seed identity is (kind, pod index), so the
    same root seed gives every pod its own independent stream
    regardless of worker count or completion order."""
    config = config if config is not None else FleetConfig()
    return [
        Cell(
            kind="fleet",
            driver="virtio",
            packets=packets,
            profile=profile,
            pod=pod,
            fleet=config,
            seed=cell_seed(seed, "fleet", pod=pod),
        )
        for pod in range(pods)
    ]


def fleet_cell_plan(cell: Cell):
    """``(snap_key, boot, measure)`` for a ``kind="fleet"`` cell.

    ``boot`` is the pure :func:`build_fleet` of the pod's spec;
    ``measure`` drives the tenants on a booted testbed.  The snapshot
    key covers everything the boot reads: the fleet config (which
    defines the spec), the cell seed, and the profile.
    """
    from repro.exec.cache import spec_digest

    config = cell.fleet if isinstance(cell.fleet, FleetConfig) else FleetConfig()
    key = (
        f"fleet:{spec_digest(config)}:{cell.seed:#x}:{spec_digest(cell.profile)}"
    )

    def boot() -> FleetTestbed:
        return build_fleet(config.spec(), seed=cell.seed, profile=cell.profile)

    def measure(testbed: FleetTestbed) -> Tuple[FleetPodReport, int]:
        report = run_fleet_pod(
            pod=cell.pod or 0,
            seed=cell.seed,
            packets=cell.packets,
            config=config,
            profile=cell.profile,
            testbed=testbed,
        )
        return report, report.events

    return key, boot, measure


def execute_fleet_cell(cell: Cell) -> Tuple[FleetPodReport, int]:
    """Worker body for ``kind="fleet"`` cells; returns (report, events)."""
    from repro.exec import snapshot

    key, boot, measure = fleet_cell_plan(cell)
    (report, events), _ = snapshot.execute(key, boot, measure)
    return report, events


def run_fleet_sweep(
    pods: int = 4,
    tenants: int = 16,
    packets: int = 50,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    queue_pairs: int = 2,
    rate_pps: float = DEFAULT_TENANT_RATE_PPS,
    arrival: str = "poisson",
    payload: int = 64,
    vfs_per_device: int = 2,
    arbiter: str = ARBITER_ROUND_ROBIN,
    vf_weights: Optional[Tuple[int, ...]] = None,
    jobs: int = 1,
) -> Tuple[FleetSweepResult, ExecutionStats]:
    """E-M1: the tenant-fleet sweep, one cell per pod.

    Defaults give 4 pods x 16 tenants = 64 concurrent flows over
    4 x (1 plain + 1 two-VF) = 8 physical devices / 12 functions /
    24 queue pairs.  *packets* is per tenant.
    """
    started = time.perf_counter()
    config = FleetConfig(
        tenants=tenants,
        queue_pairs=queue_pairs,
        vfs_per_device=vfs_per_device,
        arbiter=arbiter,
        vf_weights=vf_weights,
        rate_pps=rate_pps,
        arrival=arrival,
        payload=payload,
    )
    cells = fleet_cells(pods, packets, seed, profile, config)
    outcomes: List[CellOutcome] = run_cells(cells, jobs)
    reports = [outcome.value for outcome in outcomes]  # cell order == pod order
    result = FleetSweepResult(seed=seed, packets=packets, config=config,
                              pods=reports)
    return result, _stats(outcomes, jobs, time.perf_counter() - started)
