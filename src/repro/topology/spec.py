"""Declarative fleet topology specifications.

The paper's testbed is one host, one FPGA endpoint, one TX/RX virtqueue
pair.  The ROADMAP's north star -- "serves heavy traffic from millions
of users" -- needs a fleet dimension: several endpoints fanned out
behind a PCIe switch, each physical device optionally carved into
SR-IOV-style virtual functions, each function running multi-queue
virtio-net.  A :class:`TopologySpec` describes such a machine
declaratively; :mod:`repro.topology.builder` turns it into a booted
testbed.

The spec layers mirror the hardware hierarchy:

* :class:`TopologySpec` -- the whole machine: the device list and
  whether a shared-uplink PCIe switch sits between them and the root
  complex.
* :class:`DeviceSpec` -- one physical endpoint: its kind, its virtual
  functions, and the arbiter that shares the physical DMA mover across
  them (SVFF-style bandwidth management).
* :class:`FunctionSpec` -- one (virtual) function: its virtqueue-pair
  count and its weight under a weighted DMA arbiter.

The single-device, single-function, switchless spec is the *legacy*
topology: the builder reproduces today's ``build_virtio_testbed`` /
``build_xdma_testbed`` machines byte-identically from it (same
component names, same construction order, same RNG streams).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.pcie.link import LinkConfig

#: Device kinds the builder can instantiate.
DEVICE_KINDS = ("virtio-net", "xdma", "virtio-console", "virtio-blk")

#: DMA-arbiter policies for SR-IOV devices (>1 function).
ARBITER_ROUND_ROBIN = "rr"
ARBITER_WEIGHTED = "weighted"
ARBITER_POLICIES = (ARBITER_ROUND_ROBIN, ARBITER_WEIGHTED)


class TopologyError(ValueError):
    """Invalid topology specification."""


#: Guest execution modes (see :mod:`repro.guest`).
GUEST_MODES = ("bare", "trapped", "vhost")
#: VirtIO bus bindings a guest can drive the device through.
GUEST_TRANSPORTS = ("pci", "mmio")


@dataclass(frozen=True)
class GuestSpec:
    """The guest/hypervisor dimension of a machine.

    Parameters
    ----------
    mode:
        ``bare`` (no VMM; byte-identical to pre-guest artifacts),
        ``trapped`` (every MMIO access and interrupt goes through the
        VMM with world-switch costs), or ``vhost`` (control path traps,
        data path takes ioeventfd/irqfd shortcuts).
    transport:
        VirtIO bus binding: ``pci`` (the paper's path, per-queue MSI-X)
        or ``mmio`` (the 4.2 flat register block with one shared
        interrupt line).  XDMA has no VirtIO transport, so ``mmio``
        requires a virtio-net device.
    """

    mode: str = "bare"
    transport: str = "pci"

    def __post_init__(self) -> None:
        if self.mode not in GUEST_MODES:
            raise TopologyError(
                f"unknown guest mode {self.mode!r} (expected one of {GUEST_MODES})"
            )
        if self.transport not in GUEST_TRANSPORTS:
            raise TopologyError(
                f"unknown guest transport {self.transport!r} "
                f"(expected one of {GUEST_TRANSPORTS})"
            )


@dataclass(frozen=True)
class FunctionSpec:
    """One (virtual) function of a physical device.

    Parameters
    ----------
    queue_pairs:
        TX/RX virtqueue pairs for virtio-net functions (the
        ``max_virtqueue_pairs`` the device offers; the driver enables
        all of them).  1 reproduces the paper's single-pair device.
    weight:
        Share of the physical device's DMA bandwidth under a
        ``weighted`` arbiter (ignored by round-robin).
    """

    queue_pairs: int = 1
    weight: int = 1

    def __post_init__(self) -> None:
        if self.queue_pairs < 1:
            raise TopologyError(f"queue_pairs must be >= 1, got {self.queue_pairs}")
        if self.weight < 1:
            raise TopologyError(f"weight must be >= 1, got {self.weight}")


@dataclass(frozen=True)
class DeviceSpec:
    """One physical endpoint device.

    A device with several :class:`FunctionSpec` entries is an
    SR-IOV-style device: each function appears to the host as its own
    endpoint (own config space, BARs, virtqueues, MSI-X vectors) while
    all functions share the physical DMA mover through the device's
    bandwidth arbiter.
    """

    kind: str = "virtio-net"
    functions: Tuple[FunctionSpec, ...] = (FunctionSpec(),)
    arbiter: str = ARBITER_ROUND_ROBIN

    def __post_init__(self) -> None:
        if self.kind not in DEVICE_KINDS:
            raise TopologyError(
                f"unknown device kind {self.kind!r} (expected one of {DEVICE_KINDS})"
            )
        if not self.functions:
            raise TopologyError("a device needs at least one function")
        if self.arbiter not in ARBITER_POLICIES:
            raise TopologyError(
                f"unknown arbiter {self.arbiter!r} (expected one of {ARBITER_POLICIES})"
            )
        if len(self.functions) > 1 and self.kind != "virtio-net":
            raise TopologyError(
                f"SR-IOV functions are only modeled for virtio-net, not {self.kind!r}"
            )

    @property
    def is_sriov(self) -> bool:
        return len(self.functions) > 1


@dataclass(frozen=True)
class TopologySpec:
    """The whole machine: devices, optional PCIe switch, uplink."""

    devices: Tuple[DeviceSpec, ...] = (DeviceSpec(),)
    switch: bool = False
    #: Shared uplink of the switch (default: the profile's link config).
    uplink: Optional[LinkConfig] = None
    #: Guest/hypervisor layer (None == bare metal, same as
    #: ``GuestSpec(mode="bare")`` on a legacy single-endpoint spec).
    guest: Optional[GuestSpec] = None

    def __post_init__(self) -> None:
        if not self.devices:
            raise TopologyError("a topology needs at least one device")
        if self.uplink is not None and not self.switch:
            raise TopologyError("uplink is a switch parameter; set switch=True")
        if self.total_functions > 200:
            raise TopologyError(
                f"{self.total_functions} functions exceed the addressing plan "
                "(MACs/IPs are allocated from a 200-entry range)"
            )
        if self.guest is not None:
            if not self.is_single_legacy:
                raise TopologyError(
                    "the guest layer is modeled for single-endpoint machines "
                    "(one device, one function, one queue pair, no switch)"
                )
            if self.devices[0].kind not in ("virtio-net", "xdma"):
                raise TopologyError(
                    "the guest layer is modeled for the paper's two drivers "
                    f"(virtio-net, xdma), not {self.devices[0].kind!r}"
                )
            if (
                self.guest.transport == "mmio"
                and self.devices[0].kind != "virtio-net"
            ):
                raise TopologyError(
                    "the virtio-mmio transport requires a virtio-net device, "
                    f"not {self.devices[0].kind!r}"
                )

    # -- derived shape -------------------------------------------------------

    @property
    def total_functions(self) -> int:
        return sum(len(device.functions) for device in self.devices)

    @property
    def total_queue_pairs(self) -> int:
        return sum(
            function.queue_pairs
            for device in self.devices
            for function in device.functions
        )

    @property
    def is_single_legacy(self) -> bool:
        """Whether this spec names one of the paper's single-endpoint
        machines (one device, one function, one queue pair, no switch)
        -- the byte-identity path of the builder."""
        return (
            len(self.devices) == 1
            and not self.switch
            and not self.devices[0].is_sriov
            and self.devices[0].functions[0].queue_pairs == 1
        )

    # -- canonical shapes ----------------------------------------------------

    @classmethod
    def single_virtio(cls, guest: Optional[GuestSpec] = None) -> "TopologySpec":
        """The paper's VirtIO NIC machine (Section III-B1), optionally
        inside a guest."""
        return cls(devices=(DeviceSpec(kind="virtio-net"),), guest=guest)

    @classmethod
    def single_xdma(cls, guest: Optional[GuestSpec] = None) -> "TopologySpec":
        """The paper's XDMA example-design machine (Section III-B2),
        optionally inside a guest."""
        return cls(devices=(DeviceSpec(kind="xdma"),), guest=guest)

    @classmethod
    def single_console(cls) -> "TopologySpec":
        return cls(devices=(DeviceSpec(kind="virtio-console"),))

    @classmethod
    def single_block(cls) -> "TopologySpec":
        return cls(devices=(DeviceSpec(kind="virtio-blk"),))

    @classmethod
    def fleet_pod(
        cls,
        queue_pairs: int = 2,
        plain_devices: int = 1,
        vf_devices: int = 1,
        vfs_per_device: int = 2,
        arbiter: str = ARBITER_ROUND_ROBIN,
        vf_weights: Optional[Tuple[int, ...]] = None,
    ) -> "TopologySpec":
        """The E-M1 pod shape: *plain_devices* single-function devices
        plus *vf_devices* SR-IOV devices of *vfs_per_device* functions
        each, all multi-queue, all behind a shared-uplink switch."""
        devices = []
        for _ in range(plain_devices):
            devices.append(
                DeviceSpec(
                    kind="virtio-net",
                    functions=(FunctionSpec(queue_pairs=queue_pairs),),
                )
            )
        weights = vf_weights or tuple(1 for _ in range(vfs_per_device))
        if len(weights) != vfs_per_device:
            raise TopologyError(
                f"vf_weights has {len(weights)} entries for {vfs_per_device} VFs"
            )
        for _ in range(vf_devices):
            devices.append(
                DeviceSpec(
                    kind="virtio-net",
                    functions=tuple(
                        FunctionSpec(queue_pairs=queue_pairs, weight=w)
                        for w in weights
                    ),
                    arbiter=arbiter,
                )
            )
        return cls(devices=tuple(devices), switch=True)
