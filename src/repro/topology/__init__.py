"""Fleet topology subsystem: declarative machine specs and the builder.

See :mod:`repro.topology.spec` for the spec layer,
:mod:`repro.topology.builder` for construction, and
:mod:`repro.topology.experiments` for the E-M1 tenant-fleet sweep.
"""

from repro.topology.spec import (
    ARBITER_POLICIES,
    ARBITER_ROUND_ROBIN,
    ARBITER_WEIGHTED,
    DEVICE_KINDS,
    DeviceSpec,
    FunctionSpec,
    TopologyError,
    TopologySpec,
)

__all__ = [
    "ARBITER_POLICIES",
    "ARBITER_ROUND_ROBIN",
    "ARBITER_WEIGHTED",
    "DEVICE_KINDS",
    "DeviceSpec",
    "FunctionSpec",
    "TopologyError",
    "TopologySpec",
]
