"""Turn a :class:`~repro.topology.spec.TopologySpec` into a booted testbed.

One construction path for every machine shape.  The four legacy
builders in :mod:`repro.core.testbed` delegate here with their
single-endpoint specs; the byte-identity contract is that those paths
perform *exactly* the operations the pre-topology builders performed,
in the same order, with the same component and process names (names
seed the per-component RNG streams, so a renamed component would
change every noise draw downstream).

Fleet specs (several devices, SR-IOV functions, multi-queue, switch)
take the general path and return a :class:`FleetTestbed`: one host
kernel and network stack, one netdev + driver per function, per-function
IP/MAC plans, and the shared-bandwidth machinery (PCIe switch uplink
arbiter, per-device DMA arbiters) wired in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.core.calibration import (
    FPGA_IP,
    FPGA_MAC,
    HOST_IP,
    PAPER_PROFILE,
    TEST_SRC_PORT,
    CalibrationProfile,
)
from repro.core.testbed import (
    BlockTestbed,
    ConsoleTestbed,
    TestbedError,
    VirtioTestbed,
    XdmaTestbed,
)
from repro.drivers.virtio_net import VirtioNetDriver
from repro.drivers.xdma import XdmaCharDriver
from repro.fpga.user_logic import EchoUserLogic, UserLogic
from repro.fpga.xdma.core import XdmaCore
from repro.host.kernel import HostKernel
from repro.host.netstack.ip import Route
from repro.host.netstack.sockets import UdpSocket
from repro.host.netstack.stack import NetworkStack
from repro.mem.fpga_mem import Bram
from repro.pcie.enumeration import enumerate_all
from repro.pcie.root_complex import RootComplex
from repro.pcie.switch import PcieSwitch
from repro.sim.kernel import Simulator
from repro.sim.time import ns
from repro.sim.trace import Tracer
from repro.topology.spec import FunctionSpec, GuestSpec, TopologySpec
from repro.virtio.controller.arbiter import DmaBandwidthArbiter
from repro.virtio.controller.device import VirtioFpgaDevice
from repro.virtio.controller.net import VirtioNetPersonality

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan


def _boot(sim: Simulator, rc: RootComplex) -> list:
    """Run enumeration to completion; return discovered functions."""
    boot = sim.spawn(enumerate_all(rc), name="boot")
    sim.run_until_triggered(boot)
    functions = boot.result
    if not functions:
        raise TestbedError("enumeration found no device")
    return functions


# -- fleet address plan ---------------------------------------------------------

def fleet_host_ip(index: int) -> int:
    """Host-side IP of function *index*: 10.0.<index>.1."""
    return (10 << 24) | (index << 8) | 1


def fleet_fpga_ip(index: int) -> int:
    """FPGA-side IP of function *index*: 10.0.<index>.2 (10.0.0.2 is the
    legacy FPGA_IP, so function 0 keeps the paper's address)."""
    return (10 << 24) | (index << 8) | 2


def fleet_mac(index: int) -> bytes:
    """MAC of function *index* (function 0 keeps the legacy FPGA_MAC)."""
    return FPGA_MAC[:5] + bytes([(FPGA_MAC[5] + index) & 0xFF])


@dataclass
class FleetFunction:
    """One booted (virtual) function of the fleet."""

    index: int  # global function index (port order)
    device_index: int  # physical device this function belongs to
    vf_index: int  # function index within its physical device
    spec: FunctionSpec
    device: VirtioFpgaDevice
    driver: VirtioNetDriver
    user_logic: UserLogic
    ifname: str
    host_ip: int
    fpga_ip: int

    @property
    def lane(self) -> str:
        """Conservation-ledger lane name for this function."""
        return f"dev{self.device_index}/vf{self.vf_index}"


@dataclass
class FleetTestbed:
    """A booted multi-device / multi-function machine."""

    sim: Simulator
    kernel: HostKernel
    stack: NetworkStack
    profile: CalibrationProfile
    spec: TopologySpec
    functions: List[FleetFunction]
    switch: Optional[PcieSwitch] = None
    arbiters: List[DmaBandwidthArbiter] = field(default_factory=list)

    def open_socket(self, port: int) -> UdpSocket:
        """A fresh UDP socket bound to *port* on the shared host stack."""
        socket = UdpSocket(self.kernel, self.stack)
        socket.bind(port)
        return socket


def build_from_spec(
    spec: TopologySpec,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    tracer: Optional[Tracer] = None,
    user_logic: Optional[UserLogic] = None,
    fault_plan: Optional["FaultPlan"] = None,
    echo: bool = True,
    capacity_sectors: int = 8192,
    bram_size: int = 64 << 10,
):
    """Build and boot the machine *spec* describes.

    Single-endpoint legacy specs return the matching legacy testbed
    type (``VirtioTestbed`` and friends), byte-identical to the
    pre-topology builders; everything else returns a
    :class:`FleetTestbed`.
    """
    if len(spec.devices) == 1 and not spec.switch and not spec.devices[0].is_sriov:
        kind = spec.devices[0].kind
        if kind == "virtio-net" and spec.devices[0].functions[0].queue_pairs == 1:
            return _build_single_virtio(
                seed, profile, tracer, user_logic, fault_plan, guest=spec.guest
            )
        if kind == "xdma":
            return _build_single_xdma(
                seed, profile, tracer, bram_size, fault_plan, guest=spec.guest
            )
        if kind == "virtio-console":
            return _build_single_console(seed, profile, echo)
        if kind == "virtio-blk":
            return _build_single_block(seed, profile, capacity_sectors)
    return build_fleet(spec, seed=seed, profile=profile, tracer=tracer)


def _attach_vmm(kernel: HostKernel, guest: Optional[GuestSpec]):
    """A Vmm for non-bare guests, already attached; None otherwise.

    Must run before the driver probe so registration-time interrupt
    wrapping and trap accounting cover initialization too."""
    if guest is None or guest.mode == "bare":
        return None
    from repro.guest import Vmm

    vmm = Vmm(kernel, guest.mode)
    vmm.attach()
    return vmm


# -- legacy single-endpoint paths (byte-identity constrained) -----------------------
#
# These bodies are the pre-topology builders moved verbatim: every
# construction statement, component name, and process name must stay
# exactly as it was, because component paths seed RNG streams and the
# boot sequence's event interleaving feeds every later draw.

def _build_single_virtio(
    seed: int,
    profile: CalibrationProfile,
    tracer: Optional[Tracer],
    user_logic: Optional[UserLogic],
    fault_plan: Optional["FaultPlan"],
    guest: Optional[GuestSpec] = None,
) -> VirtioTestbed:
    mmio_transport = guest is not None and guest.transport == "mmio"
    sim = Simulator(seed=seed)
    rc = RootComplex(
        sim, memory_read_latency_ns=profile.host_memory_read_ns, tracer=tracer
    )
    kernel = HostKernel(sim, rc, costs=profile.build_cost_model(), tracer=tracer)
    stack = NetworkStack(kernel)

    _, link = rc.create_port(profile.link)
    logic = user_logic if user_logic is not None else EchoUserLogic(sim)
    if tracer is not None:
        logic.tracer = tracer
    personality = VirtioNetPersonality(
        logic,
        mac=FPGA_MAC,
        offer_csum=profile.offer_csum,
        offer_ctrl_vq=profile.offer_ctrl_vq,
    )
    device = VirtioFpgaDevice(
        sim,
        link,
        personality,
        fsm_cycles=profile.virtio_fsm_cycles,
        rx_prefetch=profile.rx_prefetch,
        tracer=tracer,
        mmio_window=mmio_transport,
    )
    device.xdma.endpoint.completer_latency = ns(profile.endpoint_completer_ns)

    functions = _boot(sim, rc)
    function = functions[0]

    vmm = _attach_vmm(kernel, guest)
    if mmio_transport:
        from repro.drivers.virtio_mmio import VirtioMmioTransport

        transport = VirtioMmioTransport(kernel, function, name="virtio0")
        driver = VirtioNetDriver(kernel, stack, function, transport=transport)
    else:
        driver = VirtioNetDriver(kernel, stack, function)
    probe = sim.spawn(driver.probe(HOST_IP), name="virtio-net-probe")
    sim.run_until_triggered(probe)
    # Drain in-flight posted writes and the device's RX-buffer prefetch
    # so experiments start from a quiescent, fully initialized machine.
    sim.run()

    if vmm is not None and vmm.mode == "vhost":
        # Vhost wiring happens after the probe (the backend learns the
        # doorbells and completion vectors from the negotiated state):
        # queue notifies become ioeventfds, completion interrupts irqfds.
        transport = driver.transport
        if mmio_transport:
            from repro.virtio.mmio_transport import MMIO_QUEUE_NOTIFY

            vmm.add_fast_window(transport.base + MMIO_QUEUE_NOTIFY, 4)
            vmm.add_fast_vector(transport.host_vector)
        else:
            for addr in transport.notify_addrs:
                vmm.add_fast_window(addr, 4)
            for vector in transport.queue_vectors_assigned:
                vmm.add_fast_vector(vector)

    # Routing + static ARP, as the paper's setup prescribes.
    stack.routes.add(Route(network=FPGA_IP & 0xFFFF_FF00, prefix_len=24, device="virtio0"))
    stack.arp.add_static(FPGA_IP, FPGA_MAC)

    socket = UdpSocket(kernel, stack)
    socket.bind(TEST_SRC_PORT)

    testbed = VirtioTestbed(
        sim=sim,
        kernel=kernel,
        stack=stack,
        device=device,
        driver=driver,
        socket=socket,
        user_logic=logic,
        function=function,
        profile=profile,
        vmm=vmm,
    )
    if fault_plan is not None:
        from repro.faults.injector import attach_fault_plan

        attach_fault_plan(testbed, fault_plan)
    return testbed


def _build_single_xdma(
    seed: int,
    profile: CalibrationProfile,
    tracer: Optional[Tracer],
    bram_size: int,
    fault_plan: Optional["FaultPlan"],
    guest: Optional[GuestSpec] = None,
) -> XdmaTestbed:
    sim = Simulator(seed=seed)
    rc = RootComplex(
        sim, memory_read_latency_ns=profile.host_memory_read_ns, tracer=tracer
    )
    kernel = HostKernel(sim, rc, costs=profile.build_cost_model(), tracer=tracer)

    _, link = rc.create_port(profile.link)
    xdma = XdmaCore(sim, link, tracer=tracer)
    xdma.endpoint.completer_latency = ns(profile.endpoint_completer_ns)
    xdma.attach_axi(0, Bram(bram_size, name="xdma-bram"))

    functions = _boot(sim, rc)
    function = functions[0]

    vmm = _attach_vmm(kernel, guest)
    driver = XdmaCharDriver(kernel, function)
    probe = sim.spawn(driver.probe(), name="xdma-probe")
    sim.run_until_triggered(probe)
    sim.run()  # drain in-flight posted register writes

    if vmm is not None and vmm.mode == "vhost":
        # XDMA's "vhost" analogue is VFIO-style direct assignment: the
        # DMA register BAR is mapped into the guest (doorbell-class
        # exits on stores, no exits on loads) and engine interrupts are
        # posted irqfd-style.  Control accesses outside BAR1 still trap.
        bar1 = function.bars[1]
        vmm.add_fast_window(bar1.address, bar1.size)
        for vector in (driver.h2c_vector, driver.c2h_vector, driver.user_vector):
            vmm.add_fast_vector(vector)
    if profile.xdma_c2h_interrupt:
        # A1 ablation: fabric logic watches the H2C engine's status,
        # processes the received data (byte-serial passes, like the
        # VirtIO design's user logic), and raises a user interrupt when
        # results are ready -- so the application poll()s before read()
        # (the "real use case" flow the paper's favourable setup avoids,
        # Section IV-C).
        driver.enable_c2h_notification(True)
        engine = xdma.h2c[0]

        def _process_then_notify():
            from repro.fpga.user_logic import streaming_cycles

            def body():
                passes = 3  # parse + compute + write back
                cycles = passes * streaming_cycles(engine.last_descriptor_length)
                yield xdma.clock.cycles_to_time(cycles)
                xdma.raise_user_irq(0)

            xdma.spawn(body(), name="a1-user-logic")

        engine.completion_hook = _process_then_notify

    testbed = XdmaTestbed(
        sim=sim, kernel=kernel, xdma=xdma, driver=driver, function=function,
        profile=profile, vmm=vmm,
    )
    if fault_plan is not None:
        from repro.faults.injector import attach_fault_plan

        attach_fault_plan(testbed, fault_plan)
    return testbed


def _build_single_console(
    seed: int, profile: CalibrationProfile, echo: bool
) -> ConsoleTestbed:
    from repro.drivers.virtio_console import VirtioConsoleDriver
    from repro.virtio.controller.console import VirtioConsolePersonality

    sim = Simulator(seed=seed)
    rc = RootComplex(sim, memory_read_latency_ns=profile.host_memory_read_ns)
    kernel = HostKernel(sim, rc, costs=profile.build_cost_model())
    _, link = rc.create_port(profile.link)
    personality = VirtioConsolePersonality(echo=echo)
    device = VirtioFpgaDevice(
        sim, link, personality, name="virtio-console",
        fsm_cycles=profile.virtio_fsm_cycles,
    )
    function = _boot(sim, rc)[0]
    driver = VirtioConsoleDriver(kernel, function)
    probe = sim.spawn(driver.probe(), name="console-probe")
    sim.run_until_triggered(probe)
    sim.run()
    return ConsoleTestbed(sim=sim, kernel=kernel, device=device, driver=driver,
                          profile=profile)


def _build_single_block(
    seed: int, profile: CalibrationProfile, capacity_sectors: int
) -> BlockTestbed:
    from repro.drivers.virtio_blk import VirtioBlkDriver
    from repro.virtio.controller.block import VirtioBlockPersonality

    sim = Simulator(seed=seed)
    rc = RootComplex(sim, memory_read_latency_ns=profile.host_memory_read_ns)
    kernel = HostKernel(sim, rc, costs=profile.build_cost_model())
    _, link = rc.create_port(profile.link)
    personality = VirtioBlockPersonality(capacity_sectors=capacity_sectors)
    device = VirtioFpgaDevice(
        sim, link, personality, name="virtio-blk",
        fsm_cycles=profile.virtio_fsm_cycles,
    )
    function = _boot(sim, rc)[0]
    driver = VirtioBlkDriver(kernel, function)
    probe = sim.spawn(driver.probe(), name="blk-probe")
    sim.run_until_triggered(probe)
    sim.run()
    return BlockTestbed(sim=sim, kernel=kernel, device=device, driver=driver,
                        profile=profile)


# -- fleet path --------------------------------------------------------------------

def build_fleet(
    spec: TopologySpec,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    tracer: Optional[Tracer] = None,
) -> FleetTestbed:
    """Build and boot a multi-device / multi-function machine.

    Construction order: all endpoints first (port order = global
    function order), then one shared enumeration pass, then each
    function's driver probe in order.  Every function gets its own
    /24 (10.0.<g>.0) so the shared stack routes per-tenant flows to
    the right netdev.
    """
    for device_spec in spec.devices:
        if device_spec.kind != "virtio-net":
            raise TestbedError(
                f"fleet topologies support virtio-net devices only, got {device_spec.kind!r}"
            )
    sim = Simulator(seed=seed)
    rc = RootComplex(
        sim, memory_read_latency_ns=profile.host_memory_read_ns, tracer=tracer
    )
    kernel = HostKernel(sim, rc, costs=profile.build_cost_model(), tracer=tracer)
    stack = NetworkStack(kernel)
    switch: Optional[PcieSwitch] = None
    if spec.switch:
        switch = PcieSwitch(sim, spec.uplink or profile.link)

    arbiters: List[DmaBandwidthArbiter] = []
    built = []  # (device_index, vf_index, FunctionSpec, device, logic)
    index = 0
    for device_index, device_spec in enumerate(spec.devices):
        arbiter: Optional[DmaBandwidthArbiter] = None
        if device_spec.is_sriov:
            arbiter = DmaBandwidthArbiter(
                sim, policy=device_spec.arbiter, name=f"dma-arbiter{device_index}"
            )
            arbiters.append(arbiter)
        for vf_index, function_spec in enumerate(device_spec.functions):
            _, link = rc.create_port(profile.link)
            if switch is not None:
                switch.attach(link)
            logic = EchoUserLogic(sim, name=f"user-logic{index}")
            if tracer is not None:
                logic.tracer = tracer
            personality = VirtioNetPersonality(
                logic,
                mac=fleet_mac(index),
                offer_csum=profile.offer_csum,
                offer_ctrl_vq=(
                    True if function_spec.queue_pairs > 1 else profile.offer_ctrl_vq
                ),
                queue_pairs=function_spec.queue_pairs,
            )
            device = VirtioFpgaDevice(
                sim,
                link,
                personality,
                name=f"virtio-fpga{index}",
                fsm_cycles=profile.virtio_fsm_cycles,
                rx_prefetch=profile.rx_prefetch,
                tracer=tracer,
            )
            device.xdma.endpoint.completer_latency = ns(profile.endpoint_completer_ns)
            if arbiter is not None:
                device.dma_port.attach_arbiter(arbiter, weight=function_spec.weight)
            built.append((device_index, vf_index, function_spec, device, logic))
            index += 1

    discovered = _boot(sim, rc)
    if len(discovered) != len(built):
        raise TestbedError(
            f"enumeration found {len(discovered)} functions, expected {len(built)}"
        )

    functions: List[FleetFunction] = []
    for index, (device_index, vf_index, function_spec, device, logic) in enumerate(built):
        ifname = f"virtio{index}"
        driver = VirtioNetDriver(kernel, stack, discovered[index], ifname=ifname)
        probe = sim.spawn(
            driver.probe(fleet_host_ip(index)), name=f"virtio-net-probe{index}"
        )
        sim.run_until_triggered(probe)
        functions.append(
            FleetFunction(
                index=index,
                device_index=device_index,
                vf_index=vf_index,
                spec=function_spec,
                device=device,
                driver=driver,
                user_logic=logic,
                ifname=ifname,
                host_ip=fleet_host_ip(index),
                fpga_ip=fleet_fpga_ip(index),
            )
        )
    sim.run()  # drain posted writes and RX prefetches across all functions

    for function in functions:
        stack.routes.add(
            Route(
                network=function.fpga_ip & 0xFFFF_FF00,
                prefix_len=24,
                device=function.ifname,
            )
        )
        stack.arp.add_static(function.fpga_ip, fleet_mac(function.index))

    return FleetTestbed(
        sim=sim,
        kernel=kernel,
        stack=stack,
        profile=profile,
        spec=spec,
        functions=functions,
        switch=switch,
        arbiters=arbiters,
    )
