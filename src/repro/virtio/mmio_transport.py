"""virtio-mmio register layout (device side).

VirtIO 1.2 section 4.2: "Virtual environments without PCI support ...
might use simple memory mapped device (virtio-mmio) instead of the PCI
device."  The binding is a single flat register block -- no capability
list, no per-structure windows, no MSI-X vector table register -- which
is exactly how SoC-attached FPGA fabrics surface VirtIO (Virtio-FPGA
attaches its devices to guests this way).

:class:`VirtioMmioRegBlock` renders the 4.2.2 layout (version 2, the
non-legacy interface) over the *same* device state the PCI block drives:
it shares the :class:`~repro.virtio.controller.config_structs.QueueState`
objects, the ISR bits, the status FSM callbacks, and the device-config
bytes of the owning device's :class:`VirtioConfigBlock`, so a device
behaves identically no matter which window the driver programs it
through -- the transports differ only in *access pattern and cost*,
which is the point of experiment E-V1's transport comparison.

Interrupts: virtio-mmio has one interrupt line.  The simulated device
signals through MSI-X regardless (the PCIe endpoint underneath is
unchanged), so the block routes config-change interrupts to table entry
``CONFIG_IRQ_ENTRY`` and each enabled queue to ``QUEUE_IRQ_ENTRY``; the
MMIO *driver* transport programs both entries with one host vector and
demultiplexes by reading ``InterruptStatus``, faithfully reproducing
the shared-line cost structure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.fpga.registers import RegisterFile
from repro.mem.region import MmioRegion
from repro.virtio.constants import VIRTIO_PCI_VENDOR_ID
from repro.virtio.controller.config_structs import QueueState

if TYPE_CHECKING:  # pragma: no cover
    from repro.virtio.controller.device import VirtioFpgaDevice

#: "virt" in little-endian, the 4.2.2 magic.
VIRTIO_MMIO_MAGIC = 0x74726976
#: Device interface version 2 (the VirtIO 1.x layout; 1 is legacy).
VIRTIO_MMIO_VERSION = 2

# Register offsets (VirtIO 1.2, section 4.2.2).
MMIO_MAGIC_VALUE = 0x000
MMIO_VERSION = 0x004
MMIO_DEVICE_ID = 0x008
MMIO_VENDOR_ID = 0x00C
MMIO_DEVICE_FEATURES = 0x010
MMIO_DEVICE_FEATURES_SEL = 0x014
MMIO_DRIVER_FEATURES = 0x020
MMIO_DRIVER_FEATURES_SEL = 0x024
MMIO_QUEUE_SEL = 0x030
MMIO_QUEUE_NUM_MAX = 0x034
MMIO_QUEUE_NUM = 0x038
MMIO_QUEUE_READY = 0x044
MMIO_QUEUE_NOTIFY = 0x050
MMIO_INTERRUPT_STATUS = 0x060
MMIO_INTERRUPT_ACK = 0x064
MMIO_STATUS = 0x070
MMIO_QUEUE_DESC_LOW = 0x080
MMIO_QUEUE_DESC_HIGH = 0x084
MMIO_QUEUE_DRIVER_LOW = 0x090
MMIO_QUEUE_DRIVER_HIGH = 0x094
MMIO_QUEUE_DEVICE_LOW = 0x0A0
MMIO_QUEUE_DEVICE_HIGH = 0x0A4
MMIO_CONFIG_GENERATION = 0x0FC
#: Device-specific configuration starts here.
MMIO_CONFIG = 0x100

#: MSI-X table entries the single MMIO interrupt line maps onto.
CONFIG_IRQ_ENTRY = 0
QUEUE_IRQ_ENTRY = 1


class VirtioMmioRegBlock:
    """The 4.2.2 register block over a device's shared VirtIO state."""

    def __init__(self, device: "VirtioFpgaDevice") -> None:
        self.device = device
        self.config_block = device.config_block
        self.layout = device.layout
        self._queue_sel = 0
        self._device_feature_sel = 0
        self._driver_feature_sel = 0
        self.size = MMIO_CONFIG + self.layout.device_length
        self.regs = RegisterFile(MMIO_CONFIG, name=f"{device.name}.virtio-mmio")
        self._build()
        # The one interrupt line is always wired: route config changes
        # to entry 0 (queues get entry 1 as they are made ready).
        self.config_block.route_config_interrupt(CONFIG_IRQ_ENTRY)

    # -- selected queue (block-local selector over shared state) -------------------

    @property
    def selected(self) -> QueueState:
        queues = self.config_block.queues
        if self._queue_sel < len(queues):
            return queues[self._queue_sel]
        return QueueState(index=self._queue_sel, max_size=0, size=0)

    # -- register declarations -----------------------------------------------------

    def _build(self) -> None:
        regs = self.regs
        device = self.device
        block = self.config_block
        regs.reg("magic", MMIO_MAGIC_VALUE, reset=VIRTIO_MMIO_MAGIC, read_only=True)
        regs.reg("version", MMIO_VERSION, reset=VIRTIO_MMIO_VERSION, read_only=True)
        regs.reg(
            "device_id",
            MMIO_DEVICE_ID,
            reset=device.personality.device_id,
            read_only=True,
        )
        regs.reg("vendor_id", MMIO_VENDOR_ID, reset=VIRTIO_PCI_VENDOR_ID, read_only=True)
        regs.reg(
            "device_features",
            MMIO_DEVICE_FEATURES,
            read_hook=lambda: device.offered_features.word(self._device_feature_sel),
            read_only=True,
        )
        regs.reg(
            "device_features_sel",
            MMIO_DEVICE_FEATURES_SEL,
            write_hook=lambda v: setattr(self, "_device_feature_sel", v),
        )
        regs.reg(
            "driver_features",
            MMIO_DRIVER_FEATURES,
            write_hook=lambda v: device.set_driver_feature_word(
                self._driver_feature_sel, v
            ),
        )
        regs.reg(
            "driver_features_sel",
            MMIO_DRIVER_FEATURES_SEL,
            write_hook=lambda v: setattr(self, "_driver_feature_sel", v),
        )
        regs.reg(
            "queue_sel",
            MMIO_QUEUE_SEL,
            write_hook=lambda v: setattr(self, "_queue_sel", v),
        )
        regs.reg(
            "queue_num_max",
            MMIO_QUEUE_NUM_MAX,
            read_hook=lambda: self.selected.max_size,
            read_only=True,
        )
        regs.reg("queue_num", MMIO_QUEUE_NUM, write_hook=self._write_queue_num)
        regs.reg(
            "queue_ready",
            MMIO_QUEUE_READY,
            read_hook=lambda: 1 if self.selected.enabled else 0,
            write_hook=self._write_queue_ready,
        )
        regs.reg(
            "queue_notify",
            MMIO_QUEUE_NOTIFY,
            write_hook=lambda v: device.on_notify(v),
        )
        regs.reg(
            "interrupt_status",
            MMIO_INTERRUPT_STATUS,
            read_hook=block.peek_isr,  # NOT read-to-clear, unlike the PCI ISR byte
            read_only=True,
        )
        regs.reg(
            "interrupt_ack",
            MMIO_INTERRUPT_ACK,
            write_hook=lambda v: block.ack_isr(v),
        )
        regs.reg(
            "status",
            MMIO_STATUS,
            read_hook=lambda: device.device_status,
            write_hook=self._write_status,
        )
        for name, attr, low in (
            ("queue_desc", "desc_addr", MMIO_QUEUE_DESC_LOW),
            ("queue_driver", "driver_addr", MMIO_QUEUE_DRIVER_LOW),
            ("queue_device", "device_addr", MMIO_QUEUE_DEVICE_LOW),
        ):
            regs.reg(
                f"{name}_low",
                low,
                write_hook=lambda v, attr=attr: self._write_addr(attr, v, high=False),
            )
            regs.reg(
                f"{name}_high",
                low + 4,
                write_hook=lambda v, attr=attr: self._write_addr(attr, v, high=True),
            )
        regs.reg(
            "config_generation",
            MMIO_CONFIG_GENERATION,
            read_hook=lambda: block.config_generation,
            read_only=True,
        )

    # -- write hooks -----------------------------------------------------------------

    def _write_queue_num(self, value: int) -> None:
        queue = self.selected
        if queue.index >= len(self.config_block.queues):
            return
        requested = value & 0xFFFF
        if requested and requested <= queue.max_size and not requested & (requested - 1):
            queue.size = requested

    def _write_queue_ready(self, value: int) -> None:
        queue = self.selected
        if queue.index >= len(self.config_block.queues):
            return
        queue.enabled = bool(value & 1)
        if queue.enabled:
            # The shared line services every queue; reset_queues() wipes
            # msix_vector, so re-route at each ready transition.
            queue.msix_vector = QUEUE_IRQ_ENTRY
            self.device.on_queue_enabled(queue.index)

    def _write_status(self, value: int) -> None:
        new_status = value & 0xFF
        if new_status != self.device.device_status:
            self.device.on_status_write(new_status)

    def _write_addr(self, attr: str, value: int, high: bool) -> None:
        queue = self.selected
        if queue.index >= len(self.config_block.queues):
            return
        current = getattr(queue, attr)
        if high:
            setattr(queue, attr, (current & 0xFFFF_FFFF) | (value << 32))
        else:
            setattr(queue, attr, (current & ~0xFFFF_FFFF) | value)

    # -- the BAR region ----------------------------------------------------------------

    def _region_read(self, offset: int, length: int) -> bytes:
        if offset >= MMIO_CONFIG:
            # Device-specific config: same rendered bytes as the PCI
            # device-config window (one source of truth).
            return self.config_block.regs.scratch_read(
                self.layout.device_offset + offset - MMIO_CONFIG, length
            )
        return self.regs.mmio_read(offset, length)

    def _region_write(self, offset: int, data: bytes) -> None:
        if offset >= MMIO_CONFIG:
            return  # device config is read-only from the bus
        self.regs.mmio_write(offset, data)

    def as_region(self) -> MmioRegion:
        return MmioRegion(
            self.size, self._region_read, self._region_write,
            name=f"{self.device.name}.virtio-mmio-bar",
        )
