"""virtio-pci transport structures (VirtIO 1.2 section 4.1).

The PCI transport locates a device's VirtIO configuration structures via
**vendor-specific capabilities** in config space; each capability names a
structure type (common / notify / ISR / device-specific), the BAR it
lives in, and the offset/length inside that BAR.  Implementing these is
requirement (ii)+(iii) of the paper's Section II-C, and the structures
themselves are "implemented as part of the control logic on the FPGA and
mapped to one of the base address registers".

This module defines:

* the capability body codec (:func:`virtio_cap_body`, :func:`parse_virtio_cap`),
* the ``virtio_pci_common_cfg`` layout (:data:`COMMON_CFG`),
* :class:`VirtioPciLayout` -- where each structure sits inside the
  device's BAR, shared by the FPGA controller (which implements them)
  and the driver (which maps them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.mem.layout import StructDef, read_u8, read_u32
from repro.pcie.config_space import CAP_ID_VENDOR_SPECIFIC, ConfigSpace
from repro.virtio.constants import (
    VIRTIO_PCI_CAP_COMMON_CFG,
    VIRTIO_PCI_CAP_DEVICE_CFG,
    VIRTIO_PCI_CAP_ISR_CFG,
    VIRTIO_PCI_CAP_NOTIFY_CFG,
)

#: struct virtio_pci_common_cfg (spec 4.1.4.3).
COMMON_CFG = StructDef(
    "virtio_pci_common_cfg",
    [
        ("device_feature_select", 0x00, 4),
        ("device_feature", 0x04, 4),
        ("driver_feature_select", 0x08, 4),
        ("driver_feature", 0x0C, 4),
        ("msix_config", 0x10, 2),
        ("num_queues", 0x12, 2),
        ("device_status", 0x14, 1),
        ("config_generation", 0x15, 1),
        ("queue_select", 0x16, 2),
        ("queue_size", 0x18, 2),
        ("queue_msix_vector", 0x1A, 2),
        ("queue_enable", 0x1C, 2),
        ("queue_notify_off", 0x1E, 2),
        ("queue_desc", 0x20, 8),
        ("queue_driver", 0x28, 8),
        ("queue_device", 0x30, 8),
    ],
    total_size=0x38,
)

#: Size of struct virtio_pci_cap *after* the generic two bytes
#: (cap id + next) that ConfigSpace.add_capability manages:
#: cap_len(1) cfg_type(1) bar(1) padding(3) offset(4) length(4).
VIRTIO_CAP_BODY_SIZE = 14
#: Full capability length as written in cap_len (includes the 2 generic bytes).
VIRTIO_CAP_TOTAL_SIZE = 16
#: Notify capability carries an extra notify_off_multiplier dword.
VIRTIO_NOTIFY_CAP_TOTAL_SIZE = 20


def virtio_cap_body(
    cfg_type: int,
    bar: int,
    offset: int,
    length: int,
    notify_off_multiplier: Optional[int] = None,
) -> bytes:
    """Encode the vendor-specific capability body for ``add_capability``."""
    if not 0 <= bar < 6:
        raise ValueError(f"BAR index {bar} out of range")
    is_notify = cfg_type == VIRTIO_PCI_CAP_NOTIFY_CFG
    if is_notify and notify_off_multiplier is None:
        raise ValueError("notify capability requires notify_off_multiplier")
    if not is_notify and notify_off_multiplier is not None:
        raise ValueError("only the notify capability carries a multiplier")
    total = VIRTIO_NOTIFY_CAP_TOTAL_SIZE if is_notify else VIRTIO_CAP_TOTAL_SIZE
    body = bytearray(total - 2)
    body[0] = total  # cap_len
    body[1] = cfg_type
    body[2] = bar
    # bytes 3-5: padding
    body[6:10] = offset.to_bytes(4, "little")
    body[10:14] = length.to_bytes(4, "little")
    if is_notify:
        body[14:18] = int(notify_off_multiplier).to_bytes(4, "little")
    return bytes(body)


@dataclass(frozen=True)
class ParsedVirtioCap:
    """A virtio vendor-specific capability as the driver reads it."""

    cfg_type: int
    bar: int
    offset: int
    length: int
    notify_off_multiplier: int = 0


def parse_virtio_cap(config: ConfigSpace, cap_offset: int) -> ParsedVirtioCap:
    """Decode the capability at *cap_offset* from raw config bytes."""
    raw = config.read(cap_offset, VIRTIO_NOTIFY_CAP_TOTAL_SIZE)
    cfg_type = read_u8(raw, 3)
    bar = read_u8(raw, 4)
    offset = read_u32(raw, 8)
    length = read_u32(raw, 12)
    multiplier = 0
    if cfg_type == VIRTIO_PCI_CAP_NOTIFY_CFG:
        multiplier = read_u32(raw, 16)
    return ParsedVirtioCap(
        cfg_type=cfg_type, bar=bar, offset=offset, length=length,
        notify_off_multiplier=multiplier,
    )


@dataclass(frozen=True)
class VirtioPciLayout:
    """Placement of the four structures inside the VirtIO BAR.

    The FPGA controller instantiates its register blocks at these
    offsets and adds matching capabilities; the driver discovers the
    same layout by walking config space.  Defaults follow the common
    QEMU-style arrangement (everything in one BAR, 4 KiB apart).
    """

    bar: int = 0
    common_offset: int = 0x0000
    isr_offset: int = 0x1000
    device_offset: int = 0x2000
    device_length: int = 0x1000
    notify_offset: int = 0x3000
    notify_off_multiplier: int = 4
    num_queues: int = 2

    @property
    def notify_length(self) -> int:
        return max(4, self.notify_off_multiplier * self.num_queues)

    @property
    def bar_size(self) -> int:
        return self.notify_offset + max(0x1000, self.notify_length)

    def notify_address_offset(self, queue_notify_off: int) -> int:
        """BAR offset of a queue's doorbell given its notify_off value."""
        return self.notify_offset + queue_notify_off * self.notify_off_multiplier

    def install_capabilities(self, config: ConfigSpace) -> Dict[int, int]:
        """Add the four capabilities to *config*; returns
        {cfg_type: capability offset}."""
        placed: Dict[int, int] = {}
        placed[VIRTIO_PCI_CAP_COMMON_CFG] = config.add_capability(
            CAP_ID_VENDOR_SPECIFIC,
            virtio_cap_body(VIRTIO_PCI_CAP_COMMON_CFG, self.bar, self.common_offset,
                            COMMON_CFG.size),
        )
        placed[VIRTIO_PCI_CAP_NOTIFY_CFG] = config.add_capability(
            CAP_ID_VENDOR_SPECIFIC,
            virtio_cap_body(
                VIRTIO_PCI_CAP_NOTIFY_CFG,
                self.bar,
                self.notify_offset,
                self.notify_length,
                notify_off_multiplier=self.notify_off_multiplier,
            ),
        )
        placed[VIRTIO_PCI_CAP_ISR_CFG] = config.add_capability(
            CAP_ID_VENDOR_SPECIFIC,
            virtio_cap_body(VIRTIO_PCI_CAP_ISR_CFG, self.bar, self.isr_offset, 1),
        )
        placed[VIRTIO_PCI_CAP_DEVICE_CFG] = config.add_capability(
            CAP_ID_VENDOR_SPECIFIC,
            virtio_cap_body(VIRTIO_PCI_CAP_DEVICE_CFG, self.bar, self.device_offset,
                            self.device_length),
        )
        return placed


def discover_layout(config: ConfigSpace) -> Dict[int, ParsedVirtioCap]:
    """Driver-side discovery: walk the capability list and collect the
    VirtIO structures by cfg_type (first instance wins, per spec)."""
    found: Dict[int, ParsedVirtioCap] = {}
    for offset in config.find_capabilities(CAP_ID_VENDOR_SPECIFIC):
        cap = parse_virtio_cap(config, offset)
        if cap.cfg_type not in found:
            found[cap.cfg_type] = cap
    return found
