"""VirtIO entropy device (virtio-rng) personality.

The spec's simplest device (VirtIO 1.2 section 5.4): one requestq on
which the driver posts device-writable buffers; the device fills each
with entropy and completes it.  Included as a fourth personality to
demonstrate how little a new device type costs on this controller
(Section III-A's point taken one device further than the paper).

The "hardware entropy source" is a seeded xoshiro-class stream from the
simulator (deterministic like everything else), produced at a
configurable rate -- real TRNGs are slow, which is why the queue-based
batching of virtio-rng matters.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.virtio.constants import VIRTIO_F_VERSION_1
from repro.virtio.controller.personality import DevicePersonality
from repro.virtio.controller.queue_engine import FetchedChain, QueueRole
from repro.virtio.features import FeatureSet

REQUESTQ = 0

#: PCI class: encryption/decryption controller (other).
RNG_CLASS_CODE = 0x108000


class VirtioRngPersonality(DevicePersonality):
    """virtio-rng backed by a rate-limited simulated entropy source."""

    device_id = 4  # VIRTIO_ID_RNG
    class_code = RNG_CLASS_CODE
    num_queues = 1

    def __init__(self, bits_per_second: float = 4e6) -> None:
        super().__init__()
        if bits_per_second <= 0:
            raise ValueError("entropy rate must be positive")
        self.bits_per_second = bits_per_second
        self.bytes_served = 0

    def queue_role(self, index: int) -> QueueRole:
        if index == REQUESTQ:
            return QueueRole.REQUEST
        raise IndexError(f"virtio-rng has no queue {index}")

    def offered_features(self) -> FeatureSet:
        return FeatureSet.of(VIRTIO_F_VERSION_1)

    def device_config_bytes(self) -> bytes:
        return b""  # virtio-rng has no device-specific config

    def _harvest_time(self, length: int) -> int:
        """Picoseconds to accumulate *length* bytes of entropy."""
        return round(length * 8 / self.bits_per_second * 1e12)

    def on_request_chain(
        self, queue_index: int, chain: FetchedChain
    ) -> Generator[Any, Any, bytes]:
        device = self.device
        assert device is not None
        length = chain.in_capacity
        yield self._harvest_time(length)
        entropy = device.rng("entropy").bytes(length)
        self.bytes_served += length
        device.trace("entropy-served", bytes=length)
        return entropy
