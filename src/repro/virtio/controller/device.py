"""The VirtIO FPGA device: the paper's core artifact.

:class:`VirtioFpgaDevice` assembles, on top of the simulated XDMA IP:

* a PCIe identity that announces VirtIO vendor/device IDs and carries
  the four VirtIO capabilities (Section II-C requirements i and iii),
* the VirtIO configuration structures as fabric register logic mapped
  into a BAR (requirement ii),
* the device-status initialization FSM with feature negotiation,
* per-queue :class:`DeviceQueueEngine` FSMs driving the XDMA engines
  through descriptor bypass,
* a pluggable :class:`DevicePersonality` (net / console / block --
  "Added support for more VirtIO device types" is one of the paper's
  contributions),
* hardware performance counters around the data-movement sections, read
  by the experiment layer for the Fig. 4 breakdown,
* the driver-bypass port for user-logic-initiated host DMA
  (Section III-A, last paragraph).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.fpga.xdma.core import XdmaCore
from repro.mem.fpga_mem import Bram
from repro.pcie.config_space import ConfigSpace
from repro.pcie.link import PcieLink
from repro.faults.plan import KIND_LOST_NOTIFY, SITE_VIRTIO_CTRL
from repro.virtio.constants import (
    STATUS_DEVICE_NEEDS_RESET,
    STATUS_DRIVER_OK,
    STATUS_FEATURES_OK,
    VIRTIO_ISR_CONFIG,
    VIRTIO_ISR_QUEUE,
    VIRTIO_MSI_NO_VECTOR,
    VIRTIO_PCI_VENDOR_ID,
    pci_device_id,
)
from repro.virtio.controller.config_structs import VirtioConfigBlock
from repro.virtio.controller.dma_port import ControllerDmaPort
from repro.virtio.controller.personality import DevicePersonality
from repro.virtio.controller.queue_engine import DeviceQueueEngine, QueueRole
from repro.virtio.features import FeatureNegotiationError, FeatureSet, validate_accepted
from repro.virtio.pci_transport import VirtioPciLayout
from repro.sim.component import Component
from repro.sim.time import FPGA_FABRIC_CLOCK, Frequency, SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

#: BAR index carrying the VirtIO structures (0-2 are used by the XDMA
#: core for the AXI window, DMA registers, and MSI-X table).
VIRTIO_BAR_INDEX = 3

#: BAR index carrying the optional virtio-mmio register block (the 4.2
#: flat layout, for guests without PCI enlightenment).  Only present
#: when the device is built with ``mmio_window=True`` -- probing an
#: implemented BAR costs enumeration extra config writes, so the bare
#: PCI boot sequence must not see it.
VIRTIO_MMIO_BAR_INDEX = 4

#: BRAM region reserved for DMA staging (above the packet data area).
STAGING_BASE = 0x8000


class VirtioFpgaDevice(Component):
    """FPGA exposing a VirtIO-compliant interface over PCIe."""

    def __init__(
        self,
        sim: "Simulator",
        link: PcieLink,
        personality: DevicePersonality,
        name: str = "virtio-fpga",
        parent: Optional[Component] = None,
        clock: Frequency = FPGA_FABRIC_CLOCK,
        queue_max_size: int = 256,
        fsm_cycles: int = 6,
        rx_prefetch: bool = True,
        bram_size: int = 64 << 10,
        tracer=None,
        mmio_window: bool = False,
    ) -> None:
        super().__init__(sim, name, parent=parent, tracer=tracer)
        self.personality = personality
        self.clock = clock
        self.queue_max_size = queue_max_size
        self.fsm_cycles = fsm_cycles
        self.rx_prefetch = rx_prefetch

        # PCIe identity: VirtIO vendor/device IDs (requirement i).
        config = ConfigSpace(
            vendor_id=VIRTIO_PCI_VENDOR_ID,
            device_id=pci_device_id(personality.device_id),
            class_code=personality.class_code,
            revision_id=0x01,
            subsystem_vendor_id=VIRTIO_PCI_VENDOR_ID,
            subsystem_id=personality.device_id,
        )
        self.layout = VirtioPciLayout(
            bar=VIRTIO_BAR_INDEX, num_queues=personality.num_queues
        )
        # Requirement (iii): VirtIO capabilities in the capability list.
        self.layout.install_capabilities(config)

        # The underlying PCIe IP, with our identity instead of Xilinx's
        # ("achieving items (i) and (iii) may require modifications to
        # the vendor-provided PCIe IPs").
        self.xdma = XdmaCore(
            sim,
            link,
            name="xdma",
            parent=self,  # inherits this device's tracer
            clock=clock,
            device_config=config,
            msix_vectors=personality.num_queues + 2,
        )
        self.bram = Bram(bram_size, name=f"{name}.bram", clock=clock)
        self.xdma.attach_axi(0, self.bram)
        self.dma_port = ControllerDmaPort(
            sim, self.xdma, self.bram, staging_base=STAGING_BASE, parent=self
        )

        # Requirement (ii): the configuration structures in fabric.
        self.config_block = VirtioConfigBlock(self, self.layout)
        self.xdma.endpoint.attach_bar(VIRTIO_BAR_INDEX, self.config_block.regs.as_region())

        # Optional second window: the virtio-mmio register block, over
        # the same queue/ISR/status state (guest transport comparison).
        self.mmio_block = None
        if mmio_window:
            from repro.virtio.mmio_transport import VirtioMmioRegBlock

            self.mmio_block = VirtioMmioRegBlock(self)
            self.xdma.endpoint.attach_bar(
                VIRTIO_MMIO_BAR_INDEX, self.mmio_block.as_region()
            )

        self.device_status = 0
        self.driver_feature_words: Dict[int, int] = {}
        self.engines: Dict[int, DeviceQueueEngine] = {}
        self.perf = self.xdma.perf
        #: Fault injector, attached by repro.faults after boot (None in
        #: normal runs -- every fault hook is gated on this).
        self.injector = None
        self.needs_reset_events = 0

        personality.bind(self)

    # -- properties -------------------------------------------------------------------

    @property
    def fsm_time(self) -> SimTime:
        """Duration of one controller FSM transition."""
        return self.clock.cycles_to_time(self.fsm_cycles)

    @property
    def offered_features(self) -> FeatureSet:
        return self.personality.offered_features()

    @property
    def accepted_features(self) -> FeatureSet:
        return FeatureSet.from_words(self.driver_feature_words.items())

    @property
    def driver_ok(self) -> bool:
        return bool(self.device_status & STATUS_DRIVER_OK)

    # -- config-block callbacks ----------------------------------------------------------

    def set_driver_feature_word(self, select: int, word: int) -> None:
        self.driver_feature_words[select] = word

    def on_status_write(self, new_status: int) -> None:
        if new_status == 0:
            self._reset()
            return
        rising = new_status & ~self.device_status
        self.device_status = new_status
        if rising & STATUS_FEATURES_OK:
            try:
                validate_accepted(self.offered_features, self.accepted_features)
            except FeatureNegotiationError:
                # Reject: clear FEATURES_OK so the driver sees the refusal.
                self.device_status &= ~STATUS_FEATURES_OK
                self.trace("features-rejected", accepted=self.accepted_features.bits)
                return
            self.trace("features-ok", accepted=self.accepted_features.bits)
        if rising & STATUS_DRIVER_OK:
            self._start_engines()
            self.personality.on_driver_ok()
            self.trace("driver-ok")

    def on_queue_enabled(self, index: int) -> None:
        self.trace("queue-enabled", queue=index)

    def on_notify(self, queue_index: int) -> None:
        """Doorbell write landed in the notify region."""
        engine = self.engines.get(queue_index)
        if engine is None:
            self.trace("notify-ignored", queue=queue_index)
            return
        if (
            self.injector is not None
            and self.injector.fire(SITE_VIRTIO_CTRL, KIND_LOST_NOTIFY) is not None
        ):
            # The doorbell write never reaches the queue engine (e.g. a
            # decode glitch in the notify region).
            self.trace("notify-lost", queue=queue_index)
            return
        self.personality.on_notify(queue_index)
        engine.kick()

    def _reset(self) -> None:
        self.device_status = 0
        self.driver_feature_words.clear()
        self.engines.clear()
        self.config_block.reset_queues()
        self.personality.on_reset()
        self.trace("reset")

    def _start_engines(self) -> None:
        for queue in self.config_block.queues:
            if not queue.enabled:
                continue
            role = self.personality.queue_role(queue.index)
            self.engines[queue.index] = DeviceQueueEngine(
                self.sim,
                self,
                queue,
                role,
                prefetch=self.rx_prefetch if role is QueueRole.IN else True,
                parent=self,
            )

    # -- interrupts ----------------------------------------------------------------------------

    def raise_queue_irq(self, queue_index: int) -> None:
        queue = self.config_block.queue(queue_index)
        self.config_block.set_isr(VIRTIO_ISR_QUEUE)
        self.trace("queue-irq", queue=queue_index, vector=queue.msix_vector)
        self.xdma.endpoint.raise_msix(queue.msix_vector)

    def mark_needs_reset(self, reason: str = "") -> None:
        """Latch DEVICE_NEEDS_RESET (spec 2.1.2: "something went wrong
        in the device and it is unable to continue") and raise a
        configuration-change interrupt so the driver learns about it."""
        if self.device_status & STATUS_DEVICE_NEEDS_RESET:
            return  # already latched; the driver reset will clear it
        self.device_status |= STATUS_DEVICE_NEEDS_RESET
        self.needs_reset_events += 1
        self.trace("needs-reset", reason=reason)
        self.config_block.set_isr(VIRTIO_ISR_CONFIG)
        entry = self.config_block.msix_config_entry
        if entry != VIRTIO_MSI_NO_VECTOR:
            self.xdma.endpoint.raise_msix(entry)

    # -- statistics -------------------------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, int]:
        out: Dict[str, int] = dict(self.dma_port.stats)
        for index, engine in self.engines.items():
            out[f"q{index}_chains"] = engine.chains_processed
            out[f"q{index}_irqs"] = engine.interrupts_raised
            out[f"q{index}_irqs_suppressed"] = engine.interrupts_suppressed
        return out
