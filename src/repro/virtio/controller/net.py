"""VirtIO network device personality (the paper's test case).

Queue map (VirtIO 1.2 section 5.1.2): queue 0 = receiveq (device ->
driver), queue 1 = transmitq (driver -> device); a control queue is
exposed when VIRTIO_NET_F_CTRL_VQ is offered.

Data path for the latency experiment:

1. The driver kicks the transmitq; the TX engine fetches the chain and
   its payload (virtio_net_hdr + Ethernet frame).
2. If the header requests checksum offload (the host stack transmitted
   CHECKSUM_PARTIAL because we offer VIRTIO_NET_F_CSUM), the user
   logic's checksum engine fills the UDP checksum.
3. The user logic processes the frame; for the echo responder it
   produces a same-size UDP reply.
4. The reply is delivered through the receiveq engine: DMA into a
   prefetched RX buffer, used-ring update, MSI-X -- "it can identify an
   available buffer and perform data movement before interrupting the
   driver" (Section IV-A).

Hardware performance counters (Section IV-B):

* ``virtio_h2c`` -- notify doorbell to TX payload on-chip,
* ``virtio_resp`` -- response generation by user logic (measured so the
  experiment layer can *deduct* it, per the paper),
* ``virtio_c2h`` -- response ready to used-ring/interrupt posted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.fpga.user_logic import UserLogic
from repro.host.netstack.rss import steer
from repro.virtio.constants import (
    VIRTIO_F_VERSION_1,
    VIRTIO_NET_CTRL_MQ,
    VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET,
    VIRTIO_NET_F_CSUM,
    VIRTIO_NET_F_CTRL_VQ,
    VIRTIO_NET_F_GUEST_CSUM,
    VIRTIO_NET_F_MAC,
    VIRTIO_NET_F_MQ,
    VIRTIO_NET_F_MTU,
    VIRTIO_NET_F_STATUS,
    VIRTIO_NET_S_LINK_UP,
)
from repro.virtio.controller.personality import DevicePersonality
from repro.virtio.controller.queue_engine import FetchedChain, QueueRole
from repro.virtio.features import FeatureSet
from repro.virtio.net_header import (
    VIRTIO_NET_HDR_F_DATA_VALID,
    VirtioNetHeader,
    prepend_header,
    strip_header,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.virtio.controller.device import VirtioFpgaDevice

RECEIVEQ = 0
TRANSMITQ = 1
CTRLQ = 2


def rx_queue_index(pair: int) -> int:
    """Queue index of pair *pair*'s receiveq (5.1.2: receiveq1 = 0,
    receiveq2 = 2, ... receiveqN = 2(N-1))."""
    return 2 * pair


def tx_queue_index(pair: int) -> int:
    """Queue index of pair *pair*'s transmitq (transmitqN = 2N-1)."""
    return 2 * pair + 1

#: PCI class: network / ethernet controller.
NET_CLASS_CODE = 0x020000


class VirtioNetPersonality(DevicePersonality):
    """virtio-net with a pluggable user logic behind the queues."""

    device_id = 1  # VIRTIO_ID_NET
    class_code = NET_CLASS_CODE

    def __init__(
        self,
        user_logic: UserLogic,
        mac: bytes = b"\x52\x54\x00\xfa\xce\x01",
        mtu: int = 1500,
        offer_csum: bool = True,
        offer_ctrl_vq: bool = False,
        queue_pairs: int = 1,
    ) -> None:
        super().__init__()
        if len(mac) != 6:
            raise ValueError("MAC must be 6 bytes")
        if queue_pairs < 1:
            raise ValueError(f"queue_pairs must be >= 1, got {queue_pairs}")
        if queue_pairs > 1 and not offer_ctrl_vq:
            # 5.1.3.1: VIRTIO_NET_F_MQ requires VIRTIO_NET_F_CTRL_VQ
            # (pairs are enabled through VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET).
            raise ValueError("queue_pairs > 1 requires offer_ctrl_vq")
        self.user_logic = user_logic
        self.mac = bytes(mac)
        self.mtu = mtu
        self.offer_csum = offer_csum
        self.offer_ctrl_vq = offer_ctrl_vq
        self.queue_pairs = queue_pairs
        self.ctrl_queue_index = 2 * queue_pairs if offer_ctrl_vq else -1
        self.num_queues = 2 * queue_pairs + (1 if offer_ctrl_vq else 0)
        #: Pairs the driver has enabled (5.1.6.5.5: a device uses only
        #: pair 0 until the driver sends VQ_PAIRS_SET).
        self.active_queue_pairs = 1
        self.frames_from_host = 0
        self.frames_to_host = 0
        self.csum_offloads = 0
        #: frames steered to each RX queue pair (RSS evidence).
        self.rx_steered = [0] * queue_pairs
        #: RX-mode state driven by the control queue.
        self.promiscuous = False
        self.allmulti = False

    # -- identity -----------------------------------------------------------------

    def queue_role(self, index: int) -> QueueRole:
        if 0 <= index < 2 * self.queue_pairs:
            return QueueRole.IN if index % 2 == 0 else QueueRole.OUT
        if index == self.ctrl_queue_index:
            return QueueRole.REQUEST
        raise IndexError(f"virtio-net has no queue {index}")

    def offered_features(self) -> FeatureSet:
        features = FeatureSet.of(
            VIRTIO_F_VERSION_1,
            VIRTIO_NET_F_MAC,
            VIRTIO_NET_F_MTU,
            VIRTIO_NET_F_STATUS,
            VIRTIO_NET_F_GUEST_CSUM,
        )
        if self.offer_csum:
            features = features.with_bit(VIRTIO_NET_F_CSUM)
        if self.offer_ctrl_vq:
            features = features.with_bit(VIRTIO_NET_F_CTRL_VQ)
        if self.queue_pairs > 1:
            features = features.with_bit(VIRTIO_NET_F_MQ)
        return features

    def device_config_bytes(self) -> bytes:
        """struct virtio_net_config: mac[6], status u16,
        max_virtqueue_pairs u16, mtu u16."""
        blob = bytearray(12)
        blob[0:6] = self.mac
        blob[6:8] = VIRTIO_NET_S_LINK_UP.to_bytes(2, "little")
        blob[8:10] = self.queue_pairs.to_bytes(2, "little")
        blob[10:12] = self.mtu.to_bytes(2, "little")
        return bytes(blob)

    def on_reset(self) -> None:
        """5.1.6.5.5: after reset the device uses only queue pair 0
        until the driver re-enables more."""
        self.active_queue_pairs = 1

    # -- TX path -------------------------------------------------------------------------

    def on_notify(self, queue_index: int) -> None:
        """Start the H2C hardware counter at the TX doorbell ("the time
        taken by the hardware to perform the DMA operation once a
        notification is received", Section IV-B)."""
        device = self.device
        assert device is not None
        is_tx = queue_index % 2 == 1 and queue_index < 2 * self.queue_pairs
        if is_tx and not device.perf.is_running("virtio_h2c"):
            device.perf.start("virtio_h2c")

    def on_out_chain(self, queue_index: int, chain: FetchedChain) -> Generator[Any, Any, None]:
        device = self.device
        assert device is not None
        if queue_index == self.ctrl_queue_index:
            return  # control commands complete with no data work
        self.frames_from_host += 1
        header, frame = strip_header(chain.out_data)
        if header.needs_csum:
            # The checksum engine is hardware work: it stays inside the
            # H2C performance-counter section so the Fig. 4 breakdown
            # attributes it correctly.
            self.csum_offloads += 1
            frame = yield from self.user_logic.fill_checksum(
                frame, header.csum_start, header.csum_offset
            )
        # TX payload is on-chip and ready for the user logic: the H2C
        # hardware section ends here.
        if device.perf.is_running("virtio_h2c"):
            device.perf.stop("virtio_h2c")
        # With several TX engines the counters time the *first* in-flight
        # frame of an overlap (single-queue behaviour is unchanged: no
        # overlap is possible there, so every frame is timed).
        timing = not device.perf.is_running("virtio_resp")
        if timing:
            device.perf.start("virtio_resp")
        response = yield from self.user_logic.handle_frame(frame)
        if timing:
            device.perf.stop("virtio_resp")
        if response is not None:
            # Response delivery runs as its own FSM so TX completion is
            # not serialized behind it (separate pipeline stages in RTL).
            device.spawn(self._deliver(response), name="net-deliver")

    def _deliver(self, frame: bytes) -> Generator[Any, Any, None]:
        device = self.device
        assert device is not None
        if self.active_queue_pairs > 1:
            # RSS: hash the flow tuple to pick the RX queue, so each
            # flow stays on one pair (the driver hashes identically on
            # its TX side).
            pair = steer(frame, self.active_queue_pairs)
        else:
            pair = 0
        self.rx_steered[pair] += 1
        rx_engine = device.engines.get(rx_queue_index(pair))
        if rx_engine is None:
            return
        accepted = device.accepted_features
        flags = 0
        if accepted.has(VIRTIO_NET_F_GUEST_CSUM):
            flags |= VIRTIO_NET_HDR_F_DATA_VALID
        buffer = prepend_header(frame, VirtioNetHeader(flags=flags, num_buffers=1))
        timing = not device.perf.is_running("virtio_c2h")
        if timing:
            device.perf.start("virtio_c2h")
        yield from rx_engine.deliver(buffer)
        if timing:
            device.perf.stop("virtio_c2h")
        self.frames_to_host += 1

    # -- control queue -----------------------------------------------------------------------

    #: Control command classes/commands (VirtIO 1.2 section 5.1.6.5).
    CTRL_RX = 0
    CTRL_RX_PROMISC = 0
    CTRL_RX_ALLMULTI = 1
    CTRL_ACK_OK = 0x00
    CTRL_ACK_ERR = 0x01

    def on_request_chain(self, queue_index: int, chain: FetchedChain) -> Generator[Any, Any, bytes]:
        """Control-queue commands: RX-mode commands update device state;
        anything unrecognized is rejected with VIRTIO_NET_ERR."""
        device = self.device
        assert device is not None
        yield device.fsm_time
        command = chain.out_data
        if len(command) < 2:
            return bytes([self.CTRL_ACK_ERR])
        cls, cmd = command[0], command[1]
        if cls == self.CTRL_RX and cmd == self.CTRL_RX_PROMISC and len(command) >= 3:
            self.promiscuous = bool(command[2])
            device.trace("ctrl-promisc", enabled=self.promiscuous)
            return bytes([self.CTRL_ACK_OK])
        if cls == self.CTRL_RX and cmd == self.CTRL_RX_ALLMULTI and len(command) >= 3:
            self.allmulti = bool(command[2])
            return bytes([self.CTRL_ACK_OK])
        if (
            cls == VIRTIO_NET_CTRL_MQ
            and cmd == VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET
            and len(command) >= 4
        ):
            pairs = int.from_bytes(command[2:4], "little")
            if not 1 <= pairs <= self.queue_pairs:
                return bytes([self.CTRL_ACK_ERR])
            self.active_queue_pairs = pairs
            device.trace("ctrl-mq", pairs=pairs)
            return bytes([self.CTRL_ACK_OK])
        return bytes([self.CTRL_ACK_ERR])

    # -- host-injection API (examples/tests) ------------------------------------------------------

    def inject_frame(self, frame: bytes) -> None:
        """Deliver an externally generated frame to the host (as if it
        arrived from the wire side of the NIC)."""
        device = self.device
        assert device is not None
        device.spawn(self._deliver(frame), name="net-inject")
