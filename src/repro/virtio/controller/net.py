"""VirtIO network device personality (the paper's test case).

Queue map (VirtIO 1.2 section 5.1.2): queue 0 = receiveq (device ->
driver), queue 1 = transmitq (driver -> device); a control queue is
exposed when VIRTIO_NET_F_CTRL_VQ is offered.

Data path for the latency experiment:

1. The driver kicks the transmitq; the TX engine fetches the chain and
   its payload (virtio_net_hdr + Ethernet frame).
2. If the header requests checksum offload (the host stack transmitted
   CHECKSUM_PARTIAL because we offer VIRTIO_NET_F_CSUM), the user
   logic's checksum engine fills the UDP checksum.
3. The user logic processes the frame; for the echo responder it
   produces a same-size UDP reply.
4. The reply is delivered through the receiveq engine: DMA into a
   prefetched RX buffer, used-ring update, MSI-X -- "it can identify an
   available buffer and perform data movement before interrupting the
   driver" (Section IV-A).

Hardware performance counters (Section IV-B):

* ``virtio_h2c`` -- notify doorbell to TX payload on-chip,
* ``virtio_resp`` -- response generation by user logic (measured so the
  experiment layer can *deduct* it, per the paper),
* ``virtio_c2h`` -- response ready to used-ring/interrupt posted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.fpga.user_logic import UserLogic
from repro.virtio.constants import (
    VIRTIO_F_VERSION_1,
    VIRTIO_NET_F_CSUM,
    VIRTIO_NET_F_CTRL_VQ,
    VIRTIO_NET_F_GUEST_CSUM,
    VIRTIO_NET_F_MAC,
    VIRTIO_NET_F_MTU,
    VIRTIO_NET_F_STATUS,
    VIRTIO_NET_S_LINK_UP,
)
from repro.virtio.controller.personality import DevicePersonality
from repro.virtio.controller.queue_engine import FetchedChain, QueueRole
from repro.virtio.features import FeatureSet
from repro.virtio.net_header import (
    VIRTIO_NET_HDR_F_DATA_VALID,
    VirtioNetHeader,
    prepend_header,
    strip_header,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.virtio.controller.device import VirtioFpgaDevice

RECEIVEQ = 0
TRANSMITQ = 1
CTRLQ = 2

#: PCI class: network / ethernet controller.
NET_CLASS_CODE = 0x020000


class VirtioNetPersonality(DevicePersonality):
    """virtio-net with a pluggable user logic behind the queues."""

    device_id = 1  # VIRTIO_ID_NET
    class_code = NET_CLASS_CODE

    def __init__(
        self,
        user_logic: UserLogic,
        mac: bytes = b"\x52\x54\x00\xfa\xce\x01",
        mtu: int = 1500,
        offer_csum: bool = True,
        offer_ctrl_vq: bool = False,
    ) -> None:
        super().__init__()
        if len(mac) != 6:
            raise ValueError("MAC must be 6 bytes")
        self.user_logic = user_logic
        self.mac = bytes(mac)
        self.mtu = mtu
        self.offer_csum = offer_csum
        self.offer_ctrl_vq = offer_ctrl_vq
        self.num_queues = 3 if offer_ctrl_vq else 2
        self.frames_from_host = 0
        self.frames_to_host = 0
        self.csum_offloads = 0
        #: RX-mode state driven by the control queue.
        self.promiscuous = False
        self.allmulti = False

    # -- identity -----------------------------------------------------------------

    def queue_role(self, index: int) -> QueueRole:
        if index == RECEIVEQ:
            return QueueRole.IN
        if index == TRANSMITQ:
            return QueueRole.OUT
        if index == CTRLQ and self.offer_ctrl_vq:
            return QueueRole.REQUEST
        raise IndexError(f"virtio-net has no queue {index}")

    def offered_features(self) -> FeatureSet:
        features = FeatureSet.of(
            VIRTIO_F_VERSION_1,
            VIRTIO_NET_F_MAC,
            VIRTIO_NET_F_MTU,
            VIRTIO_NET_F_STATUS,
            VIRTIO_NET_F_GUEST_CSUM,
        )
        if self.offer_csum:
            features = features.with_bit(VIRTIO_NET_F_CSUM)
        if self.offer_ctrl_vq:
            features = features.with_bit(VIRTIO_NET_F_CTRL_VQ)
        return features

    def device_config_bytes(self) -> bytes:
        """struct virtio_net_config: mac[6], status u16,
        max_virtqueue_pairs u16, mtu u16."""
        blob = bytearray(12)
        blob[0:6] = self.mac
        blob[6:8] = VIRTIO_NET_S_LINK_UP.to_bytes(2, "little")
        blob[8:10] = (1).to_bytes(2, "little")
        blob[10:12] = self.mtu.to_bytes(2, "little")
        return bytes(blob)

    # -- TX path -------------------------------------------------------------------------

    def on_notify(self, queue_index: int) -> None:
        """Start the H2C hardware counter at the TX doorbell ("the time
        taken by the hardware to perform the DMA operation once a
        notification is received", Section IV-B)."""
        device = self.device
        assert device is not None
        if queue_index == TRANSMITQ and not device.perf.is_running("virtio_h2c"):
            device.perf.start("virtio_h2c")

    def on_out_chain(self, queue_index: int, chain: FetchedChain) -> Generator[Any, Any, None]:
        device = self.device
        assert device is not None
        if queue_index == CTRLQ:
            return  # control commands complete with no data work
        self.frames_from_host += 1
        header, frame = strip_header(chain.out_data)
        if header.needs_csum:
            # The checksum engine is hardware work: it stays inside the
            # H2C performance-counter section so the Fig. 4 breakdown
            # attributes it correctly.
            self.csum_offloads += 1
            frame = yield from self.user_logic.fill_checksum(
                frame, header.csum_start, header.csum_offset
            )
        # TX payload is on-chip and ready for the user logic: the H2C
        # hardware section ends here.
        if device.perf.is_running("virtio_h2c"):
            device.perf.stop("virtio_h2c")
        device.perf.start("virtio_resp")
        response = yield from self.user_logic.handle_frame(frame)
        device.perf.stop("virtio_resp")
        if response is not None:
            # Response delivery runs as its own FSM so TX completion is
            # not serialized behind it (separate pipeline stages in RTL).
            device.spawn(self._deliver(response), name="net-deliver")

    def _deliver(self, frame: bytes) -> Generator[Any, Any, None]:
        device = self.device
        assert device is not None
        rx_engine = device.engines.get(RECEIVEQ)
        if rx_engine is None:
            return
        accepted = device.accepted_features
        flags = 0
        if accepted.has(VIRTIO_NET_F_GUEST_CSUM):
            flags |= VIRTIO_NET_HDR_F_DATA_VALID
        buffer = prepend_header(frame, VirtioNetHeader(flags=flags, num_buffers=1))
        device.perf.start("virtio_c2h")
        yield from rx_engine.deliver(buffer)
        device.perf.stop("virtio_c2h")
        self.frames_to_host += 1

    # -- control queue -----------------------------------------------------------------------

    #: Control command classes/commands (VirtIO 1.2 section 5.1.6.5).
    CTRL_RX = 0
    CTRL_RX_PROMISC = 0
    CTRL_RX_ALLMULTI = 1
    CTRL_ACK_OK = 0x00
    CTRL_ACK_ERR = 0x01

    def on_request_chain(self, queue_index: int, chain: FetchedChain) -> Generator[Any, Any, bytes]:
        """Control-queue commands: RX-mode commands update device state;
        anything unrecognized is rejected with VIRTIO_NET_ERR."""
        device = self.device
        assert device is not None
        yield device.fsm_time
        command = chain.out_data
        if len(command) < 2:
            return bytes([self.CTRL_ACK_ERR])
        cls, cmd = command[0], command[1]
        if cls == self.CTRL_RX and cmd == self.CTRL_RX_PROMISC and len(command) >= 3:
            self.promiscuous = bool(command[2])
            device.trace("ctrl-promisc", enabled=self.promiscuous)
            return bytes([self.CTRL_ACK_OK])
        if cls == self.CTRL_RX and cmd == self.CTRL_RX_ALLMULTI and len(command) >= 3:
            self.allmulti = bool(command[2])
            return bytes([self.CTRL_ACK_OK])
        return bytes([self.CTRL_ACK_ERR])

    # -- host-injection API (examples/tests) ------------------------------------------------------

    def inject_frame(self, frame: bytes) -> None:
        """Deliver an externally generated frame to the host (as if it
        arrived from the wire side of the NIC)."""
        device = self.device
        assert device is not None
        device.spawn(self._deliver(frame), name="net-inject")
