"""Driver-bypass host-memory interface for user logic.

Section III-A: "To enable application offloading to be done
independently of the VirtIO drivers, we have (here) implemented an
additional interface on the VirtIO controller that allows the user
logic to request data transfers to/from host memory bypassing the
VirtIO driver."

:class:`HostBypassPort` gives user logic read/write access to arbitrary
host physical addresses through the same XDMA engines the virtqueue
machinery uses; transfers arbitrate FIFO with ring traffic at the
engines' bypass FIFOs.  The SmartNIC example uses this to fetch offload
rule tables and spill flow state to host memory without any virtqueue
involvement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.component import Component
from repro.sim.event import Event
from repro.virtio.controller.dma_port import STAGING_SLOT_SIZE, ControllerDmaPort

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class HostBypassPort(Component):
    """User-logic-facing host DMA interface."""

    def __init__(
        self,
        sim: "Simulator",
        dma_port: ControllerDmaPort,
        name: str = "bypass",
        parent: Optional[Component] = None,
    ) -> None:
        super().__init__(sim, name, parent=parent)
        self.dma_port = dma_port
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def read(self, host_addr: int, length: int) -> Event:
        """Read host memory; the event fires with the bytes."""
        self.reads += 1
        self.bytes_read += length
        self.trace("bypass-read", addr=host_addr, length=length)
        return self.dma_port.host_read(host_addr, length)

    def write(self, host_addr: int, data: bytes) -> Event:
        """Write host memory; the event fires at TLP delivery."""
        self.writes += 1
        self.bytes_written += len(data)
        self.trace("bypass-write", addr=host_addr, length=len(data))
        return self.dma_port.host_write(host_addr, data)

    def read_large(self, host_addr: int, length: int) -> Generator[Any, Any, bytes]:
        """Read a region larger than one staging slot (``yield from``)."""
        parts = []
        offset = 0
        while offset < length:
            chunk = min(STAGING_SLOT_SIZE, length - offset)
            parts.append((yield self.read(host_addr + offset, chunk)))
            offset += chunk
        return b"".join(parts)

    def write_large(self, host_addr: int, data: bytes) -> Generator[Any, Any, None]:
        """Write a region larger than one staging slot (``yield from``)."""
        offset = 0
        while offset < len(data):
            chunk = data[offset : offset + STAGING_SLOT_SIZE]
            yield self.write(host_addr + offset, chunk)
            offset += len(chunk)

    @property
    def stats(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }
