"""The VirtIO configuration structures as FPGA control logic.

Section II-C: "The VirtIO configuration structures are implemented as
part of the control logic on the FPGA and are mapped to one of the base
address registers (BAR) of the device."

:class:`VirtioConfigBlock` renders the common configuration, notify
region, ISR byte, and device-specific configuration into one
:class:`~repro.fpga.registers.RegisterFile` at the offsets declared by a
:class:`~repro.virtio.pci_transport.VirtioPciLayout`.  Register hooks
call back into the owning :class:`VirtioFpgaDevice` (status transitions,
queue doorbells) -- this file is pure register plumbing.

Hardware registers are 32-bit with byte enables, so the sub-dword fields
of ``virtio_pci_common_cfg`` (queue_select, device_status, ...) are
packed into shared dwords whose hooks split them back out, exactly as
the RTL implementation would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.fpga.registers import RegisterFile
from repro.virtio.constants import VIRTIO_MSI_NO_VECTOR
from repro.virtio.pci_transport import VirtioPciLayout

if TYPE_CHECKING:  # pragma: no cover
    from repro.virtio.controller.device import VirtioFpgaDevice


@dataclass
class QueueState:
    """Per-virtqueue device-side registers."""

    index: int
    max_size: int = 256
    size: int = 256
    msix_vector: int = VIRTIO_MSI_NO_VECTOR
    enabled: bool = False
    desc_addr: int = 0
    driver_addr: int = 0  # avail ring
    device_addr: int = 0  # used ring

    @property
    def notify_off(self) -> int:
        """Each queue uses its own doorbell slot."""
        return self.index

    def reset(self) -> None:
        self.size = self.max_size
        self.msix_vector = VIRTIO_MSI_NO_VECTOR
        self.enabled = False
        self.desc_addr = 0
        self.driver_addr = 0
        self.device_addr = 0


class VirtioConfigBlock:
    """Builds and owns the VirtIO BAR register file."""

    def __init__(self, device: "VirtioFpgaDevice", layout: VirtioPciLayout) -> None:
        self.device = device
        self.layout = layout
        self.queues: List[QueueState] = [
            QueueState(index=i, max_size=device.queue_max_size, size=device.queue_max_size)
            for i in range(layout.num_queues)
        ]
        self._device_feature_select = 0
        self._driver_feature_select = 0
        self._msix_config = VIRTIO_MSI_NO_VECTOR
        self._queue_select = 0
        self._config_generation = 0
        self._isr_status = 0
        size = layout.bar_size
        self.regs = RegisterFile(size, name=f"{device.name}.virtio-bar")
        self._build_common()
        self._build_isr()
        self._build_notify()
        self.refresh_device_config()

    # -- selected queue ------------------------------------------------------------

    @property
    def selected(self) -> QueueState:
        if self._queue_select < len(self.queues):
            return self.queues[self._queue_select]
        # Out-of-range selection reads back size 0, per spec.
        return QueueState(index=self._queue_select, max_size=0, size=0)

    def queue(self, index: int) -> QueueState:
        return self.queues[index]

    @property
    def msix_config_entry(self) -> int:
        """MSI-X table entry the driver assigned to config-change
        interrupts (VIRTIO_MSI_NO_VECTOR when unassigned)."""
        return self._msix_config

    # -- common configuration -----------------------------------------------------------

    def _build_common(self) -> None:
        base = self.layout.common_offset
        regs = self.regs

        regs.reg(
            "device_feature_select",
            base + 0x00,
            write_hook=lambda v: setattr(self, "_device_feature_select", v),
        )
        regs.reg(
            "device_feature",
            base + 0x04,
            read_hook=lambda: self.device.offered_features.word(self._device_feature_select),
            read_only=True,
        )
        regs.reg(
            "driver_feature_select",
            base + 0x08,
            write_hook=lambda v: setattr(self, "_driver_feature_select", v),
        )
        regs.reg(
            "driver_feature",
            base + 0x0C,
            write_hook=lambda v: self.device.set_driver_feature_word(
                self._driver_feature_select, v
            ),
        )
        regs.reg(
            "msix_config_num_queues",
            base + 0x10,
            read_hook=lambda: (len(self.queues) << 16) | (self._msix_config & 0xFFFF),
            write_hook=lambda v: setattr(self, "_msix_config", v & 0xFFFF),
        )
        regs.reg(
            "status_generation_select",
            base + 0x14,
            read_hook=self._read_status_dword,
            write_hook=self._write_status_dword,
        )
        regs.reg(
            "queue_size_msix",
            base + 0x18,
            read_hook=lambda: (self.selected.msix_vector << 16) | self.selected.size,
            write_hook=self._write_queue_size_msix,
        )
        regs.reg(
            "queue_enable_notify",
            base + 0x1C,
            read_hook=lambda: (self.selected.notify_off << 16)
            | (1 if self.selected.enabled else 0),
            write_hook=self._write_queue_enable,
        )
        for name, attr, offset in (
            ("queue_desc", "desc_addr", 0x20),
            ("queue_driver", "driver_addr", 0x28),
            ("queue_device", "device_addr", 0x30),
        ):
            regs.reg(
                f"{name}_lo",
                base + offset,
                read_hook=lambda attr=attr: getattr(self.selected, attr) & 0xFFFF_FFFF,
                write_hook=lambda v, attr=attr: self._write_addr(attr, v, high=False),
            )
            regs.reg(
                f"{name}_hi",
                base + offset + 4,
                read_hook=lambda attr=attr: getattr(self.selected, attr) >> 32,
                write_hook=lambda v, attr=attr: self._write_addr(attr, v, high=True),
            )

    def _read_status_dword(self) -> int:
        return (
            (self._queue_select << 16)
            | (self._config_generation << 8)
            | self.device.device_status
        )

    def _write_status_dword(self, value: int) -> None:
        new_status = value & 0xFF
        self._queue_select = (value >> 16) & 0xFFFF
        if new_status != self.device.device_status:
            self.device.on_status_write(new_status)

    def _write_queue_size_msix(self, value: int) -> None:
        queue = self.selected
        if queue.index >= len(self.queues):
            return
        requested = value & 0xFFFF
        if requested and requested <= queue.max_size and not requested & (requested - 1):
            queue.size = requested
        queue.msix_vector = (value >> 16) & 0xFFFF

    def _write_queue_enable(self, value: int) -> None:
        queue = self.selected
        if queue.index >= len(self.queues):
            return
        queue.enabled = bool(value & 1)
        if queue.enabled:
            self.device.on_queue_enabled(queue.index)

    def _write_addr(self, attr: str, value: int, high: bool) -> None:
        queue = self.selected
        if queue.index >= len(self.queues):
            return
        current = getattr(queue, attr)
        if high:
            setattr(queue, attr, (current & 0xFFFF_FFFF) | (value << 32))
        else:
            setattr(queue, attr, (current & ~0xFFFF_FFFF) | value)

    # -- ISR status -----------------------------------------------------------------------

    def _build_isr(self) -> None:
        self.regs.reg(
            "isr_status",
            self.layout.isr_offset,
            read_hook=self._read_isr,
            read_only=True,
        )

    def _read_isr(self) -> int:
        value, self._isr_status = self._isr_status, 0  # read-to-clear
        return value

    def set_isr(self, bits: int) -> None:
        self._isr_status |= bits

    def peek_isr(self) -> int:
        """ISR bits *without* clearing -- the MMIO transport's
        ``InterruptStatus`` register is not read-to-clear (4.2.2); the
        driver acknowledges explicitly via :meth:`ack_isr`."""
        return self._isr_status

    def ack_isr(self, bits: int) -> None:
        """Clear the given ISR bits (MMIO ``InterruptACK`` write)."""
        self._isr_status &= ~bits

    @property
    def config_generation(self) -> int:
        return self._config_generation

    def route_config_interrupt(self, entry: int) -> None:
        """Point config-change interrupts at MSI-X table *entry*
        (the MMIO register block routes them to a fixed entry instead
        of a driver-written ``msix_config`` field)."""
        self._msix_config = entry & 0xFFFF

    # -- notify region ----------------------------------------------------------------------

    def _build_notify(self) -> None:
        for queue in self.queues:
            offset = self.layout.notify_address_offset(queue.notify_off)
            self.regs.reg(
                f"notify_q{queue.index}",
                offset & ~3,
                write_hook=lambda v, idx=queue.index: self.device.on_notify(idx),
            )

    # -- device-specific configuration -----------------------------------------------------------

    def refresh_device_config(self) -> None:
        """(Re)render the personality's config bytes into the BAR and
        bump the generation counter (drivers re-read on change)."""
        blob = self.device.personality.device_config_bytes()
        if len(blob) > self.layout.device_length:
            raise ValueError(
                f"device config of {len(blob)}B exceeds window {self.layout.device_length}B"
            )
        self.regs.scratch_write(self.layout.device_offset, blob)
        self._config_generation = (self._config_generation + 1) & 0xFF

    # -- reset ----------------------------------------------------------------------------------------

    def reset_queues(self) -> None:
        for queue in self.queues:
            queue.reset()
        self._queue_select = 0
        self._isr_status = 0
