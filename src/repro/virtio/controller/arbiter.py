"""Shared DMA-bandwidth arbitration across SR-IOV virtual functions.

An SR-IOV device exposes several functions, but there is one physical
data mover (the XDMA engines) behind them.  The
:class:`DmaBandwidthArbiter` models that sharing: every VF's
:class:`~repro.virtio.controller.dma_port.ControllerDmaPort` submits
its host reads/writes through the arbiter, which admits **one transfer
at a time** across the whole physical device and picks the next one by
policy when the in-flight transfer's completion event fires:

* ``rr`` -- round-robin across functions with queued work (SVFF's
  default fairness),
* ``weighted`` -- deficit-style weighted round robin: a function with
  weight *w* may take up to *w* consecutive grants per visit, so
  bandwidth shares converge to the weight ratio under saturation.

The arbiter is pure event bookkeeping: it draws no randomness and adds
no latency of its own -- a grant issued with nothing else in flight
starts immediately, so a single-function device behaves identically
with or without one.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

from repro.sim.component import Component
from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

#: A queued transfer: a thunk that launches the DMA and returns its
#: completion event.
StartFn = Callable[[], Event]

POLICY_ROUND_ROBIN = "rr"
POLICY_WEIGHTED = "weighted"
POLICIES = (POLICY_ROUND_ROBIN, POLICY_WEIGHTED)


class DmaBandwidthArbiter(Component):
    """One physical DMA mover shared by several virtual functions."""

    def __init__(
        self,
        sim: "Simulator",
        policy: str = POLICY_ROUND_ROBIN,
        name: str = "dma-arbiter",
        parent: Optional[Component] = None,
    ) -> None:
        super().__init__(sim, name, parent=parent)
        if policy not in POLICIES:
            raise ValueError(f"unknown arbiter policy {policy!r} (expected {POLICIES})")
        self.policy = policy
        self._queues: List[Deque[StartFn]] = []
        self._weights: List[int] = []
        self._credits: List[int] = []
        self._busy = False
        self._next = 0
        #: Whether the scan pointer *arrived* at ``_next`` (recharge its
        #: credit) rather than staying to continue a burst (don't).
        self._fresh = True
        #: per-function grant counts (fairness evidence for experiments).
        self.grants: List[int] = []

    # -- registration -------------------------------------------------------

    def register(self, weight: int = 1) -> int:
        """Add a function; returns its arbiter port id."""
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        port = len(self._queues)
        self._queues.append(deque())
        self._weights.append(weight)
        self._credits.append(weight)
        self.grants.append(0)
        return port

    # -- submission ---------------------------------------------------------

    def submit(self, port: int, start: StartFn) -> None:
        """Queue a transfer for *port*; ``start`` is invoked when the
        grant is issued and must return the transfer's completion
        event."""
        self._queues[port].append(start)
        if not self._busy:
            self._busy = True
            self._grant_next()

    # -- scheduling ---------------------------------------------------------

    def _pick(self) -> int:
        """Index of the next function to serve, honouring the policy."""
        ports = len(self._queues)
        if self.policy == POLICY_WEIGHTED:
            # Deficit WRR: credit recharges whenever the scan pointer
            # *arrives* at a function (offset > 0, or offset 0 after a
            # move-on) but not while staying to continue a burst -- so
            # a burst is bounded by the weight, and no function can be
            # starved by someone else's per-visit recharge.
            for offset in range(ports):
                port = (self._next + offset) % ports
                if offset > 0 or self._fresh:
                    self._credits[port] = self._weights[port]
                if self._queues[port] and self._credits[port] > 0:
                    return port
        for offset in range(ports):
            port = (self._next + offset) % ports
            if self._queues[port]:
                return port
        raise RuntimeError("arbiter dispatched with no queued work")

    def _grant_next(self) -> None:
        port = self._pick()
        start = self._queues[port].popleft()
        self.grants[port] += 1
        if self.policy == POLICY_WEIGHTED:
            self._credits[port] -= 1
            if self._credits[port] > 0 and self._queues[port]:
                # Continue this function's burst on the next grant.
                self._next = port
                self._fresh = False
            else:
                self._next = (port + 1) % len(self._queues)
                self._fresh = True
        else:
            self._next = (port + 1) % len(self._queues)
        done = start()
        done.on_trigger(self._released)

    def _released(self, _event: Event) -> None:
        if any(self._queues):
            self._grant_next()
        else:
            self._busy = False

    @property
    def stats(self) -> Dict[str, int]:
        return {f"vf{port}_grants": count for port, count in enumerate(self.grants)}
