"""VirtIO console personality (the device type implemented in [14]).

Queue map (VirtIO 1.2 section 5.3.2): queue 0 = receiveq (device ->
driver), queue 1 = transmitq (driver -> device).  The default behaviour
echoes transmitted bytes back on the receive queue -- the loopback test
the prior-work console device used.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.virtio.constants import VIRTIO_CONSOLE_F_SIZE, VIRTIO_F_VERSION_1
from repro.virtio.controller.personality import DevicePersonality
from repro.virtio.controller.queue_engine import FetchedChain, QueueRole
from repro.virtio.features import FeatureSet

CONSOLE_RECEIVEQ = 0
CONSOLE_TRANSMITQ = 1

#: PCI class: simple communication controller / other.
CONSOLE_CLASS_CODE = 0x078000


class VirtioConsolePersonality(DevicePersonality):
    """virtio-console with echo (or custom sink) semantics."""

    device_id = 3  # VIRTIO_ID_CONSOLE
    class_code = CONSOLE_CLASS_CODE
    num_queues = 2

    def __init__(
        self,
        cols: int = 80,
        rows: int = 25,
        echo: bool = True,
        sink: Optional[Callable[[bytes], None]] = None,
    ) -> None:
        super().__init__()
        self.cols = cols
        self.rows = rows
        self.echo = echo
        self.sink = sink
        self.bytes_from_host = 0
        self.bytes_to_host = 0

    def queue_role(self, index: int) -> QueueRole:
        if index == CONSOLE_RECEIVEQ:
            return QueueRole.IN
        if index == CONSOLE_TRANSMITQ:
            return QueueRole.OUT
        raise IndexError(f"virtio-console has no queue {index}")

    def offered_features(self) -> FeatureSet:
        return FeatureSet.of(VIRTIO_F_VERSION_1, VIRTIO_CONSOLE_F_SIZE)

    def device_config_bytes(self) -> bytes:
        """struct virtio_console_config: cols u16, rows u16,
        max_nr_ports u32, emerg_wr u32."""
        blob = bytearray(12)
        blob[0:2] = self.cols.to_bytes(2, "little")
        blob[2:4] = self.rows.to_bytes(2, "little")
        blob[4:8] = (1).to_bytes(4, "little")
        return bytes(blob)

    def on_out_chain(self, queue_index: int, chain: FetchedChain) -> Generator[Any, Any, None]:
        device = self.device
        assert device is not None
        data = chain.out_data
        self.bytes_from_host += len(data)
        if self.sink is not None:
            self.sink(data)
        if self.echo:
            device.spawn(self._echo(data), name="console-echo")
        yield device.fsm_time

    def _echo(self, data: bytes) -> Generator[Any, Any, None]:
        device = self.device
        assert device is not None
        rx_engine = device.engines.get(CONSOLE_RECEIVEQ)
        if rx_engine is None:
            return
        yield from rx_engine.deliver(data)
        self.bytes_to_host += len(data)

    def send_to_host(self, data: bytes) -> None:
        """Inject device-originated output (e.g. a hardware log line)."""
        device = self.device
        assert device is not None
        device.spawn(self._echo(data), name="console-send")
