"""Device-side virtqueue processing FSMs.

One :class:`DeviceQueueEngine` per enabled virtqueue.  The engine owns
the device's shadow indices and drives all ring traffic through the
controller's DMA port:

* read ``avail->flags,idx`` (one 4-byte fetch -- flags ride along, so
  interrupt-suppression state is known without an extra round trip),
* read the avail-ring entry, walk the descriptor chain (16 B per
  descriptor),
* move payload data (direction depends on the queue's role),
* write the used element + used index, and raise the queue's MSI-X
  vector unless the driver suppressed interrupts.

Roles (assigned by the device personality):

``OUT``
    driver -> device (virtio-net transmitq, console transmitq): the
    engine fetches chain payloads and hands them to the personality.
``IN``
    device -> driver (receiveq): the engine *prefetches* available
    chains into an on-chip FIFO so that when the device has data it can
    "identify an available buffer and perform data movement before
    interrupting the driver" (Section IV-A).  ``prefetch=False``
    degrades to fetch-at-delivery (ablation A2).
``REQUEST``
    combined out+in chains (virtio-blk): the personality receives the
    out payload and returns bytes for the writable segments.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Generator, List, Optional, Tuple

from repro.faults.plan import KIND_MALFORMED_CHAIN, KIND_USED_DELAY, SITE_VIRTIO_CTRL
from repro.virtio.constants import VIRTIO_MSI_NO_VECTOR
from repro.virtio.controller.config_structs import QueueState
from repro.virtio.virtqueue import (
    VIRTQ_AVAIL_F_NO_INTERRUPT,
    VIRTQ_DESC_F_INDIRECT,
    VIRTQ_DESC_F_NEXT,
    VirtqDescriptor,
    VirtqueueAddresses,
    VirtqueueError,
)
from repro.sim.component import Component
from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator
    from repro.virtio.controller.device import VirtioFpgaDevice


class QueueRole(enum.Enum):
    OUT = "out"
    IN = "in"
    REQUEST = "request"


class FetchedChain:
    """A descriptor chain the engine has pulled on-chip."""

    __slots__ = ("head", "out_segments", "in_segments", "out_data")

    def __init__(self, head: int) -> None:
        self.head = head
        self.out_segments: List[Tuple[int, int]] = []
        self.in_segments: List[Tuple[int, int]] = []
        self.out_data: bytes = b""

    @property
    def out_length(self) -> int:
        return sum(length for _, length in self.out_segments)

    @property
    def in_capacity(self) -> int:
        return sum(length for _, length in self.in_segments)


class DeviceQueueEngine(Component):
    """FSM servicing one virtqueue."""

    #: Safety bound on chain walks (spec: chains must not loop).
    MAX_CHAIN = 64

    def __init__(
        self,
        sim: "Simulator",
        device: "VirtioFpgaDevice",
        queue: QueueState,
        role: QueueRole,
        prefetch: bool = True,
        parent: Optional[Component] = None,
    ) -> None:
        super().__init__(sim, f"vq{queue.index}-engine", parent=parent)
        self._chain_wait_name = f"{self.path}.chain-wait"
        if not queue.enabled:
            raise VirtqueueError(f"queue {queue.index} not enabled")
        self.device = device
        self.queue = queue
        self.role = role
        self.prefetch = prefetch
        self.addresses = VirtqueueAddresses(
            size=queue.size,
            desc_table=queue.desc_addr,
            avail_ring=queue.driver_addr,
            used_ring=queue.device_addr,
        )
        self.last_avail_idx = 0
        self.used_idx = 0
        self._avail_flags = 0  # cached from the last flags+idx fetch
        self._kicked = False
        self._running = False
        self._free_chains: Deque[FetchedChain] = deque()
        self._chain_waiters: Deque[Event] = deque()
        self.chains_processed = 0
        self.interrupts_raised = 0
        self.interrupts_suppressed = 0

    # -- notification path --------------------------------------------------------

    def kick(self) -> None:
        """Doorbell from the notify region.

        IN-role queues without prefetch ignore doorbells: buffers are
        located at delivery time (the per-transfer-exchange strategy of
        ablation A2), so there is nothing to do when the driver merely
        posts more of them.
        """
        if self.role is QueueRole.IN and not self.prefetch:
            self.trace("kick-ignored")
            return
        self._kicked = True
        self.trace("kick")
        if not self._running:
            self._running = True
            self.spawn(self._service(), name="service")

    def _fsm(self) -> int:
        """One FSM transition's worth of fabric time."""
        return self.device.fsm_time

    # -- ring fetch helpers -------------------------------------------------------------

    def _read_avail(self) -> Generator[Any, Any, int]:
        """Fetch avail flags+idx in one access; caches flags."""
        raw = yield self.device.dma_port.host_read(self.addresses.avail_flags_addr, 4)
        self._avail_flags = int.from_bytes(raw[0:2], "little")
        return int.from_bytes(raw[2:4], "little")

    def _fetch_chain(self, head: int) -> Generator[Any, Any, FetchedChain]:
        """Walk and fetch the descriptor chain starting at *head*.

        Indirect descriptors (VIRTIO_F_RING_INDIRECT_DESC) are resolved
        with a *single* DMA read of the whole table -- the feature's
        latency advantage over walking a linked chain.
        """
        chain = FetchedChain(head)
        index = head
        seen: set = set()
        for _ in range(self.MAX_CHAIN):
            if index >= self.addresses.size:
                raise VirtqueueError(
                    f"queue {self.queue.index}: descriptor index {index} out of "
                    f"range (size {self.addresses.size})"
                )
            if index in seen:
                raise VirtqueueError(
                    f"queue {self.queue.index}: descriptor chain loops at index {index}"
                )
            seen.add(index)
            yield self._fsm()
            raw = yield self.device.dma_port.host_read(self.addresses.desc_addr(index), 16)
            raw = self._maybe_corrupt_descriptor(index, raw)
            desc = VirtqDescriptor.decode(raw)
            if desc.flags & VIRTQ_DESC_F_INDIRECT:
                if desc.has_next or chain.out_segments or chain.in_segments:
                    raise VirtqueueError(
                        f"queue {self.queue.index}: indirect descriptor must be alone"
                    )
                yield self._fsm()
                table = yield self.device.dma_port.host_read(desc.addr, desc.length)
                self._parse_indirect_table(chain, table)
                return chain
            self._append_segment(chain, desc)
            if not desc.has_next:
                return chain
            index = desc.next_index
        raise VirtqueueError(f"queue {self.queue.index}: chain longer than {self.MAX_CHAIN}")

    def _maybe_corrupt_descriptor(self, index: int, raw: bytes) -> bytes:
        """Fault hook: rewrite a fetched OUT-role descriptor into a
        self-referential chain (as a flipped ring bit would), which the
        chain-walk guard then detects."""
        injector = self.device.injector
        if (
            injector is None
            or self.role is not QueueRole.OUT
            or injector.fire(SITE_VIRTIO_CTRL, KIND_MALFORMED_CHAIN) is None
        ):
            return raw
        self.trace("descriptor-corrupted", index=index)
        bad = VirtqDescriptor.decode(raw)
        return VirtqDescriptor(
            addr=bad.addr,
            length=bad.length,
            flags=bad.flags | VIRTQ_DESC_F_NEXT,
            next_index=index,
        ).encode()

    def _append_segment(self, chain: FetchedChain, desc: VirtqDescriptor) -> None:
        if desc.device_writable:
            chain.in_segments.append((desc.addr, desc.length))
        else:
            if chain.in_segments:
                raise VirtqueueError(
                    f"queue {self.queue.index}: readable descriptor after writable"
                )
            chain.out_segments.append((desc.addr, desc.length))

    def _parse_indirect_table(self, chain: FetchedChain, table: bytes) -> None:
        if len(table) % 16:
            raise VirtqueueError(f"queue {self.queue.index}: indirect table not 16B-aligned")
        count = len(table) // 16
        index = 0
        for _ in range(count):
            desc = VirtqDescriptor.decode(table[index * 16 : index * 16 + 16])
            if desc.flags & VIRTQ_DESC_F_INDIRECT:
                raise VirtqueueError(
                    f"queue {self.queue.index}: nested indirect descriptor"
                )
            self._append_segment(chain, desc)
            if not desc.has_next:
                return
            index = desc.next_index
            if index >= count:
                raise VirtqueueError(
                    f"queue {self.queue.index}: indirect next {index} outside table"
                )
        raise VirtqueueError(f"queue {self.queue.index}: indirect table loops")

    def _fetch_out_data(self, chain: FetchedChain) -> Generator[Any, Any, None]:
        """DMA the chain's readable payload on-chip."""
        if len(chain.out_segments) == 1:
            # Single-segment chains (every virtio-net TX frame) keep the
            # staging snapshot as-is -- no gather copy.
            addr, length = chain.out_segments[0]
            chain.out_data = yield self.device.dma_port.host_read(addr, length)
            return
        parts: List[bytes] = []
        for addr, length in chain.out_segments:
            data = yield self.device.dma_port.host_read(addr, length)
            parts.append(data)
        chain.out_data = b"".join(parts)

    # -- service loop --------------------------------------------------------------------------

    def _service(self) -> Generator[Any, Any, None]:
        try:
            while self._kicked:
                self._kicked = False
                while True:
                    yield self._fsm()
                    avail_idx = yield from self._read_avail()
                    pending = (avail_idx - self.last_avail_idx) & 0xFFFF
                    if pending == 0:
                        break
                    for _ in range(pending):
                        yield self._fsm()
                        raw = yield self.device.dma_port.host_read(
                            self.addresses.avail_entry_addr(self.last_avail_idx), 2
                        )
                        head = int.from_bytes(raw, "little")
                        chain = yield from self._fetch_chain(head)
                        self.last_avail_idx = (self.last_avail_idx + 1) & 0xFFFF
                        yield from self._dispatch(chain)
        except VirtqueueError as err:
            # A real controller cannot raise Python exceptions at the
            # driver: when fault injection is active it latches
            # DEVICE_NEEDS_RESET and halts this engine, leaving
            # recovery to the driver's config-change path.  Without an
            # injector the error still fails loudly (a model bug, not
            # an injected fault).
            self._running = False
            if self.device.injector is None:
                raise
            self.trace("ring-error", queue=self.queue.index, error=str(err))
            self.device.mark_needs_reset(str(err))
            return
        self._running = False

    def _dispatch(self, chain: FetchedChain) -> Generator[Any, Any, None]:
        if self.role is QueueRole.OUT:
            yield from self._fetch_out_data(chain)
            yield from self.device.personality.on_out_chain(self.queue.index, chain)
            yield from self.complete(chain, written=0)
        elif self.role is QueueRole.REQUEST:
            yield from self._fetch_out_data(chain)
            response = yield from self.device.personality.on_request_chain(
                self.queue.index, chain
            )
            written = yield from self._write_in_segments(chain, response)
            yield from self.complete(chain, written=written)
        else:  # IN role: bank the chain for later delivery.
            self._free_chains.append(chain)
            self.trace("chain-prefetched", head=chain.head, capacity=chain.in_capacity)
            if self._chain_waiters:
                self._chain_waiters.popleft().trigger(None)

    # -- IN-role delivery ---------------------------------------------------------------------------

    def deliver(self, payload: bytes) -> Generator[Any, Any, int]:
        """Write *payload* into the next available chain, complete it,
        and interrupt the driver.  Returns bytes written.

        With ``prefetch=False`` the chain is fetched here instead, which
        puts the descriptor round trips on the delivery critical path --
        the per-transfer-exchange strategy of ablation A2.
        """
        if self.role is not QueueRole.IN:
            raise VirtqueueError(f"deliver on {self.role.value} queue {self.queue.index}")
        if not self.prefetch:
            yield from self._fetch_one_on_demand()
        while not self._free_chains:
            waiter = Event(name=self._chain_wait_name)
            self._chain_waiters.append(waiter)
            yield waiter
        chain = self._free_chains.popleft()
        if chain.in_capacity < len(payload):
            raise VirtqueueError(
                f"queue {self.queue.index}: buffer of {chain.in_capacity}B "
                f"cannot hold {len(payload)}B"
            )
        written = yield from self._write_in_segments(chain, payload)
        yield from self.complete(chain, written=written)
        return written

    def _fetch_one_on_demand(self) -> Generator[Any, Any, None]:
        yield self._fsm()
        avail_idx = yield from self._read_avail()
        if (avail_idx - self.last_avail_idx) & 0xFFFF == 0:
            return
        raw = yield self.device.dma_port.host_read(
            self.addresses.avail_entry_addr(self.last_avail_idx), 2
        )
        head = int.from_bytes(raw, "little")
        chain = yield from self._fetch_chain(head)
        self.last_avail_idx = (self.last_avail_idx + 1) & 0xFFFF
        self._free_chains.append(chain)

    def _write_in_segments(self, chain: FetchedChain, payload: bytes) -> Generator[Any, Any, int]:
        """Scatter *payload* across the chain's writable segments."""
        total = len(payload)
        if total and chain.in_segments and total <= chain.in_segments[0][1]:
            # Whole payload fits the first writable segment (every
            # virtio-net RX delivery): no scatter slicing.
            yield self._fsm()
            yield self.device.dma_port.host_write(chain.in_segments[0][0], payload)
            return total
        # View-based scatter: slices reference the payload, the DMA port
        # copies them into its staging BRAM immediately.
        src = memoryview(payload)
        pos = 0
        for addr, length in chain.in_segments:
            if pos >= total:
                break
            part = src[pos : pos + length]
            yield self._fsm()
            yield self.device.dma_port.host_write(addr, part)
            pos += len(part)
        if pos < total:
            raise VirtqueueError(
                f"queue {self.queue.index}: {total - pos}B did not fit the chain"
            )
        return pos

    # -- completion ---------------------------------------------------------------------------------------

    def complete(self, chain: FetchedChain, written: int) -> Generator[Any, Any, None]:
        """Publish the used element and interrupt if allowed."""
        yield self._fsm()
        injector = self.device.injector
        if injector is not None:
            spec = injector.fire(SITE_VIRTIO_CTRL, KIND_USED_DELAY)
            if spec is not None:
                delay = injector.delay_ps(spec, default_ns=10_000.0)
                self.trace("used-write-delayed", head=chain.head, delay_ps=delay)
                yield delay
        elem = chain.head.to_bytes(4, "little") + written.to_bytes(4, "little")
        yield self.device.dma_port.host_write(
            self.addresses.used_entry_addr(self.used_idx), elem
        )
        self.used_idx = (self.used_idx + 1) & 0xFFFF
        yield self.device.dma_port.host_write(
            self.addresses.used_idx_addr, self.used_idx.to_bytes(2, "little")
        )
        self.chains_processed += 1
        # Interrupt decision: re-fetch avail->flags *now*.  A cached
        # copy would race the driver clearing NO_INTERRUPT after a NAPI
        # poll -- the device would wrongly suppress and the driver,
        # having already re-checked the ring, would sleep forever.
        raw = yield self.device.dma_port.host_read(self.addresses.avail_flags_addr, 2)
        self._avail_flags = int.from_bytes(raw, "little")
        if self._avail_flags & VIRTQ_AVAIL_F_NO_INTERRUPT:
            self.interrupts_suppressed += 1
            self.trace("irq-suppressed", head=chain.head)
            return
        if self.queue.msix_vector != VIRTIO_MSI_NO_VECTOR:
            self.interrupts_raised += 1
            self.device.raise_queue_irq(self.queue.index)

    @property
    def free_chain_count(self) -> int:
        return len(self._free_chains)
