"""VirtIO block device personality (one of the "more VirtIO device
types" this paper adds support for).

Queue map (VirtIO 1.2 section 5.2): a single requestq carrying combined
chains: a 16-byte readable request header (type, reserved, sector), the
data segments (readable for writes, writable for reads), and a final
writable status byte.

The storage medium is FPGA-attached DRAM (a ramdisk), with its access
time charged per request -- exercising the :class:`FpgaDram` timing
model and giving the block-device example realistic asymmetry between
the PCIe transfer and the media access.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.mem.fpga_mem import FpgaDram
from repro.mem.layout import read_u32, read_u64
from repro.virtio.constants import (
    VIRTIO_F_RING_INDIRECT_DESC,
    VIRTIO_BLK_F_BLK_SIZE,
    VIRTIO_BLK_F_FLUSH,
    VIRTIO_BLK_F_SEG_MAX,
    VIRTIO_BLK_S_IOERR,
    VIRTIO_BLK_S_OK,
    VIRTIO_BLK_S_UNSUPP,
    VIRTIO_BLK_SECTOR_SIZE,
    VIRTIO_BLK_T_FLUSH,
    VIRTIO_BLK_T_IN,
    VIRTIO_BLK_T_OUT,
    VIRTIO_F_VERSION_1,
)
from repro.virtio.controller.personality import DevicePersonality
from repro.virtio.controller.queue_engine import FetchedChain, QueueRole
from repro.virtio.features import FeatureSet

REQUESTQ = 0
BLK_REQUEST_HEADER_SIZE = 16

#: PCI class: mass storage / other.
BLK_CLASS_CODE = 0x018000


class VirtioBlockPersonality(DevicePersonality):
    """virtio-blk backed by a DRAM ramdisk."""

    device_id = 2  # VIRTIO_ID_BLOCK
    class_code = BLK_CLASS_CODE
    num_queues = 1

    def __init__(self, capacity_sectors: int = 8192, blk_size: int = 512) -> None:
        super().__init__()
        if capacity_sectors <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_sectors = capacity_sectors
        self.blk_size = blk_size
        self.media = FpgaDram(size=capacity_sectors * VIRTIO_BLK_SECTOR_SIZE, name="ramdisk")
        self.reads = 0
        self.writes = 0
        self.flushes = 0
        self.errors = 0

    def queue_role(self, index: int) -> QueueRole:
        if index == REQUESTQ:
            return QueueRole.REQUEST
        raise IndexError(f"virtio-blk has no queue {index}")

    def offered_features(self) -> FeatureSet:
        return FeatureSet.of(
            VIRTIO_F_VERSION_1,
            VIRTIO_F_RING_INDIRECT_DESC,
            VIRTIO_BLK_F_SEG_MAX,
            VIRTIO_BLK_F_BLK_SIZE,
            VIRTIO_BLK_F_FLUSH,
        )

    def device_config_bytes(self) -> bytes:
        """struct virtio_blk_config prefix: capacity u64, size_max u32,
        seg_max u32, (geometry u32), blk_size u32."""
        blob = bytearray(24)
        blob[0:8] = self.capacity_sectors.to_bytes(8, "little")
        blob[8:12] = (1 << 20).to_bytes(4, "little")  # size_max
        blob[12:16] = (32).to_bytes(4, "little")  # seg_max
        blob[20:24] = self.blk_size.to_bytes(4, "little")
        return bytes(blob)

    @staticmethod
    def _status_reply(chain: FetchedChain, status: int) -> bytes:
        """The status byte is the *last* writable byte of the chain, so
        replies must pad any preceding data segments (their content is
        undefined on error, per spec)."""
        return bytes(chain.in_capacity - 1) + bytes([status])

    def on_request_chain(
        self, queue_index: int, chain: FetchedChain
    ) -> Generator[Any, Any, bytes]:
        device = self.device
        assert device is not None
        if len(chain.out_data) < BLK_REQUEST_HEADER_SIZE or not chain.in_segments:
            self.errors += 1
            return self._status_reply(chain, VIRTIO_BLK_S_IOERR)
        req_type = read_u32(chain.out_data, 0)
        sector = read_u64(chain.out_data, 8)
        offset = sector * VIRTIO_BLK_SECTOR_SIZE

        if req_type == VIRTIO_BLK_T_IN:
            length = chain.in_capacity - 1  # last writable byte is status
            if offset + length > self.media.size:
                self.errors += 1
                return self._status_reply(chain, VIRTIO_BLK_S_IOERR)
            yield self.media.access_time(length)
            self.reads += 1
            return self.media.read(offset, length) + bytes([VIRTIO_BLK_S_OK])

        if req_type == VIRTIO_BLK_T_OUT:
            data = chain.out_data[BLK_REQUEST_HEADER_SIZE:]
            if offset + len(data) > self.media.size:
                self.errors += 1
                return self._status_reply(chain, VIRTIO_BLK_S_IOERR)
            yield self.media.access_time(len(data))
            self.media.write(offset, data)
            self.writes += 1
            return bytes([VIRTIO_BLK_S_OK])

        if req_type == VIRTIO_BLK_T_FLUSH:
            yield device.fsm_time
            self.flushes += 1
            return bytes([VIRTIO_BLK_S_OK])

        self.errors += 1
        return self._status_reply(chain, VIRTIO_BLK_S_UNSUPP)
