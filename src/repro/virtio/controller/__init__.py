"""The FPGA-side VirtIO controller -- the paper's core contribution.

* :class:`VirtioFpgaDevice` -- the full device (XDMA IP + controller +
  personality).
* Personalities: :class:`VirtioNetPersonality`,
  :class:`VirtioConsolePersonality`, :class:`VirtioBlockPersonality`.
* :class:`HostBypassPort` -- driver-bypass DMA for user logic.
"""

from repro.virtio.controller.block import VirtioBlockPersonality
from repro.virtio.controller.bypass import HostBypassPort
from repro.virtio.controller.config_structs import QueueState, VirtioConfigBlock
from repro.virtio.controller.console import VirtioConsolePersonality
from repro.virtio.controller.device import VIRTIO_BAR_INDEX, VirtioFpgaDevice
from repro.virtio.controller.dma_port import ControllerDmaPort
from repro.virtio.controller.net import (
    CTRLQ,
    RECEIVEQ,
    TRANSMITQ,
    VirtioNetPersonality,
)
from repro.virtio.controller.personality import DevicePersonality
from repro.virtio.controller.queue_engine import DeviceQueueEngine, FetchedChain, QueueRole
from repro.virtio.controller.rng import VirtioRngPersonality

__all__ = [
    "CTRLQ",
    "ControllerDmaPort",
    "DevicePersonality",
    "DeviceQueueEngine",
    "FetchedChain",
    "HostBypassPort",
    "QueueRole",
    "QueueState",
    "RECEIVEQ",
    "TRANSMITQ",
    "VIRTIO_BAR_INDEX",
    "VirtioBlockPersonality",
    "VirtioConfigBlock",
    "VirtioConsolePersonality",
    "VirtioFpgaDevice",
    "VirtioNetPersonality",
    "VirtioRngPersonality",
]
