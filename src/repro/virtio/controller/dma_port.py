"""The VirtIO controller's host-memory access port.

Fig. 2 of the paper: "The VirtIO controller implements the virtqueue
functionality and controls the DMA engine of the XDMA IP."  All of the
controller's host-memory traffic -- ring index reads, descriptor
fetches, payload movement, used-ring writes -- goes through the XDMA
engines' **descriptor-bypass** ports, staged through on-chip BRAM:

* ``host_read``: an H2C bypass descriptor lands host bytes in a BRAM
  staging slot; the event fires with the bytes.
* ``host_write``: data is staged in BRAM and a C2H bypass descriptor
  pushes it to host memory; the event fires when the last write TLP is
  delivered (so a subsequent interrupt is correctly ordered behind it).

Both engines execute their bypass FIFOs in submission order, which is
what serializes concurrent controller FSMs onto the single data mover
per direction -- the same arbitration the RTL design needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.fpga.xdma.core import XdmaCore
from repro.fpga.xdma.descriptor import XdmaDescriptor
from repro.mem.fpga_mem import Bram
from repro.sim.component import Component
from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

#: Staging slots per direction (bypass execution is serial per engine,
#: so slots only need to cover submissions queued ahead of completion).
NUM_STAGING_SLOTS = 8
#: Size of one staging slot -- must hold an MTU frame + virtio headers.
STAGING_SLOT_SIZE = 2048


class ControllerDmaPort(Component):
    """Staged host-memory access through the XDMA bypass ports."""

    def __init__(
        self,
        sim: "Simulator",
        xdma: XdmaCore,
        bram: Bram,
        staging_base: int,
        name: str = "dma-port",
        parent: Optional[Component] = None,
    ) -> None:
        super().__init__(sim, name, parent=parent)
        self.xdma = xdma
        self.bram = bram
        self.staging_base = staging_base
        needed = 2 * NUM_STAGING_SLOTS * STAGING_SLOT_SIZE
        if staging_base + needed > bram.size:
            raise ValueError(
                f"staging area [{staging_base:#x}, +{needed:#x}) exceeds BRAM of {bram.size:#x}"
            )
        self._read_slot = 0
        self._write_slot = 0
        self._host_read_event_name = f"{self.path}.host_read"
        self._host_write_event_name = f"{self.path}.host_write"
        self.reads_issued = 0
        self.writes_issued = 0
        self.bytes_read = 0
        self.bytes_written = 0
        #: Shared-bandwidth arbiter for SR-IOV functions (None on
        #: single-function devices -- the default path is untouched).
        self.arbiter = None
        self._arbiter_port = -1

    def attach_arbiter(self, arbiter, weight: int = 1) -> None:
        """Route this port's transfers through a shared
        :class:`~repro.virtio.controller.arbiter.DmaBandwidthArbiter`
        (one per physical SR-IOV device)."""
        if self.arbiter is not None:
            raise RuntimeError(f"{self.path}: arbiter already attached")
        self.arbiter = arbiter
        self._arbiter_port = arbiter.register(weight)

    def _read_slot_addr(self) -> int:
        addr = self.staging_base + self._read_slot * STAGING_SLOT_SIZE
        self._read_slot = (self._read_slot + 1) % NUM_STAGING_SLOTS
        return addr

    def _write_slot_addr(self) -> int:
        base = self.staging_base + NUM_STAGING_SLOTS * STAGING_SLOT_SIZE
        addr = base + self._write_slot * STAGING_SLOT_SIZE
        self._write_slot = (self._write_slot + 1) % NUM_STAGING_SLOTS
        return addr

    def host_read(self, addr: int, length: int) -> Event:
        """Read *length* bytes of host memory; fires with the bytes."""
        if length <= 0 or length > STAGING_SLOT_SIZE:
            raise ValueError(f"host_read length {length} outside (0, {STAGING_SLOT_SIZE}]")
        slot = self._read_slot_addr()
        desc = XdmaDescriptor(src_addr=addr, dst_addr=slot, length=length)
        self.reads_issued += 1
        self.bytes_read += length
        result = Event(name=self._host_read_event_name)

        def _collect(_ev: Event) -> None:
            # AXI offset: the staging slot address is within the BRAM
            # region mapped at AXI base 0 by the device builder.
            result.trigger(self.bram.read(slot, length))

        if self.arbiter is None:
            self.xdma.h2c[0].submit_bypass(desc).on_trigger(_collect)
        else:
            def _start() -> Event:
                done = self.xdma.h2c[0].submit_bypass(desc)
                done.on_trigger(_collect)
                return done

            self.arbiter.submit(self._arbiter_port, _start)
        self.trace("host-read", addr=addr, length=length)
        return result

    def host_write(self, addr: int, data: bytes) -> Event:
        """Write *data* to host memory; fires at TLP delivery."""
        if not data or len(data) > STAGING_SLOT_SIZE:
            raise ValueError(f"host_write length {len(data)} outside (0, {STAGING_SLOT_SIZE}]")
        slot = self._write_slot_addr()
        self.bram.write(slot, data)
        desc = XdmaDescriptor(src_addr=slot, dst_addr=addr, length=len(data))
        self.writes_issued += 1
        self.bytes_written += len(data)
        self.trace("host-write", addr=addr, length=len(data))
        if self.arbiter is None:
            return self.xdma.c2h[0].submit_bypass(desc)
        result = Event(name=self._host_write_event_name)

        def _start() -> Event:
            done = self.xdma.c2h[0].submit_bypass(desc)
            done.on_trigger(lambda event: result.trigger(event.value))
            return done

        self.arbiter.submit(self._arbiter_port, _start)
        return result

    @property
    def stats(self) -> dict:
        return {
            "reads_issued": self.reads_issued,
            "writes_issued": self.writes_issued,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }
