"""Device personalities.

"Apart from data structures common to all VirtIO devices such as common
configuration and notification, a device specific data structure is
required to function as a particular device type. ... The main
modification to the design presented in [14] (to implement a VirtIO
network device) is to implement the device-specific data structure. ...
no modifications are necessary to the VirtIO controller as the design
already supports a variable number of queues." (Section III-A)

A :class:`DevicePersonality` supplies exactly those varying parts: the
device type/class IDs, the offered feature bits, the device-specific
configuration bytes, the queue count and roles, and the handling of
driver-originated chains.  The controller core is personality-agnostic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.virtio.controller.queue_engine import FetchedChain, QueueRole
from repro.virtio.features import FeatureSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.virtio.controller.device import VirtioFpgaDevice


class DevicePersonality:
    """Base class: one VirtIO device type."""

    #: VirtIO device type (1 = net, 2 = block, 3 = console).
    device_id: int = 0
    #: PCI class code announced in config space.
    class_code: int = 0
    #: Number of virtqueues the device exposes.
    num_queues: int = 0

    def __init__(self) -> None:
        self.device: "VirtioFpgaDevice | None" = None

    def bind(self, device: "VirtioFpgaDevice") -> None:
        """Called once by the owning device during construction."""
        self.device = device

    # -- identity / configuration ------------------------------------------------

    def queue_role(self, index: int) -> QueueRole:
        """Direction/semantics of queue *index*."""
        raise NotImplementedError

    def offered_features(self) -> FeatureSet:
        """The device feature bits offered to the driver."""
        raise NotImplementedError

    def device_config_bytes(self) -> bytes:
        """The device-specific configuration structure contents."""
        raise NotImplementedError

    # -- lifecycle hooks ------------------------------------------------------------

    def on_reset(self) -> None:
        """Device reset (status write of 0)."""

    def on_driver_ok(self) -> None:
        """Driver finished initialization (DRIVER_OK set)."""

    def on_notify(self, queue_index: int) -> None:
        """A doorbell landed for queue *queue_index* (called before the
        engine is kicked; personalities use it to start hardware
        performance counters)."""

    # -- data path -------------------------------------------------------------------

    def on_out_chain(
        self, queue_index: int, chain: FetchedChain
    ) -> Generator[Any, Any, None]:
        """Handle a driver->device chain on an OUT queue (payload
        already fetched on-chip in ``chain.out_data``)."""
        raise NotImplementedError
        yield  # pragma: no cover

    def on_request_chain(
        self, queue_index: int, chain: FetchedChain
    ) -> Generator[Any, Any, bytes]:
        """Handle a REQUEST chain; return the bytes for the writable
        segments (virtio-blk style)."""
        raise NotImplementedError
        yield  # pragma: no cover
