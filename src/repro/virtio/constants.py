"""VirtIO 1.2 constants (OASIS csd01, the paper's reference [13]).

Only the subsets exercised by the models are defined, but the values are
the spec's real ones so driver-visible behaviour (IDs, status handshake,
feature words) matches a Linux host.
"""

from __future__ import annotations

# -- PCI identity ---------------------------------------------------------------

#: The VirtIO PCI vendor ID (Red Hat / Qumranet).
VIRTIO_PCI_VENDOR_ID = 0x1AF4

#: Modern ("non-transitional") PCI device ID base: 0x1040 + device type.
VIRTIO_PCI_DEVICE_ID_BASE = 0x1040


def pci_device_id(device_type: int) -> int:
    """Modern PCI device ID for a VirtIO device type."""
    return VIRTIO_PCI_DEVICE_ID_BASE + device_type


# -- device types ------------------------------------------------------------------

VIRTIO_ID_NET = 1
VIRTIO_ID_BLOCK = 2
VIRTIO_ID_CONSOLE = 3

DEVICE_TYPE_NAMES = {
    VIRTIO_ID_NET: "network",
    VIRTIO_ID_BLOCK: "block",
    VIRTIO_ID_CONSOLE: "console",
}

# -- device status field ----------------------------------------------------------------

STATUS_ACKNOWLEDGE = 1
STATUS_DRIVER = 2
STATUS_DRIVER_OK = 4
STATUS_FEATURES_OK = 8
STATUS_DEVICE_NEEDS_RESET = 64
STATUS_FAILED = 128

# -- reserved (device-independent) feature bits ----------------------------------------------

VIRTIO_F_RING_INDIRECT_DESC = 28
VIRTIO_F_RING_EVENT_IDX = 29
VIRTIO_F_VERSION_1 = 32
VIRTIO_F_ACCESS_PLATFORM = 33
VIRTIO_F_RING_PACKED = 34
VIRTIO_F_NOTIFICATION_DATA = 38

# -- network device feature bits ------------------------------------------------------------

VIRTIO_NET_F_CSUM = 0
VIRTIO_NET_F_GUEST_CSUM = 1
VIRTIO_NET_F_MTU = 3
VIRTIO_NET_F_MAC = 5
VIRTIO_NET_F_GUEST_TSO4 = 7
VIRTIO_NET_F_HOST_TSO4 = 11
VIRTIO_NET_F_MRG_RXBUF = 15
VIRTIO_NET_F_STATUS = 16
VIRTIO_NET_F_CTRL_VQ = 17
VIRTIO_NET_F_MQ = 22
VIRTIO_NET_F_HASH_REPORT = 57

#: net config "status" field bits.
VIRTIO_NET_S_LINK_UP = 1

#: control-queue multiqueue class/commands (VirtIO 1.2 section 5.1.6.5.5).
VIRTIO_NET_CTRL_MQ = 4
VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET = 0
VIRTIO_NET_CTRL_MQ_VQ_PAIRS_MIN = 1
VIRTIO_NET_CTRL_MQ_VQ_PAIRS_MAX = 0x8000

# -- block device feature bits ------------------------------------------------------------------

VIRTIO_BLK_F_SIZE_MAX = 1
VIRTIO_BLK_F_SEG_MAX = 2
VIRTIO_BLK_F_BLK_SIZE = 6
VIRTIO_BLK_F_FLUSH = 9

#: block request types.
VIRTIO_BLK_T_IN = 0
VIRTIO_BLK_T_OUT = 1
VIRTIO_BLK_T_FLUSH = 4

#: block request status byte.
VIRTIO_BLK_S_OK = 0
VIRTIO_BLK_S_IOERR = 1
VIRTIO_BLK_S_UNSUPP = 2

#: block sector size (the unit of the "sector" request field).
VIRTIO_BLK_SECTOR_SIZE = 512

# -- console feature bits ---------------------------------------------------------------------------

VIRTIO_CONSOLE_F_SIZE = 0
VIRTIO_CONSOLE_F_MULTIPORT = 1

# -- virtio-pci capability cfg_type values ------------------------------------------------------------

VIRTIO_PCI_CAP_COMMON_CFG = 1
VIRTIO_PCI_CAP_NOTIFY_CFG = 2
VIRTIO_PCI_CAP_ISR_CFG = 3
VIRTIO_PCI_CAP_DEVICE_CFG = 4
VIRTIO_PCI_CAP_PCI_CFG = 5

#: "no MSI-X vector" sentinel for queue_msix_vector / msix_config.
VIRTIO_MSI_NO_VECTOR = 0xFFFF

# -- ISR status byte bits (legacy INTx-style; read-to-clear) -------------------------------------------

VIRTIO_ISR_QUEUE = 1
VIRTIO_ISR_CONFIG = 2
