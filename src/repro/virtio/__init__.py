"""VirtIO substrate: spec constants, split virtqueues, feature
negotiation, the virtio-pci transport structures, the virtio-net
header, and the FPGA-side controller (``repro.virtio.controller``)."""

from repro.virtio import constants
from repro.virtio.features import (
    FeatureNegotiationError,
    FeatureSet,
    negotiate,
    validate_accepted,
)
from repro.virtio.net_header import (
    VIRTIO_NET_HDR_SIZE,
    VirtioNetHeader,
    prepend_header,
    strip_header,
)
from repro.virtio.pci_transport import (
    COMMON_CFG,
    ParsedVirtioCap,
    VirtioPciLayout,
    discover_layout,
    parse_virtio_cap,
    virtio_cap_body,
)
from repro.virtio.virtqueue import (
    DESCRIPTOR_SIZE,
    DriverVirtqueue,
    UsedElem,
    VIRTQ_AVAIL_F_NO_INTERRUPT,
    VIRTQ_DESC_F_NEXT,
    VIRTQ_DESC_F_WRITE,
    VirtqDescriptor,
    VirtqueueAddresses,
    VirtqueueError,
    ring_layout,
)

__all__ = [
    "COMMON_CFG",
    "DESCRIPTOR_SIZE",
    "DriverVirtqueue",
    "FeatureNegotiationError",
    "FeatureSet",
    "ParsedVirtioCap",
    "UsedElem",
    "VIRTIO_NET_HDR_SIZE",
    "VIRTQ_AVAIL_F_NO_INTERRUPT",
    "VIRTQ_DESC_F_NEXT",
    "VIRTQ_DESC_F_WRITE",
    "VirtioNetHeader",
    "VirtioPciLayout",
    "VirtqDescriptor",
    "VirtqueueAddresses",
    "VirtqueueError",
    "constants",
    "discover_layout",
    "negotiate",
    "parse_virtio_cap",
    "prepend_header",
    "ring_layout",
    "strip_header",
    "validate_accepted",
]
