"""Feature negotiation (VirtIO 1.2 sections 2.2, 3.1.1).

"VirtIO also supports feature negotiation, i.e., the device and driver
can use feature bits to determine the subset of supported features to
ensure compatibility" (paper, Section I).

The device *offers* a 64-bit feature set; the driver *accepts* the
intersection with what it supports, writes it back, and sets
FEATURES_OK; the device validates the result.  :class:`FeatureSet` is a
small value type making the bit manipulation explicit and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

from repro.virtio.constants import VIRTIO_F_VERSION_1


class FeatureNegotiationError(RuntimeError):
    """Driver accepted features the device cannot honour, or dropped a
    mandatory one."""


@dataclass(frozen=True)
class FeatureSet:
    """An immutable 64-bit feature bitmap."""

    bits: int = 0

    def __post_init__(self) -> None:
        if self.bits < 0 or self.bits >= 1 << 64:
            raise ValueError(f"feature bits out of 64-bit range: {self.bits:#x}")

    @classmethod
    def of(cls, *feature_bits: int) -> "FeatureSet":
        """Build from bit positions, e.g. ``FeatureSet.of(VIRTIO_F_VERSION_1)``."""
        bits = 0
        for bit in feature_bits:
            if not 0 <= bit < 64:
                raise ValueError(f"feature bit {bit} out of range")
            bits |= 1 << bit
        return cls(bits)

    def has(self, bit: int) -> bool:
        return bool(self.bits >> bit & 1)

    def with_bit(self, bit: int) -> "FeatureSet":
        return FeatureSet(self.bits | (1 << bit))

    def without_bit(self, bit: int) -> "FeatureSet":
        return FeatureSet(self.bits & ~(1 << bit))

    def intersect(self, other: "FeatureSet") -> "FeatureSet":
        return FeatureSet(self.bits & other.bits)

    def union(self, other: "FeatureSet") -> "FeatureSet":
        return FeatureSet(self.bits | other.bits)

    def is_subset_of(self, other: "FeatureSet") -> bool:
        return self.bits & ~other.bits == 0

    def word(self, select: int) -> int:
        """32-bit feature word *select* (the common-config window)."""
        return (self.bits >> (32 * select)) & 0xFFFF_FFFF

    @classmethod
    def from_words(cls, words: Iterable[Tuple[int, int]]) -> "FeatureSet":
        """Assemble from (select, word32) pairs."""
        bits = 0
        for select, word in words:
            bits |= (word & 0xFFFF_FFFF) << (32 * select)
        return cls(bits)

    def __iter__(self) -> Iterator[int]:
        """Iterate set bit positions."""
        bits = self.bits
        position = 0
        while bits:
            if bits & 1:
                yield position
            bits >>= 1
            position += 1

    def __repr__(self) -> str:
        return f"FeatureSet({sorted(self)})"


def negotiate(offered: FeatureSet, driver_supported: FeatureSet) -> FeatureSet:
    """Driver-side negotiation: accept the intersection.

    Raises if VIRTIO_F_VERSION_1 is not in the result -- both our device
    models and modern Linux drivers require it (no legacy interface).
    """
    accepted = offered.intersect(driver_supported)
    if not accepted.has(VIRTIO_F_VERSION_1):
        raise FeatureNegotiationError(
            "VIRTIO_F_VERSION_1 not negotiated: "
            f"offered={offered!r} supported={driver_supported!r}"
        )
    return accepted


def validate_accepted(offered: FeatureSet, accepted: FeatureSet) -> None:
    """Device-side check at FEATURES_OK: the driver must not accept
    anything the device did not offer."""
    if not accepted.is_subset_of(offered):
        extra = FeatureSet(accepted.bits & ~offered.bits)
        raise FeatureNegotiationError(f"driver accepted unoffered features {extra!r}")
    if not accepted.has(VIRTIO_F_VERSION_1):
        raise FeatureNegotiationError("driver failed to accept VIRTIO_F_VERSION_1")
