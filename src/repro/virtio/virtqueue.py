"""Split virtqueues (VirtIO 1.2 section 2.7).

A split virtqueue is three driver-allocated areas in host memory:

* **descriptor table** -- 16-byte descriptors (addr, len, flags, next),
* **available ring** -- driver -> device: indices of descriptor chain
  heads the driver has exposed,
* **used ring** -- device -> driver: (head index, written length) pairs
  the device has consumed.

This module provides the byte layouts plus both endpoints' bookkeeping:

* :class:`DriverVirtqueue` -- what the front-end driver keeps in guest
  kernel memory: free-descriptor list, add-buffer/get-used operations.
  It reads/writes the rings through a :class:`~repro.mem.dma.DmaBuffer`,
  i.e. the *real simulated bytes* the device will DMA.
* :class:`VirtqueueAddresses` -- address arithmetic used by the FPGA
  controller to issue its DMA reads/writes; the controller never holds
  Python-object state about ring contents, it works from fetched bytes,
  exactly like the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.mem.dma import DmaBuffer
from repro.mem.layout import (
    align_up,
    read_u16,
    read_u32,
    read_u64,
    write_u16,
    write_u32,
    write_u64,
)

# Descriptor flags.
VIRTQ_DESC_F_NEXT = 1
VIRTQ_DESC_F_WRITE = 2
VIRTQ_DESC_F_INDIRECT = 4

# Available-ring flags.
VIRTQ_AVAIL_F_NO_INTERRUPT = 1
# Used-ring flags.
VIRTQ_USED_F_NO_NOTIFY = 1

DESCRIPTOR_SIZE = 16
AVAIL_HEADER_SIZE = 4  # flags u16 + idx u16
AVAIL_ENTRY_SIZE = 2
USED_HEADER_SIZE = 4
USED_ENTRY_SIZE = 8  # id u32 + len u32

#: Ring sizes must be powers of two, max 32768 (spec 2.7).
MAX_QUEUE_SIZE = 32768


class VirtqueueError(RuntimeError):
    """Ring protocol violation (exhaustion, bad chain, bad index)."""


class VirtqueueFull(VirtqueueError):
    """The queue's configured depth limit refused another chain.

    Distinct from plain descriptor exhaustion so callers can treat it
    as backpressure (count a drop, apply a full-queue policy) rather
    than a protocol violation.
    """


@dataclass(frozen=True)
class VirtqDescriptor:
    """One descriptor-table entry."""

    addr: int
    length: int
    flags: int = 0
    next_index: int = 0

    def encode(self) -> bytes:
        buf = bytearray(DESCRIPTOR_SIZE)
        write_u64(buf, 0, self.addr)
        write_u32(buf, 8, self.length)
        write_u16(buf, 12, self.flags)
        write_u16(buf, 14, self.next_index)
        return bytes(buf)

    @classmethod
    def decode(cls, data: bytes) -> "VirtqDescriptor":
        if len(data) != DESCRIPTOR_SIZE:
            raise VirtqueueError(f"descriptor must be {DESCRIPTOR_SIZE}B, got {len(data)}")
        return cls(
            # Inline int.from_bytes: this decode runs once per descriptor
            # walked and the layout helpers' bounds checks are redundant
            # over a 16-byte view.
            addr=int.from_bytes(data[0:8], "little"),
            length=int.from_bytes(data[8:12], "little"),
            flags=int.from_bytes(data[12:14], "little"),
            next_index=int.from_bytes(data[14:16], "little"),
        )

    @property
    def has_next(self) -> bool:
        return bool(self.flags & VIRTQ_DESC_F_NEXT)

    @property
    def device_writable(self) -> bool:
        return bool(self.flags & VIRTQ_DESC_F_WRITE)


@dataclass(frozen=True)
class VirtqueueAddresses:
    """Host-physical addresses of one split queue's three areas.

    The device receives these through the common-config ``queue_desc`` /
    ``queue_driver`` / ``queue_device`` fields at initialization -- the
    design point the paper contrasts against per-transfer descriptor
    exchange (Section IV-A).
    """

    size: int
    desc_table: int
    avail_ring: int
    used_ring: int

    def __post_init__(self) -> None:
        if self.size <= 0 or self.size > MAX_QUEUE_SIZE or self.size & (self.size - 1):
            raise VirtqueueError(f"queue size must be a power of two <= 32768, got {self.size}")

    def desc_addr(self, index: int) -> int:
        """Address of descriptor *index*."""
        return self.desc_table + DESCRIPTOR_SIZE * (index % self.size)

    @property
    def avail_flags_addr(self) -> int:
        return self.avail_ring

    @property
    def avail_idx_addr(self) -> int:
        return self.avail_ring + 2

    def avail_entry_addr(self, slot: int) -> int:
        return self.avail_ring + AVAIL_HEADER_SIZE + AVAIL_ENTRY_SIZE * (slot % self.size)

    @property
    def used_flags_addr(self) -> int:
        return self.used_ring

    @property
    def used_idx_addr(self) -> int:
        return self.used_ring + 2

    def used_entry_addr(self, slot: int) -> int:
        return self.used_ring + USED_HEADER_SIZE + USED_ENTRY_SIZE * (slot % self.size)


def ring_layout(size: int, align: int = 4096) -> Tuple[int, int, int, int]:
    """Offsets of (desc, avail, used, total_bytes) for a single
    contiguous allocation holding all three areas.

    The driver may place the areas anywhere; this helper packs them the
    way Linux's ``vring_init`` does: descriptors, then avail, then used
    aligned up to *align*.
    """
    desc_off = 0
    avail_off = DESCRIPTOR_SIZE * size
    used_off = align_up(avail_off + AVAIL_HEADER_SIZE + AVAIL_ENTRY_SIZE * size + 2, align)
    total = used_off + USED_HEADER_SIZE + USED_ENTRY_SIZE * size + 2
    return desc_off, avail_off, used_off, total


@dataclass(frozen=True)
class UsedElem:
    """One used-ring element as the driver reads it back."""

    head: int
    written: int


class DriverVirtqueue:
    """Front-end driver bookkeeping for one split queue.

    All ring state lives in the :class:`DmaBuffer` (real simulated host
    memory the device DMAs against); this class only tracks free
    descriptor slots and the last-seen used index, as the Linux
    ``vring_virtqueue`` does.
    """

    def __init__(self, index: int, size: int, buffer: DmaBuffer, name: str = "") -> None:
        desc_off, avail_off, used_off, total = ring_layout(size)
        if buffer.size < total:
            raise VirtqueueError(f"queue buffer {buffer.size}B < required {total}B")
        self.index = index
        self.size = size
        self.name = name or f"vq{index}"
        self.buffer = buffer
        self.addresses = VirtqueueAddresses(
            size=size,
            desc_table=buffer.addr + desc_off,
            avail_ring=buffer.addr + avail_off,
            used_ring=buffer.addr + used_off,
        )
        self._desc_off = desc_off
        self._avail_off = avail_off
        self._used_off = used_off
        buffer.zero()
        self._free: List[int] = list(range(size))
        self._avail_idx = 0  # driver's shadow of the published avail idx
        self._last_used_idx = 0
        #: head -> chain length, for freeing on used.
        self._chain_lengths: dict[int, int] = {}
        #: number of buffers currently exposed to the device.
        self.in_flight = 0
        #: Optional avail-ring depth bound: the driver refuses to expose
        #: more than this many chains at once (None = ring-size bound
        #: only).  Installed by the overload-protection layer; chains
        #: beyond it raise :class:`VirtqueueFull`.
        self.depth_limit: Optional[int] = None
        #: Chains refused by the depth limit.
        self.depth_rejects = 0

    # -- descriptor management ----------------------------------------------------

    @property
    def num_free(self) -> int:
        return len(self._free)

    def has_room(self, chains: int = 1) -> bool:
        """Whether *chains* more single-descriptor chains fit under both
        the ring-size and the configured depth bound."""
        if len(self._free) < chains:
            return False
        return self.depth_limit is None or self.in_flight + chains <= self.depth_limit

    def _check_depth(self) -> None:
        if self.depth_limit is not None and self.in_flight >= self.depth_limit:
            self.depth_rejects += 1
            raise VirtqueueFull(
                f"queue {self.name}: depth limit {self.depth_limit} reached "
                f"({self.in_flight} chains in flight)"
            )

    def _write_descriptor(self, index: int, desc: VirtqDescriptor) -> None:
        self.buffer.write(desc.encode(), self._desc_off + DESCRIPTOR_SIZE * index)

    def read_descriptor(self, index: int) -> VirtqDescriptor:
        # View, not copy: the decoder consumes the bytes immediately.
        raw = self.buffer.view(self._desc_off + DESCRIPTOR_SIZE * index, DESCRIPTOR_SIZE)
        return VirtqDescriptor.decode(raw)

    def add_buffer(
        self,
        out_segments: Sequence[Tuple[int, int]],
        in_segments: Sequence[Tuple[int, int]],
    ) -> int:
        """Expose a buffer chain: *out_segments* are driver->device
        (device-readable), *in_segments* device->driver (device-
        writable).  Returns the chain head index.

        This mirrors ``virtqueue_add_sgs``: it writes descriptors and the
        avail-ring entry but does **not** bump the published avail index
        -- call :meth:`publish` (kick path) to make the chain visible,
        allowing batched exposure.
        """
        total = len(out_segments) + len(in_segments)
        if total == 0:
            raise VirtqueueError("buffer chain must have at least one segment")
        self._check_depth()
        if total > len(self._free):
            raise VirtqueueError(
                f"queue {self.name}: need {total} descriptors, {len(self._free)} free"
            )
        indices = [self._free.pop() for _ in range(total)]
        head = indices[0]
        for pos, (addr, length) in enumerate(list(out_segments) + list(in_segments)):
            flags = 0
            if pos >= len(out_segments):
                flags |= VIRTQ_DESC_F_WRITE
            is_last = pos == total - 1
            next_index = 0 if is_last else indices[pos + 1]
            if not is_last:
                flags |= VIRTQ_DESC_F_NEXT
            self._write_descriptor(
                indices[pos],
                VirtqDescriptor(addr=addr, length=length, flags=flags, next_index=next_index),
            )
        # Avail-ring entry at the driver's shadow index.
        slot = self._avail_idx % self.size
        entry_off = self._avail_off + AVAIL_HEADER_SIZE + AVAIL_ENTRY_SIZE * slot
        self.buffer.write(head.to_bytes(2, "little"), entry_off)
        self._avail_idx = (self._avail_idx + 1) & 0xFFFF
        self._chain_lengths[head] = total
        self.in_flight += 1
        return head

    def add_buffer_indirect(
        self,
        out_segments: Sequence[Tuple[int, int]],
        in_segments: Sequence[Tuple[int, int]],
        table: DmaBuffer,
    ) -> int:
        """Expose a chain through one *indirect* descriptor
        (VIRTIO_F_RING_INDIRECT_DESC): the segment descriptors are
        written into *table* (driver-owned DMA memory) and a single
        ring descriptor points at it.

        Costs one ring slot regardless of segment count, and lets the
        device fetch the whole chain in one DMA read.  The caller owns
        *table* until the buffer is used.
        """
        total = len(out_segments) + len(in_segments)
        if total == 0:
            raise VirtqueueError("indirect chain must have at least one segment")
        self._check_depth()
        if table.size < total * DESCRIPTOR_SIZE:
            raise VirtqueueError(
                f"indirect table of {table.size}B cannot hold {total} descriptors"
            )
        if not self._free:
            raise VirtqueueError(f"queue {self.name}: no free descriptors")
        blob = bytearray()
        for position, (addr, length) in enumerate(list(out_segments) + list(in_segments)):
            flags = 0
            if position >= len(out_segments):
                flags |= VIRTQ_DESC_F_WRITE
            if position < total - 1:
                flags |= VIRTQ_DESC_F_NEXT
            next_index = position + 1 if position < total - 1 else 0
            blob += VirtqDescriptor(
                addr=addr, length=length, flags=flags, next_index=next_index
            ).encode()
        table.write(bytes(blob))
        head = self._free.pop()
        self._write_descriptor(
            head,
            VirtqDescriptor(
                addr=table.addr,
                length=total * DESCRIPTOR_SIZE,
                flags=VIRTQ_DESC_F_INDIRECT,
            ),
        )
        slot = self._avail_idx % self.size
        entry_off = self._avail_off + AVAIL_HEADER_SIZE + AVAIL_ENTRY_SIZE * slot
        self.buffer.write(head.to_bytes(2, "little"), entry_off)
        self._avail_idx = (self._avail_idx + 1) & 0xFFFF
        self._chain_lengths[head] = 1  # one ring descriptor to free
        self.in_flight += 1
        return head

    def publish(self) -> int:
        """Write the shadow avail index to the ring (memory barrier +
        ``vring_avail->idx`` store); returns the published value."""
        self.buffer.write(self._avail_idx.to_bytes(2, "little"), self._avail_off + 2)
        return self._avail_idx

    # -- used-ring consumption ---------------------------------------------------------

    def device_used_idx(self) -> int:
        """Read the device-published used index from the ring."""
        return int.from_bytes(self.buffer.view(self._used_off + 2, 2), "little")

    def has_used(self) -> bool:
        return self.device_used_idx() != self._last_used_idx

    def get_used(self) -> Optional[UsedElem]:
        """Pop one used element, freeing its descriptor chain."""
        if not self.has_used():
            return None
        slot = self._last_used_idx % self.size
        raw = self.buffer.view(self._used_off + USED_HEADER_SIZE + USED_ENTRY_SIZE * slot, 8)
        head = int.from_bytes(raw[0:4], "little")
        written = int.from_bytes(raw[4:8], "little")
        self._last_used_idx = (self._last_used_idx + 1) & 0xFFFF
        chain = self._chain_lengths.pop(head, None)
        if chain is None:
            raise VirtqueueError(f"queue {self.name}: device used unknown head {head}")
        # Free the chain's descriptor indices by walking the table.  The
        # walk is bounded by the recorded chain length, but the table
        # bytes are device-visible memory -- a corrupted (self-
        # referential or out-of-range) chain must fail loudly, not loop
        # or free the same slot twice.
        index = head
        seen: set[int] = set()
        for _ in range(chain):
            if not 0 <= index < self.size:
                raise VirtqueueError(
                    f"queue {self.name}: descriptor index {index} out of range "
                    f"(size {self.size})"
                )
            if index in seen:
                raise VirtqueueError(
                    f"queue {self.name}: descriptor chain loops back to index {index}"
                )
            seen.add(index)
            self._free.append(index)
            desc = self.read_descriptor(index)
            if not desc.has_next:
                break
            index = desc.next_index
        else:
            if desc.has_next:
                raise VirtqueueError(
                    f"queue {self.name}: chain at head {head} longer than its "
                    f"recorded {chain} descriptors"
                )
        self.in_flight -= 1
        return UsedElem(head=head, written=written)

    def set_avail_no_interrupt(self, suppress: bool) -> None:
        """Set/clear VIRTQ_AVAIL_F_NO_INTERRUPT (NAPI polling mode)."""
        value = VIRTQ_AVAIL_F_NO_INTERRUPT if suppress else 0
        self.buffer.write(value.to_bytes(2, "little"), self._avail_off)

    def __repr__(self) -> str:
        return (
            f"<DriverVirtqueue {self.name} size={self.size} free={len(self._free)} "
            f"in_flight={self.in_flight}>"
        )
