"""struct virtio_net_hdr (VirtIO 1.2 section 5.1.6).

Every frame crossing a virtio-net queue is prefixed by this 12-byte
header (with VIRTIO_F_VERSION_1 the ``num_buffers`` field is always
present).  The checksum-offload fields are what the paper's user logic
consumes when checksum calculation is offloaded to the FPGA
(Section III-A: "the FPGA could either send out a received Ethernet
frame as is or perform additional tasks on behalf of the host, e.g., a
checksum calculation").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.layout import read_u8, read_u16, write_u8, write_u16

VIRTIO_NET_HDR_SIZE = 12

# flags
VIRTIO_NET_HDR_F_NEEDS_CSUM = 1
VIRTIO_NET_HDR_F_DATA_VALID = 2

# gso_type
VIRTIO_NET_HDR_GSO_NONE = 0
VIRTIO_NET_HDR_GSO_TCPV4 = 1
VIRTIO_NET_HDR_GSO_UDP = 3


@dataclass(frozen=True)
class VirtioNetHeader:
    """Decoded virtio-net header."""

    flags: int = 0
    gso_type: int = VIRTIO_NET_HDR_GSO_NONE
    hdr_len: int = 0
    gso_size: int = 0
    csum_start: int = 0
    csum_offset: int = 0
    num_buffers: int = 1

    def encode(self) -> bytes:
        buf = bytearray(VIRTIO_NET_HDR_SIZE)
        write_u8(buf, 0, self.flags)
        write_u8(buf, 1, self.gso_type)
        write_u16(buf, 2, self.hdr_len)
        write_u16(buf, 4, self.gso_size)
        write_u16(buf, 6, self.csum_start)
        write_u16(buf, 8, self.csum_offset)
        write_u16(buf, 10, self.num_buffers)
        return bytes(buf)

    @classmethod
    def decode(cls, data: bytes) -> "VirtioNetHeader":
        if len(data) < VIRTIO_NET_HDR_SIZE:
            raise ValueError(f"virtio_net_hdr needs {VIRTIO_NET_HDR_SIZE}B, got {len(data)}")
        return cls(
            flags=read_u8(data, 0),
            gso_type=read_u8(data, 1),
            hdr_len=read_u16(data, 2),
            gso_size=read_u16(data, 4),
            csum_start=read_u16(data, 6),
            csum_offset=read_u16(data, 8),
            num_buffers=read_u16(data, 10),
        )

    @property
    def needs_csum(self) -> bool:
        return bool(self.flags & VIRTIO_NET_HDR_F_NEEDS_CSUM)


def strip_header(buffer: bytes) -> tuple[VirtioNetHeader, bytes]:
    """Split a queued buffer into (header, frame)."""
    return VirtioNetHeader.decode(buffer), buffer[VIRTIO_NET_HDR_SIZE:]


def prepend_header(frame: bytes, header: VirtioNetHeader | None = None) -> bytes:
    """Prefix *frame* with a (default) virtio-net header."""
    hdr = header if header is not None else VirtioNetHeader()
    return hdr.encode() + frame
